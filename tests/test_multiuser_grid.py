"""The multi-user transaction grid: harness, benchmark, trace lanes."""

import dataclasses
import json

import pytest

from repro.backends.clientserver import ClientServerDatabase
from repro.concurrency.multiuser import MultiUserHarness
from repro.core.config import HyperModelConfig
from repro.core.generator import DatabaseGenerator
from repro.netsim.config import NetworkConfig, SimConfig
from repro.netsim.faults import FaultModel
from repro.netsim.latency import LatencyModel
from repro.netsim.server import ObjectServer
from repro.obs import Instrumentation


def _build_server(fault_model=None, instrumentation=None):
    server = ObjectServer(
        latency=LatencyModel(),
        fault_model=fault_model,
        instrumentation=instrumentation,
    )
    loader = ClientServerDatabase(server=server)
    loader.open()
    gen = DatabaseGenerator(HyperModelConfig(levels=3, seed=17)).generate(
        loader
    )
    loader.commit()
    loader.close()
    server.stats.reset()
    return server, gen


def _result_key(result):
    data = dataclasses.asdict(result)
    data["latencies_ms"] = [round(v, 9) for v in data["latencies_ms"]]
    return json.dumps(data, sort_keys=True)


class TestTransactionLoad:
    def test_zero_conflict_rate_means_zero_aborts(self):
        server, gen = _build_server()
        harness = MultiUserHarness(server, gen, users=6, seed=11)
        result = harness.run_transactions(
            transactions_per_user=6, conflict_rate=0.0
        )
        assert result.aborted == 0
        assert result.abort_rate == 0.0
        assert result.committed == 36

    def test_hot_set_contention_causes_aborts(self):
        server, gen = _build_server()
        harness = MultiUserHarness(server, gen, users=8, seed=11)
        result = harness.run_transactions(
            transactions_per_user=8, conflict_rate=0.5
        )
        assert result.aborted > 0
        assert result.server_conflicts == result.aborted
        assert 0.0 < result.abort_rate < 1.0
        # Every transaction eventually commits (or is counted as a
        # give-up, which the retry budget makes rare-to-impossible).
        assert result.committed + result.giveups == 64

    def test_every_commit_lands_on_the_server(self):
        server, gen = _build_server()
        harness = MultiUserHarness(server, gen, users=4, seed=5)
        result = harness.run_transactions(
            transactions_per_user=4, conflict_rate=0.3
        )
        assert result.server_commits == result.committed

    def test_deterministic_for_seed(self):
        results = []
        for _ in range(2):
            server, gen = _build_server()
            harness = MultiUserHarness(server, gen, users=5, seed=23)
            results.append(
                harness.run_transactions(
                    transactions_per_user=5, conflict_rate=0.4
                )
            )
        assert _result_key(results[0]) == _result_key(results[1])

    def test_deterministic_under_rpc_faults(self):
        """Drops and timeouts reroll retries, not determinism."""
        results = []
        for _ in range(2):
            server, gen = _build_server(
                fault_model=FaultModel(
                    seed=3, drop_rate=0.02, timeout_rate=0.01
                )
            )
            harness = MultiUserHarness(server, gen, users=4, seed=23)
            results.append(
                harness.run_transactions(
                    transactions_per_user=4, conflict_rate=0.2
                )
            )
        assert _result_key(results[0]) == _result_key(results[1])

    def test_throughput_rises_then_saturates(self):
        tput = {}
        for users in (1, 4, 16):
            server, gen = _build_server()
            harness = MultiUserHarness(server, gen, users=users, seed=7)
            result = harness.run_transactions(
                transactions_per_user=6, conflict_rate=0.0
            )
            tput[users] = result.throughput_per_second
        assert tput[4] > 1.3 * tput[1]  # rising
        # ... then saturating: nowhere near another 4x.
        assert tput[16] < 2.0 * tput[4]
        assert tput[16] > 0.5 * tput[4]

    def test_queueing_appears_with_contention(self):
        server, gen = _build_server()
        harness = MultiUserHarness(server, gen, users=8, seed=7)
        result = harness.run_transactions(transactions_per_user=4)
        assert result.queue_seconds > 0.0
        assert result.busy_seconds > 0.0

    def test_conflict_rate_validated(self):
        server, gen = _build_server()
        harness = MultiUserHarness(server, gen, users=2, seed=1)
        with pytest.raises(ValueError):
            harness.run_transactions(conflict_rate=1.5)

    def test_mp_counters_emitted(self):
        instr = Instrumentation()
        server, gen = _build_server(instrumentation=instr)
        harness = MultiUserHarness(
            server, gen, users=4, seed=11, instrumentation=instr
        )
        harness.run_transactions(transactions_per_user=4, conflict_rate=0.5)
        counters = instr.counters.as_dict()
        assert counters["backend.mp.requests"] > 0
        assert counters["backend.mp.txn.committed"] == 16
        assert counters.get("backend.mp.commit.attempts", 0) >= 16
        assert "backend.mp.busy_ms" in counters


class TestMultiUserBench:
    @pytest.fixture(scope="class")
    def documents(self, tmp_path_factory):
        from repro.harness.multiuserbench import run_multiuser_bench

        docs = []
        for run in range(2):
            workdir = tmp_path_factory.mktemp(f"mp-bench-{run}")
            docs.append(
                run_multiuser_bench(
                    clients=(1, 4),
                    conflict_rates=(0.0, 0.5),
                    transactions_per_client=4,
                    workdir=str(workdir),
                )
            )
        return docs

    def test_grid_shape(self, documents):
        document = documents[0]
        assert set(document["cells"]) == {"clients-1", "clients-4"}
        for row in document["cells"].values():
            assert set(row) == {"conflict-0", "conflict-0.5"}
            for cell in row.values():
                assert cell["mode"] == "multiuser"
                assert cell["p50_ms"] > 0
                assert cell["histogram"]["count"] == cell["committed"] + (
                    cell["giveups"]
                )

    def test_cells_byte_identical_across_runs(self, documents):
        first, second = documents
        assert json.dumps(first["cells"], sort_keys=True) == json.dumps(
            second["cells"], sort_keys=True
        )
        assert json.dumps(first["wal"], sort_keys=True) == json.dumps(
            second["wal"], sort_keys=True
        )

    def test_control_column_has_zero_aborts(self, documents):
        for row in documents[0]["cells"].values():
            assert row["conflict-0"]["aborted"] == 0

    def test_wal_group_commit_reduces_fsyncs(self, documents):
        wal = documents[0]["wal"]
        per = wal["per_commit"]["fsyncs_per_commit"]
        grouped = wal["group_commit"]["fsyncs_per_commit"]
        assert per == pytest.approx(1.0)
        assert grouped < per / 2
        assert grouped == pytest.approx(
            wal["group_commit"]["wal_syncs"]
            / wal["group_commit"]["server_commits"]
        )

    def test_bench_diff_compatible(self, documents):
        from repro.harness.benchdiff import diff_documents, extract_cells

        cells = extract_cells(documents[0])
        assert ("clients-4", "conflict-0.5", "multiuser") in cells
        rows = diff_documents(documents[0], documents[1])
        assert rows and not any(row.regressed for row in rows)

    def test_format_summary(self, documents):
        from repro.harness.multiuserbench import format_summary

        text = format_summary(documents[0])
        assert "clients" in text and "fsyncs/commit" in text

    def test_write_round_trips(self, tmp_path):
        from repro.harness.multiuserbench import write_multiuser_bench

        out = tmp_path / "BENCH_multiuser.json"
        document = write_multiuser_bench(
            str(out),
            clients=(2,),
            conflict_rates=(0.0,),
            transactions_per_client=2,
        )
        loaded = json.loads(out.read_text())
        assert loaded["benchmark"] == "multiuser"
        assert loaded["cells"] == json.loads(
            json.dumps(document["cells"])
        )


class TestPerClientTraceLanes:
    def test_spans_carry_client_tags_and_lanes(self):
        from repro.obs.traceexport import build_trace

        instr = Instrumentation(span_capacity=4096)
        server, gen = _build_server(instrumentation=instr)
        harness = MultiUserHarness(
            server, gen, users=3, seed=9, instrumentation=instr
        )
        harness.run_transactions(transactions_per_user=3)
        tagged = {
            record.client
            for record in instr.spans.records()
            if record.client is not None
        }
        assert tagged == {"w00", "w01", "w02"}

        document = build_trace(instr)
        lanes = {
            (event["pid"], event["tid"], event["args"]["name"])
            for event in document["traceEvents"]
            if event.get("ph") == "M" and event["name"] == "thread_name"
        }
        names = {name for _, _, name in lanes}
        assert any("w00" in name for name in names)
        assert any("w02" in name for name in names)
        # Distinct clients map to distinct tids on the client track.
        client_tids = {
            event["tid"]
            for event in document["traceEvents"]
            if event.get("ph") == "X"
            and event["pid"] == 1
            and event["args"].get("client")
        }
        assert len(client_tids) == 3

    def test_untagged_spans_stay_on_anonymous_lane(self):
        from repro.obs.traceexport import build_trace

        instr = Instrumentation(span_capacity=256)
        with instr.span("solo.op"):
            pass
        document = build_trace(instr)
        xs = [
            event
            for event in document["traceEvents"]
            if event.get("ph") == "X"
        ]
        assert all(event["tid"] == 1 for event in xs)
