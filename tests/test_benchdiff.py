"""The bench-diff regression gate.

Covers the two document shapes (closure bench, harness ResultSet),
the percentile-aware thresholds, the absolute noise floor, and the
exit-code contract the CI gate relies on.
"""

import copy
import json

import pytest

from repro.harness.benchdiff import (
    ABSOLUTE_FLOOR_MS,
    DEFAULT_THRESHOLDS,
    diff_documents,
    diff_files,
    extract_cells,
    format_diff,
    regressions,
)


def closure_doc(p50=1.0, p90=2.0, p99=3.0):
    return {
        "benchmark": "closure-batch-traversal",
        "cells": {
            "memory": {
                "10": {
                    "p50_ms": p50,
                    "p90_ms": p90,
                    "p99_ms": p99,
                    "median_ms": p50,
                }
            }
        },
    }


def resultset_doc(cold_p90=2.0):
    return {
        "results": [
            {
                "backend": "memory",
                "level": 4,
                "op_id": "01",
                "cold": {"mean": 1.0},
                "warm": {"mean": 0.5},
                "cold_hist": {"p50": 1.0, "p90": cold_p90, "p99": 3.0},
                "warm_hist": {"p50": 0.5, "p90": 0.6, "p99": 0.7},
            }
        ]
    }


class TestExtractCells:
    def test_closure_documents_yield_closure_mode_cells(self):
        cells = extract_cells(closure_doc())
        assert ("memory", "10", "closure") in cells
        assert cells[("memory", "10", "closure")]["p90"] == 2.0

    def test_resultset_documents_yield_cold_and_warm_modes(self):
        cells = extract_cells(resultset_doc())
        assert ("memory-L4", "01", "cold") in cells
        assert ("memory-L4", "01", "warm") in cells

    def test_pre_histogram_closure_documents_fall_back_to_median(self):
        doc = {"cells": {"memory": {"10": {"median_ms": 1.5}}}}
        cells = extract_cells(doc)
        assert cells[("memory", "10", "closure")] == {"p50": 1.5}

    def test_pre_histogram_resultset_falls_back_to_the_mean(self):
        doc = resultset_doc()
        doc["results"][0]["cold_hist"] = {}
        cells = extract_cells(doc)
        assert cells[("memory-L4", "01", "cold")] == {"p50": 1.0}

    def test_unknown_shape_raises(self):
        with pytest.raises(ValueError):
            extract_cells({"something": "else"})


class TestThresholds:
    def test_identical_documents_have_no_regressions(self):
        rows = diff_documents(closure_doc(), closure_doc())
        assert rows and not regressions(rows)

    def test_p90_regression_past_threshold_is_flagged(self):
        rows = diff_documents(closure_doc(), closure_doc(p90=2.0 * 1.5))
        bad = regressions(rows)
        assert [r.quantile for r in bad] == ["p90"]
        assert bad[0].threshold == DEFAULT_THRESHOLDS["p90"]

    def test_p90_drift_inside_threshold_passes(self):
        rows = diff_documents(closure_doc(), closure_doc(p90=2.0 * 1.3))
        assert not regressions(rows)

    def test_p99_gets_the_loosest_threshold(self):
        # +40% trips p90 but not p99.
        rows = diff_documents(closure_doc(), closure_doc(p99=3.0 * 1.4))
        assert not regressions(rows)
        rows = diff_documents(closure_doc(), closure_doc(p99=3.0 * 1.6))
        assert [r.quantile for r in regressions(rows)] == ["p99"]

    def test_improvements_never_regress(self):
        rows = diff_documents(
            closure_doc(), closure_doc(p50=0.1, p90=0.2, p99=0.3)
        )
        assert not regressions(rows)

    def test_sub_floor_cells_never_regress(self):
        # 0.010 ms -> 0.040 ms is +300% but both sit under the noise
        # floor: timer jitter, not a regression.
        tiny = ABSOLUTE_FLOOR_MS / 5
        rows = diff_documents(
            closure_doc(p50=tiny, p90=tiny, p99=tiny),
            closure_doc(p50=tiny * 4, p90=tiny * 4, p99=tiny * 4),
        )
        assert not regressions(rows)

    def test_crossing_the_floor_does_regress(self):
        rows = diff_documents(
            closure_doc(p50=0.04, p90=0.04, p99=0.04),
            closure_doc(p50=0.2, p90=0.2, p99=0.2),
        )
        assert regressions(rows)

    def test_cells_on_one_side_only_are_skipped(self):
        base = closure_doc()
        cand = copy.deepcopy(base)
        cand["cells"]["sqlite"] = {"10": {"p50_ms": 99.0, "p90_ms": 99.0}}
        rows = diff_documents(base, cand)
        assert {r.backend for r in rows} == {"memory"}

    def test_resultset_modes_diff_independently(self):
        rows = diff_documents(resultset_doc(), resultset_doc(cold_p90=9.0))
        bad = regressions(rows)
        assert [(r.mode, r.quantile) for r in bad] == [("cold", "p90")]


class TestCliContract:
    def test_diff_files_exit_codes(self, tmp_path):
        base = tmp_path / "base.json"
        good = tmp_path / "good.json"
        bad = tmp_path / "bad.json"
        base.write_text(json.dumps(closure_doc()))
        good.write_text(json.dumps(closure_doc(p90=2.1)))
        bad.write_text(json.dumps(closure_doc(p90=5.0)))
        _rows, code = diff_files(str(base), str(good))
        assert code == 0
        _rows, code = diff_files(str(base), str(bad))
        assert code == 1

    def test_cli_bench_diff_exits_nonzero_on_regression(self, tmp_path):
        from repro.cli import main

        base = tmp_path / "base.json"
        bad = tmp_path / "bad.json"
        base.write_text(json.dumps(closure_doc()))
        bad.write_text(json.dumps(closure_doc(p90=5.0)))
        assert main(["bench-diff", str(base), str(base)]) == 0
        assert main(["bench-diff", str(base), str(bad)]) == 1

    def test_format_diff_mentions_every_regression(self):
        rows = diff_documents(closure_doc(), closure_doc(p90=5.0))
        table = format_diff(rows, only_regressions=True)
        assert "REGRESSED" in table
        assert "memory/10/closure/p90" in table
        assert "1 regression" in table

    def test_baseline_document_self_diffs_clean(self):
        # The committed CI baseline must never trip its own gate.
        import os

        path = os.path.join(
            os.path.dirname(__file__),
            os.pardir,
            "benchmarks",
            "baseline",
            "BENCH_closure.json",
        )
        with open(path) as handle:
            document = json.load(handle)
        assert "provenance" in document
        rows = diff_documents(document, document)
        assert rows and not regressions(rows)
