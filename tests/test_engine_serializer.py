"""The binary serializer: roundtrips, edge values and corruption."""

import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.serializer import decode, decode_view, encode
from repro.errors import StorageError


class TestRoundtrips:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            1,
            -1,
            2**62,
            -(2**62),
            0.0,
            3.141592653589793,
            -1e300,
            "",
            "hello",
            "unicode: æøå 中文 🙂",
            b"",
            b"\x00\xff" * 100,
            [],
            [1, 2, 3],
            [[1], [2, [3]]],
            {},
            {"a": 1, "b": [True, None]},
            {"nested": {"deep": {"deeper": b"bytes"}}},
        ],
    )
    def test_value_roundtrip(self, value):
        assert decode(encode(value)) == value

    def test_tuple_decodes_as_list(self):
        assert decode(encode((1, 2, 3))) == [1, 2, 3]

    def test_object_state_shape(self):
        state = {
            "uniqueId": 42,
            "children": [1, 2, 3, 4, 5],
            "refTo": [[7, 3, 8]],
            "text": "version1 words version1",
            "bits": b"\x00" * 1000,
        }
        assert decode(encode(state)) == state

    def test_int_keys_in_dicts(self):
        assert decode(encode({1: "a", 2: "b"})) == {1: "a", 2: "b"}

    @pytest.mark.parametrize(
        "value",
        [
            [[], {}, [{}], {"a": []}],
            {"a": {"b": {"c": [1, [2, [3, {"d": b"x"}]]]}}},
            [[[[[[[["deep"]]]]]]]],
            {"": {"": {"": None}}},
            [{"k": [b"", ""]}, [{}, [{}]], [[], [[]]]],
        ],
    )
    def test_nested_edge_cases(self, value):
        assert decode(encode(value)) == value

    def test_decode_view_accepts_memoryview(self):
        value = {"s": "hello", "b": b"\x00\x01", "l": [1, [2.5, None]]}
        blob = encode(value)
        assert decode_view(memoryview(blob)) == value
        # Offcut views decode too (the slotted page case).
        padded = b"xx" + blob + b"yy"
        assert decode_view(memoryview(padded)[2:-2]) == value

    def test_decoder_is_iterative(self):
        """Deep nesting must not hit the interpreter recursion limit."""
        depth = 900
        value = "leaf"
        for _ in range(depth):
            value = [value]
        blob = encode(value)  # the encoder recurses: encode first
        limit = sys.getrecursionlimit()
        sys.setrecursionlimit(80)
        try:
            decoded = decode(blob)
        finally:
            sys.setrecursionlimit(limit)
        for _ in range(depth):
            assert isinstance(decoded, list) and len(decoded) == 1
            decoded = decoded[0]
        assert decoded == "leaf"


class TestErrors:
    def test_unserializable_type_rejected(self):
        with pytest.raises(StorageError):
            encode(object())

    def test_int_outside_64_bits_rejected(self):
        with pytest.raises(StorageError):
            encode(2**64)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(StorageError):
            decode(encode(1) + b"junk")

    def test_truncation_rejected(self):
        blob = encode({"key": "a long enough string value"})
        for cut in (1, len(blob) // 2, len(blob) - 1):
            with pytest.raises(StorageError):
                decode(blob[:cut])

    def test_unknown_tag_rejected(self):
        with pytest.raises(StorageError):
            decode(b"Z")

    def test_empty_input_rejected(self):
        with pytest.raises(StorageError):
            decode(b"")


_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**63), max_value=2**63 - 1),
    st.floats(allow_nan=False),
    st.text(max_size=40),
    st.binary(max_size=40),
)

_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=6),
        st.dictionaries(st.text(max_size=10), children, max_size=6),
    ),
    max_leaves=25,
)


@given(value=_values)
def test_property_roundtrip_any_supported_value(value):
    """encode/decode is the identity for all supported shapes."""
    assert decode(encode(value)) == value


@given(value=_values)
def test_property_encoding_is_deterministic(value):
    """Equal values encode to identical bytes (stable dict order given)."""
    assert encode(value) == encode(value)


@settings(max_examples=40, deadline=None)
@given(value=_values)
def test_property_truncation_at_every_offset_rejected(value):
    """Cutting an encoding at *any* byte offset must raise, not crash.

    Every strict prefix is either a truncated value or leaves trailing
    state on the decoder's stack — both are StorageError, never an
    IndexError/UnicodeDecodeError leaking from the internals.
    """
    blob = encode(value)
    for cut in range(len(blob)):
        with pytest.raises(StorageError):
            decode(blob[:cut])
        with pytest.raises(StorageError):
            decode_view(memoryview(blob)[:cut])


@settings(max_examples=40, deadline=None)
@given(value=_values)
def test_property_view_and_bytes_decode_agree(value):
    """decode over bytes and decode_view over a view are identical."""
    blob = encode(value)
    assert decode_view(memoryview(blob)) == decode(blob)
