"""The VFS seam: real I/O, counting, deterministic fault injection."""

import os

import pytest

from repro.engine.vfs import (
    FAULT_KINDS,
    CountingVFS,
    FaultInjectedError,
    FaultInjectingVFS,
    RealVFS,
    SimulatedCrash,
)
from repro.obs import Instrumentation


@pytest.fixture
def path(tmp_path):
    return str(tmp_path / "file.bin")


class TestRealVFS:
    def test_write_read_roundtrip(self, path):
        vfs = RealVFS()
        with vfs.open(path, "w+b") as f:
            f.write(b"hello world")
            f.sync()
        with vfs.open(path, "rb") as f:
            assert f.read() == b"hello world"

    def test_seek_tell_truncate(self, path):
        vfs = RealVFS()
        with vfs.open(path, "w+b") as f:
            f.write(b"0123456789")
            f.seek(2)
            assert f.tell() == 2
            f.truncate(5)
        assert vfs.size(path) == 5

    def test_exists_size_remove(self, path):
        vfs = RealVFS()
        assert not vfs.exists(path)
        assert vfs.size(path) == 0
        with vfs.open(path, "w+b") as f:
            f.write(b"abc")
        assert vfs.exists(path)
        assert vfs.size(path) == 3
        vfs.remove(path)
        assert not vfs.exists(path)
        vfs.remove(path)  # missing files are tolerated

    def test_replace_and_copy(self, path, tmp_path):
        vfs = RealVFS()
        other = str(tmp_path / "other.bin")
        with vfs.open(path, "w+b") as f:
            f.write(b"payload")
        vfs.copy(path, other)
        assert vfs.size(other) == 7
        vfs.replace(other, path)
        assert not vfs.exists(other)
        with vfs.open(path, "rb") as f:
            assert f.read() == b"payload"

    def test_close_is_idempotent(self, path):
        vfs = RealVFS()
        f = vfs.open(path, "w+b")
        f.close()
        f.close()
        assert f.closed


class TestCountingVFS:
    def test_counts_reads_writes_syncs(self, path):
        instr = Instrumentation()
        vfs = CountingVFS(RealVFS(), instr)
        with vfs.open(path, "w+b") as f:
            f.write(b"abcd")
            f.sync()
            f.seek(0)
            f.read()
            f.truncate(2)
        counters = instr.snapshot()
        assert counters["engine.io.opens"] == 1
        assert counters["engine.io.writes"] == 1
        assert counters["engine.io.bytes_written"] == 4
        assert counters["engine.io.reads"] == 1
        assert counters["engine.io.bytes_read"] == 4
        assert counters["engine.io.syncs"] == 1
        assert counters["engine.io.truncates"] == 1

    def test_passes_path_operations_through(self, path):
        vfs = CountingVFS(RealVFS(), Instrumentation())
        with vfs.open(path, "w+b") as f:
            f.write(b"x")
        assert vfs.exists(path)
        assert vfs.size(path) == 1
        vfs.remove(path)
        assert not vfs.exists(path)


class TestFaultInjectingVFS:
    def test_numbers_mutating_operations(self, path):
        vfs = FaultInjectingVFS()
        with vfs.open(path, "w+b") as f:
            f.write(b"a")  # op 1
            f.sync()  # op 2
            f.truncate(0)  # op 3
            f.seek(0)  # not a mutation
            f.read()  # not a mutation
        vfs.remove(path)  # op 4
        assert vfs.mutation_ops == 4

    def test_fail_raises_transient_error_once(self, path):
        vfs = FaultInjectingVFS().fail_at(2, "fail")
        with vfs.open(path, "w+b") as f:
            f.write(b"a")
            with pytest.raises(FaultInjectedError):
                f.write(b"b")
            f.write(b"c")  # the fault was one-shot
        assert not vfs.crashed
        assert [op for op, _kind, _path in vfs.fired] == [2]

    def test_short_write_persists_prefix_but_reports_success(self, path):
        vfs = FaultInjectingVFS(seed=3).fail_at(1, "short_write")
        with vfs.open(path, "w+b") as f:
            assert f.write(b"0123456789") == 10  # the lie
        assert RealVFS().size(path) < 10

    def test_torn_write_persists_prefix_then_crashes(self, path):
        vfs = FaultInjectingVFS(seed=5).fail_at(1, "torn_write")
        f = vfs.open(path, "w+b")
        with pytest.raises(SimulatedCrash):
            f.write(b"0123456789")
        assert vfs.crashed
        assert RealVFS().size(path) < 10

    def test_drop_fsync_silently_skips_durability(self, path):
        vfs = FaultInjectingVFS().fail_at(2, "drop_fsync")
        with vfs.open(path, "w+b") as f:
            f.write(b"a")
            f.sync()  # dropped, but no error
        assert not vfs.crashed

    def test_crash_blocks_every_later_mutation(self, path):
        vfs = FaultInjectingVFS().crash_at(1)
        f = vfs.open(path, "w+b")
        with pytest.raises(SimulatedCrash):
            f.write(b"a")
        with pytest.raises(SimulatedCrash):
            f.write(b"b")
        with pytest.raises(SimulatedCrash):
            vfs.remove(path)
        with pytest.raises(SimulatedCrash):
            vfs.open(path, "w+b")
        f.close()  # closing is always allowed

    def test_crashed_vfs_still_reads(self, path):
        real = RealVFS()
        with real.open(path, "w+b") as f:
            f.write(b"before")
        vfs = FaultInjectingVFS().crash_at(1)
        with pytest.raises(SimulatedCrash):
            with vfs.open(path, "r+b") as f:
                f.write(b"x")
        with vfs.open(path, "rb") as f:
            assert f.read() == b"before"

    def test_partial_lengths_are_seeded(self, path):
        lengths = []
        for _ in range(2):
            vfs = FaultInjectingVFS(seed=42).fail_at(1, "short_write")
            with vfs.open(path, "w+b") as f:
                f.write(b"x" * 1000)
            lengths.append(os.path.getsize(path))
        assert lengths[0] == lengths[1]

    def test_unknown_kind_and_bad_op_rejected(self):
        vfs = FaultInjectingVFS()
        with pytest.raises(ValueError):
            vfs.fail_at(1, "meteor_strike")
        with pytest.raises(ValueError):
            vfs.fail_at(0)

    def test_fault_kinds_catalog(self):
        assert set(FAULT_KINDS) == {
            "fail",
            "short_write",
            "torn_write",
            "drop_fsync",
            "crash",
        }


class TestMemoryVFS:
    """The in-memory filesystem the replication group defaults to."""

    def test_write_read_roundtrip(self):
        from repro.engine.vfs import MemoryVFS

        vfs = MemoryVFS()
        with vfs.open("log", "w+b") as f:
            f.write(b"hello")
        assert vfs.exists("log")
        assert vfs.size("log") == 5
        with vfs.open("log", "rb") as f:
            assert f.read() == b"hello"

    def test_append_mode_and_missing_file(self):
        from repro.engine.vfs import MemoryVFS

        vfs = MemoryVFS()
        with pytest.raises(FileNotFoundError):
            vfs.open("absent", "rb")
        with pytest.raises(FileNotFoundError):
            vfs.open("absent", "r+b")
        with vfs.open("log", "ab+") as f:
            f.write(b"one")
        with vfs.open("log", "ab+") as f:
            f.write(b"two")  # append resumes at the end
        with vfs.open("log", "rb") as f:
            assert f.read() == b"onetwo"

    def test_independent_readers_share_the_buffer(self):
        from repro.engine.vfs import MemoryVFS

        vfs = MemoryVFS()
        writer = vfs.open("log", "ab+")
        writer.write(b"abc")
        with vfs.open("log", "rb") as reader:
            assert reader.read() == b"abc"
        writer.write(b"def")
        with vfs.open("log", "rb") as reader:
            reader.seek(3)
            assert reader.read() == b"def"
        writer.close()

    def test_seek_truncate_and_closed_errors(self):
        from repro.engine.vfs import MemoryVFS

        vfs = MemoryVFS()
        f = vfs.open("log", "w+b")
        f.write(b"0123456789")
        f.seek(2)
        assert f.tell() == 2
        f.truncate(5)
        assert vfs.size("log") == 5
        f.close()
        with pytest.raises(ValueError):
            f.read()

    def test_fault_injection_composes_over_memory(self):
        from repro.engine.vfs import MemoryVFS

        vfs = FaultInjectingVFS(MemoryVFS(), seed=3).crash_at(2)
        f = vfs.open("log", "ab+")
        f.write(b"first")
        with pytest.raises(SimulatedCrash):
            f.write(b"second")
        # Post-crash reads still see everything persisted before.
        with vfs.open("log", "rb") as reader:
            assert reader.read() == b"first"
