"""Closure push-down: server-side traversal + structural readahead.

Five contracts under test:

* the server verbs (``traverse`` / ``readahead``): BFS order, depth
  and capacity bounds, direction, speculative error semantics, and the
  **unified charge model** (a push-down reply and a batch reply
  carrying the same record set cost the same simulated time);
* the client fast path: op 10 at level 4 costs exactly **one**
  ``backend.rpc.call`` round trip with ``pushdown=True`` (five with
  the frontier-BFS fall-back), warm passes stay at zero, and both
  modes return byte-identical results;
* the workstation cache's bulk admission (`put_many`, single eviction
  pass) and the pinned LRU recency of ``get_many`` partial hits;
* coherence: a ``store`` invalidation evicts records that entered the
  cache via ``traverse``/``readahead``, not just via ``fetch``;
* fault tolerance: a dropped/timed-out ``traverse`` retries the whole
  verb without double-admitting records (counter-verified).
"""

import pytest

from repro.backends import create_backend
from repro.backends.clientserver import ClientServerDatabase
from repro.core.config import HyperModelConfig
from repro.core.generator import DatabaseGenerator
from repro.core.operations import Operations
from repro.errors import (
    ConfigurationError,
    InvalidOperationError,
    NodeNotFoundError,
    RpcDroppedError,
    RpcTimeoutError,
)
from repro.harness.batchbench import run_closure_bench
from repro.harness.benchdiff import extract_cells
from repro.netsim.cache import WorkstationCache
from repro.obs import Instrumentation


def _build(levels=3, seed=42, **options):
    """A generated clientserver database + its generator handle."""
    from repro.netsim.config import NetworkConfig

    instr = options.pop("instrumentation", None) or Instrumentation()
    db = ClientServerDatabase(
        network=NetworkConfig(**options), instrumentation=instr
    )
    db.open()
    gen = DatabaseGenerator(
        HyperModelConfig(levels=levels, seed=seed)
    ).generate(db)
    db.commit()
    return db, gen, instr


# ----------------------------------------------------------------------
# 1. The server-side traverse / readahead verbs
# ----------------------------------------------------------------------


class TestTraverseVerb:
    @pytest.fixture(scope="class")
    def served(self):
        db, gen, instr = _build(levels=3)
        yield db.server, gen, db
        db.close()

    def test_children_traversal_visits_the_whole_subtree_in_bfs_order(
        self, served
    ):
        server, gen, _db = served
        reply = server.traverse(gen.root_uid, "children")
        assert len(reply) == 156  # the level-3 structure
        order = list(reply)
        assert order[0] == gen.root_uid
        # BFS: every node appears after its parent.
        position = {uid: i for i, uid in enumerate(order)}
        for uid, record in reply.items():
            for child in record["children"]:
                assert position[child] > position[uid]

    def test_depth_bound_stops_the_bfs(self, served):
        server, gen, _db = served
        reply = server.traverse(gen.root_uid, "children", depth=1)
        root_record = reply[gen.root_uid]
        assert set(reply) == {gen.root_uid, *root_record["children"]}

    def test_limit_caps_the_reply_to_a_coherent_bfs_prefix(self, served):
        server, gen, _db = served
        full = list(server.traverse(gen.root_uid, "children"))
        capped = server.traverse(gen.root_uid, "children", limit=10)
        assert list(capped) == full[:10]

    def test_reverse_children_climbs_to_the_root(self, served):
        server, gen, _db = served
        leaf = gen.uids_by_level[3][0]
        reply = server.traverse(leaf, "children", direction="reverse")
        order = list(reply)
        assert order[0] == leaf
        assert order[-1] == gen.root_uid
        assert len(order) == 4  # leaf, two inner levels, root

    def test_with_records_false_ships_uids_only_and_charges_less(
        self, served
    ):
        server, gen, db = served
        clock = db.simulated_clock
        before = clock.now
        uids_only = server.traverse(
            gen.root_uid, "children", with_records=False
        )
        light = clock.now - before
        before = clock.now
        with_records = server.traverse(gen.root_uid, "children")
        heavy = clock.now - before
        assert set(uids_only.values()) == {None}
        assert list(uids_only) == list(with_records)
        assert light < heavy

    def test_unknown_root_raises_and_still_charges(self, served):
        server, _gen, db = served
        before = db.simulated_clock.now
        with pytest.raises(NodeNotFoundError):
            server.traverse(999999, "children")
        assert db.simulated_clock.now > before

    def test_bad_relation_and_direction_are_rejected(self, served):
        server, gen, _db = served
        with pytest.raises(InvalidOperationError):
            server.traverse(gen.root_uid, "parent")
        with pytest.raises(InvalidOperationError):
            server.traverse(gen.root_uid, "children", direction="sideways")

    def test_replies_are_isolated_copies(self, served):
        server, gen, _db = served
        reply = server.traverse(gen.root_uid, "children", depth=1)
        reply[gen.root_uid]["children"].clear()
        again = server.traverse(gen.root_uid, "children", depth=1)
        assert again[gen.root_uid]["children"]


class TestReadaheadVerb:
    @pytest.fixture(scope="class")
    def served(self):
        db, gen, instr = _build(levels=3)
        yield db.server, gen, db
        db.close()

    def test_expands_children_and_parts_of_the_seed(self, served):
        server, gen, _db = served
        root = gen.root_uid
        reply = server.readahead([root], depth=1)
        record = reply[root]
        expected = {root, *record["children"], *record["parts"]}
        assert set(reply) == expected

    def test_depth_zero_ships_just_the_seeds(self, served):
        server, gen, _db = served
        uids = gen.uids_by_level[1][:3]
        reply = server.readahead(uids, depth=0)
        assert list(reply) == list(uids)

    def test_unknown_seeds_are_skipped_silently(self, served):
        server, gen, _db = served
        reply = server.readahead([999999], depth=1)
        assert reply == {}
        mixed = server.readahead([999999, gen.root_uid], depth=0)
        assert list(mixed) == [gen.root_uid]

    def test_negative_depth_is_rejected(self, served):
        server, _gen, _db = served
        with pytest.raises(InvalidOperationError):
            server.readahead([1], depth=-1)

    def test_limit_caps_the_expansion(self, served):
        server, gen, _db = served
        reply = server.readahead([gen.root_uid], depth=3, limit=5)
        assert len(reply) == 5


# ----------------------------------------------------------------------
# 2. Unified charge accounting (satellite: _charge payload model)
# ----------------------------------------------------------------------


class TestChargeParity:
    """envelope + Σ record_size, identically for every reply shape."""

    @pytest.fixture()
    def served(self):
        db, gen, instr = _build(levels=2)
        yield db.server, gen, db, instr
        db.close()

    def test_batch_and_pushdown_replies_charge_identically(self, served):
        server, gen, db, _instr = served
        clock = db.simulated_clock
        reply = server.traverse(gen.root_uid, "children")
        record_set = list(reply)
        before_bytes = server.stats.bytes_sent
        before = clock.now
        server.fetch_many(record_set)
        batch_cost = clock.now - before
        batch_bytes = server.stats.bytes_sent - before_bytes
        before_bytes = server.stats.bytes_sent
        before = clock.now
        server.traverse(gen.root_uid, "children")
        pushdown_cost = clock.now - before
        pushdown_bytes = server.stats.bytes_sent - before_bytes
        assert batch_bytes == pushdown_bytes
        assert batch_cost == pushdown_cost

    def test_single_fetch_matches_a_singleton_batch(self, served):
        server, gen, db, _instr = served
        clock = db.simulated_clock
        before = clock.now
        server.fetch(gen.root_uid)
        single = clock.now - before
        before = clock.now
        server.fetch_many([gen.root_uid])
        batch = clock.now - before
        assert single == batch

    def test_readahead_charges_like_a_batch_of_its_reply(self, served):
        server, gen, db, _instr = served
        clock = db.simulated_clock
        reply = server.readahead([gen.root_uid], depth=1)
        before = clock.now
        server.fetch_many(list(reply))
        batch_cost = clock.now - before
        before = clock.now
        server.readahead([gen.root_uid], depth=1)
        readahead_cost = clock.now - before
        assert readahead_cost == batch_cost

    def test_payload_size_histograms_are_recorded_per_verb(self, served):
        server, gen, _db, instr = served
        server.traverse(gen.root_uid, "children")
        server.fetch_many([gen.root_uid])
        total = instr.histograms.get("backend.rpc.payload_bytes")
        assert total is not None and total.count >= 2
        for verb in ("traverse", "fetch_many"):
            hist = instr.histograms.get(f"backend.rpc.payload_bytes.{verb}")
            assert hist is not None and hist.count >= 1
            assert hist.maximum > 0


# ----------------------------------------------------------------------
# 3. The client fast path: one round trip per cold closure
# ----------------------------------------------------------------------


class TestPushdownFastPath:
    @pytest.fixture(scope="class")
    def level4(self):
        db, gen, instr = _build(levels=4)
        yield db, gen, instr
        db.close()

    @pytest.fixture(scope="class")
    def level4_bfs(self):
        db, gen, instr = _build(levels=4, pushdown=False)
        yield db, gen, instr
        db.close()

    def _cold_op10(self, db, gen, instr):
        db.close()
        db.open()
        root = db.lookup(gen.root_uid)  # the one allowed index probe
        rpc_hist = instr.histograms.get("backend.rpc.call")
        calls_before = rpc_hist.count if rpc_hist is not None else 0
        before = instr.snapshot()
        result = Operations(db).closure_1n(root)
        delta = instr.delta_since(before)
        rpc_hist = instr.histograms.get("backend.rpc.call")
        calls = (rpc_hist.count if rpc_hist is not None else 0) - calls_before
        return result, delta, calls

    def test_cold_op10_level4_is_exactly_one_round_trip(self, level4):
        db, gen, instr = level4
        result, delta, rpc_calls = self._cold_op10(db, gen, instr)
        assert len(result) == 781
        assert delta.get("backend.rpc.round_trips", 0) == 1
        assert rpc_calls == 1  # one backend.rpc.call, retries included
        assert delta.get("backend.rpc.pushdown.calls", 0) == 1
        assert delta.get("backend.rpc.pushdown.objects", 0) == 781
        assert delta.get("cache.readahead.admitted", 0) == 781

    def test_cold_op10_level4_frontier_bfs_needs_five(self, level4_bfs):
        db, gen, instr = level4_bfs
        result, delta, rpc_calls = self._cold_op10(db, gen, instr)
        assert len(result) == 781
        assert delta.get("backend.rpc.round_trips", 0) == 5
        assert rpc_calls == 5
        assert delta.get("backend.rpc.pushdown.calls", 0) == 0

    def test_warm_op10_is_zero_round_trips_and_skips_the_pushdown(
        self, level4
    ):
        db, gen, instr = level4
        root = db.lookup(gen.root_uid)
        Operations(db).closure_1n(root)  # ensure warm
        before = instr.snapshot()
        result = Operations(db).closure_1n(root)
        delta = instr.delta_since(before)
        assert len(result) == 781
        assert delta.get("backend.rpc.round_trips", 0) == 0
        assert delta.get("backend.rpc.pushdown.skipped_warm", 0) == 1

    def test_pushdown_and_bfs_results_are_identical(self):
        push, gen_a, _ = _build(levels=3, seed=99)
        bfs, gen_b, _ = _build(levels=3, seed=99, pushdown=False)
        try:
            assert gen_a.root_uid == gen_b.root_uid
            for db in (push, bfs):
                db.close()
                db.open()
            ops_a = Operations(push)
            ops_b = Operations(bfs)
            root = gen_a.root_uid
            assert ops_a.closure_1n(root) == ops_b.closure_1n(root)
            assert ops_a.closure_1n_att_sum(root) == (
                ops_b.closure_1n_att_sum(root)
            )
            assert ops_a.closure_1n_pred(root, 1000) == (
                ops_b.closure_1n_pred(root, 1000)
            )
            assert ops_a.closure_mn(root) == ops_b.closure_mn(root)
            assert ops_a.closure_mnatt(root, depth=7) == (
                ops_b.closure_mnatt(root, depth=7)
            )
            assert ops_a.closure_mnatt_linksum(root, depth=7) == (
                ops_b.closure_mnatt_linksum(root, depth=7)
            )
            assert ops_a.closure_1n_att_set(root) == (
                ops_b.closure_1n_att_set(root)
            )
        finally:
            push.close()
            bfs.close()

    def test_small_cache_falls_back_past_the_capped_prefix(self):
        """A traversal larger than the cache still answers correctly."""
        db, gen, instr = _build(levels=3, cache_capacity=10)
        try:
            db.close()
            db.open()
            root = db.lookup(gen.root_uid)
            before = instr.snapshot()
            result = Operations(db).closure_1n(root)
            delta = instr.delta_since(before)
            assert len(result) == 156
            # The capped push-down reply covered only a prefix; the
            # frontier BFS paid for the rest.
            assert delta.get("backend.rpc.pushdown.objects", 0) == 10
            assert delta.get("backend.rpc.round_trips", 0) > 1
        finally:
            db.close()

    def test_structural_readahead_warms_the_neighbourhood(self):
        db, gen, instr = _build(levels=3)
        try:
            db.close()
            db.open()
            uid = db.lookup(gen.uids_by_level[1][0])
            before = instr.snapshot()
            db.get_attribute(uid, "ten")  # cold first touch
            kids = db.children(uid)  # served from the readahead
            delta = instr.delta_since(before)
            assert delta.get("backend.rpc.round_trips", 0) == 1
            assert delta.get("cache.readahead.requests", 0) == 1
            assert delta.get("cache.readahead.admitted", 0) > 1
            assert all(kid in db.cache for kid in kids)
        finally:
            db.close()

    def test_readahead_miss_still_raises_node_not_found(self):
        db, _gen, _instr = _build(levels=2)
        try:
            with pytest.raises(NodeNotFoundError):
                db.get_attribute(424242, "ten")
        finally:
            db.close()

    def test_option_validation(self):
        from repro.netsim.config import NetworkConfig

        with pytest.raises(ConfigurationError):
            NetworkConfig(readahead_depth=-1)
        # The deprecated keyword path validates through the same type.
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ConfigurationError):
                ClientServerDatabase(readahead_depth=-1)

    def test_registry_ablation_disables_pushdown(self):
        with create_backend("clientserver-bfs", None) as db:
            assert db.pushdown is False
            assert db.backend_name == "clientserver"
        with create_backend("clientserver", None) as db:
            assert db.pushdown is True


# ----------------------------------------------------------------------
# 4. Workstation cache: bulk admission + pinned LRU recency
# ----------------------------------------------------------------------


class TestCacheBulkAdmission:
    def test_put_many_admits_in_iteration_order(self):
        cache = WorkstationCache(capacity=8)
        evicted = cache.put_many([(1, "a"), (2, "b"), (3, "c")])
        assert evicted == 0
        assert list(cache.keys()) == [1, 2, 3]  # oldest first

    def test_put_many_single_eviction_pass_and_count(self):
        instr = Instrumentation()
        cache = WorkstationCache(capacity=3, instrumentation=instr)
        cache.put(0, "zero")
        evicted = cache.put_many([(1, "a"), (2, "b"), (3, "c"), (4, "d")])
        assert evicted == 2
        assert cache.stats.evictions == 2
        assert instr.counters.get("netsim.cache.eviction") == 2
        # LRU survivors are the newest suffix of the admission.
        assert list(cache.keys()) == [2, 3, 4]

    def test_put_many_larger_than_capacity_keeps_its_own_tail(self):
        cache = WorkstationCache(capacity=2)
        evicted = cache.put_many([(i, i) for i in range(5)])
        assert evicted == 3
        assert list(cache.keys()) == [3, 4]

    def test_put_many_refreshes_recency_of_existing_keys(self):
        cache = WorkstationCache(capacity=8)
        cache.put(1, "one")
        cache.put(2, "two")
        cache.put_many([(1, "one'")])
        assert list(cache.keys()) == [2, 1]
        assert cache.get(1) == "one'"

    def test_get_many_promotes_each_hit_exactly_once(self):
        cache = WorkstationCache(capacity=8)
        for key in (1, 2, 3):
            cache.put(key, key)
        found, missing = cache.get_many([1, 1, 3, 1])
        assert found == {1: 1, 3: 3}
        assert missing == []
        assert cache.stats.hits == 2  # duplicates are one lookup
        # Recency order reflects single promotion in request order.
        assert list(cache.keys()) == [2, 1, 3]

    def test_fetch_many_admits_misses_in_server_reply_order(self):
        db, gen, _instr = _build(levels=2, pushdown=False)
        try:
            db.close()
            db.open()
            root = db.lookup(gen.root_uid)
            kids = db.children(root)
            db.cache.clear()
            # One batch RPC; the reply preserves first-seen request
            # order, and put_many admits it verbatim.
            db.children_many(list(reversed(kids)))
            assert list(db.cache.keys()) == list(reversed(kids))
        finally:
            db.close()


# ----------------------------------------------------------------------
# 5. Invalidation coherence for push-down admissions
# ----------------------------------------------------------------------


class TestInvalidationVsPushdown:
    def _pair(self, levels=2):
        alice, gen, _ = _build(levels=levels)
        bob = ClientServerDatabase(
            server=alice.server, instrumentation=Instrumentation()
        )
        bob.open()
        return alice, bob, gen

    def test_store_evicts_records_admitted_via_traverse(self):
        alice, bob, gen = self._pair()
        try:
            root = bob.lookup(gen.root_uid)
            Operations(bob).closure_1n(root)  # push-down warms bob
            victim = gen.uids_by_level[1][0]
            assert victim in bob.cache
            alice.set_attribute(alice.lookup(victim), "ten", 7)
            alice.commit()  # coherence broadcast
            assert victim not in bob.cache
            assert bob.get_attribute(victim, "ten") == 7
        finally:
            bob.close()
            alice.close()

    def test_store_evicts_records_admitted_via_readahead(self):
        alice, bob, gen = self._pair()
        try:
            parent = gen.uids_by_level[1][0]
            bob.get_attribute(parent, "ten")  # readahead admits kids
            child = bob.children(parent)[0]
            assert child in bob.cache
            alice.set_attribute(alice.lookup(child), "hundred", 55)
            alice.commit()
            assert child not in bob.cache
            assert bob.get_attribute(child, "hundred") == 55
        finally:
            bob.close()
            alice.close()


# ----------------------------------------------------------------------
# 6. Fault retry without double admission
# ----------------------------------------------------------------------


class _ScriptedFaults:
    """Duck-typed fault model: a fixed per-request fault script."""

    def __init__(self, script, timeout_seconds=0.05):
        self.script = list(script)
        self.timeout_seconds = timeout_seconds

    def next_fault(self):
        return self.script.pop(0) if self.script else None

    def raise_fault(self, kind, request):
        if kind == "drop":
            raise RpcDroppedError(f"scripted drop of {request}")
        raise RpcTimeoutError(f"scripted timeout of {request}")


class TestFaultedTraverse:
    @pytest.mark.parametrize("kind", ["drop", "timeout"])
    def test_faulted_traverse_retries_without_double_admitting(self, kind):
        db, gen, instr = _build(levels=3)
        try:
            db.close()
            db.open()
            root = db.lookup(gen.root_uid)
            db.server.fault_model = _ScriptedFaults([kind])
            before = instr.snapshot()
            result = Operations(db).closure_1n(root)
            delta = instr.delta_since(before)
            assert len(result) == 156
            assert delta.get("backend.rpc.retries", 0) == 1
            assert delta.get(f"backend.rpc.faults.{kind}", 0) == 1
            # The whole verb retried: one successful push-down, every
            # record admitted exactly once, nothing evicted by a
            # duplicate admission.
            assert delta.get("backend.rpc.pushdown.calls", 0) == 1
            assert delta.get("cache.readahead.admitted", 0) == 156
            assert delta.get("netsim.cache.eviction", 0) == 0
            assert len(db.cache) == 156
        finally:
            db.server.fault_model = None
            db.close()

    def test_faulted_readahead_retries_without_double_admitting(self):
        db, gen, instr = _build(levels=2)
        try:
            db.close()
            db.open()
            uid = db.lookup(gen.uids_by_level[1][0])
            db.server.fault_model = _ScriptedFaults(["drop"])
            before = instr.snapshot()
            db.get_attribute(uid, "ten")
            delta = instr.delta_since(before)
            assert delta.get("backend.rpc.retries", 0) == 1
            assert delta.get("cache.readahead.requests", 0) == 1
            admitted = delta.get("cache.readahead.admitted", 0)
            assert admitted == len(db.cache)
            assert delta.get("netsim.cache.eviction", 0) == 0
        finally:
            db.server.fault_model = None
            db.close()


# ----------------------------------------------------------------------
# 7. The benchmark comparison and the mode-tagged gate cells
# ----------------------------------------------------------------------


class TestBenchComparison:
    @pytest.mark.parametrize("level", [2, 3, 4])
    def test_pushdown_beats_bfs_on_simulated_time_per_node(self, level):
        document = run_closure_bench(
            backends=("clientserver",),
            level=level,
            repetitions=1,
            compare_pushdown=True,
        )
        cells = document["cells"]
        assert set(cells) == {"clientserver", "clientserver-bfs"}
        for op_id in ("10", "11", "12"):
            push = cells["clientserver"][op_id]
            bfs = cells["clientserver-bfs"][op_id]
            assert push["mode"] == "pushdown"
            assert bfs["mode"] == "bfs"
            assert push["nodes"] == bfs["nodes"]
            assert 0 < push["sim_ms_per_node"] < bfs["sim_ms_per_node"], (
                f"level {level} op {op_id}: pushdown "
                f"{push['sim_ms_per_node']} >= bfs {bfs['sim_ms_per_node']}"
            )

    def test_mode_tagged_cells_reach_the_bench_diff_gate(self):
        document = run_closure_bench(
            backends=("clientserver",),
            level=2,
            repetitions=1,
            compare_pushdown=True,
        )
        keys = set(extract_cells(document))
        assert ("clientserver", "10", "pushdown") in keys
        assert ("clientserver-bfs", "10", "bfs") in keys

    def test_legacy_documents_keep_the_closure_mode(self):
        legacy = {
            "cells": {
                "memory": {"10": {"median_ms": 1.0, "p50_ms": 1.0}}
            }
        }
        assert set(extract_cells(legacy)) == {("memory", "10", "closure")}
