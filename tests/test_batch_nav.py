"""The batched navigation API: conformance, round trips, partial hits.

Three contracts are pinned here:

1. **Conformance** — every backend's *native* ``children_many`` /
   ``parts_many`` / ``refs_to_many`` / ``get_attributes_many`` returns
   exactly what the per-item default implementation on
   :class:`~repro.core.interface.HyperModelDatabase` returns, for the
   full node population, the empty frontier, and frontiers with
   duplicate refs.  Third-party backends that implement only the
   per-item verbs inherit the defaults, so default == native is the
   compatibility guarantee.

2. **Round-trip collapse** — on the client/server backend, a 1-N
   closure (op 10) costs O(tree depth) round trips, not O(nodes):
   a whole BFS frontier rides one batch RPC.  A counter-delta test on
   a level-4 database (781 nodes, depth 4) demonstrates the drop, and
   the batched closure's result is byte-identical to a reference
   per-item depth-first traversal.

3. **Partial cache hits** — a batch fetch through the workstation
   cache ships *only* the missing refs to the server; resident refs
   are served locally and refresh their recency.
"""

from __future__ import annotations

import pytest

from repro.backends.clientserver import ClientServerDatabase
from repro.core.config import HyperModelConfig
from repro.core.generator import DatabaseGenerator
from repro.core.interface import HyperModelDatabase
from repro.core.operations import Operations
from repro.errors import NodeNotFoundError
from repro.netsim.cache import WorkstationCache
from repro.obs import Instrumentation


def _all_refs(db, gen):
    """Every node of the generated structure, in scan order."""
    return list(db.iter_nodes(gen.structure_id))


def _reference_closure_1n(db, ref):
    """The pre-batch op 10: per-item depth-first, reversed extend."""
    result = []
    stack = [ref]
    while stack:
        node = stack.pop()
        result.append(node)
        stack.extend(reversed(db.children(node)))
    return result


# ----------------------------------------------------------------------
# 1. Native batch == per-item default, on every backend
# ----------------------------------------------------------------------


class TestBatchConformance:
    """db.*_many(refs) must equal HyperModelDatabase.*_many(db, refs)."""

    def test_children_many_matches_default(self, populated):
        db, gen = populated
        refs = _all_refs(db, gen)
        assert db.children_many(refs) == HyperModelDatabase.children_many(
            db, refs
        )

    def test_parts_many_matches_default(self, populated):
        db, gen = populated
        refs = _all_refs(db, gen)
        assert db.parts_many(refs) == HyperModelDatabase.parts_many(db, refs)

    def test_refs_to_many_matches_default(self, populated):
        db, gen = populated
        refs = _all_refs(db, gen)
        assert db.refs_to_many(refs) == HyperModelDatabase.refs_to_many(
            db, refs
        )

    @pytest.mark.parametrize(
        "name", ["uniqueId", "ten", "hundred", "million"]
    )
    def test_get_attributes_many_matches_default(self, populated, name):
        db, gen = populated
        refs = _all_refs(db, gen)
        assert db.get_attributes_many(
            refs, name
        ) == HyperModelDatabase.get_attributes_many(db, refs, name)

    def test_empty_frontier(self, populated):
        db, _gen = populated
        assert db.children_many([]) == []
        assert db.parts_many([]) == []
        assert db.refs_to_many([]) == []
        assert db.get_attributes_many([], "hundred") == []

    def test_duplicate_refs_answered_per_occurrence(self, populated):
        db, gen = populated
        root = db.lookup(gen.root_uid)
        child = db.children(root)[0]
        refs = [root, child, root, root, child]
        for batch, single in (
            (db.children_many(refs), db.children),
            (db.parts_many(refs), db.parts),
            (db.refs_to_many(refs), db.refs_to),
        ):
            assert batch == [single(ref) for ref in refs]
        assert db.get_attributes_many(refs, "million") == [
            db.get_attribute(ref, "million") for ref in refs
        ]

    def test_unknown_ref_behaves_like_per_item(self, populated):
        """Whatever the per-item verb does for a bogus ref, batch does.

        Backends differ here by design — the relational backend's
        ``children(unknown)`` is an empty join result, the record-store
        backends raise :class:`NodeNotFoundError` — and the batch verb
        must mirror its own backend, not impose a new contract.
        """

        def outcome(fn, *args):
            try:
                return ("ok", fn(*args))
            except NodeNotFoundError:
                return ("err", NodeNotFoundError)

        db, _gen = populated
        bogus = 987_654_321  # no backend ever allocates this ref
        pairs = [
            (lambda: db.children(bogus), lambda: db.children_many([bogus])),
            (lambda: db.parts(bogus), lambda: db.parts_many([bogus])),
            (lambda: db.refs_to(bogus), lambda: db.refs_to_many([bogus])),
            (
                lambda: db.get_attribute(bogus, "hundred"),
                lambda: db.get_attributes_many([bogus], "hundred"),
            ),
        ]
        for single, batch in pairs:
            kind, value = outcome(single)
            bkind, bvalue = outcome(batch)
            assert bkind == kind
            if kind == "ok":
                assert bvalue == [value]
            else:
                assert bvalue is NodeNotFoundError

    def test_unknown_attribute_raises(self, populated):
        db, gen = populated
        root = db.lookup(gen.root_uid)
        with pytest.raises(KeyError):
            db.get_attributes_many([root], "nonesuch")

    def test_batch_counters_recorded(self, tmp_path):
        """Native batch paths emit backend.batch.calls/items."""
        from repro.backends.memory import MemoryDatabase
        from repro.backends.oodb import OodbDatabase
        from repro.backends.sqlite_backend import SqliteDatabase

        def build(name, instr):
            if name == "memory":
                return MemoryDatabase(instrumentation=instr)
            if name == "sqlite":
                return SqliteDatabase(":memory:", instrumentation=instr)
            if name == "oodb":
                return OodbDatabase(
                    str(tmp_path / "batch.hmdb"), instrumentation=instr
                )
            return ClientServerDatabase(instrumentation=instr)

        for name in ("memory", "sqlite", "oodb", "clientserver"):
            instr = Instrumentation()
            db = build(name, instr)
            db.open()
            try:
                gen = DatabaseGenerator(
                    HyperModelConfig(levels=2, seed=7)
                ).generate(db)
                db.commit()
                before = instr.snapshot()
                root = db.lookup(gen.root_uid)
                db.children_many([root])
                delta = instr.delta_since(before)
                assert delta.get("backend.batch.calls", 0) == 1, name
                assert delta.get("backend.batch.items", 0) == 1, name
            finally:
                db.close()


# ----------------------------------------------------------------------
# 2. Closure results are unchanged, closure round trips collapse
# ----------------------------------------------------------------------


class TestClosureSemantics:
    """Frontier-BFS closures return exactly what per-item DFS returned."""

    def test_closure_1n_matches_reference_dfs(self, populated):
        db, gen = populated
        ops = Operations(db)
        root = db.lookup(gen.root_uid)
        assert ops.closure_1n(root) == _reference_closure_1n(db, root)

    def test_closure_1n_pred_unpruned_equals_closure(self, populated):
        db, gen = populated
        ops = Operations(db)
        root = db.lookup(gen.root_uid)
        # A window beyond every generated million value: nothing pruned.
        assert ops.closure_1n_pred(root, 2_000_000) == ops.closure_1n(root)


class TestRoundTripCollapse:
    """Op 10 on client/server: O(depth) round trips for O(nodes) work."""

    @pytest.fixture()
    def level4(self):
        instr = Instrumentation()
        db = ClientServerDatabase(instrumentation=instr)
        db.open()
        gen = DatabaseGenerator(
            HyperModelConfig(levels=4, seed=42)
        ).generate(db)
        db.commit()
        yield db, gen, instr
        db.close()

    def test_op10_round_trips_scale_with_depth_not_nodes(self, level4):
        db, gen, instr = level4
        root = db.lookup(gen.root_uid)
        # Cold workstation: drop the cache so every record must travel.
        db.cache.clear()
        before = instr.snapshot()
        result = Operations(db).closure_1n(root)
        delta = instr.delta_since(before)
        nodes = len(result)
        assert nodes == 781  # the whole level-4 structure
        round_trips = delta.get("backend.rpc.round_trips", 0)
        # Depth 4 => one batch RPC per level below the (cached-by-lookup)
        # root, plus slack for the root fetch itself.  The per-item
        # formulation needed ~781 round trips.
        assert 0 < round_trips <= 6, delta
        assert delta.get("backend.batch.calls", 0) >= 4
        assert delta.get("backend.batch.items", 0) >= nodes

    def test_op10_result_identical_to_per_item_reference(self, level4):
        db, gen, _instr = level4
        root = db.lookup(gen.root_uid)
        assert Operations(db).closure_1n(root) == _reference_closure_1n(
            db, root
        )


# ----------------------------------------------------------------------
# 3. Partial cache hits ship only the missing refs
# ----------------------------------------------------------------------


class TestPartialCacheHits:
    def test_get_many_splits_found_and_missing(self):
        cache = WorkstationCache(capacity=8)
        cache.put(1, "one")
        cache.put(2, "two")
        found, missing = cache.get_many([1, 3, 2, 4, 3, 1])
        assert found == {1: "one", 2: "two"}
        assert missing == [3, 4]  # deduped, first-seen order
        assert cache.stats.hits == 2
        assert cache.stats.misses == 2

    def test_get_many_refreshes_recency(self):
        cache = WorkstationCache(capacity=2)
        cache.put(1, "one")
        cache.put(2, "two")
        cache.get_many([1])  # 1 becomes most recent
        cache.put(3, "three")  # evicts 2, not 1
        assert cache.get(1) == "one"
        assert cache.get(2) is None

    def test_batch_fetch_ships_only_missing_refs(self):
        instr = Instrumentation()
        db = ClientServerDatabase(instrumentation=instr)
        db.open()
        try:
            gen = DatabaseGenerator(
                HyperModelConfig(levels=2, seed=42)
            ).generate(db)
            db.commit()
            root = db.lookup(gen.root_uid)
            kids = db.children(root)
            # Warm exactly half the frontier through per-item reads.
            warm, cold = kids[: len(kids) // 2], kids[len(kids) // 2 :]
            db.cache.clear()
            for uid in warm:
                db.get_attribute(uid, "ten")
            before_batched = db.server.stats.batched_objects
            before = instr.snapshot()
            db.get_attributes_many(kids, "ten")
            delta = instr.delta_since(before)
            shipped = db.server.stats.batched_objects - before_batched
            assert shipped == len(cold)  # only the misses travel
            assert delta.get("backend.rpc.round_trips", 0) == 1
            assert delta.get("netsim.cache.hit", 0) == len(warm)
            assert delta.get("netsim.cache.miss", 0) == len(cold)
        finally:
            db.close()

    def test_fully_warm_batch_makes_no_round_trip(self):
        instr = Instrumentation()
        db = ClientServerDatabase(instrumentation=instr)
        db.open()
        try:
            gen = DatabaseGenerator(
                HyperModelConfig(levels=2, seed=42)
            ).generate(db)
            db.commit()
            root = db.lookup(gen.root_uid)
            kids = db.children(root)
            db.children_many(kids)  # warm the whole frontier
            before = instr.snapshot()
            db.children_many(kids)
            delta = instr.delta_since(before)
            assert delta.get("backend.rpc.round_trips", 0) == 0
        finally:
            db.close()
