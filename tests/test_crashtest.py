"""The crash-recovery matrix harness and its CLI surface."""

import json

import pytest

from repro.harness.crashtest import (
    CrashPointResult,
    CrashWorkload,
    _verify_cell,
    format_summary,
    run_crash_matrix,
    write_crash_bench,
)

#: Small but real: ~40-60 crash points, runs in well under a second.
SMALL = CrashWorkload(transactions=3, ops_per_txn=3, payload_bytes=32, seed=7)


@pytest.fixture(scope="module")
def document(tmp_path_factory):
    out = tmp_path_factory.mktemp("crash") / "BENCH_crash.json"
    return write_crash_bench(str(out), workload=SMALL), str(out)


class TestMatrix:
    def test_every_crash_point_recovers_cleanly(self, document):
        doc, _path = document
        assert doc["crash_points_tested"] == doc["io_ops_total"]
        assert doc["violation_count"] == 0
        assert doc["violations"] == []

    def test_matrix_covers_every_operation(self, document):
        doc, _path = document
        ops = [cell["op"] for cell in doc["cells"]]
        assert ops == list(range(1, doc["io_ops_total"] + 1))
        # Nearly every point dies mid-flight; the only survivors are
        # crash points landing in the post-checkpoint disposal path
        # (e.g. the redundant header write in PageFile.close), where the
        # store ignores close-time errors by design.  Those runs must
        # have completed all their commits.
        survivors = [c for c in doc["cells"] if not c["crashed"]]
        assert len(survivors) <= 2
        for cell in survivors:
            assert cell["recovered_snapshot"] == SMALL.transactions

    def test_alternates_clean_and_torn_crashes(self, document):
        doc, _path = document
        torn = {cell["op"]: cell["torn"] for cell in doc["cells"]}
        assert torn[1] is False and torn[2] is True

    def test_late_crashes_recover_late_snapshots(self, document):
        doc, _path = document
        last = doc["cells"][-1]
        assert last["recovered_snapshot"] == SMALL.transactions

    def test_durability_lower_bound_holds_per_cell(self, document):
        doc, _path = document
        for cell in doc["cells"]:
            assert cell["recovered_snapshot"] >= cell["commits_returned"]
            assert cell["recovered_snapshot"] <= cell["commits_returned"] + 1

    def test_json_document_roundtrips(self, document):
        doc, path = document
        with open(path, "r", encoding="utf-8") as handle:
            assert json.load(handle) == doc

    def test_stride_thins_the_matrix(self):
        doc = run_crash_matrix(workload=SMALL, stride=7)
        assert doc["crash_points_tested"] < doc["io_ops_total"]
        assert doc["violation_count"] == 0

    def test_invalid_stride_rejected(self):
        with pytest.raises(ValueError):
            run_crash_matrix(workload=SMALL, stride=0)

    def test_summary_mentions_counts(self, document):
        doc, _path = document
        text = format_summary(doc)
        assert "crash points tested" in text
        assert "invariant violations: 0" in text


class TestVerifyCell:
    """The invariant checker, exercised with fabricated states."""

    REFERENCE = [
        {},
        {1: {"value": 1}},
        {1: {"value": 1}, 2: {"value": 2}},
    ]

    def test_atomicity_violation_detected(self):
        torn_mix = {1: {"value": 1}, 2: {"value": 999}}
        cell = _verify_cell(torn_mix, self.REFERENCE, commits_returned=1)
        assert cell.violation is not None
        assert "atomicity" in cell.violation
        assert cell.recovered_snapshot is None

    def test_durability_violation_detected(self):
        # Two commits returned, but recovery only found snapshot 1.
        cell = _verify_cell(
            {1: {"value": 1}}, self.REFERENCE, commits_returned=2
        )
        assert cell.violation is not None
        assert "durability" in cell.violation

    def test_in_flight_commit_may_round_up(self):
        cell = _verify_cell(
            {1: {"value": 1}, 2: {"value": 2}},
            self.REFERENCE,
            commits_returned=1,
        )
        assert cell.violation is None
        assert cell.recovered_snapshot == 2

    def test_exact_match_passes(self):
        cell = _verify_cell(
            {1: {"value": 1}}, self.REFERENCE, commits_returned=1
        )
        assert cell.violation is None
        assert cell.recovered_snapshot == 1

    def test_result_serializes(self):
        cell = CrashPointResult(
            op=3,
            torn=True,
            crashed=True,
            commits_returned=1,
            recovered_snapshot=1,
            violation=None,
        )
        assert cell.to_dict()["op"] == 3


class TestCli:
    def test_crashtest_subcommand_writes_document(self, tmp_path, capsys):
        from repro.cli import main

        out = str(tmp_path / "BENCH_crash.json")
        code = main(
            [
                "crashtest",
                "--transactions",
                "2",
                "--ops-per-txn",
                "2",
                "--payload-bytes",
                "32",
                "--out",
                out,
            ]
        )
        assert code == 0
        with open(out, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
        assert doc["benchmark"] == "crash-recovery-matrix"
        assert doc["violation_count"] == 0
        captured = capsys.readouterr().out
        assert "crash-recovery matrix" in captured
