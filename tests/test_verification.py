"""The structural verifier: accepts faithful databases, catches damage."""

import pytest

from repro.backends.memory import MemoryDatabase
from repro.core.generator import DatabaseGenerator
from repro.core.verification import verify_database


@pytest.fixture
def built(level3_config):
    db = MemoryDatabase()
    db.open()
    gen = DatabaseGenerator(level3_config).generate(db)
    return db, gen


class TestAcceptance:
    def test_fresh_database_verifies(self, built):
        db, gen = built
        report = verify_database(db, gen)
        assert report.ok
        assert report.checks_run > 1000
        report.raise_if_failed()  # must not raise

    def test_content_checks_can_be_skipped(self, built):
        db, gen = built
        report = verify_database(db, gen, check_content=False)
        assert report.ok


class TestDetection:
    def test_detects_attribute_out_of_domain(self, built):
        db, gen = built
        db.set_attribute(db.lookup(50), "hundred", 9999)
        report = verify_database(db, gen)
        assert not report.ok
        assert any("hundred=9999" in p for p in report.problems)

    def test_detects_broken_text_contract(self, built):
        db, gen = built
        db.set_text(db.lookup(gen.text_uids[0]), "NOT VALID TEXT")
        report = verify_database(db, gen)
        assert any("text contract" in p for p in report.problems)

    def test_detects_dirty_bitmap(self, built):
        db, gen = built
        bitmap = db.get_bitmap(db.lookup(gen.form_uids[0]))
        bitmap.set(0, 0, 1)
        report = verify_database(db, gen)
        assert any("not white" in p for p in report.problems)

    def test_detects_extra_reference(self, built):
        db, gen = built
        from repro.core.model import LinkAttributes

        db.add_reference(db.lookup(10), db.lookup(20), LinkAttributes(1, 1))
        report = verify_database(db, gen)
        assert any("outgoing references" in p for p in report.problems)

    def test_detects_extra_child(self, built):
        db, gen = built
        from repro.core.model import NodeData

        stray = db.create_node(
            NodeData(unique_id=9999, ten=1, hundred=1, million=1)
        )
        db.add_child(db.lookup(gen.uids_by_level[2][0]), stray)
        report = verify_database(db, gen)
        assert not report.ok

    def test_detects_broken_ref_inverse(self, built):
        db, gen = built
        # Reach into the memory backend to damage an inverse list.
        victim = db.lookup(30)
        stray = db.lookup(31)
        victim.refs_from.append(stray)  # no matching refTo on `stray`
        report = verify_database(db, gen)
        assert any("no matching refTo" in p for p in report.problems)

    def test_detects_broken_part_inverse(self, built):
        db, gen = built
        victim = db.lookup(40)
        impostor = db.lookup(41)
        victim.part_of.append(impostor)  # impostor has no such part
        report = verify_database(db, gen)
        assert any("does not list it" in p for p in report.problems)

    def test_raise_if_failed_lists_problems(self, built):
        db, gen = built
        db.set_attribute(db.lookup(50), "ten", 0)
        with pytest.raises(AssertionError, match="ten=0"):
            verify_database(db, gen).raise_if_failed()
