"""Section 5.2's counting and sizing formulas."""

import pytest

from repro.core.config import (
    HyperModelConfig,
    LEVEL_NODE_COUNTS,
)
from repro.errors import ConfigurationError


class TestNodeCounts:
    @pytest.mark.parametrize("level,expected", sorted(LEVEL_NODE_COUNTS.items()))
    def test_total_nodes_match_paper(self, level, expected):
        assert HyperModelConfig(levels=level).total_nodes == expected

    def test_nodes_per_level_powers_of_fanout(self):
        cfg = HyperModelConfig(levels=6)
        assert [cfg.nodes_at_level(level) for level in range(7)] == [
            1, 5, 25, 125, 625, 3125, 15625,
        ]

    def test_level_outside_hierarchy_rejected(self):
        cfg = HyperModelConfig(levels=4)
        with pytest.raises(ConfigurationError):
            cfg.nodes_at_level(5)
        with pytest.raises(ConfigurationError):
            cfg.nodes_at_level(-1)

    def test_leaf_and_internal_partition(self):
        cfg = HyperModelConfig(levels=5)
        assert cfg.leaf_nodes + cfg.internal_nodes == cfg.total_nodes
        assert cfg.leaf_nodes == 3125

    def test_level6_leaf_mix_matches_paper(self):
        cfg = HyperModelConfig(levels=6)
        assert cfg.form_node_count == 125
        assert cfg.text_node_count == 15500

    def test_non_default_fanout(self):
        cfg = HyperModelConfig(levels=3, fanout=3)
        assert cfg.total_nodes == 1 + 3 + 9 + 27

    def test_fanout_one_degenerate_chain(self):
        cfg = HyperModelConfig(levels=4, fanout=1)
        assert cfg.total_nodes == 5
        assert cfg.leaf_nodes == 1


class TestRelationshipCounts:
    def test_one_n_count_is_nodes_minus_one(self):
        for level in (4, 5, 6):
            cfg = HyperModelConfig(levels=level)
            assert cfg.one_n_relationship_count == cfg.total_nodes - 1

    def test_m_n_count_five_per_internal(self):
        cfg = HyperModelConfig(levels=4)
        assert cfg.m_n_relationship_count == cfg.internal_nodes * 5

    def test_m_n_att_count_one_per_node(self):
        cfg = HyperModelConfig(levels=4)
        assert cfg.m_n_att_relationship_count == cfg.total_nodes


class TestClosureSizes:
    def test_closure_sizes_match_paper(self):
        """The paper quotes n-level4=6, n-level5=31, n-level6=156."""
        for level, expected in ((4, 6), (5, 31), (6, 156)):
            assert HyperModelConfig(levels=level).closure_1n_size(3) == expected

    def test_closure_from_leaf_level_is_one(self):
        cfg = HyperModelConfig(levels=4)
        assert cfg.closure_1n_size(4) == 1

    def test_closure_below_leaves_rejected(self):
        with pytest.raises(ConfigurationError):
            HyperModelConfig(levels=4).closure_1n_size(5)


class TestSizeModel:
    def test_level6_is_about_8_megabytes(self):
        size = HyperModelConfig(levels=6).estimated_size_bytes()
        assert 7_000_000 < size < 10_000_000

    def test_one_more_level_grows_about_fivefold(self):
        small = HyperModelConfig(levels=6).estimated_size_bytes()
        large = HyperModelConfig(levels=7).estimated_size_bytes()
        assert 4.5 < large / small < 5.5


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"levels": 0},
            {"fanout": 0},
            {"parts_per_node": -1},
            {"text_nodes_per_form_node": 0},
            {"min_words": 0},
            {"min_words": 50, "max_words": 10},
            {"min_word_length": 0},
            {"min_bitmap_dim": 500, "max_bitmap_dim": 100},
            {"max_offset": 0},
            {"closure_depth": 0},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            HyperModelConfig(**kwargs)

    def test_with_levels_and_seed_return_copies(self):
        cfg = HyperModelConfig(levels=4)
        assert cfg.with_levels(6).levels == 6
        assert cfg.with_seed(9).seed == 9
        assert cfg.levels == 4  # original untouched

    def test_attribute_domains(self):
        cfg = HyperModelConfig()
        assert cfg.ten_range == (1, 10)
        assert cfg.hundred_range == (1, 100)
        assert cfg.million_range == (1, 1_000_000)
