"""Backend conformance: every backend honours the interface contract.

These tests run parametrized over all four backends (see the
``any_backend`` / ``populated`` fixtures) so a new backend gets the
full contract for free.
"""

import os
import random

import pytest

from repro.backends import available_backends, create_backend
from repro.core.bitmap import Bitmap
from repro.core.model import LinkAttributes, NodeData, NodeKind
from repro.core.verification import verify_database
from repro.errors import (
    InvalidOperationError,
    NodeNotFoundError,
)
from repro.obs import (
    NO_OP,
    Instrumentation,
    get_instrumentation,
    set_instrumentation,
)


def _node(uid, **kw):
    base = dict(unique_id=uid, ten=1, hundred=2, million=3)
    base.update(kw)
    return NodeData(**base)


class TestCreation:
    def test_create_and_lookup(self, any_backend):
        db = any_backend
        ref = db.create_node(_node(1))
        db.commit()
        assert db.get_attribute(db.lookup(1), "uniqueId") == 1
        assert db.kind_of(ref) is NodeKind.NODE

    def test_duplicate_unique_id_rejected(self, any_backend):
        db = any_backend
        db.create_node(_node(1))
        with pytest.raises(InvalidOperationError):
            db.create_node(_node(1))

    def test_lookup_missing_raises(self, any_backend):
        with pytest.raises(NodeNotFoundError):
            any_backend.lookup(12345)

    def test_child_cannot_have_two_parents(self, any_backend):
        db = any_backend
        a = db.create_node(_node(1))
        b = db.create_node(_node(2))
        c = db.create_node(_node(3))
        db.add_child(a, c)
        with pytest.raises(InvalidOperationError):
            db.add_child(b, c)


class TestAttributes:
    def test_set_and_get_each_mutable_attribute(self, any_backend):
        db = any_backend
        ref = db.create_node(_node(1))
        for name, value in (("ten", 9), ("hundred", 88), ("million", 777)):
            db.set_attribute(ref, name, value)
            assert db.get_attribute(ref, name) == value

    def test_unique_id_immutable(self, any_backend):
        db = any_backend
        ref = db.create_node(_node(1))
        with pytest.raises(InvalidOperationError):
            db.set_attribute(ref, "uniqueId", 2)

    def test_unknown_attribute_rejected(self, any_backend):
        db = any_backend
        ref = db.create_node(_node(1))
        with pytest.raises(KeyError):
            db.get_attribute(ref, "thousand")
        with pytest.raises(KeyError):
            db.set_attribute(ref, "thousand", 1)


class TestRelationships:
    def test_children_keep_insertion_order(self, any_backend):
        db = any_backend
        parent = db.create_node(_node(1))
        kids = [db.create_node(_node(uid)) for uid in (5, 3, 9, 2)]
        for kid in kids:
            db.add_child(parent, kid)
        ordered = [db.get_attribute(r, "uniqueId") for r in db.children(parent)]
        assert ordered == [5, 3, 9, 2]

    def test_parent_is_inverse_of_children(self, any_backend):
        db = any_backend
        parent = db.create_node(_node(1))
        child = db.create_node(_node(2))
        db.add_child(parent, child)
        assert db.get_attribute(db.parent(child), "uniqueId") == 1
        assert db.parent(parent) is None

    def test_parts_and_part_of_are_inverses(self, any_backend):
        db = any_backend
        whole_a = db.create_node(_node(1))
        whole_b = db.create_node(_node(2))
        shared = db.create_node(_node(3))
        db.add_part(whole_a, shared)
        db.add_part(whole_b, shared)
        owners = {
            db.get_attribute(r, "uniqueId") for r in db.part_of(shared)
        }
        assert owners == {1, 2}
        assert len(db.parts(whole_a)) == 1

    def test_references_carry_attributes_and_inverse(self, any_backend):
        db = any_backend
        src = db.create_node(_node(1))
        dst = db.create_node(_node(2))
        db.add_reference(src, dst, LinkAttributes(3, 8))
        (target, attrs), = db.refs_to(src)
        assert db.get_attribute(target, "uniqueId") == 2
        assert (attrs.offset_from, attrs.offset_to) == (3, 8)
        referrers = db.refs_from(dst)
        assert [db.get_attribute(r, "uniqueId") for r in referrers] == [1]
        assert db.refs_from(src) == []


class TestContent:
    TEXT = "version1 middle version1 end version1"

    def test_text_node_roundtrip(self, any_backend):
        db = any_backend
        ref = db.create_node(_node(1, kind=NodeKind.TEXT, text=self.TEXT))
        assert db.get_text(ref) == self.TEXT
        db.set_text(ref, self.TEXT + " more")
        assert db.get_text(ref).endswith("more")

    def test_bitmap_roundtrip_including_large(self, any_backend):
        db = any_backend
        big = Bitmap(400, 400)  # ~20 kB: exercises overflow paths
        big.invert_rect(50, 50, 25, 25)
        ref = db.create_node(_node(1, kind=NodeKind.FORM, bitmap=big))
        db.commit()
        loaded = db.get_bitmap(ref)
        assert loaded == big
        loaded.invert_rect(50, 50, 25, 25)
        db.set_bitmap(ref, loaded)
        assert db.get_bitmap(ref).is_white()

    def test_content_access_on_wrong_kind_rejected(self, any_backend):
        db = any_backend
        plain = db.create_node(_node(1))
        with pytest.raises(InvalidOperationError):
            db.get_text(plain)
        with pytest.raises(InvalidOperationError):
            db.get_bitmap(plain)
        with pytest.raises(InvalidOperationError):
            db.set_text(plain, "x")
        with pytest.raises(InvalidOperationError):
            db.set_bitmap(plain, Bitmap(8, 8))


class TestRangeAndScan:
    def test_range_lookups_match_brute_force(self, populated):
        db, gen = populated
        rng = random.Random(13)
        for _ in range(5):
            x = rng.randint(1, 90)
            result = {
                db.get_attribute(r, "uniqueId")
                for r in db.range_hundred(x, x + 9)
            }
            brute = {
                db.get_attribute(n, "uniqueId")
                for n in db.iter_nodes()
                if x <= db.get_attribute(n, "hundred") <= x + 9
            }
            assert result == brute

    def test_scan_counts_every_node(self, populated):
        db, gen = populated
        assert db.scan_ten() == gen.total_nodes
        assert db.node_count() == gen.total_nodes

    def test_structure_of_reports_tag(self, populated):
        db, gen = populated
        assert db.structure_of(db.lookup(gen.root_uid)) == 1


class TestNodeLists:
    def test_store_and_load_preserves_order(self, populated):
        db, gen = populated
        refs = [db.lookup(uid) for uid in (5, 2, 9, 1)]
        db.store_node_list("toc", refs)
        loaded = db.load_node_list("toc")
        assert [db.get_attribute(r, "uniqueId") for r in loaded] == [5, 2, 9, 1]

    def test_overwrite_replaces(self, populated):
        db, gen = populated
        db.store_node_list("toc", [db.lookup(1)])
        db.store_node_list("toc", [db.lookup(2), db.lookup(3)])
        loaded = db.load_node_list("toc")
        assert [db.get_attribute(r, "uniqueId") for r in loaded] == [2, 3]

    def test_missing_list_raises(self, populated):
        db, _gen = populated
        with pytest.raises(NodeNotFoundError):
            db.load_node_list("ghost")

    def test_list_survives_commit_and_reopen(self, populated):
        db, _gen = populated
        db.store_node_list("toc", [db.lookup(4)])
        db.commit()
        db.close()
        db.open()
        loaded = db.load_node_list("toc")
        assert [db.get_attribute(r, "uniqueId") for r in loaded] == [4]


class TestFullStructure:
    def test_generated_structure_verifies_on_every_backend(self, populated):
        db, gen = populated
        verify_database(db, gen, content_sample=5).raise_if_failed()

    def test_structure_survives_close_and_reopen(self, populated):
        db, gen = populated
        db.close()
        db.open()
        verify_database(db, gen, content_sample=5).raise_if_failed()


class TestContextManager:
    def test_with_block_opens_and_closes(self, any_backend_name, tmp_path):
        db = _registry_backend(any_backend_name, tmp_path)
        assert not db.is_open
        with db as entered:
            assert entered is db
            assert db.is_open
            db.create_node(_node(1))
            db.commit()
        assert not db.is_open

    def test_exception_aborts_and_closes(self, any_backend_name, tmp_path):
        db = _registry_backend(any_backend_name, tmp_path)
        with pytest.raises(RuntimeError):
            with db:
                db.create_node(_node(1))
                raise RuntimeError("boom")
        assert not db.is_open
        if any_backend_name == "memory":
            return  # the in-process object graph has no rollback to observe
        # The open-create-raise block must not have committed node 1.
        with db:
            with pytest.raises(NodeNotFoundError):
                db.lookup(1)


def _registry_backend(name, tmp_path, **options):
    path = None
    if name in ("oodb", "oodb-unclustered"):
        path = os.path.join(str(tmp_path), f"{name}.hmdb")
    elif name == "sqlite-file":
        path = os.path.join(str(tmp_path), "conf.sqlite")
    return create_backend(name, path, **options)


@pytest.fixture(params=sorted(set(["memory", "sqlite", "sqlite-file",
                                   "oodb", "oodb-unclustered",
                                   "clientserver", "clientserver-bfs"])))
def any_backend_name(request):
    assert request.param in available_backends()
    return request.param


def _tiny_workload(db):
    """A few nodes, relationships, content and a commit — every counter
    family a backend emits fires at least once somewhere in here."""
    a = db.create_node(_node(1))
    b = db.create_node(_node(2, kind=NodeKind.TEXT, text="version1 x"))
    db.add_child(a, b)
    db.commit()
    assert db.get_attribute(db.lookup(1), "uniqueId") == 1
    assert "version1" in db.get_text(db.lookup(2))
    db.range_hundred(1, 10)
    db.scan_ten()


class TestInstrumentedConformance:
    """Every backend works with a live handle AND the no-op singleton."""

    def test_explicit_instrumentation_records(self, any_backend_name, tmp_path):
        instr = Instrumentation()
        with _registry_backend(
            any_backend_name, tmp_path, instrumentation=instr
        ) as db:
            assert db.instrumentation is instr
            _tiny_workload(db)
        assert instr.counters.total("") > 0, (
            f"{any_backend_name}: expected some counter activity"
        )

    def test_noop_instrumentation_stays_silent(self, any_backend_name, tmp_path):
        with _registry_backend(
            any_backend_name, tmp_path, instrumentation=NO_OP
        ) as db:
            assert db.instrumentation is NO_OP
            _tiny_workload(db)
        assert len(NO_OP.counters) == 0
        assert len(NO_OP.spans) == 0

    def test_default_resolves_to_the_global_handle(
        self, any_backend_name, tmp_path
    ):
        live = Instrumentation()
        previous = set_instrumentation(live)
        try:
            with _registry_backend(any_backend_name, tmp_path) as db:
                assert db.instrumentation is live
                _tiny_workload(db)
        finally:
            set_instrumentation(previous)
        assert live.counters.total("") > 0

    def test_default_without_global_is_the_noop(
        self, any_backend_name, tmp_path
    ):
        assert get_instrumentation() is NO_OP  # the suite never leaks one
        with _registry_backend(any_backend_name, tmp_path) as db:
            assert db.instrumentation is NO_OP
            _tiny_workload(db)

    def test_expected_counter_families(self, any_backend_name, tmp_path):
        """Each backend emits the counter family its docs promise."""
        instr = Instrumentation()
        with _registry_backend(
            any_backend_name, tmp_path, instrumentation=instr
        ) as db:
            _tiny_workload(db)
        counters = instr.counters
        if any_backend_name in ("memory", "sqlite", "sqlite-file"):
            assert counters.total("backend.op") > 0
        if any_backend_name in ("oodb", "oodb-unclustered"):
            assert counters.total("engine.buffer") > 0
            assert counters.total("engine.wal") > 0
            assert counters.get("engine.store.commits") >= 1
        if any_backend_name in ("clientserver", "clientserver-bfs"):
            assert counters.get("backend.rpc.round_trips") > 0
            assert counters.total("netsim.cache") > 0
