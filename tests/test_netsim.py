"""The network simulation: virtual clock, cost model, cache, server."""

import pytest

from repro.errors import NodeNotFoundError
from repro.netsim import LatencyModel, ObjectServer, SimulatedClock, WorkstationCache
from repro.netsim.latency import ZERO_COST


class TestClock:
    def test_advances_monotonically(self):
        clock = SimulatedClock()
        clock.advance(0.5)
        clock.advance(0.25)
        assert clock.now == pytest.approx(0.75)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            SimulatedClock().advance(-1)

    def test_reset(self):
        clock = SimulatedClock()
        clock.advance(3)
        clock.reset()
        assert clock.now == 0.0


class TestLatencyModel:
    def test_cost_combines_round_trip_and_transfer(self):
        model = LatencyModel(round_trip_seconds=0.001, bandwidth_bytes_per_second=1000)
        assert model.request_cost(0) == pytest.approx(0.001)
        assert model.request_cost(500) == pytest.approx(0.501)

    def test_zero_cost_model(self):
        assert ZERO_COST.request_cost(1_000_000) == 0.0

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel().request_cost(-1)


class TestWorkstationCache:
    def test_hit_miss_accounting(self):
        cache = WorkstationCache(capacity=2)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_ratio == 0.5

    def test_lru_eviction_order(self):
        cache = WorkstationCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b is now LRU
        cache.put("c", 3)
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert cache.stats.evictions == 1

    def test_invalidate_and_clear(self):
        cache = WorkstationCache(capacity=4)
        cache.put("a", 1)
        cache.invalidate("a")
        assert "a" not in cache
        assert cache.stats.invalidations == 1
        cache.put("b", 2)
        cache.clear()
        assert len(cache) == 0

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            WorkstationCache(capacity=0)


class TestObjectServer:
    def _record(self, uid, **extra):
        record = {
            "uid": uid, "kind": "node", "ten": 1, "hundred": 2,
            "million": 3, "struct": 1, "children": [], "parent": 0,
            "parts": [], "partOf": [], "refTo": [], "refFrom": [],
        }
        record.update(extra)
        return record

    def test_store_and_fetch_charge_the_clock(self):
        server = ObjectServer()
        server.store(1, self._record(1))
        after_store = server.clock.now
        assert after_store > 0
        fetched = server.fetch(1)
        assert fetched["uid"] == 1
        assert server.clock.now > after_store
        assert server.stats.fetches == 1
        assert server.stats.bytes_sent > 0

    def test_fetch_returns_a_copy(self):
        server = ObjectServer()
        server.store(1, self._record(1))
        server.fetch(1)["ten"] = 99
        assert server.fetch(1)["ten"] == 1

    def test_missing_fetch_still_charged(self):
        server = ObjectServer()
        before = server.clock.now
        with pytest.raises(NodeNotFoundError):
            server.fetch(404)
        assert server.clock.now > before

    def test_exists_probe(self):
        server = ObjectServer()
        server.store(5, self._record(5))
        assert server.exists(5)
        assert not server.exists(6)
        assert server.stats.probes == 2

    def test_range_query_server_side(self):
        server = ObjectServer()
        for uid in range(1, 11):
            server.store(uid, self._record(uid, hundred=uid * 10))
        result = server.range_query("hundred", 25, 65)
        assert sorted(result) == [3, 4, 5, 6]

    def test_scan_structure_filters_and_sorts(self):
        server = ObjectServer()
        server.store(3, self._record(3, struct=1))
        server.store(1, self._record(1, struct=1))
        server.store(2, self._record(2, struct=2))
        assert server.scan_structure(1) == [1, 3]
        assert server.count(1) == 2

    def test_bigger_records_cost_more(self):
        server = ObjectServer()
        small = self._record(1)
        big = self._record(2, bits=b"\x00" * 10_000, kind="form")
        server.store(1, small)
        small_cost = server.clock.now
        server.store(2, big)
        big_cost = server.clock.now - small_cost
        assert big_cost > small_cost

    def test_named_lists(self):
        server = ObjectServer()
        server.store_list("toc", [3, 1, 2])
        assert server.load_list("toc") == [3, 1, 2]
        with pytest.raises(NodeNotFoundError):
            server.load_list("ghost")

    def test_shared_clock_injection(self):
        clock = SimulatedClock()
        server = ObjectServer(clock, ZERO_COST)
        server.store(1, self._record(1))
        assert clock.now == 0.0  # zero-cost model charges nothing


class TestFaultModel:
    def test_same_seed_same_fault_sequence(self):
        from repro.netsim.faults import FaultModel

        decisions = []
        for _ in range(2):
            model = FaultModel(seed=11, drop_rate=0.3, timeout_rate=0.2)
            decisions.append([model.next_fault() for _ in range(50)])
        assert decisions[0] == decisions[1]
        assert "drop" in decisions[0] and "timeout" in decisions[0]

    def test_zero_rates_never_fault(self):
        from repro.netsim.faults import FaultModel

        model = FaultModel(seed=1)
        assert all(model.next_fault() is None for _ in range(100))

    def test_reset_replays(self):
        from repro.netsim.faults import FaultModel

        model = FaultModel(seed=5, drop_rate=0.5)
        first = [model.next_fault() for _ in range(20)]
        model.reset()
        assert [model.next_fault() for _ in range(20)] == first
        assert model.drops == first.count("drop")

    def test_rate_validation(self):
        from repro.netsim.faults import FaultModel

        with pytest.raises(ValueError):
            FaultModel(drop_rate=1.5)
        with pytest.raises(ValueError):
            FaultModel(timeout_seconds=-1)

    def test_raise_fault_kinds(self):
        from repro.errors import RpcDroppedError, RpcTimeoutError
        from repro.netsim.faults import FaultModel

        model = FaultModel()
        with pytest.raises(RpcDroppedError):
            model.raise_fault("drop", "fetch")
        with pytest.raises(RpcTimeoutError):
            model.raise_fault("timeout", "fetch")
        with pytest.raises(ValueError):
            model.raise_fault("gremlin", "fetch")


class TestServerFaults:
    def _server(self, **kwargs):
        from repro.netsim.faults import FaultModel

        return ObjectServer(fault_model=FaultModel(**kwargs))

    def test_faulted_request_charges_time_but_not_state(self):
        from repro.errors import RpcDroppedError

        server = self._server(seed=0, drop_rate=1.0)
        before = server.clock.now
        with pytest.raises(RpcDroppedError):
            server.store(1, {"uid": 1, "kind": "node"})
        assert server.clock.now > before  # the wasted round trip
        assert 1 not in server  # the request never touched state

    def test_timeout_charges_the_timeout_window(self):
        from repro.errors import RpcTimeoutError

        server = self._server(seed=0, timeout_rate=1.0, timeout_seconds=0.25)
        with pytest.raises(RpcTimeoutError):
            server.exists(1)
        assert server.clock.now >= 0.25

    def test_no_fault_model_serves_normally(self):
        server = ObjectServer()
        server.store(1, {"uid": 1, "kind": "node"})
        assert server.fetch(1)["uid"] == 1


class TestClientRetries:
    def _client(self, **kwargs):
        from repro.backends.clientserver import ClientServerDatabase
        from repro.netsim.config import NetworkConfig
        from repro.netsim.faults import FaultModel
        from repro.obs import Instrumentation

        instr = Instrumentation()
        fault_kwargs = kwargs.pop("faults", {})
        network = NetworkConfig(
            fault_model=FaultModel(**fault_kwargs) if fault_kwargs else None,
            **kwargs,
        )
        db = ClientServerDatabase(network=network, instrumentation=instr)
        db.open()
        return db, instr

    def _store_one(self, db, uid=1):
        from repro.core.model import NodeData, NodeKind

        db.create_node(
            NodeData(
                unique_id=uid,
                ten=1,
                hundred=1,
                million=1,
                kind=NodeKind.NODE,
            )
        )
        db.commit()

    def test_lossy_wire_is_survivable(self):
        db, instr = self._client(faults=dict(seed=3, drop_rate=0.2))
        for uid in range(1, 30):
            self._store_one(db, uid)
        db.cache.clear()
        for uid in range(1, 30):
            assert db.lookup(uid) == uid
        counters = instr.snapshot()
        assert counters.get("backend.rpc.retries") > 0
        assert counters.get("backend.rpc.faults") > 0
        db.close()

    def test_retries_charge_backoff_to_the_clock(self):
        db, instr = self._client(
            faults=dict(seed=1, drop_rate=0.3),
            rpc_retries=8,
            rpc_backoff_seconds=0.01,
        )
        for uid in range(1, 20):
            self._store_one(db, uid)
        counters = instr.snapshot()
        assert counters.get("backend.rpc.retries") > 0
        assert counters.get("backend.rpc.backoff_ms") > 0
        db.close()

    def test_exhausted_retries_raise(self):
        from repro.errors import RpcExhaustedError

        db, _instr = self._client(
            faults=dict(seed=0, drop_rate=1.0), rpc_retries=2
        )
        with pytest.raises(RpcExhaustedError):
            db.lookup(1)
        db._open = False  # close() would commit over the dead wire

    def test_not_found_passes_through_untouched(self):
        db, instr = self._client()
        with pytest.raises(NodeNotFoundError):
            db.lookup(404)
        assert instr.snapshot().get("backend.rpc.retries") == 0
        db.close()

    def test_retry_of_store_is_idempotent(self):
        db, _instr = self._client(faults=dict(seed=7, drop_rate=0.3))
        for uid in range(1, 15):
            self._store_one(db, uid)
        assert db.server.stats.stores >= 14  # retried stores re-count ...
        for uid in range(1, 15):
            record = db._rpc(db.server.fetch, uid)
            assert record["uid"] == uid  # ... but state is clean
        db.close()

    def test_invalid_retry_configuration_rejected(self):
        from repro.errors import ConfigurationError
        from repro.netsim.config import NetworkConfig

        with pytest.raises(ConfigurationError):
            NetworkConfig(rpc_retries=-1)
        with pytest.raises(ConfigurationError):
            NetworkConfig(rpc_backoff_seconds=-0.1)

    def test_registry_forwards_fault_options(self):
        from repro.backends.registry import create_backend
        from repro.netsim.config import NetworkConfig
        from repro.netsim.faults import FaultModel

        db = create_backend(
            "clientserver",
            network=NetworkConfig(
                fault_model=FaultModel(seed=2, drop_rate=0.1),
                rpc_retries=6,
                rpc_backoff_seconds=0.001,
            ),
        )
        assert db.rpc_retries == 6
        assert db.server.fault_model is not None
