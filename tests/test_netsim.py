"""The network simulation: virtual clock, cost model, cache, server."""

import pytest

from repro.errors import NodeNotFoundError
from repro.netsim import LatencyModel, ObjectServer, SimulatedClock, WorkstationCache
from repro.netsim.latency import ZERO_COST


class TestClock:
    def test_advances_monotonically(self):
        clock = SimulatedClock()
        clock.advance(0.5)
        clock.advance(0.25)
        assert clock.now == pytest.approx(0.75)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            SimulatedClock().advance(-1)

    def test_reset(self):
        clock = SimulatedClock()
        clock.advance(3)
        clock.reset()
        assert clock.now == 0.0


class TestLatencyModel:
    def test_cost_combines_round_trip_and_transfer(self):
        model = LatencyModel(round_trip_seconds=0.001, bandwidth_bytes_per_second=1000)
        assert model.request_cost(0) == pytest.approx(0.001)
        assert model.request_cost(500) == pytest.approx(0.501)

    def test_zero_cost_model(self):
        assert ZERO_COST.request_cost(1_000_000) == 0.0

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel().request_cost(-1)


class TestWorkstationCache:
    def test_hit_miss_accounting(self):
        cache = WorkstationCache(capacity=2)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_ratio == 0.5

    def test_lru_eviction_order(self):
        cache = WorkstationCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b is now LRU
        cache.put("c", 3)
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert cache.stats.evictions == 1

    def test_invalidate_and_clear(self):
        cache = WorkstationCache(capacity=4)
        cache.put("a", 1)
        cache.invalidate("a")
        assert "a" not in cache
        assert cache.stats.invalidations == 1
        cache.put("b", 2)
        cache.clear()
        assert len(cache) == 0

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            WorkstationCache(capacity=0)


class TestObjectServer:
    def _record(self, uid, **extra):
        record = {
            "uid": uid, "kind": "node", "ten": 1, "hundred": 2,
            "million": 3, "struct": 1, "children": [], "parent": 0,
            "parts": [], "partOf": [], "refTo": [], "refFrom": [],
        }
        record.update(extra)
        return record

    def test_store_and_fetch_charge_the_clock(self):
        server = ObjectServer()
        server.store(1, self._record(1))
        after_store = server.clock.now
        assert after_store > 0
        fetched = server.fetch(1)
        assert fetched["uid"] == 1
        assert server.clock.now > after_store
        assert server.stats.fetches == 1
        assert server.stats.bytes_sent > 0

    def test_fetch_returns_a_copy(self):
        server = ObjectServer()
        server.store(1, self._record(1))
        server.fetch(1)["ten"] = 99
        assert server.fetch(1)["ten"] == 1

    def test_missing_fetch_still_charged(self):
        server = ObjectServer()
        before = server.clock.now
        with pytest.raises(NodeNotFoundError):
            server.fetch(404)
        assert server.clock.now > before

    def test_exists_probe(self):
        server = ObjectServer()
        server.store(5, self._record(5))
        assert server.exists(5)
        assert not server.exists(6)
        assert server.stats.probes == 2

    def test_range_query_server_side(self):
        server = ObjectServer()
        for uid in range(1, 11):
            server.store(uid, self._record(uid, hundred=uid * 10))
        result = server.range_query("hundred", 25, 65)
        assert sorted(result) == [3, 4, 5, 6]

    def test_scan_structure_filters_and_sorts(self):
        server = ObjectServer()
        server.store(3, self._record(3, struct=1))
        server.store(1, self._record(1, struct=1))
        server.store(2, self._record(2, struct=2))
        assert server.scan_structure(1) == [1, 3]
        assert server.count(1) == 2

    def test_bigger_records_cost_more(self):
        server = ObjectServer()
        small = self._record(1)
        big = self._record(2, bits=b"\x00" * 10_000, kind="form")
        server.store(1, small)
        small_cost = server.clock.now
        server.store(2, big)
        big_cost = server.clock.now - small_cost
        assert big_cost > small_cost

    def test_named_lists(self):
        server = ObjectServer()
        server.store_list("toc", [3, 1, 2])
        assert server.load_list("toc") == [3, 1, 2]
        with pytest.raises(NodeNotFoundError):
            server.load_list("ghost")

    def test_shared_clock_injection(self):
        clock = SimulatedClock()
        server = ObjectServer(clock, ZERO_COST)
        server.store(1, self._record(1))
        assert clock.now == 0.0  # zero-cost model charges nothing
