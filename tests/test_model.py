"""NodeData / LinkAttributes transfer objects and their validation."""

import pytest

from repro.core.bitmap import Bitmap
from repro.core.model import (
    NODE_ATTRIBUTES,
    LinkAttributes,
    NodeData,
    NodeKind,
    Reference,
)


def _plain(uid=1, **overrides):
    base = dict(unique_id=uid, ten=5, hundred=50, million=500_000)
    base.update(overrides)
    return NodeData(**base)


class TestNodeData:
    def test_plain_node_carries_no_content(self):
        node = _plain()
        assert node.kind is NodeKind.NODE
        assert node.text is None
        assert node.bitmap is None

    def test_text_node_requires_body(self):
        with pytest.raises(ValueError):
            _plain(kind=NodeKind.TEXT)

    def test_form_node_requires_bitmap(self):
        with pytest.raises(ValueError):
            _plain(kind=NodeKind.FORM)

    def test_plain_node_rejects_content(self):
        with pytest.raises(ValueError):
            _plain(text="hi")
        with pytest.raises(ValueError):
            _plain(bitmap=Bitmap(8, 8))

    def test_attribute_accessor_covers_all_four(self):
        node = _plain(uid=7)
        assert [node.attribute(name) for name in NODE_ATTRIBUTES] == [
            7, 5, 50, 500_000,
        ]

    def test_attribute_accessor_rejects_unknown(self):
        with pytest.raises(KeyError):
            _plain().attribute("thousand")

    def test_default_structure_id_is_one(self):
        assert _plain().structure_id == 1

    def test_valid_text_node(self):
        node = _plain(kind=NodeKind.TEXT, text="version1 a version1 b version1")
        assert node.kind.is_leaf_kind
        assert node.text.startswith("version1")

    def test_valid_form_node(self):
        node = _plain(kind=NodeKind.FORM, bitmap=Bitmap(100, 100))
        assert node.bitmap.is_white()


class TestNodeKind:
    def test_leaf_kind_flags(self):
        assert not NodeKind.NODE.is_leaf_kind
        assert NodeKind.TEXT.is_leaf_kind
        assert NodeKind.FORM.is_leaf_kind

    def test_values_are_stable_identifiers(self):
        assert NodeKind.NODE.value == "node"
        assert NodeKind.TEXT.value == "text"
        assert NodeKind.FORM.value == "form"


class TestLinkAttributes:
    def test_offsets_stored(self):
        attrs = LinkAttributes(offset_from=3, offset_to=7)
        assert (attrs.offset_from, attrs.offset_to) == (3, 7)

    def test_negative_offsets_rejected(self):
        with pytest.raises(ValueError):
            LinkAttributes(-1, 0)
        with pytest.raises(ValueError):
            LinkAttributes(0, -1)

    def test_frozen_and_hashable(self):
        attrs = LinkAttributes(1, 2)
        with pytest.raises(Exception):
            attrs.offset_from = 9  # type: ignore[misc]
        assert len({attrs, LinkAttributes(1, 2)}) == 1

    def test_reference_pairs_target_and_attributes(self):
        ref = Reference(target=42, attributes=LinkAttributes(1, 2))
        assert ref.target == 42
        assert ref.attributes.offset_to == 2
