"""The section-7 parallel multi-user loads over one shared server."""

import pytest

from repro.backends.clientserver import ClientServerDatabase
from repro.concurrency.multiuser import (
    run_read_load,
    run_update_load,
)
from repro.core.config import HyperModelConfig
from repro.core.generator import DatabaseGenerator
from repro.netsim.server import ObjectServer


@pytest.fixture
def shared_server():
    server = ObjectServer()
    loader = ClientServerDatabase(server=server)
    loader.open()
    gen = DatabaseGenerator(HyperModelConfig(levels=3, seed=17)).generate(loader)
    loader.commit()
    loader.close()
    return server, gen


class TestReadLoad:
    def test_single_user_baseline(self, shared_server):
        server, gen = shared_server
        result = run_read_load(server, gen, users=1, operations_per_user=20)
        assert result.total_operations == 20
        assert result.server_seconds > 0
        assert len(result.per_user_cache_hit_ratio) == 1

    def test_more_users_more_server_time(self, shared_server):
        server, gen = shared_server
        one = run_read_load(server, gen, users=1, operations_per_user=20, seed=3)
        four = run_read_load(server, gen, users=4, operations_per_user=20, seed=3)
        # The shared server serializes requests: total time grows with
        # users (R6's centralized-control cost) ...
        assert four.server_seconds > one.server_seconds
        # ... while aggregate throughput stays in the same ballpark
        # (each user's working set caches independently).
        assert four.total_operations == 80

    def test_caches_warm_up_per_user(self, shared_server):
        server, gen = shared_server
        result = run_read_load(server, gen, users=2, operations_per_user=40)
        for hit_ratio in result.per_user_cache_hit_ratio:
            assert hit_ratio > 0.3  # repeated inputs hit the cache

    def test_deterministic_for_seed(self, shared_server):
        server, gen = shared_server
        first = run_read_load(server, gen, users=2, operations_per_user=10, seed=9)
        second = run_read_load(server, gen, users=2, operations_per_user=10, seed=9)
        assert first.server_seconds == pytest.approx(second.server_seconds)


class TestUpdateLoad:
    def test_disjoint_edits_all_visible_everywhere(self, shared_server):
        server, gen = shared_server
        result = run_update_load(server, gen, users=3, edits_per_user=2)
        assert result.total_edits == 6
        assert result.all_edits_visible_everywhere

    def test_assignments_are_disjoint(self, shared_server):
        server, gen = shared_server
        result = run_update_load(server, gen, users=4, edits_per_user=2)
        seen = set()
        for uids in result.published.values():
            for uid in uids:
                assert uid not in seen
                seen.add(uid)

    def test_too_many_users_rejected(self, shared_server):
        server, gen = shared_server
        with pytest.raises(ValueError):
            run_update_load(server, gen, users=200, edits_per_user=10)
