"""Sharding layer: placement, scatter-gather, 2PC, coherence.

Covers the acceptance criteria of the sharded object store:

* placement policies are deterministic, total and subtree-affine where
  promised;
* ``shards=1`` keeps the classic single-server stack (bit-identical
  timings, same server class);
* scatter-gather closure push-down is O(shards × depth-crossing
  rounds), pinned with counters on the paper's op-10 closure at
  level 6 over 4 shards;
* a write on one shard invalidates cache entries another client
  admitted via a traverse served by a *different* shard;
* two-phase commit survives coordinator and participant crashes at
  every scripted seam with zero atomicity violations;
* the ``repro bench-sharded`` document is deterministic.
"""

from __future__ import annotations

import pytest

from repro.backends.clientserver import ClientServerDatabase
from repro.backends.registry import create_backend
from repro.core.config import HyperModelConfig
from repro.core.generator import DatabaseGenerator
from repro.core.operations import Operations
from repro.errors import CommitConflictError, ConfigurationError
from repro.netsim.config import NetworkConfig, ShardConfig
from repro.netsim.server import ObjectServer
from repro.obs import Instrumentation
from repro.sharding.placement import (
    HashPlacement,
    SubtreeAffinePlacement,
    make_placement,
)
from repro.sharding.router import ShardRouter


def _sharded_db(
    shards: int,
    placement: str = "hash",
    instrumentation: Instrumentation = None,
    **net,
) -> ClientServerDatabase:
    return ClientServerDatabase(
        network=NetworkConfig(
            sharding=ShardConfig(shards=shards, placement=placement), **net
        ),
        instrumentation=instrumentation,
    )


# ----------------------------------------------------------------------
# Placement policies
# ----------------------------------------------------------------------


class TestPlacement:
    def test_hash_is_deterministic_and_total(self):
        a = HashPlacement(4)
        b = HashPlacement(4)
        for uid in range(1, 2000):
            shard = a.shard_of(uid)
            assert 0 <= shard < 4
            assert shard == b.shard_of(uid)

    def test_hash_balances_reasonably(self):
        placement = HashPlacement(4)
        counts = [0, 0, 0, 0]
        for uid in range(1, 4001):
            counts[placement.shard_of(uid)] += 1
        assert min(counts) > 0
        # Consistent hashing with 64 vnodes: no shard owns everything.
        assert max(counts) < 4000 * 0.6

    def test_hash_independent_of_pythonhashseed(self):
        # blake2b digests, not hash(): the ring is stable across runs.
        placement = HashPlacement(3)
        sample = [placement.shard_of(uid) for uid in range(1, 32)]
        assert sample == [
            HashPlacement(3).shard_of(uid) for uid in range(1, 32)
        ]

    def test_affine_keeps_subtrees_together(self):
        # fanout 5, affinity level 1: all descendants of one level-1
        # node land on that node's shard.
        placement = SubtreeAffinePlacement(4, fanout=5, first_uid=1)
        gen = DatabaseGenerator(HyperModelConfig(levels=3, seed=5))
        from repro.backends.memory import MemoryDatabase

        db = MemoryDatabase()
        db.open()
        info = gen.generate(db)
        level1 = sorted(info.uids_by_level[1])
        for top in level1:
            home = placement.shard_of(top)
            closure = Operations(db).closure_1n(db.lookup(top))
            for ref in closure:
                uid = db.get_attribute(ref, "uniqueId")
                assert placement.shard_of(uid) == home
        db.close()

    def test_affine_spreads_level1_round_robin(self):
        placement = SubtreeAffinePlacement(5, fanout=5, first_uid=1)
        level1 = [2, 3, 4, 5, 6]
        assert sorted(placement.shard_of(uid) for uid in level1) == [
            0, 1, 2, 3, 4,
        ]

    def test_partition_preserves_order(self):
        placement = HashPlacement(2)
        uids = list(range(1, 40))
        groups = placement.partition(uids)
        for shard, members in groups.items():
            assert members == [
                uid for uid in uids if placement.shard_of(uid) == shard
            ]

    def test_make_placement_dispatch(self):
        assert isinstance(
            make_placement(ShardConfig(shards=2, placement="hash")),
            HashPlacement,
        )
        assert isinstance(
            make_placement(ShardConfig(shards=2, placement="affine")),
            SubtreeAffinePlacement,
        )

    def test_shard_config_validates(self):
        with pytest.raises(ConfigurationError):
            ShardConfig(shards=0)
        with pytest.raises(ConfigurationError):
            ShardConfig(shards=2, placement="modulo")


# ----------------------------------------------------------------------
# shards=1 keeps the classic stack
# ----------------------------------------------------------------------


class TestSingleShardIdentity:
    def test_shards_one_uses_plain_server(self):
        db = _sharded_db(1)
        db.open()
        assert isinstance(db.server, ObjectServer)
        db.close()

    def test_shards_one_timings_bit_identical(self):
        def run(network):
            db = ClientServerDatabase(network=network)
            db.open()
            gen = DatabaseGenerator(
                HyperModelConfig(levels=2, seed=9)
            ).generate(db)
            db.commit()
            db.cache.clear()
            db.prefetch_closure(gen.root_uid, "children", None)
            now = db.simulated_clock.now
            db.close()
            return now

        plain = run(NetworkConfig())
        sharded = run(NetworkConfig(sharding=ShardConfig(shards=1)))
        assert plain == sharded


# ----------------------------------------------------------------------
# Scatter-gather closure push-down
# ----------------------------------------------------------------------


class TestScatterGather:
    @pytest.mark.parametrize("placement", ["hash", "affine"])
    def test_closure_complete_across_shards(self, placement):
        instr = Instrumentation()
        db = _sharded_db(4, placement, instr)
        db.open()
        gen = DatabaseGenerator(HyperModelConfig(levels=3, seed=5)).generate(
            db
        )
        db.commit()
        db.cache.clear()
        closure = Operations(db).closure_1n(db.lookup(gen.root_uid))
        assert len(closure) == gen.total_nodes == 156
        db.close()

    def test_op10_level6_rpc_bound_on_four_shards(self):
        """The tentpole bound: RPCs are O(shards × depth crossings),
        never O(nodes) — pinned on the paper's op-10 closure."""
        instr = Instrumentation()
        db = _sharded_db(4, "affine", instr, cache_capacity=32768)
        db.open()
        gen = DatabaseGenerator(HyperModelConfig(levels=6, seed=3)).generate(
            db
        )
        db.commit()
        db.cache.clear()
        before = instr.snapshot()
        assert db.prefetch_closure(gen.root_uid, "children", None)
        delta = instr.delta_since(before)
        rounds = delta["backend.rpc.scatter.rounds"]
        round_trips = delta["backend.rpc.round_trips"]
        # Affine placement: one depth crossing (root → level-1
        # subtrees), so the whole 19 531-node closure takes ≤ 4 × 2
        # shard calls.  The O(nodes) failure mode would be ~19 531.
        assert rounds <= 2
        assert round_trips <= 4 * (rounds + 1)
        assert round_trips < 20
        db.close()

    def test_hash_placement_rounds_bounded_by_depth(self):
        instr = Instrumentation()
        db = _sharded_db(4, "hash", instr, cache_capacity=8192)
        db.open()
        gen = DatabaseGenerator(HyperModelConfig(levels=4, seed=3)).generate(
            db
        )
        db.commit()
        db.cache.clear()
        before = instr.snapshot()
        assert db.prefetch_closure(gen.root_uid, "children", None)
        delta = instr.delta_since(before)
        # Hash placement crosses shards at ~every level: rounds ≤
        # depth + 1 and calls ≤ shards × rounds — still never O(nodes).
        rounds = delta["backend.rpc.scatter.rounds"]
        assert rounds <= 5
        assert delta["backend.rpc.round_trips"] <= 4 * rounds
        assert gen.total_nodes == 781
        db.close()

    def test_traverse_depth_limit_respected(self):
        db = _sharded_db(2, "hash")
        db.open()
        gen = DatabaseGenerator(HyperModelConfig(levels=3, seed=5)).generate(
            db
        )
        db.commit()
        records = db.server.traverse(gen.root_uid, "children", depth=1)
        assert len(records) == 6  # root + its 5 children
        db.close()

    def test_readahead_across_shards(self):
        db = _sharded_db(2, "hash")
        db.open()
        gen = DatabaseGenerator(HyperModelConfig(levels=3, seed=5)).generate(
            db
        )
        db.commit()
        got = db.server.readahead([gen.root_uid], depth=1)
        assert gen.root_uid in got
        assert len(got) >= 6
        db.close()

    def test_per_shard_counters_emitted(self):
        instr = Instrumentation()
        db = _sharded_db(2, "hash", instr)
        db.open()
        gen = DatabaseGenerator(HyperModelConfig(levels=2, seed=9)).generate(
            db
        )
        db.commit()
        counters = instr.counters
        for shard in (0, 1):
            assert counters.get(f"backend.shard.{shard}.rpc.round_trips", 0) > 0
            assert counters.get(f"backend.shard.{shard}.rpc.payload_bytes", 0) > 0
        db.close()


# ----------------------------------------------------------------------
# Cross-shard cache invalidation (satellite 2)
# ----------------------------------------------------------------------


class TestCrossShardInvalidation:
    def test_write_on_owner_invalidates_traverse_admitted_copy(self):
        """Client A admits a record via a scatter traverse; client B
        commits to its owning shard; A must see the new value."""
        network = NetworkConfig(
            sharding=ShardConfig(shards=2, placement="hash")
        )
        client_a = ClientServerDatabase(network=network)
        client_a.open()
        gen = DatabaseGenerator(HyperModelConfig(levels=3, seed=5)).generate(
            client_a
        )
        client_a.commit()
        router = client_a.server
        assert isinstance(router, ShardRouter)
        client_b = ClientServerDatabase(server=router)
        client_b.open()

        # A caches the whole closure (records from both shards).
        client_a.cache.clear()
        client_a.prefetch_closure(gen.root_uid, "children", None)
        # Pick a non-root uid and make sure it is cache-resident in A.
        victim = sorted(gen.uids_by_level[2])[0]
        assert client_a.get_attribute(client_a.lookup(victim), "ten") is not None
        assert victim in client_a.cache

        # B rewrites the victim through the victim's owning shard.
        node_b = client_b.lookup(victim)
        client_b.set_attribute(node_b, "ten", 777)
        client_b.commit()

        # A's cached copy was dropped by the owning shard's broadcast
        # (the admit may have been served by the *other* shard), and
        # the next read refetches B's write.
        assert victim not in client_a.cache
        node_a = client_a.lookup(victim)
        assert client_a.get_attribute(node_a, "ten") == 777
        client_b.close()
        client_a.close()


# ----------------------------------------------------------------------
# Two-phase commit
# ----------------------------------------------------------------------


class TestTwoPhaseCommit:
    def _populated_router(self, shards=2, placement="hash"):
        network = NetworkConfig(
            concurrency="optimistic",
            sharding=ShardConfig(shards=shards, placement=placement),
        )
        db = ClientServerDatabase(network=network)
        db.open()
        gen = DatabaseGenerator(HyperModelConfig(levels=3, seed=5)).generate(
            db
        )
        db.commit()
        return db, gen

    def _cross_shard_pair(self, router, gen):
        placement = router.placement
        by_shard = {}
        for uid in sorted(gen.uids_by_level[2]):
            by_shard.setdefault(placement.shard_of(uid), uid)
            if len(by_shard) == len(router.shards):
                break
        uids = sorted(by_shard.values())
        assert len(uids) >= 2
        return uids[0], uids[1]

    def test_multi_shard_commit_runs_2pc(self):
        instr = Instrumentation()
        network = NetworkConfig(
            concurrency="optimistic",
            sharding=ShardConfig(shards=2, placement="hash"),
        )
        db = ClientServerDatabase(network=network, instrumentation=instr)
        db.open()
        gen = DatabaseGenerator(HyperModelConfig(levels=3, seed=5)).generate(
            db
        )
        db.commit()
        a, b = self._cross_shard_pair(db.server, gen)
        before = instr.snapshot()
        db.set_attribute(db.lookup(a), "ten", 1)
        db.set_attribute(db.lookup(b), "ten", 2)
        db.commit()
        delta = instr.delta_since(before)
        assert delta.get("backend.2pc.transactions", 0) == 1
        assert delta.get("backend.2pc.commits", 0) == 1
        stats = db.server.stats
        assert stats.prepares >= 2 and stats.decisions >= 2
        db.close()

    def test_single_shard_commit_skips_2pc(self):
        instr = Instrumentation()
        network = NetworkConfig(
            concurrency="optimistic",
            sharding=ShardConfig(shards=2, placement="affine"),
        )
        db = ClientServerDatabase(network=network, instrumentation=instr)
        db.open()
        gen = DatabaseGenerator(HyperModelConfig(levels=3, seed=5)).generate(
            db
        )
        db.commit()
        # A leaf and its parent share an affine subtree → one shard.
        leaf = sorted(gen.uids_by_level[2])[0]
        before = instr.snapshot()
        db.set_attribute(db.lookup(leaf), "ten", 3)
        db.commit()
        delta = instr.delta_since(before)
        assert delta.get("backend.2pc.transactions", 0) == 0
        db.close()

    def test_conflicting_cross_shard_commit_aborts_cleanly(self):
        db, gen = self._populated_router()
        router = db.server
        second = ClientServerDatabase(
            server=router,
            network=NetworkConfig(concurrency="optimistic"),
        )
        second.open()
        a, b = self._cross_shard_pair(router, gen)
        # Both clients read both uids and stage writes; the first
        # commit wins, making the second's staged read set stale.
        for client in (db, second):
            client.get_attribute(client.lookup(a), "ten")
            client.get_attribute(client.lookup(b), "ten")
        second.set_attribute(second.lookup(a), "ten", 20)
        second.set_attribute(second.lookup(b), "ten", 20)
        db.set_attribute(db.lookup(a), "ten", 10)
        db.set_attribute(db.lookup(b), "ten", 10)
        db.commit()
        with pytest.raises(CommitConflictError):
            second.commit()
        second.abort()
        # The loser left nothing pinned: a clean retry succeeds.
        second.set_attribute(second.lookup(a), "ten", 30)
        second.set_attribute(second.lookup(b), "ten", 30)
        second.commit()
        assert db.server.fetch(a)["ten"] == 30
        second.close()
        db.close()


class TestTwoPhaseCrashRecovery:
    """Crash-matrix invariants, driven through the harness."""

    @pytest.mark.parametrize("placement", ["hash", "affine"])
    def test_matrix_has_zero_violations(self, placement, tmp_path):
        from repro.harness.shardcrash import (
            TwoPhaseWorkload,
            run_two_phase_crash_matrix,
        )

        document = run_two_phase_crash_matrix(
            TwoPhaseWorkload(
                shards=2, placement=placement, transactions=2
            ),
            base_dir=str(tmp_path),
        )
        assert document["violation_count"] == 0, document["violations"]
        assert document["crash_points_tested"] >= 12
        # Every scenario actually ran.
        for scenario, count in document["cells_by_scenario"].items():
            assert count > 0, scenario

    def test_coordinator_crash_before_decision_aborts(self, tmp_path):
        import os

        from repro.engine.wal import WriteAheadLog
        from repro.netsim.latency import SimulatedClock

        clock = SimulatedClock()
        config = ShardConfig(shards=2, placement="hash")
        wal_paths = [str(tmp_path / f"s{i}.wal") for i in range(2)]
        servers = [
            ObjectServer(clock, wal=WriteAheadLog(p), shard_id=i)
            for i, p in enumerate(wal_paths)
        ]
        decision_path = str(tmp_path / "decision.wal")
        router = ShardRouter(
            config,
            servers=servers,
            decision_log=WriteAheadLog(decision_path),
        )
        base = {
            uid: {"uid": uid, "ten": 0, "children": [], "parts": [],
                  "refTo": []}
            for uid in range(1, 40)
        }
        router.load_records(base)
        placement = router.placement
        by_shard = {}
        for uid in sorted(base):
            by_shard.setdefault(placement.shard_of(uid), uid)
        a, b = sorted(by_shard.values())[:2]
        writes = {
            a: {**base[a], "ten": 5},
            b: {**base[b], "ten": 6},
        }
        # Prepare both participants; the coordinator then "crashes"
        # before logging any decision.
        for index, group in placement.partition(writes).items():
            servers[index].prepare_batch(
                1, {uid: writes[uid] for uid in group}, {}
            )
        for server in servers:
            server.wal.close()
        router.decision_log.close()

        # Site restart: recover shards from their WALs, resolve.
        recovered = [
            ObjectServer(clock, wal=WriteAheadLog(p), shard_id=i)
            for i, p in enumerate(wal_paths)
        ]
        groups = placement.partition(base)
        for i, server in enumerate(recovered):
            server.recover_from_wal(
                {uid: base[uid] for uid in groups.get(i, ())}
            )
        assert any(server.in_doubt() for server in recovered)
        router2 = ShardRouter(
            config,
            servers=recovered,
            decision_log=WriteAheadLog(decision_path),
        )
        outcomes = router2.resolve_in_doubt()
        assert outcomes == {1: "aborted"}
        assert router2.fetch(a)["ten"] == 0
        assert router2.fetch(b)["ten"] == 0
        # The txid is not reused after restart (participants memoized
        # the abort): a follow-up cross-shard commit succeeds.
        applied = router2.commit_batch(writes, {})
        assert applied
        assert router2.fetch(a)["ten"] == 5
        for server in recovered:
            server.wal.close()
        router2.decision_log.close()


# ----------------------------------------------------------------------
# Registry ablations and the bench document
# ----------------------------------------------------------------------


class TestShardedRegistry:
    @pytest.mark.parametrize(
        "name", ["clientserver-sharded-hash", "clientserver-sharded-affine"]
    )
    def test_registry_builds_sharded_backend(self, name):
        db = create_backend(name)
        db.open()
        assert isinstance(db.server, ShardRouter)
        assert len(db.server.shards) == 2
        gen = DatabaseGenerator(HyperModelConfig(levels=2, seed=9)).generate(
            db
        )
        db.commit()
        closure = Operations(db).closure_1n(db.lookup(gen.root_uid))
        assert len(closure) == gen.total_nodes
        db.close()


class TestShardedBench:
    def test_document_shape_and_determinism(self):
        import json

        from repro.harness.shardbench import run_sharded_bench

        kwargs = dict(
            shard_counts=(1, 2), placements=("affine",), level=2,
            closures=3, updates=4,
        )
        first = run_sharded_bench(**kwargs)
        second = run_sharded_bench(**kwargs)
        for doc in (first, second):
            doc.pop("provenance")
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )
        assert set(first["cells"]) == {"shards1-affine", "shards2-affine"}
        for cell in first["cells"].values():
            for op in ("closure", "update"):
                leaf = cell[op]
                assert leaf["p50_ms"] >= 0
                assert leaf["p99_ms"] >= leaf["p50_ms"] >= 0
                assert "mode" in leaf

    def test_benchdiff_understands_the_document(self, tmp_path):
        from repro.harness.benchdiff import diff_documents, regressions
        from repro.harness.shardbench import run_sharded_bench

        document = run_sharded_bench(
            shard_counts=(2,), placements=("hash",), level=2,
            closures=2, updates=3,
        )
        rows = diff_documents(document, document)
        assert rows and not regressions(rows)
