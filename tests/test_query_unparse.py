"""The query unparser and the parse/unparse round-trip property."""

import pytest
from hypothesis import given, strategies as st

from repro.query import parse
from repro.query.ast import (
    And,
    Between,
    Comparison,
    Not,
    Or,
    OrderBy,
    Query,
    unparse,
)


class TestUnparseExamples:
    @pytest.mark.parametrize(
        "text",
        [
            "find nodes",
            "count text",
            "find nodes where ten = 5",
            "find nodes where hundred between 10 and 19",
            "find nodes where ten = 1 and hundred = 2",
            "find nodes where (ten = 1 or ten = 2) and hundred = 3",
            "find nodes where not ten = 1",
            "find form where ten > 2 order by million desc limit 10",
            "count nodes where million <= 100",
        ],
    )
    def test_round_trip_from_text(self, text):
        query = parse(text)
        assert parse(unparse(query)) == query

    def test_canonical_form(self):
        assert unparse(parse("FIND Nodes WHERE ten=5")) == (
            "find nodes where ten = 5"
        )

    def test_minimal_parentheses(self):
        rendered = unparse(parse("find nodes where ten = 1 and hundred = 2"))
        assert "(" not in rendered

    def test_right_nested_trees_keep_their_shape(self):
        query = Query(
            kind="nodes",
            predicate=Or(
                Comparison("ten", "=", 1),
                Or(Comparison("ten", "=", 2), Comparison("ten", "=", 3)),
            ),
        )
        assert parse(unparse(query)) == query


_attrs = st.sampled_from(["uniqueId", "ten", "hundred", "million"])
_operators = st.sampled_from(["=", "!=", "<", "<=", ">", ">="])
_values = st.integers(min_value=-999, max_value=999_999)

_comparisons = st.builds(Comparison, attribute=_attrs, operator=_operators,
                         value=_values)
_betweens = st.builds(
    lambda attr, a, b: Between(attr, min(a, b), max(a, b)),
    _attrs, _values, _values,
)

_exprs = st.recursive(
    st.one_of(_comparisons, _betweens),
    lambda children: st.one_of(
        st.builds(And, children, children),
        st.builds(Or, children, children),
        st.builds(Not, children),
    ),
    max_leaves=12,
)

_queries = st.builds(
    Query,
    kind=st.sampled_from(["nodes", "text", "form"]),
    predicate=st.one_of(st.none(), _exprs),
    aggregate=st.just(None),
    order_by=st.one_of(
        st.none(),
        st.builds(OrderBy, attribute=_attrs, descending=st.booleans()),
    ),
    limit=st.one_of(st.none(), st.integers(min_value=0, max_value=500)),
)


@given(query=_queries)
def test_property_parse_unparse_is_identity(query):
    """Any well-formed query survives a render/parse cycle exactly."""
    assert parse(unparse(query)) == query


@given(query=st.builds(
    Query,
    kind=st.sampled_from(["nodes", "text", "form"]),
    predicate=st.one_of(st.none(), _exprs),
    aggregate=st.just("count"),
))
def test_property_count_queries_round_trip(query):
    assert parse(unparse(query)) == query
