"""Replication: WAL shipping, session-token routing, failover.

Unit tests for the shipper's transaction framing, the group's bounded
staleness, the router's policies and read-your-writes token, the
promote-on-primary-crash drill, and the staleness-vs-throughput
benchmark's acceptance floor.  A Hypothesis property drives random
write/read/advance interleavings against the session-token contract.
"""

import pytest

from repro.engine.vfs import FaultInjectingVFS, MemoryVFS, SimulatedCrash
from repro.errors import ConfigurationError, InvalidOperationError
from repro.netsim.config import NetworkConfig, ReplicationConfig
from repro.netsim.latency import SimulatedClock
from repro.obs import Instrumentation
from repro.replication import ReplicaRouter, ReplicationGroup


def _record(uid, value=0):
    return {"uid": uid, "ten": 0, "hundred": 0, "million": value}


def _group(replicas=2, lag=0.0, instr=None, vfs=None):
    clock = SimulatedClock()
    group = ReplicationGroup(
        ReplicationConfig(replicas=replicas, apply_lag_seconds=lag),
        clock=clock,
        instrumentation=instr,
        vfs=vfs,
    )
    group.load_records({uid: _record(uid) for uid in (1, 2, 3, 4)})
    return group, clock


class TestWalShipper:
    def test_store_and_commit_batch_both_ship(self):
        group, _ = _group()
        router = ReplicaRouter(group)
        router.store(1, _record(1, 5))
        assert group.shipper.primary_lsn == 1
        router.commit_batch({2: _record(2, 6), 3: _record(3, 7)}, {})
        assert group.shipper.primary_lsn == 2  # one LSN per transaction
        lsn, _ship, operations = group.shipper.txns[1]
        assert lsn == 2
        assert sorted(op.oid for op in operations) == [2, 3]

    def test_ship_time_is_commit_time(self):
        group, clock = _group()
        router = ReplicaRouter(group)
        clock.advance(1.5)
        router.store(1, _record(1, 5))
        _lsn, ship_time, _ops = group.shipper.txns[0]
        # Shipped at commit time: after the advance, plus only the
        # simulated service time of the store itself.
        assert 1.5 <= ship_time < 1.6

    def test_torn_tail_never_ships(self):
        vfs = FaultInjectingVFS(MemoryVFS(), seed=7)
        group, _ = _group(vfs=vfs)
        router = ReplicaRouter(group)
        router.store(1, _record(1, 5))
        # Crash inside the next commit's WAL append: the partial
        # transaction must never become shippable.
        vfs.crash_at(vfs.mutation_ops + 2, torn=True)
        with pytest.raises(SimulatedCrash):
            router.store(2, _record(2, 6))
        group.shipper.poll()
        assert group.shipper.primary_lsn == 1

    def test_load_records_rebases_history(self):
        group, _ = _group()
        router = ReplicaRouter(group)
        router.store(1, _record(1, 5))
        generation = group.generation
        group.load_records({uid: _record(uid) for uid in (1, 2)})
        assert group.shipper.primary_lsn == 0
        assert group.generation == generation + 1
        router.fetch(1)  # the stale token resets on the next read
        assert router.session_lsn == 0


class TestBoundedStaleness:
    def test_lag_delays_apply_deterministically(self):
        group, clock = _group(lag=0.5)
        router = ReplicaRouter(group)
        router.store(1, _record(1, 5))
        group.catch_up()
        assert group.applied_lsns == [0, 0]  # inside the lag window
        clock.advance(0.49)
        group.catch_up()
        assert group.applied_lsns == [0, 0]
        clock.advance(0.01)
        group.catch_up()
        assert group.applied_lsns == [1, 1]

    def test_zero_lag_applies_at_commit_time(self):
        group, _ = _group(lag=0.0)
        router = ReplicaRouter(group)
        router.store(1, _record(1, 5))
        assert group.eligible_replicas(1)  # fresh enough immediately
        assert group.applied_lsns == [1, 1]

    def test_replica_records_carry_origin_versions(self):
        group, _ = _group()
        router = ReplicaRouter(group)
        router.commit_batch({2: _record(2, 9)}, {})
        group.catch_up()
        primary_version = group.primary._versions[2]
        for replica in group.replicas:
            assert replica._versions[2] == primary_version


class TestReplicaRouter:
    def test_round_robin_spreads_reads(self):
        instr = Instrumentation()
        group, _ = _group(instr=instr)
        router = ReplicaRouter(group, instrumentation=instr)
        for _ in range(6):
            router.fetch(1)
        counters = instr.counters.snapshot()
        assert counters["backend.replica.0.reads"] == 3
        assert counters["backend.replica.1.reads"] == 3
        assert counters["backend.replica.reads"] == 6

    def test_session_token_forces_primary_until_caught_up(self):
        instr = Instrumentation()
        group, clock = _group(lag=1.0, instr=instr)
        router = ReplicaRouter(group, instrumentation=instr)
        router.store(1, _record(1, 5))
        assert router.session_lsn == 1
        assert router.fetch(1)["million"] == 5  # primary fallback
        counters = instr.counters.snapshot()
        assert counters["backend.replica.fallbacks"] == 1
        assert "backend.replica.reads" not in counters
        clock.advance(1.0)
        assert router.fetch(1)["million"] == 5  # replicas caught up
        assert instr.counters.snapshot()["backend.replica.reads"] == 1

    def test_other_clients_keep_reading_replicas(self):
        instr = Instrumentation()
        group, _ = _group(lag=1.0, instr=instr)
        writer = ReplicaRouter(group, instrumentation=instr)
        reader = ReplicaRouter(group, instrumentation=instr)
        writer.store(1, _record(1, 5))
        reader.fetch(2)  # no session debt: replica-served
        assert instr.counters.snapshot()["backend.replica.reads"] == 1

    def test_least_queue_policy_validates_and_degrades(self):
        group, _ = _group()
        router = ReplicaRouter(group, policy="least_queue")
        for _ in range(4):
            router.fetch(1)  # equal (absent) backlogs: round-robin
        with pytest.raises(ConfigurationError):
            ReplicaRouter(group, policy="fastest")

    def test_force_primary_ablation(self):
        instr = Instrumentation()
        group, _ = _group(instr=instr)
        router = ReplicaRouter(group, instrumentation=instr)
        router.force_primary = True
        router.fetch(1)
        counters = instr.counters.snapshot()
        assert counters["backend.replica.forced_primary"] == 1
        assert "backend.replica.reads" not in counters

    def test_read_verbs_route_and_writes_hit_primary(self):
        group, _ = _group()
        router = ReplicaRouter(group)
        router.commit_batch({1: _record(1, 8)}, {})
        assert router.fetch(1)["million"] == 8
        assert set(router.fetch_many([1, 2])) == {1, 2}
        assert 1 in router
        stats = router.stats
        assert stats.fetches >= 1


class TestFailover:
    def test_promote_elects_highest_applied_lsn(self):
        group, _ = _group()
        router = ReplicaRouter(group)
        router.store(1, _record(1, 5))
        router.store(2, _record(2, 6))
        winner = group.promote()
        assert group.failed_over
        assert group.promoted_index is not None
        lsns = group.applied_lsns
        assert lsns[group.promoted_index] == max(lsns) == 2
        assert winner.fetch(1)["million"] == 5
        with pytest.raises(InvalidOperationError):
            group.promote()

    def test_reads_pin_to_new_primary_after_failover(self):
        instr = Instrumentation()
        group, _ = _group(instr=instr)
        router = ReplicaRouter(group)
        router.store(1, _record(1, 5))
        group.promote()
        assert router.fetch(1)["million"] == 5
        router.store(1, _record(1, 9))
        assert router.fetch(1)["million"] == 9
        assert instr.counters.snapshot()["backend.replica.promotions"] == 1

    def test_drill_passes_at_every_crash_point(self):
        from repro.harness.replicacrash import (
            FailoverWorkload,
            run_failover_drill,
        )

        document = run_failover_drill(
            FailoverWorkload(transactions=2, seed=11)
        )
        assert document["crash_points_tested"] > 0
        assert document["violation_count"] == 0
        for cell in document["cells"]:
            assert cell["promoted_index"] is not None

    def test_drill_trace_contains_failover_span(self, tmp_path):
        from repro.harness.replicacrash import (
            FailoverWorkload,
            run_failover_drill,
        )

        trace_path = str(tmp_path / "failover.json")
        document = run_failover_drill(
            FailoverWorkload(transactions=1, seed=11),
            trace_path=trace_path,
        )
        assert document["violation_count"] == 0
        import json

        with open(trace_path) as handle:
            trace = json.load(handle)
        names = {
            event.get("name")
            for event in trace["traceEvents"]
            if event.get("ph") == "X"
        }
        assert "replication.failover" in names


class TestReplicatedBackend:
    def test_clientserver_replicated_end_to_end(self):
        from repro.backends.clientserver import ClientServerDatabase
        from repro.core.config import HyperModelConfig
        from repro.core.generator import DatabaseGenerator

        instr = Instrumentation()
        db = ClientServerDatabase(
            network=NetworkConfig(
                replication=ReplicationConfig(replicas=2)
            ),
            instrumentation=instr,
        )
        db.open()
        gen = DatabaseGenerator(
            HyperModelConfig(levels=2, seed=42)
        ).generate(db)
        db.commit()
        root = db.lookup(gen.root_uid)
        assert db.get_attribute(root, "uniqueId") == gen.root_uid
        db.set_attribute(root, "ten", 7)
        db.commit()
        db.cache.clear()
        assert db.get_attribute(root, "ten") == 7
        assert isinstance(db.server, ReplicaRouter)
        db.close()


class TestReplicaBenchmark:
    def test_scaling_meets_acceptance_floor(self):
        from repro.harness.replicabench import run_replica_bench

        document = run_replica_bench(
            replica_counts=(1, 4),
            write_rates=(40.0,),
            lags=(0.0,),
            level=4,
            reads_per_reader=6,
            routing_closures=2,
            seed=1989,
        )
        assert document["scaling"]["write40-lag0ms"] >= 2.5

    def test_document_is_deterministic(self):
        from repro.harness.replicabench import run_replica_bench

        kwargs = dict(
            replica_counts=(1, 2),
            write_rates=(0.0,),
            lags=(0.02,),
            level=2,
            reads_per_reader=3,
            routing_closures=2,
            seed=7,
        )
        first = run_replica_bench(**kwargs)
        second = run_replica_bench(**kwargs)
        assert first["cells"] == second["cells"]
        assert first["scaling"] == second["scaling"]
        routing = first["cells"]["routing"]
        assert set(routing) == {"replica_cold", "primary_cold", "warm"}
        assert routing["warm"]["p50_ms"] <= routing["replica_cold"]["p50_ms"]


try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    _HAS_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis ships in CI
    _HAS_HYPOTHESIS = False


if _HAS_HYPOTHESIS:
    _UIDS = (1, 2, 3, 4)
    _OPS = st.lists(
        st.one_of(
            st.tuples(
                st.just("write"),
                st.sampled_from((0, 1)),
                st.sampled_from(_UIDS),
            ),
            st.tuples(
                st.just("read"),
                st.sampled_from((0, 1)),
                st.sampled_from(_UIDS),
            ),
            st.tuples(
                st.just("advance"),
                st.just(0),
                st.integers(min_value=1, max_value=50),
            ),
        ),
        min_size=1,
        max_size=40,
    )

    class TestReadYourWritesProperty:
        @settings(max_examples=40, deadline=None)
        @given(
            ops=_OPS,
            lag_ms=st.integers(min_value=0, max_value=60),
        )
        def test_session_token_never_serves_stale_own_write(
            self, ops, lag_ms
        ):
            """Under any interleaving of two clients' writes, reads and
            clock advances, a client never reads a value older than its
            own last write — regardless of the replica apply lag."""
            group, clock = _group(lag=lag_ms / 1000.0)
            routers = [ReplicaRouter(group), ReplicaRouter(group)]
            own = [{}, {}]  # per client: uid -> last value written
            stamp = 0
            for kind, client, arg in ops:
                if kind == "advance":
                    clock.advance(arg / 1000.0)
                elif kind == "write":
                    stamp += 1
                    routers[client].store(arg, _record(arg, stamp))
                    own[client][arg] = stamp
                else:
                    seen = routers[client].fetch(arg)["million"]
                    floor = own[client].get(arg, 0)
                    assert seen >= floor, (
                        f"client {client} read {seen} for uid {arg} "
                        f"after writing {floor} (lag {lag_ms}ms)"
                    )
