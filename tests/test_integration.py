"""End-to-end integration: cross-backend agreement, level-4 scale,
clustering locality, crash recovery of a whole benchmark database."""

import os
import random

import pytest

from repro.backends.memory import MemoryDatabase
from repro.backends.oodb import OodbDatabase
from repro.backends.sqlite_backend import SqliteDatabase
from repro.core.config import HyperModelConfig
from repro.core.generator import DatabaseGenerator
from repro.core.operations import Operations
from repro.core.verification import verify_database


class TestCrossBackendAgreement:
    """Deterministic operations must return identical *logical* results
    on every backend (references differ; uniqueIds must not)."""

    @pytest.fixture(scope="class")
    def pair(self, tmp_path_factory):
        config = HyperModelConfig(levels=3, seed=123)
        memory = MemoryDatabase()
        memory.open()
        gen_memory = DatabaseGenerator(config).generate(memory)
        oodb = OodbDatabase(
            os.path.join(str(tmp_path_factory.mktemp("agree")), "a.hmdb")
        )
        oodb.open()
        gen_oodb = DatabaseGenerator(config).generate(oodb)
        oodb.commit()
        yield (memory, gen_memory), (oodb, gen_oodb), config
        oodb.close()

    def _uids(self, db, refs):
        return [db.get_attribute(r, "uniqueId") for r in refs]

    def test_closures_agree(self, pair):
        (memory, gen_m), (oodb, _gen_o), config = pair
        ops_m = Operations(memory, config)
        ops_o = Operations(oodb, config)
        for uid in gen_m.uids_by_level[2][:5]:
            closure_m = self._uids(memory, ops_m.closure_1n(memory.lookup(uid)))
            closure_o = self._uids(oodb, ops_o.closure_1n(oodb.lookup(uid)))
            assert closure_m == closure_o
            mn_m = sorted(self._uids(memory, ops_m.closure_mn(memory.lookup(uid))))
            mn_o = sorted(self._uids(oodb, ops_o.closure_mn(oodb.lookup(uid))))
            assert mn_m == mn_o

    def test_attribute_sums_agree(self, pair):
        (memory, gen_m), (oodb, _), config = pair
        ops_m = Operations(memory, config)
        ops_o = Operations(oodb, config)
        for uid in gen_m.uids_by_level[2][:5]:
            assert ops_m.closure_1n_att_sum(
                memory.lookup(uid)
            ) == ops_o.closure_1n_att_sum(oodb.lookup(uid))

    def test_range_lookups_agree(self, pair):
        (memory, _), (oodb, _), config = pair
        for x in (5, 41, 88):
            uids_m = sorted(self._uids(memory, memory.range_hundred(x, x + 9)))
            uids_o = sorted(self._uids(oodb, oodb.range_hundred(x, x + 9)))
            assert uids_m == uids_o


class TestLevel4Scale:
    """The paper's smallest real level (781 nodes) on the two backends
    with the most machinery."""

    @pytest.mark.parametrize("backend", ["sqlite", "oodb"])
    def test_generate_verify_and_operate(self, backend, tmp_path):
        config = HyperModelConfig(levels=4, seed=7)
        if backend == "sqlite":
            db = SqliteDatabase(str(tmp_path / "l4.db"))
        else:
            db = OodbDatabase(str(tmp_path / "l4.hmdb"))
        db.open()
        gen = DatabaseGenerator(config).generate(db)
        db.commit()
        assert gen.total_nodes == 781
        verify_database(db, gen, content_sample=10).raise_if_failed()

        ops = Operations(db, config)
        rng = random.Random(1)
        start = db.lookup(gen.random_uid_at_level(rng, 3))
        assert len(ops.closure_1n(start)) == 6
        assert len(ops.closure_mnatt(start)) == 25
        assert ops.seq_scan() == 781
        db.close()


class TestClusteringLocality:
    def test_clustered_subtrees_span_fewer_pages(self, tmp_path):
        """Section 5.2's prediction: clustering along the 1-N hierarchy
        concentrates a subtree onto few pages."""
        config = HyperModelConfig(levels=4, seed=11)

        def subtree_pages(db, gen):
            ops = Operations(db, config)
            rng = random.Random(2)
            pages = []
            for _ in range(10):
                start = db.lookup(gen.random_uid_at_level(rng, 2))
                closure = ops.closure_1n(start)  # 31 nodes
                pages.append(len({db.store.page_of(int(r)) for r in closure}))
            return sum(pages) / len(pages)

        clustered = OodbDatabase(str(tmp_path / "c.hmdb"), clustered=True)
        clustered.open()
        gen_c = DatabaseGenerator(config).generate(clustered)
        clustered.commit()
        scattered = OodbDatabase(str(tmp_path / "u.hmdb"), clustered=False)
        scattered.open()
        gen_u = DatabaseGenerator(config).generate(scattered)
        scattered.commit()

        clustered_pages = subtree_pages(clustered, gen_c)
        scattered_pages = subtree_pages(scattered, gen_u)
        assert clustered_pages < scattered_pages
        clustered.close()
        scattered.close()


class TestCrashRecoveryEndToEnd:
    def test_benchmark_database_survives_crash(self, tmp_path):
        """Generate, commit, 'crash' without checkpointing, reopen:
        the whole structure must verify (R10)."""
        path = str(tmp_path / "crash.hmdb")
        config = HyperModelConfig(levels=2, seed=3)
        db = OodbDatabase(path)
        db.open()
        gen = DatabaseGenerator(config).generate(db)
        db.commit()
        # Simulate the crash: close raw files without checkpoint/close.
        store = db.store
        store._wal._file.flush()
        store._wal._file.close()
        store._wal._file = None
        store._file._file.close()
        store._file._file = None

        recovered = OodbDatabase(path)
        recovered.open()
        assert recovered.store.stats.recovered_transactions > 0
        verify_database(recovered, gen, content_sample=5).raise_if_failed()
        recovered.close()


class TestSmallBufferPool:
    def test_generation_survives_pool_overcommit(self, tmp_path):
        """A 16-page pool is far smaller than a level-3 commit's dirty
        set: the pool must overcommit during the apply phase (dirty
        pages cannot be evicted before logging) and trim afterwards."""
        db = OodbDatabase(str(tmp_path / "tiny.hmdb"), cache_pages=16)
        db.open()
        config = HyperModelConfig(levels=3, seed=13)
        gen = DatabaseGenerator(config).generate(db)
        db.commit()
        verify_database(db, gen, content_sample=3).raise_if_failed()
        pool = db.store._pool
        assert pool.cached_pages <= pool.capacity  # trimmed back
        assert pool.stats.evictions > 0  # the small pool really churned
        db.close()

        # And the data survives a cold reopen through the same small pool.
        db.open()
        assert db.node_count() == 156
        db.close()


class TestLevel5Scale:
    def test_level5_generates_and_verifies_in_memory(self):
        """The paper's mid-size database: 3 906 nodes, closures of 31."""
        config = HyperModelConfig(levels=5, seed=21)
        db = MemoryDatabase()
        db.open()
        gen = DatabaseGenerator(config).generate(db)
        assert gen.total_nodes == 3906
        assert len(gen.text_uids) == 3100
        assert len(gen.form_uids) == 25
        verify_database(db, gen, content_sample=5).raise_if_failed()
        ops = Operations(db, config)
        start = db.lookup(gen.random_uid_at_level(random.Random(2), 3))
        assert len(ops.closure_1n(start)) == 31
        db.close()


class TestColdWarmShape:
    def test_clientserver_cold_run_pays_network_warm_does_not(self):
        """The core shape the paper's protocol exposes."""
        from repro.backends.clientserver import ClientServerDatabase
        from repro.core.operations import CATALOG
        from repro.harness.protocol import run_operation_sequence

        db = ClientServerDatabase()
        db.open()
        gen = DatabaseGenerator(HyperModelConfig(levels=3, seed=5)).generate(db)
        db.commit()
        result = run_operation_sequence(
            db, CATALOG.get("10"), gen, repetitions=10, seed=6
        )
        assert result.cold.mean > result.warm.mean
        assert result.warm_speedup > 5  # network dominates the cold run
