"""Query-language extensions: count, order by, limit."""

import pytest

from repro.errors import QuerySyntaxError
from repro.query import execute, parse
from repro.query.ast import OrderBy


class TestParsing:
    def test_count_query(self):
        query = parse("count nodes where ten = 5")
        assert query.aggregate == "count"
        assert query.kind == "nodes"

    def test_order_by_defaults_ascending(self):
        query = parse("find nodes order by hundred")
        assert query.order_by == OrderBy("hundred", descending=False)

    def test_order_by_desc(self):
        query = parse("find text where ten > 2 order by million desc")
        assert query.order_by == OrderBy("million", descending=True)

    def test_explicit_asc(self):
        assert parse("find nodes order by ten asc").order_by == OrderBy("ten")

    def test_limit(self):
        assert parse("find nodes limit 10").limit == 10

    def test_full_clause_chain(self):
        query = parse(
            "find nodes where hundred between 1 and 50 "
            "order by uniqueId desc limit 7"
        )
        assert query.predicate is not None
        assert query.order_by.attribute == "uniqueId"
        assert query.limit == 7

    @pytest.mark.parametrize(
        "bad",
        [
            "count nodes limit 5",            # aggregates take no limit
            "count nodes order by ten",       # nor ordering
            "find nodes order ten",           # missing 'by'
            "find nodes order by bogus",      # unknown attribute
            "find nodes limit",               # missing number
            "find nodes limit -3",            # negative
            "count",                          # missing kind
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(QuerySyntaxError):
            parse(bad)


class TestExecution:
    def test_count_matches_find(self, memory_populated):
        db, _gen = memory_populated
        text = "nodes where hundred between 10 and 39"
        counted = execute(db, "count " + text)
        found = execute(db, "find " + text)
        assert counted.count == len(found.refs)
        assert counted.refs == []
        assert counted.plan.endswith("+count")

    def test_count_of_everything(self, memory_populated):
        db, gen = memory_populated
        assert execute(db, "count nodes").count == gen.total_nodes
        assert execute(db, "count text").count == len(gen.text_uids)
        assert execute(db, "count form").count == len(gen.form_uids)

    def test_order_by_sorts_results(self, memory_populated):
        db, _gen = memory_populated
        result = execute(db, "find nodes where ten = 5 order by million")
        millions = [db.get_attribute(r, "million") for r in result]
        assert millions == sorted(millions)

    def test_order_by_desc(self, memory_populated):
        db, _gen = memory_populated
        result = execute(db, "find nodes order by uniqueId desc limit 3")
        uids = [db.get_attribute(r, "uniqueId") for r in result]
        assert uids == [156, 155, 154]

    def test_limit_caps_results(self, memory_populated):
        db, _gen = memory_populated
        result = execute(db, "find nodes limit 5")
        assert len(result.refs) == 5
        assert result.count == 5

    def test_limit_zero(self, memory_populated):
        db, _gen = memory_populated
        assert execute(db, "find nodes limit 0").refs == []

    def test_limit_larger_than_matches(self, memory_populated):
        db, gen = memory_populated
        result = execute(db, "find form limit 100")
        assert len(result.refs) == len(gen.form_uids)

    def test_ordered_limit_gives_top_k(self, memory_populated):
        db, _gen = memory_populated
        result = execute(db, "find nodes order by million desc limit 4")
        top = [db.get_attribute(r, "million") for r in result]
        every = sorted(
            (db.get_attribute(n, "million") for n in db.iter_nodes()),
            reverse=True,
        )
        assert top == every[:4]

    def test_count_uses_index_plan_when_possible(self, memory_populated):
        db, _gen = memory_populated
        result = execute(db, "count nodes where hundred between 1 and 10")
        assert result.plan.startswith("index-range")

    def test_extensions_work_on_every_backend(self, populated):
        db, gen = populated
        assert execute(db, "count nodes").count == gen.total_nodes
        limited = execute(db, "find nodes order by uniqueId limit 2")
        assert [db.get_attribute(r, "uniqueId") for r in limited] == [1, 2]
