"""Slotted pages: inserts, tombstones, growth updates and compaction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import slotted
from repro.engine.pages import PAGE_SIZE
from repro.errors import PageError


@pytest.fixture
def page():
    buffer = bytearray(PAGE_SIZE)
    slotted.init_page(buffer)
    return buffer


class TestBasics:
    def test_fresh_page_is_empty(self, page):
        assert slotted.slot_count(page) == 0
        assert slotted.live_count(page) == 0
        assert slotted.free_space(page) > 4000

    def test_insert_read_roundtrip(self, page):
        slot = slotted.insert(page, b"hello")
        assert slotted.read(page, slot) == b"hello"
        assert slotted.live_count(page) == 1

    def test_slots_are_sequential(self, page):
        slots = [slotted.insert(page, bytes([i])) for i in range(5)]
        assert slots == [0, 1, 2, 3, 4]

    def test_records_iterates_live_only(self, page):
        slotted.insert(page, b"a")
        victim = slotted.insert(page, b"b")
        slotted.insert(page, b"c")
        slotted.delete(page, victim)
        assert [(s, d) for s, d in slotted.records(page)] == [
            (0, b"a"), (2, b"c"),
        ]

    def test_oversized_record_rejected(self, page):
        with pytest.raises(PageError):
            slotted.insert(page, b"x" * (slotted.MAX_RECORD_SIZE + 1))

    def test_page_fills_up(self, page):
        blob = b"y" * 400
        inserted = 0
        while slotted.can_insert(page, len(blob)):
            slotted.insert(page, blob)
            inserted += 1
        assert inserted == 10  # (4096 - 16) // (400 + 4)
        with pytest.raises(PageError):
            slotted.insert(page, blob)


class TestDelete:
    def test_deleted_slot_unreadable(self, page):
        slot = slotted.insert(page, b"bye")
        slotted.delete(page, slot)
        with pytest.raises(PageError):
            slotted.read(page, slot)
        with pytest.raises(PageError):
            slotted.delete(page, slot)

    def test_tombstoned_slot_reused(self, page):
        slotted.insert(page, b"a")
        victim = slotted.insert(page, b"b")
        slotted.delete(page, victim)
        assert slotted.insert(page, b"c") == victim

    def test_out_of_range_slot(self, page):
        with pytest.raises(PageError):
            slotted.read(page, 0)
        with pytest.raises(PageError):
            slotted.delete(page, 3)


class TestUpdate:
    def test_shrinking_update_in_place(self, page):
        slot = slotted.insert(page, b"longer-record")
        assert slotted.update(page, slot, b"tiny")
        assert slotted.read(page, slot) == b"tiny"

    def test_growing_update_same_slot(self, page):
        slot = slotted.insert(page, b"ab")
        assert slotted.update(page, slot, b"much longer now")
        assert slotted.read(page, slot) == b"much longer now"

    def test_growth_beyond_capacity_returns_false(self, page):
        blob = b"z" * 1300
        slots = [slotted.insert(page, blob) for _ in range(3)]
        assert not slotted.update(page, slots[0], b"w" * 3000)
        assert slotted.read(page, slots[0]) == blob  # old record intact

    def test_update_after_fragmentation_compacts(self, page):
        keep = slotted.insert(page, b"k" * 1000)
        hole = slotted.insert(page, b"h" * 1500)
        tail = slotted.insert(page, b"t" * 1000)
        slotted.delete(page, hole)
        # Growing `tail` needs the hole's space, reachable via compaction.
        assert slotted.update(page, tail, b"T" * 2000)
        assert slotted.read(page, keep) == b"k" * 1000
        assert slotted.read(page, tail) == b"T" * 2000


class TestHints:
    """The O(1) header hints: live bytes and the free-slot scan start."""

    def test_fresh_page_hints(self, page):
        live, hint = slotted._hints(page)
        assert live == 0
        assert hint == slotted.NO_FREE_SLOT

    def test_live_bytes_track_inserts_and_deletes(self, page):
        a = slotted.insert(page, b"x" * 100)
        slotted.insert(page, b"y" * 50)
        assert slotted._hints(page)[0] == 150
        slotted.delete(page, a)
        assert slotted._hints(page)[0] == 50

    def test_live_bytes_track_updates(self, page):
        slot = slotted.insert(page, b"x" * 100)
        slotted.update(page, slot, b"y" * 30)
        assert slotted._hints(page)[0] == 30
        slotted.update(page, slot, b"z" * 200)
        assert slotted._hints(page)[0] == 200

    def test_delete_lowers_free_hint(self, page):
        slots = [slotted.insert(page, bytes([i]) * 10) for i in range(5)]
        slotted.delete(page, slots[3])
        assert slotted._hints(page)[1] == 3
        slotted.delete(page, slots[1])
        assert slotted._hints(page)[1] == 1

    def test_reuse_advances_hint_past_live_slots(self, page):
        slots = [slotted.insert(page, bytes([i]) * 10) for i in range(4)]
        slotted.delete(page, slots[1])
        slotted.delete(page, slots[3])
        assert slotted.insert(page, b"r1") == slots[1]
        # The next reuse starts from the hint, skipping live slot 2.
        assert slotted.insert(page, b"r2") == slots[3]
        assert slotted._hints(page)[1] == slotted.NO_FREE_SLOT
        # No tombstones left: the next insert appends a new slot.
        assert slotted.insert(page, b"r3") == 4

    def test_reclaimable_space_grows_by_deleted_bytes(self, page):
        victim = slotted.insert(page, b"v" * 1000)
        slotted.insert(page, b"k" * 500)
        before = slotted._reclaimable_space(page)
        slotted.delete(page, victim)
        # O(1) from the live-bytes hint: the dead record's bytes become
        # reclaimable without rescanning the slot directory.
        assert slotted._reclaimable_space(page) == before + 1000

    def test_compact_resets_hints_exactly(self, page):
        slots = [slotted.insert(page, bytes([i]) * 20) for i in range(6)]
        for victim in (slots[0], slots[2], slots[5]):
            slotted.delete(page, victim)
        slotted.compact(page)
        live, hint = slotted._hints(page)
        assert live == 3 * 20
        assert hint == 0  # slot 0 is the first surviving tombstone


class TestViews:
    def test_read_returns_memoryview(self, page):
        slot = slotted.insert(page, b"zero-copy")
        view = slotted.read(page, slot)
        assert isinstance(view, memoryview)
        assert bytes(view) == b"zero-copy"

    def test_read_into_appends(self, page):
        slot = slotted.insert(page, b"payload")
        out = bytearray(b"prefix:")
        length = slotted.read_into(page, slot, out)
        assert length == len(b"payload")
        assert out == b"prefix:payload"

    def test_records_view_yields_views(self, page):
        slotted.insert(page, b"a")
        slotted.insert(page, b"bb")
        entries = list(slotted.records_view(page))
        assert [(s, bytes(v)) for s, v in entries] == [(0, b"a"), (1, b"bb")]
        assert all(isinstance(v, memoryview) for _, v in entries)


class TestCompaction:
    def test_compaction_preserves_slots_and_data(self, page):
        slots = {slotted.insert(page, bytes([i]) * 50): bytes([i]) * 50
                 for i in range(10)}
        for victim in list(slots)[::2]:
            slotted.delete(page, victim)
            del slots[victim]
        slotted.compact(page)
        for slot, expected in slots.items():
            assert slotted.read(page, slot) == expected

    def test_compaction_reclaims_space(self, page):
        victim = slotted.insert(page, b"v" * 2000)
        slotted.insert(page, b"s" * 1500)
        slotted.delete(page, victim)
        before = slotted.free_space(page)
        slotted.compact(page)
        assert slotted.free_space(page) >= before + 2000 - 4


@settings(max_examples=60, deadline=None)
@given(
    operations=st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete", "update"]),
            st.integers(min_value=0, max_value=19),
            st.binary(min_size=0, max_size=120),
        ),
        max_size=60,
    )
)
def test_property_slotted_page_matches_dict_model(operations):
    """Random op sequences agree with a dictionary reference model."""
    page = bytearray(PAGE_SIZE)
    slotted.init_page(page)
    model = {}
    for op, key, payload in operations:
        if op == "insert":
            if slotted.can_insert(page, len(payload)):
                slot = slotted.insert(page, payload)
                assert slot not in model
                model[slot] = payload
        elif op == "delete" and key in model:
            slotted.delete(page, key)
            del model[key]
        elif op == "update" and key in model:
            if slotted.update(page, key, payload):
                model[key] = payload
    assert dict(slotted.records(page)) == model
