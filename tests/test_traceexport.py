"""The Chrome trace-event exporter and cross-RPC trace propagation.

Two layers under test:

* the exporter's document shape (Perfetto/chrome://tracing loadable:
  ``traceEvents`` with metadata, complete, flow, counter events);
* the end-to-end propagation chain: a clientserver benchmark run must
  yield server spans that carry the client's trace context and are
  linked to the originating ``rpc.*`` spans by flow-event pairs.
"""

import json

import pytest

from repro.backends import create_backend
from repro.core.config import HyperModelConfig
from repro.core.generator import DatabaseGenerator
from repro.core.operations import CATALOG, Operations
from repro.obs import FlightRecorder, Instrumentation
from repro.obs.traceexport import (
    CLIENT_PID,
    SERVER_PID,
    _natural_key,
    build_trace,
    flow_links,
    write_chrome_trace,
)


@pytest.fixture(scope="module")
def clientserver_trace():
    """One cold closure run on the clientserver backend, traced."""
    instr = Instrumentation(span_capacity=65536)
    db = create_backend("clientserver", None, instrumentation=instr)
    db.open()
    config = HyperModelConfig(levels=3, seed=7)
    gen = DatabaseGenerator(config).generate(db)
    db.commit()
    db.close()
    db.open()
    instr.reset()
    spec = CATALOG.get("10")
    root = db.lookup(gen.root_uid)
    spec.run(Operations(db, config), (root,))
    db.close()
    return instr, build_trace(instr)


class TestDocumentShape:
    def test_top_level_keys_and_time_unit(self, clientserver_trace):
        _instr, document = clientserver_trace
        assert set(document) == {
            "traceEvents", "displayTimeUnit", "otherData",
        }
        assert document["displayTimeUnit"] == "ms"
        assert document["otherData"]["span_count"] > 0

    def test_process_metadata_names_both_sides(self, clientserver_trace):
        _instr, document = clientserver_trace
        metadata = [
            e for e in document["traceEvents"] if e["ph"] == "M"
        ]
        assert {e["pid"] for e in metadata} == {CLIENT_PID, SERVER_PID}
        assert all(e["name"] == "process_name" for e in metadata)

    def test_complete_events_have_ts_and_dur_in_microseconds(
        self, clientserver_trace
    ):
        _instr, document = clientserver_trace
        complete = [
            e for e in document["traceEvents"] if e["ph"] == "X"
        ]
        assert complete
        for event in complete:
            assert event["ts"] >= 0
            assert event["dur"] >= 0
            assert event["pid"] in (CLIENT_PID, SERVER_PID)
            assert "sequence" in event["args"]

    def test_server_spans_live_in_the_server_process(
        self, clientserver_trace
    ):
        _instr, document = clientserver_trace
        server = [
            e
            for e in document["traceEvents"]
            if e["ph"] == "X" and e["name"].startswith("server.")
        ]
        assert server
        assert all(e["pid"] == SERVER_PID for e in server)

    def test_counter_events_cover_the_round_trips(self, clientserver_trace):
        instr, document = clientserver_trace
        counter_names = {
            e["name"]
            for e in document["traceEvents"]
            if e["ph"] == "C"
        }
        assert "backend.rpc.round_trips" in counter_names


class TestFlowLinks:
    def test_every_server_span_is_linked_to_a_client_rpc_span(
        self, clientserver_trace
    ):
        _instr, document = clientserver_trace
        events = document["traceEvents"]
        starts = {e["id"]: e for e in events if e["ph"] == "s"}
        finishes = {e["id"]: e for e in events if e["ph"] == "f"}
        assert starts, "no flow start events in the trace"
        # Every flow is a matched s/f pair: client-side start,
        # server-side finish.
        assert set(starts) == set(finishes)
        for flow_id, start in starts.items():
            assert start["pid"] == CLIENT_PID
            assert finishes[flow_id]["pid"] == SERVER_PID
            assert flow_id.startswith("rpc-")

    def test_flow_starts_sit_on_rpc_spans(self, clientserver_trace):
        _instr, document = clientserver_trace
        events = document["traceEvents"]
        rpc_ts = {
            e["ts"]
            for e in events
            if e["ph"] == "X" and e["name"].startswith("rpc.")
        }
        for start in flow_links(document):
            assert start["ts"] in rpc_ts

    def test_server_records_carry_the_client_trace_context(
        self, clientserver_trace
    ):
        instr, _document = clientserver_trace
        records = instr.spans.records()
        server = [r for r in records if r.name.startswith("server.")]
        rpc_sequences = {
            r.sequence for r in records if r.name.startswith("rpc.")
        }
        assert server
        for record in server:
            assert record.remote_trace == instr.trace_id
            assert record.remote_parent in rpc_sequences


class TestWriteChromeTrace:
    def test_written_file_is_json_loadable(self, tmp_path):
        instr = Instrumentation()
        instr.count("engine.buffer.hit", 3)
        with instr.span("outer"):
            with instr.span("inner"):
                pass
        out = tmp_path / "trace.json"
        document = write_chrome_trace(instr, str(out))
        on_disk = json.loads(out.read_text())
        assert on_disk == document
        names = [
            e["name"] for e in on_disk["traceEvents"] if e["ph"] == "X"
        ]
        assert names == ["outer", "inner"]

    def test_empty_instrumentation_exports_a_valid_document(self, tmp_path):
        instr = Instrumentation()
        out = tmp_path / "empty.json"
        document = write_chrome_trace(instr, str(out))
        assert document["otherData"]["span_count"] == 0
        assert json.loads(out.read_text())["traceEvents"] is not None


def _lanes(document):
    """``{tid: thread_name}`` for every lane metadata event."""
    return {
        e["tid"]: e["args"]["name"]
        for e in document["traceEvents"]
        if e["ph"] == "M" and e["name"] == "thread_name"
    }


class TestLaneOrdering:
    def test_natural_key_sorts_shard10_after_shard2(self):
        tags = ["client·shard10", "client·shard2", "client·shard1"]
        ordered = sorted(tags, key=_natural_key)
        assert ordered == [
            "client·shard1", "client·shard2", "client·shard10",
        ]

    def test_client_lanes_are_naturally_ordered_and_sort_indexed(self):
        instr = Instrumentation()
        # Deliberately record clients out of lexicographic-vs-numeric
        # order: lexicographic sorting would put shard10 before shard2.
        for tag in ("client·shard10", "client·shard2", "client·shard1"):
            with instr.span("rpc.fetch", client=tag):
                pass
        document = build_trace(instr)
        lanes = _lanes(document)
        by_tid = [lanes[tid] for tid in sorted(lanes) if "shard" in lanes[tid]]
        assert [name.split("shard")[-1].split(" ")[0] for name in by_tid] == [
            "1", "2", "10",
        ]
        sort_events = [
            e
            for e in document["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_sort_index"
        ]
        assert sort_events
        for event in sort_events:
            assert event["args"]["sort_index"] == event["tid"]

    def test_lane_metadata_is_merged_into_matching_lanes(self):
        instr = Instrumentation()
        with instr.span("rpc.fetch", client="client·shard0"):
            pass
        document = build_trace(
            instr,
            lane_metadata={"shard0": {"placement": "affine", "shards": 2}},
        )
        named = [
            e
            for e in document["traceEvents"]
            if e["ph"] == "M"
            and e["name"] == "thread_name"
            and "shard0" in e["args"]["name"]
        ]
        assert named
        assert named[0]["args"]["placement"] == "affine"
        assert named[0]["args"]["shards"] == 2


class TestTwoPhaseCommitTrace:
    @pytest.fixture(scope="class")
    def sharded_occ_trace(self):
        """Op 12 (mutating closure) on the OCC sharded backend."""
        instr = Instrumentation(span_capacity=65536)
        db = create_backend(
            "clientserver-sharded-occ", None, instrumentation=instr
        )
        db.open()
        config = HyperModelConfig(levels=3, seed=7)
        gen = DatabaseGenerator(config).generate(db)
        db.commit()
        db.close()
        db.open()
        instr.reset()
        spec = CATALOG.get("12")
        root = db.lookup(gen.root_uid)
        spec.run(Operations(db, config), (root,))
        db.commit()
        db.close()
        return build_trace(
            instr, lane_metadata=db.server.trace_lane_metadata()
        )

    def test_2pc_phases_nest_under_the_commit_span(self, sharded_occ_trace):
        spans = [
            e for e in sharded_occ_trace["traceEvents"] if e["ph"] == "X"
        ]
        names = {e["name"] for e in spans}
        assert {"2pc.commit", "2pc.prepare", "2pc.decision", "2pc.deliver"} <= names
        commit = next(e for e in spans if e["name"] == "2pc.commit")
        for phase in ("2pc.prepare", "2pc.decision", "2pc.deliver"):
            child = next(e for e in spans if e["name"] == phase)
            assert child["ts"] >= commit["ts"]
            assert (
                child["ts"] + child["dur"] <= commit["ts"] + commit["dur"]
            )

    def test_flows_arrive_in_at_least_two_shard_lanes(
        self, sharded_occ_trace
    ):
        lanes = _lanes(sharded_occ_trace)
        arrival_lanes = {
            lanes[e["tid"]]
            for e in sharded_occ_trace["traceEvents"]
            if e["ph"] == "f"
        }
        shard_lanes = {name for name in arrival_lanes if "shard" in name}
        assert len(shard_lanes) >= 2

    def test_shard_lanes_carry_placement_metadata(self, sharded_occ_trace):
        shard_lane_meta = [
            e
            for e in sharded_occ_trace["traceEvents"]
            if e["ph"] == "M"
            and e["name"] == "thread_name"
            and "shard" in e["args"].get("name", "")
        ]
        assert shard_lane_meta
        for event in shard_lane_meta:
            assert event["args"]["placement"] == "hash"


class TestRecorderCounterTracks:
    def test_recorder_samples_become_counter_events(self):
        instr = Instrumentation()
        recorder = FlightRecorder(instr)
        instr.count("backend.mp.txn.committed", 4)
        instr.set_gauge("backend.occ.inflight", 2.0)
        recorder.sample(0.5)
        instr.count("backend.mp.txn.committed", 2)
        recorder.sample(1.0)
        document = build_trace(instr, recorder=recorder)
        counters = [
            e for e in document["traceEvents"] if e["ph"] == "C"
        ]
        rate_track = [
            e
            for e in counters
            if e["name"] == "backend.mp.txn.committed (rate/s)"
        ]
        assert len(rate_track) == 2  # one point per sample
        gauge_track = [
            e for e in counters if e["name"] == "backend.occ.inflight"
        ]
        assert gauge_track and gauge_track[0]["args"]["value"] == 2.0
        assert document["otherData"]["timeline_samples"] == 2
        assert document["otherData"]["counter_track_clock"] == "virtual"

    def test_without_recorder_terminal_totals_are_emitted(self):
        instr = Instrumentation()
        instr.count("backend.rpc.round_trips", 7)
        document = build_trace(instr)
        totals = [
            e
            for e in document["traceEvents"]
            if e["ph"] == "C" and e["name"] == "backend.rpc.round_trips"
        ]
        assert len(totals) == 1
        assert document["otherData"]["timeline_samples"] == 0
