"""The persistent class catalog and lazy schema evolution (R4)."""

import pytest

from repro.engine.buffer import BufferPool
from repro.engine.catalog import Catalog, ClassDefinition, FieldDefinition
from repro.engine.heap import HeapFile
from repro.engine.pages import PageFile
from repro.errors import SchemaError


@pytest.fixture
def setup(tmp_path):
    pf = PageFile(str(tmp_path / "cat.db"))
    pool = BufferPool(pf, capacity=16)
    heap = HeapFile(pool, "data")
    catalog = Catalog(heap)
    yield catalog, heap, pf, pool
    pool.flush_all()
    pf.close()


def _node_fields():
    return [
        FieldDefinition("uniqueId"),
        FieldDefinition("ten", default=1),
        FieldDefinition("hundred", default=1),
    ]


class TestClasses:
    def test_define_and_lookup(self, setup):
        catalog, *_ = setup
        definition = catalog.define_class("Node", _node_fields())
        assert definition.class_id == 1
        assert catalog.get("Node") is definition
        assert catalog.get_by_id(1).name == "Node"
        assert catalog.has_class("Node")

    def test_subclass_inherits_fields(self, setup):
        catalog, *_ = setup
        catalog.define_class("Node", _node_fields())
        catalog.define_class(
            "TextNode", [FieldDefinition("text", default="")], base="Node"
        )
        assert catalog.all_field_names("TextNode") == [
            "uniqueId", "ten", "hundred", "text",
        ]
        assert catalog.is_subclass("TextNode", "Node")
        assert not catalog.is_subclass("Node", "TextNode")

    def test_duplicate_class_rejected(self, setup):
        catalog, *_ = setup
        catalog.define_class("Node", _node_fields())
        with pytest.raises(SchemaError):
            catalog.define_class("Node", [])

    def test_unknown_base_rejected(self, setup):
        catalog, *_ = setup
        with pytest.raises(SchemaError):
            catalog.define_class("Orphan", [], base="Ghost")

    def test_field_collision_with_inherited_rejected(self, setup):
        catalog, *_ = setup
        catalog.define_class("Node", _node_fields())
        with pytest.raises(SchemaError):
            catalog.define_class(
                "Sub", [FieldDefinition("ten")], base="Node"
            )

    def test_unknown_lookups_raise(self, setup):
        catalog, *_ = setup
        with pytest.raises(SchemaError):
            catalog.get("Ghost")
        with pytest.raises(SchemaError):
            catalog.get_by_id(99)


class TestEvolution:
    def test_add_field_bumps_version(self, setup):
        catalog, *_ = setup
        catalog.define_class("Node", _node_fields())
        assert catalog.get("Node").version == 1
        catalog.add_field("Node", FieldDefinition("million", default=0))
        assert catalog.get("Node").version == 2
        assert catalog.all_field_names("Node")[-1] == "million"

    def test_add_duplicate_field_rejected(self, setup):
        catalog, *_ = setup
        catalog.define_class("Node", _node_fields())
        with pytest.raises(SchemaError):
            catalog.add_field("Node", FieldDefinition("ten"))

    def test_lazy_upgrade_fills_defaults(self, setup):
        catalog, *_ = setup
        catalog.define_class("Node", _node_fields())
        old_state = {"uniqueId": 1, "ten": 2, "hundred": 3}
        catalog.add_field("Node", FieldDefinition("million", default=42))
        upgraded = catalog.upgrade_state(1, 1, dict(old_state))
        assert upgraded["million"] == 42
        # Already-current states pass through untouched.
        current = {**old_state, "million": 7}
        assert catalog.upgrade_state(1, 2, dict(current)) == current

    def test_upgrade_covers_inherited_additions(self, setup):
        catalog, *_ = setup
        catalog.define_class("Node", _node_fields())
        catalog.define_class("TextNode", [FieldDefinition("text")], base="Node")
        catalog.add_field("TextNode", FieldDefinition("language", default="en"))
        text_id = catalog.get("TextNode").class_id
        upgraded = catalog.upgrade_state(text_id, 1, {"uniqueId": 1})
        assert upgraded["language"] == "en"


class TestPersistence:
    def test_catalog_survives_reopen(self, tmp_path):
        path = str(tmp_path / "persist.db")
        pf = PageFile(path)
        pool = BufferPool(pf, capacity=16)
        catalog = Catalog(HeapFile(pool, "data"))
        catalog.define_class("Node", _node_fields())
        catalog.define_class("TextNode", [FieldDefinition("text")], base="Node")
        catalog.add_field("Node", FieldDefinition("extra", default=5))
        pool.flush_all()
        pf.sync()
        pf.close()

        pf2 = PageFile(path)
        catalog2 = Catalog(HeapFile(BufferPool(pf2, capacity=16), "data"))
        assert catalog2.class_names() == ["Node", "TextNode"]
        assert catalog2.get("Node").version == 2
        assert catalog2.all_field_names("TextNode") == [
            "uniqueId", "ten", "hundred", "extra", "text",
        ]
        # Class ids keep incrementing after reload.
        catalog2.define_class("FormNode", [], base="Node")
        assert catalog2.get("FormNode").class_id == 3
        pf2.close()

    def test_definition_serialization_roundtrip(self):
        definition = ClassDefinition(
            5, "X", "Base", [FieldDefinition("f", default=3, since_version=2)], 2
        )
        clone = ClassDefinition.from_dict(definition.to_dict())
        assert clone == definition
