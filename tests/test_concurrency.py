"""Workspaces (R9), optimistic concurrency (R8) and the scenarios."""

import os

import pytest

from repro.backends.memory import MemoryDatabase
from repro.concurrency import (
    SharedStore,
    run_conflicting_scenario,
    run_cooperative_scenario,
)
from repro.concurrency.optimistic import OptimisticCoordinator
from repro.core.generator import DatabaseGenerator
from repro.core.text import VERSION_2
from repro.engine.catalog import FieldDefinition
from repro.engine.store import ObjectStore
from repro.errors import (
    CheckOutConflictError,
    ConflictError,
    TransactionError,
    WorkspaceError,
)


@pytest.fixture
def shared(memory_populated):
    db, gen = memory_populated
    return SharedStore(db), db, gen


class TestWorkspaces:
    def test_check_out_reserves(self, shared):
        store, _db, gen = shared
        alice = store.workspace("alice")
        uid = gen.text_uids[0]
        alice.check_out(uid)
        assert store.holder_of(uid) == "alice"
        assert alice.checked_out == [uid]

    def test_conflicting_check_out_rejected(self, shared):
        store, _db, gen = shared
        alice, bob = store.workspace("alice"), store.workspace("bob")
        uid = gen.text_uids[0]
        alice.check_out(uid)
        with pytest.raises(CheckOutConflictError):
            bob.check_out(uid)

    def test_re_check_out_by_holder_is_fine(self, shared):
        store, _db, gen = shared
        alice = store.workspace("alice")
        uid = gen.text_uids[0]
        alice.check_out(uid)
        alice.check_out(uid)
        assert store.checked_out_count() == 1

    def test_private_edits_invisible_until_check_in(self, shared):
        store, db, gen = shared
        alice = store.workspace("alice")
        uid = gen.text_uids[0]
        original = db.get_text(db.lookup(uid))
        alice.check_out(uid)
        alice.set_text(uid, "version1 private version1 draft version1")
        # Shared state unchanged; the workspace sees its own draft.
        assert db.get_text(db.lookup(uid)) == original
        assert "private" in alice.get_text(uid)
        published = alice.check_in()
        assert published == [uid]
        assert "private" in db.get_text(db.lookup(uid))

    def test_check_in_releases_reservations(self, shared):
        store, _db, gen = shared
        alice = store.workspace("alice")
        uid = gen.text_uids[0]
        alice.check_out(uid)
        alice.check_in()
        assert store.holder_of(uid) is None
        bob = store.workspace("bob")
        bob.check_out(uid)  # now available

    def test_abandon_discards_edits(self, shared):
        store, db, gen = shared
        alice = store.workspace("alice")
        uid = gen.text_uids[0]
        original = db.get_text(db.lookup(uid))
        alice.check_out(uid)
        alice.set_text(uid, "version1 gone version1 soon version1")
        alice.abandon()
        assert db.get_text(db.lookup(uid)) == original
        assert store.checked_out_count() == 0

    def test_editing_without_check_out_rejected(self, shared):
        store, _db, gen = shared
        alice = store.workspace("alice")
        with pytest.raises(WorkspaceError):
            alice.set_text(gen.text_uids[0], "nope")

    def test_attribute_and_bitmap_edits(self, shared):
        store, db, gen = shared
        alice = store.workspace("alice")
        text_uid, form_uid = gen.text_uids[0], gen.form_uids[0]
        alice.check_out(text_uid)
        alice.check_out(form_uid)
        alice.set_attribute(text_uid, "ten", 9)
        alice.edit_bitmap(form_uid).invert_rect(0, 0, 4, 4)
        assert alice.dirty_count == 2
        alice.check_in()
        assert db.get_attribute(db.lookup(text_uid), "ten") == 9
        assert db.get_bitmap(db.lookup(form_uid)).popcount() == 16

    def test_clean_drafts_not_published(self, shared):
        store, _db, gen = shared
        alice = store.workspace("alice")
        alice.check_out(gen.text_uids[0])
        assert alice.check_in() == []


class TestScenarios:
    def test_cooperative_scenario_publishes_everything(self, memory_populated):
        db, gen = memory_populated
        result = run_cooperative_scenario(db, gen, users=3, nodes_per_user=2)
        assert result.conflicts == 0
        assert result.total_published == 6
        for user_published in result.published:
            for uid in user_published:
                assert VERSION_2 in db.get_text(db.lookup(uid))

    def test_conflicting_scenario_detects_the_race(self, memory_populated):
        db, gen = memory_populated
        result = run_conflicting_scenario(db, gen)
        assert result.conflicts == 1
        assert result.total_published == 1

    def test_scenario_requires_enough_nodes(self, memory_populated):
        db, gen = memory_populated
        with pytest.raises(ValueError):
            run_cooperative_scenario(db, gen, users=100, nodes_per_user=10)


class TestWorkspacesOverPersistentBackend:
    def test_check_in_is_durable_on_the_oodb(self, tmp_path):
        """Workspace publication commits through the engine and
        survives a close/reopen (R9 on a persistent store)."""
        import os

        from repro.backends.oodb import OodbDatabase
        from repro.core.config import HyperModelConfig
        from repro.core.generator import DatabaseGenerator

        path = os.path.join(str(tmp_path), "ws.hmdb")
        db = OodbDatabase(path)
        db.open()
        gen = DatabaseGenerator(HyperModelConfig(levels=2, seed=1)).generate(db)
        db.commit()

        shared = SharedStore(db)
        alice = shared.workspace("alice")
        uid = gen.text_uids[0]
        alice.check_out(uid)
        alice.set_text(uid, "version1 durable version1 edit version1")
        alice.check_in()
        db.close()

        reopened = OodbDatabase(path)
        reopened.open()
        assert "durable" in reopened.get_text(reopened.lookup(uid))
        reopened.close()


@pytest.fixture
def opt(tmp_path):
    store = ObjectStore(os.path.join(str(tmp_path), "opt.hmdb"),
                        sync_commits=False)
    store.open()
    store.define_class("Doc", [FieldDefinition("body", default="")])
    oid = store.new("Doc", {"body": "v0"})
    store.commit()
    coordinator = OptimisticCoordinator(store)
    yield coordinator, store, oid
    store.close()


class TestOptimistic:
    def test_disjoint_transactions_both_commit(self, opt):
        coordinator, store, oid = opt
        other = store.new("Doc", {"body": "other"})
        store.commit()
        t1, t2 = coordinator.begin(), coordinator.begin()
        t1.write(oid, {"body": "t1"})
        t2.write(other, {"body": "t2"})
        t1.commit()
        t2.commit()
        assert store.get(oid)["body"] == "t1"
        assert store.get(other)["body"] == "t2"
        assert coordinator.conflicts == 0

    def test_first_committer_wins(self, opt):
        coordinator, store, oid = opt
        t1, t2 = coordinator.begin(), coordinator.begin()
        t1.read(oid)
        t2.read(oid)
        t1.write(oid, {"body": "winner"})
        t1.commit()
        t2.write(oid, {"body": "loser"})
        with pytest.raises(ConflictError):
            t2.commit()
        assert store.get(oid)["body"] == "winner"
        assert coordinator.conflict_rate == 0.5

    def test_read_only_transaction_never_conflicts_itself(self, opt):
        coordinator, _store, oid = opt
        t1 = coordinator.begin()
        t1.read(oid)
        t1.commit()  # no writes: validation passes trivially

    def test_write_implies_read_validation(self, opt):
        coordinator, store, oid = opt
        t1, t2 = coordinator.begin(), coordinator.begin()
        t1.write(oid, {"body": "a"})  # implies a validated read
        t2.write(oid, {"body": "b"})
        t1.commit()
        with pytest.raises(ConflictError):
            t2.commit()

    def test_own_writes_visible(self, opt):
        coordinator, _store, oid = opt
        txn = coordinator.begin()
        txn.write(oid, {"body": "draft"})
        assert txn.read(oid)["body"] == "draft"
        txn.abort()

    def test_finished_transaction_unusable(self, opt):
        coordinator, _store, oid = opt
        txn = coordinator.begin()
        txn.abort()
        with pytest.raises(TransactionError):
            txn.read(oid)
        with pytest.raises(TransactionError):
            txn.commit()

    def test_abort_discards_buffer(self, opt):
        coordinator, store, oid = opt
        txn = coordinator.begin()
        txn.write(oid, {"body": "discarded"})
        txn.abort()
        assert store.get(oid)["body"] == "v0"
