"""The buffer pool: pinning, LRU eviction, write-back and cold resets."""

import pytest

from repro.engine.buffer import BufferPool
from repro.engine.pages import PAGE_SIZE, PageFile
from repro.errors import PageError


@pytest.fixture
def pool(tmp_path):
    pf = PageFile(str(tmp_path / "b.db"))
    pool = BufferPool(pf, capacity=4)
    yield pool
    pf.close()


def _fill(pool, count):
    pids = []
    for _ in range(count):
        pid = pool.new_page()
        pids.append(pid)
    return pids


class TestBasics:
    def test_capacity_validated(self, tmp_path):
        pf = PageFile(str(tmp_path / "c.db"))
        with pytest.raises(PageError):
            BufferPool(pf, capacity=0)
        pf.close()

    def test_get_pins_and_caches(self, pool):
        (pid,) = _fill(pool, 1)
        pool.flush_all()
        pool.drop_cache()
        data = pool.get(pid)
        assert len(data) == PAGE_SIZE
        assert pool.stats.misses == 1
        pool.unpin(pid)
        pool.get(pid)
        pool.unpin(pid)
        assert pool.stats.hits == 1

    def test_unpin_without_pin_rejected(self, pool):
        (pid,) = _fill(pool, 1)
        with pytest.raises(PageError):
            pool.unpin(pid)

    def test_dirty_write_back_on_eviction(self, pool):
        (pid,) = _fill(pool, 1)
        page = pool.get(pid)
        page[0] = 0xEE
        pool.unpin(pid, dirty=True)
        pool.flush_all()
        pool.drop_cache()
        assert pool.get(pid)[0] == 0xEE
        pool.unpin(pid)


class TestGetMany:
    def test_batch_equivalent_to_loop_of_gets(self, pool):
        pids = _fill(pool, 3)
        for pid in pids:
            page = pool.get(pid)
            page[0] = pid & 0xFF
            pool.unpin(pid, dirty=True)
        pool.flush_all()
        pool.drop_cache()
        frames = pool.get_many(pids)
        assert sorted(frames) == sorted(pids)
        for pid in pids:
            assert frames[pid][0] == pid & 0xFF
            pool.unpin(pid)

    def test_counters_aggregate_hits_and_misses(self, pool):
        pids = _fill(pool, 3)
        pool.flush_all()
        pool.drop_cache()
        pool.get(pids[0])
        pool.unpin(pids[0])
        before_hits, before_misses = pool.stats.hits, pool.stats.misses
        frames = pool.get_many(pids)
        assert pool.stats.hits == before_hits + 1
        assert pool.stats.misses == before_misses + 2
        for pid in frames:
            pool.unpin(pid)

    def test_duplicates_double_pin(self, pool):
        (pid,) = _fill(pool, 1)
        frames = pool.get_many([pid, pid, pid])
        assert list(frames) == [pid]
        assert pool.pin_counts()[pid] == 3
        for _ in range(3):
            pool.unpin(pid)
        assert pid not in pool.pin_counts()


class TestFrameLsn:
    def test_absent_page_has_no_lsn(self, pool):
        (pid,) = _fill(pool, 1)
        pool.flush_all()
        pool.drop_cache()
        assert pool.frame_lsn(pid) is None

    def test_dirty_unpin_bumps_lsn(self, pool):
        (pid,) = _fill(pool, 1)
        page = pool.get(pid)
        before = pool.frame_lsn(pid)
        page[0] = 1
        pool.unpin(pid, dirty=True)
        assert pool.frame_lsn(pid) > before

    def test_clean_unpin_keeps_lsn(self, pool):
        (pid,) = _fill(pool, 1)
        pool.get(pid)
        before = pool.frame_lsn(pid)
        pool.unpin(pid)
        assert pool.frame_lsn(pid) == before

    def test_reload_after_eviction_gets_fresh_lsn(self, pool):
        """The clock is pool-global: an evicted-and-reloaded page can
        never alias a stale (pid, lsn) cache key."""
        (pid,) = _fill(pool, 1)
        pool.get(pid)
        first = pool.frame_lsn(pid)
        pool.unpin(pid)
        pool.flush_all()
        pool.drop_cache()
        pool.get(pid)
        second = pool.frame_lsn(pid)
        pool.unpin(pid)
        assert second != first


class TestEviction:
    def test_clean_lru_page_evicted_first(self, pool):
        pids = _fill(pool, 4)
        pool.flush_all()  # everything clean
        # Touch pids[1] so pids[0] is LRU.
        pool.get(pids[1])
        pool.unpin(pids[1])
        pool.new_page()  # forces one eviction
        cached = set(pool.cached_page_ids())
        assert pids[0] not in cached
        assert pids[1] in cached

    def test_dirty_pages_never_evicted(self, pool):
        pids = _fill(pool, 4)  # all dirty (new pages)
        pool.new_page()  # no clean victim: pool overcommits
        assert pool.cached_pages == 5
        assert pool.stats.evictions == 0

    def test_trim_restores_capacity_after_flush(self, pool):
        _fill(pool, 6)
        assert pool.cached_pages == 6
        pool.flush_all()
        assert pool.cached_pages <= pool.capacity

    def test_pinned_pages_never_evicted(self, pool):
        pids = _fill(pool, 4)
        pool.flush_all()
        pool.get(pids[0])  # pin and keep
        for _ in range(4):
            pool.new_page()
        assert pids[0] in set(pool.cached_page_ids())
        pool.unpin(pids[0])


class TestVictimSelectionOrder:
    """Regression tests for the O(1) clean-LRU victim index.

    Victim choice must be exact least-recently-used over clean,
    unpinned frames — and the ``_clean_lru`` shadow index must never
    hand back a frame that was re-pinned or re-dirtied after it was
    enrolled.
    """

    def test_evictions_follow_lru_order_across_multiple_evictions(
        self, pool
    ):
        pids = _fill(pool, 4)
        pool.flush_all()  # all clean, LRU order == creation order
        # Recency now: pids[0] oldest .. pids[3] newest.  Reverse it.
        for pid in reversed(pids):
            pool.get(pid)
            pool.unpin(pid)
        # Recency now: pids[3] oldest .. pids[0] newest.
        evicted_order = []
        for _ in range(3):
            pool.new_page()  # each allocation evicts exactly one clean page
            cached = set(pool.cached_page_ids())
            gone = [p for p in pids if p not in cached and p not in evicted_order]
            evicted_order.extend(gone)
        assert evicted_order == [pids[3], pids[2], pids[1]]

    def test_repinned_frame_is_skipped_not_evicted(self, pool):
        pids = _fill(pool, 4)
        pool.flush_all()
        # pids[0] is LRU-first, but pin it again: the stale clean-LRU
        # entry must be skipped and pids[1] evicted instead.
        pool.get(pids[0])
        pool.new_page()
        cached = set(pool.cached_page_ids())
        assert pids[0] in cached
        assert pids[1] not in cached
        pool.unpin(pids[0])

    def test_redirtied_frame_is_skipped_not_evicted(self, pool):
        pids = _fill(pool, 4)
        pool.flush_all()
        page = pool.get(pids[0])
        page[0] = 0xAB
        pool.unpin(pids[0], dirty=True)  # now dirty: not evictable
        pool.new_page()
        cached = set(pool.cached_page_ids())
        assert pids[0] in cached  # dirty page survived
        assert pids[1] not in cached  # next clean LRU went instead


class TestPrefetch:
    def test_prefetch_loads_pages_without_pinning(self, pool):
        pids = _fill(pool, 3)
        pool.flush_all()
        pool.drop_cache()
        loaded = pool.prefetch(pids)
        assert loaded == 3
        assert set(pool.cached_page_ids()) == set(pids)
        assert pool.pin_counts() == {}  # nothing pinned

    def test_prefetch_skips_resident_pages(self, pool):
        pids = _fill(pool, 3)
        pool.flush_all()
        pool.drop_cache()
        pool.prefetch(pids[:2])
        assert pool.prefetch(pids) == 1  # only pids[2] still missing

    def test_prefetch_does_not_touch_demand_stats(self, pool):
        pids = _fill(pool, 2)
        pool.flush_all()
        pool.drop_cache()
        pool.stats.reset()
        pool.prefetch(pids)
        assert pool.stats.hits == 0
        assert pool.stats.misses == 0
        pool.get(pids[0])  # demand access hits the prefetched frame
        pool.unpin(pids[0])
        assert pool.stats.hits == 1
        assert pool.stats.misses == 0

    def test_prefetch_capped_at_capacity(self, pool):
        pids = _fill(pool, 6)  # capacity is 4
        pool.flush_all()
        pool.drop_cache()
        loaded = pool.prefetch(pids)
        assert loaded == pool.capacity
        assert pool.cached_pages <= pool.capacity

    def test_prefetched_frames_are_evictable(self, pool):
        pids = _fill(pool, 4)
        pool.flush_all()
        pool.drop_cache()
        pool.prefetch(pids)
        pool.new_page()  # must evict a prefetched (clean, unpinned) frame
        assert pool.cached_pages <= pool.capacity + 1
        assert pool.stats.evictions >= 1


class TestColdReset:
    def test_drop_cache_empties_and_flushes(self, pool):
        (pid,) = _fill(pool, 1)
        page = pool.get(pid)
        page[1] = 0x77
        pool.unpin(pid, dirty=True)
        pool.drop_cache()
        assert pool.cached_pages == 0
        assert pool.get(pid)[1] == 0x77  # survived via write-back
        pool.unpin(pid)

    def test_drop_cache_rejected_while_pinned(self, pool):
        (pid,) = _fill(pool, 1)
        pool.get(pid)
        with pytest.raises(PageError):
            pool.drop_cache()
        pool.unpin(pid)

    def test_stats_reset(self, pool):
        (pid,) = _fill(pool, 1)
        pool.get(pid)
        pool.unpin(pid)
        pool.stats.reset()
        assert pool.stats.hits == 0
        assert pool.stats.hit_ratio == 0.0


class TestDirtySnapshot:
    def test_dirty_pages_snapshot(self, pool):
        pids = _fill(pool, 2)
        pool.flush_all()
        page = pool.get(pids[0])
        page[2] = 0x33
        pool.unpin(pids[0], dirty=True)
        dirty = pool.dirty_pages()
        assert set(dirty) == {pids[0]}
        assert dirty[pids[0]][2] == 0x33

    def test_free_page_removes_from_cache(self, pool):
        pids = _fill(pool, 2)
        pool.flush_all()
        pool.free_page(pids[0])
        assert pids[0] not in set(pool.cached_page_ids())
