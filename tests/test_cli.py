"""The ``hypermodel`` CLI: every subcommand end to end."""

import pytest

from repro.cli import main


class TestInfo:
    def test_prints_sizing_table(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "19531" in out
        assert "781" in out


class TestGenerate:
    def test_memory_backend(self, capsys):
        assert main(["generate", "--level", "2"]) == 0
        out = capsys.readouterr().out
        assert "generated 31 nodes" in out
        assert "node-leaf" in out

    def test_oodb_backend_to_file(self, capsys, tmp_path):
        path = str(tmp_path / "cli.hmdb")
        assert main(
            ["generate", "--backend", "oodb", "--path", path, "--level", "2"]
        ) == 0
        assert "generated 31 nodes" in capsys.readouterr().out


class TestVerify:
    def test_verify_passes(self, capsys):
        assert main(["verify", "--level", "2"]) == 0
        assert "OK:" in capsys.readouterr().out

    def test_verify_sqlite(self, capsys):
        assert main(["verify", "--backend", "sqlite", "--level", "2"]) == 0
        assert "OK:" in capsys.readouterr().out


class TestRun:
    def test_small_grid_with_save(self, capsys, tmp_path):
        save = str(tmp_path / "results.json")
        code = main(
            [
                "run",
                "--backends", "memory",
                "--levels", "2",
                "--ops", "01,05A",
                "--repetitions", "2",
                "--save", save,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "nameLookup" in out
        assert "groupLookup1N" in out
        from repro.harness import ResultSet

        assert len(ResultSet.load(save)) == 2


class TestBench:
    def test_counters_prints_headline_counter_table(self, capsys):
        code = main(
            [
                "bench",
                "--backends", "memory",
                "--levels", "2",
                "--ops", "01,09",
                "--repetitions", "2",
                "--counters",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Counters: memory" in out
        # The headline rows print even when zero on this backend.
        assert "engine.buffer.hit" in out
        assert "engine.buffer.miss" in out
        assert "backend.rpc.round_trips" in out
        # The memory backend's coarse call counters are nonzero.
        assert "backend.op.reads" in out

    def test_clientserver_round_trips_are_nonzero(self, capsys):
        code = main(
            [
                "bench",
                "--backends", "clientserver",
                "--levels", "2",
                "--ops", "01",
                "--repetitions", "2",
                "--counters",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        table = out[out.index("Counters: clientserver"):]
        rpc_row = next(
            line for line in table.splitlines()
            if "backend.rpc.round_trips" in line
        )
        values = [tok for tok in rpc_row.split() if tok.replace(".", "").isdigit()]
        assert any(float(v) > 0 for v in values)

    def test_without_counters_prints_no_counter_tables(self, capsys):
        code = main(
            [
                "bench",
                "--backends", "memory",
                "--levels", "2",
                "--ops", "01",
                "--repetitions", "2",
            ]
        )
        assert code == 0
        assert "Counters:" not in capsys.readouterr().out


class TestQuery:
    def test_query_with_index_plan(self, capsys):
        code = main(
            ["query", "--level", "2",
             "find nodes where hundred between 1 and 10"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "plan: index-range(hundred in 1..10)" in out
        assert "matched" in out

    def test_query_scan_plan(self, capsys):
        assert main(["query", "--level", "2", "find text where ten = 5"]) == 0
        assert "plan: scan" in capsys.readouterr().out


class TestBenchClosure:
    def test_writes_json_and_prints_summary(self, capsys, tmp_path):
        import json

        out_path = str(tmp_path / "BENCH_closure.json")
        code = main(
            ["bench-closure", "--level", "2", "--repetitions", "2",
             "--backends", "memory,clientserver", "--out", out_path]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "closure batch traversal" in out
        assert f"results written to {out_path}" in out
        with open(out_path, encoding="utf-8") as handle:
            document = json.load(handle)
        assert document["level"] == 2
        assert set(document["cells"]) == {"memory", "clientserver"}
        for backend, per_op in document["cells"].items():
            assert set(per_op) == {"10", "11", "12"}
            for cell in per_op.values():
                assert cell["nodes"] == 31  # whole level-2 structure
                assert cell["median_ms_per_node"] >= 0.0
        # The point of the batch layer: closing a 31-node closure on
        # the client/server backend costs O(depth) round trips.
        cs10 = document["cells"]["clientserver"]["10"]
        assert 0 < cs10["counters"]["backend.rpc.round_trips"] <= 5


class TestBenchMultiuser:
    def test_writes_json_and_prints_summary(self, capsys, tmp_path):
        import json

        out_path = str(tmp_path / "BENCH_multiuser.json")
        code = main(
            ["bench-multiuser", "--clients", "1,4", "--conflict", "0.0,0.5",
             "--transactions", "4", "--out", out_path]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "multi-user optimistic grid" in out
        assert f"results written to {out_path}" in out
        with open(out_path, encoding="utf-8") as handle:
            document = json.load(handle)
        assert document["benchmark"] == "multiuser"
        assert set(document["cells"]) == {"clients-1", "clients-4"}
        control = document["cells"]["clients-4"]["conflict-0"]
        assert control["aborted"] == 0
        assert document["wal"]["per_commit"]["fsyncs_per_commit"] == 1.0

    def test_trace_export_has_client_lanes(self, capsys, tmp_path):
        import json

        out_path = str(tmp_path / "BENCH_multiuser.json")
        trace_path = str(tmp_path / "mp_trace.json")
        code = main(
            ["bench-multiuser", "--clients", "2", "--conflict", "0.0",
             "--transactions", "2", "--out", out_path,
             "--trace", trace_path]
        )
        assert code == 0
        assert "one lane per client" in capsys.readouterr().out
        with open(trace_path, encoding="utf-8") as handle:
            trace = json.load(handle)
        lane_names = {
            event["args"]["name"]
            for event in trace["traceEvents"]
            if event.get("ph") == "M" and event["name"] == "thread_name"
        }
        assert any("w00" in name for name in lane_names)
        assert any("w01" in name for name in lane_names)


class TestRubenstein:
    def test_baseline_runs(self, capsys):
        code = main(
            ["rubenstein", "--persons", "50", "--documents", "50",
             "--repetitions", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        for name in ("nameLookup", "sequentialScan", "databaseOpen"):
            assert name in out

    def test_memory_backend(self, capsys):
        assert main(
            ["rubenstein", "--backend", "memory", "--persons", "30",
             "--documents", "30", "--repetitions", "2"]
        ) == 0
        assert "memory" in capsys.readouterr().out


class TestMaintain:
    @pytest.fixture
    def db_path(self, tmp_path):
        path = str(tmp_path / "m.hmdb")
        assert main(
            ["generate", "--backend", "oodb", "--path", path, "--level", "2"]
        ) == 0
        return path

    def test_vacuum(self, capsys, db_path):
        capsys.readouterr()
        assert main(["maintain", "vacuum", db_path]) == 0
        assert "reclaimed" in capsys.readouterr().out

    def test_backup(self, capsys, db_path, tmp_path):
        target = str(tmp_path / "snap.hmdb")
        assert main(["maintain", "backup", db_path, "--target", target]) == 0
        import os

        assert os.path.exists(target)

    def test_backup_without_target_fails(self, capsys, db_path):
        assert main(["maintain", "backup", db_path]) == 1

    def test_gc_from_the_root(self, capsys, db_path):
        capsys.readouterr()
        assert main(["maintain", "gc", db_path, "--roots", "1"]) == 0
        out = capsys.readouterr().out
        assert "0 collected" in out  # everything reachable from the root
        assert "31 live" in out


class TestR7:
    def test_prints_assessment(self, capsys):
        assert main(["r7"]) == 0
        out = capsys.readouterr().out
        assert "lan-1990" in out
        assert "wan" in out
        assert "needed" in out


class TestQueryExtensionsViaCli:
    def test_count_query(self, capsys):
        assert main(["query", "--level", "2", "count nodes"]) == 0
        assert "matched 31 nodes" in capsys.readouterr().out


class TestParsing:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
