"""The clustering policy object and its locality metrics."""

import pytest

from repro.engine.clustering import (
    ClusteringPolicy,
    ClusterStats,
    clustering_factor,
    run_length_locality,
)


class TestPolicy:
    def test_enabled_policy_passes_hints_and_counts(self):
        policy = ClusteringPolicy(enabled=True)
        assert policy.hint_for_new(42) == 42
        assert policy.should_relocate(42)
        assert policy.hints_applied == 1
        assert policy.relocations == 1

    def test_disabled_policy_suppresses_everything(self):
        policy = ClusteringPolicy(enabled=False)
        assert policy.hint_for_new(42) is None
        assert not policy.should_relocate(42)
        assert policy.hints_applied == 0

    def test_no_target_means_no_hint(self):
        policy = ClusteringPolicy(enabled=True)
        assert policy.hint_for_new(None) is None
        assert not policy.should_relocate(None)


class TestClusteringFactor:
    def test_perfectly_clustered(self):
        stats = clustering_factor([1, 1, 1, 1], objects_per_page_estimate=4)
        assert stats == ClusterStats(objects=4, distinct_pages=1, min_pages=1)
        assert stats.factor == 1.0

    def test_fully_scattered(self):
        stats = clustering_factor([1, 2, 3, 4], objects_per_page_estimate=4)
        assert stats.distinct_pages == 4
        assert stats.factor == 4.0

    def test_minimum_respects_capacity(self):
        stats = clustering_factor([1] * 10, objects_per_page_estimate=4)
        assert stats.min_pages == 3  # ceil(10 / 4)

    def test_empty_input(self):
        stats = clustering_factor([], objects_per_page_estimate=4)
        assert stats.objects == 0
        assert stats.factor == 1.0

    def test_bad_estimate_rejected(self):
        with pytest.raises(ValueError):
            clustering_factor([1], objects_per_page_estimate=0)


class TestRunLengthLocality:
    def test_all_same_page(self):
        assert run_length_locality([3, 3, 3, 3]) == 1.0

    def test_alternating_pages(self):
        assert run_length_locality([1, 2, 1, 2]) == 0.0

    def test_mixed(self):
        assert run_length_locality([1, 1, 2, 2]) == pytest.approx(2 / 3)

    def test_degenerate_inputs(self):
        assert run_length_locality([]) == 1.0
        assert run_length_locality([5]) == 1.0
