"""Text-node content: the section 5.1 contract and the op 16 edit."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.core.text import (
    VERSION_1,
    VERSION_2,
    edit_text_backward,
    edit_text_forward,
    generate_text,
    is_valid_generated_text,
    version_marker_count,
)


class TestGeneration:
    def test_word_count_in_range(self):
        rng = random.Random(1)
        for _ in range(50):
            words = generate_text(rng).split(" ")
            assert 10 <= len(words) <= 100

    def test_version1_at_first_middle_last(self):
        rng = random.Random(2)
        for _ in range(50):
            words = generate_text(rng).split(" ")
            assert words[0] == VERSION_1
            assert words[len(words) // 2] == VERSION_1
            assert words[-1] == VERSION_1

    def test_other_words_lowercase_and_bounded(self):
        rng = random.Random(3)
        words = generate_text(rng, max_word_length=10).split(" ")
        for word in words:
            if word != VERSION_1:
                assert 1 <= len(word) <= 10
                assert word.islower()

    def test_generated_text_is_valid(self):
        rng = random.Random(4)
        for _ in range(100):
            assert is_valid_generated_text(generate_text(rng))

    def test_deterministic_for_seed(self):
        assert generate_text(random.Random(99)) == generate_text(random.Random(99))

    def test_custom_bounds_respected(self):
        rng = random.Random(5)
        words = generate_text(rng, min_words=3, max_words=3, max_word_length=2).split(" ")
        assert len(words) == 3
        assert words == [VERSION_1, VERSION_1, VERSION_1]


class TestEditing:
    def test_forward_is_one_char_longer_per_marker(self):
        rng = random.Random(6)
        text = generate_text(rng)
        markers = version_marker_count(text)
        edited = edit_text_forward(text)
        assert len(edited) == len(text) + markers
        assert VERSION_2 in edited
        assert VERSION_1 not in edited.split(" ")

    def test_roundtrip_restores_exactly(self):
        rng = random.Random(7)
        for _ in range(25):
            text = generate_text(rng)
            assert edit_text_backward(edit_text_forward(text)) == text

    def test_marker_count_ignores_substrings(self):
        assert version_marker_count("version1 xversion1 version1x version1") == 2

    def test_forward_on_text_without_marker_is_identity(self):
        assert edit_text_forward("plain words only") == "plain words only"


class TestValidation:
    def test_rejects_wrong_word_count(self):
        text = " ".join([VERSION_1] * 3)
        assert not is_valid_generated_text(text, min_words=10)

    def test_rejects_missing_markers(self):
        body = " ".join(["abc"] * 20)
        assert not is_valid_generated_text(body)

    def test_rejects_uppercase_words(self):
        words = [VERSION_1] + ["ABC"] * 18 + [VERSION_1]
        words[len(words) // 2] = VERSION_1
        assert not is_valid_generated_text(" ".join(words))

    def test_rejects_overlong_words(self):
        words = [VERSION_1] + ["a" * 11] * 18 + [VERSION_1]
        words[len(words) // 2] = VERSION_1
        assert not is_valid_generated_text(" ".join(words), max_word_length=10)


@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_generated_text_always_valid_and_roundtrips(seed):
    """Any seed yields contract-valid text whose edit cycle is identity."""
    text = generate_text(random.Random(seed))
    assert is_valid_generated_text(text)
    assert edit_text_backward(edit_text_forward(text)) == text


@given(
    words=st.lists(
        st.text(alphabet="abcdefghij", min_size=1, max_size=8), min_size=1, max_size=30
    )
)
def test_property_edit_never_creates_or_loses_nonmarker_words(words):
    """Editing only rewrites the markers, never surrounding words."""
    text = " ".join(words)
    edited = edit_text_forward(text)
    restored = edit_text_backward(edited)
    non_markers = [w for w in text.split(" ") if w != VERSION_1]
    assert [w for w in restored.split(" ") if w != VERSION_1] == non_markers
