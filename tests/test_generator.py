"""The section 5.2 generator: structure, determinism, statistics."""

import random

import pytest

from repro.backends.memory import MemoryDatabase
from repro.core.config import HyperModelConfig
from repro.core.generator import DatabaseGenerator
from repro.core.model import NodeKind


def _generate(config):
    db = MemoryDatabase()
    db.open()
    gen = DatabaseGenerator(config).generate(db)
    return db, gen


class TestStructure:
    def test_level_index_counts(self, level3_config):
        _db, gen = _generate(level3_config)
        assert [len(level) for level in gen.uids_by_level] == [1, 5, 25, 125]
        assert gen.total_nodes == 156

    def test_unique_ids_are_dense_from_one(self, level3_config):
        _db, gen = _generate(level3_config)
        all_uids = sorted(u for level in gen.uids_by_level for u in level)
        assert all_uids == list(range(1, 157))

    def test_one_n_is_a_tree_with_fanout(self, level3_config):
        db, gen = _generate(level3_config)
        root = db.lookup(gen.root_uid)
        seen = []
        stack = [root]
        while stack:
            node = stack.pop()
            seen.append(node)
            children = db.children(node)
            if children:
                assert len(children) == 5
            stack.extend(children)
        assert len(seen) == gen.total_nodes  # spanning: every node reached

    def test_mn_parts_point_exactly_one_level_down(self, level3_config):
        db, gen = _generate(level3_config)
        uid_level = {
            uid: level
            for level, uids in enumerate(gen.uids_by_level)
            for uid in uids
        }
        for level, uids in enumerate(gen.uids_by_level[:-1]):
            for uid in uids:
                parts = db.parts(db.lookup(uid))
                assert len(parts) == 5
                for part in parts:
                    part_uid = db.get_attribute(part, "uniqueId")
                    assert uid_level[part_uid] == level + 1

    def test_mn_parts_are_distinct_per_node(self, level3_config):
        db, gen = _generate(level3_config)
        for uid in gen.uids_by_level[1]:
            parts = db.parts(db.lookup(uid))
            uids = [db.get_attribute(p, "uniqueId") for p in parts]
            assert len(set(uids)) == len(uids)

    def test_every_node_has_exactly_one_outgoing_reference(self, level3_config):
        db, gen = _generate(level3_config)
        for node in db.iter_nodes():
            refs = db.refs_to(node)
            assert len(refs) == 1
            _target, attrs = refs[0]
            assert 0 <= attrs.offset_from <= 9
            assert 0 <= attrs.offset_to <= 9

    def test_leaf_mix_matches_ratio(self):
        # level 4: 625 leaves, one form per 125 text-positions -> 5 forms.
        db, gen = _generate(HyperModelConfig(levels=4, seed=1))
        assert len(gen.form_uids) == 5
        assert len(gen.text_uids) == 620
        for uid in gen.form_uids:
            assert db.kind_of(db.lookup(uid)) is NodeKind.FORM
        for uid in gen.text_uids[:20]:
            assert db.kind_of(db.lookup(uid)) is NodeKind.TEXT

    def test_internal_nodes_are_plain(self, level3_config):
        db, gen = _generate(level3_config)
        for level in gen.uids_by_level[:-1]:
            for uid in level:
                assert db.kind_of(db.lookup(uid)) is NodeKind.NODE


class TestDeterminism:
    def test_same_seed_same_structure(self, level3_config):
        db1, gen1 = _generate(level3_config)
        db2, gen2 = _generate(level3_config)
        assert gen1.uids_by_level == gen2.uids_by_level
        for uid in (1, 17, 99, 156):
            n1, n2 = db1.lookup(uid), db2.lookup(uid)
            for name in ("ten", "hundred", "million"):
                assert db1.get_attribute(n1, name) == db2.get_attribute(n2, name)
            p1 = [db1.get_attribute(x, "uniqueId") for x in db1.parts(n1)]
            p2 = [db2.get_attribute(x, "uniqueId") for x in db2.parts(n2)]
            assert p1 == p2

    def test_different_seed_differs(self, level3_config):
        db1, _ = _generate(level3_config)
        db2, _ = _generate(level3_config.with_seed(777))
        differing = sum(
            db1.get_attribute(db1.lookup(uid), "million")
            != db2.get_attribute(db2.lookup(uid), "million")
            for uid in range(1, 157)
        )
        assert differing > 100


class TestMetadataHelpers:
    def test_random_pickers_stay_in_domain(self, level3_config):
        _db, gen = _generate(level3_config)
        rng = random.Random(3)
        for _ in range(50):
            assert 1 <= gen.random_uid(rng) <= 156
            assert gen.random_non_root_uid(rng) != gen.root_uid
            assert gen.random_internal_uid(rng) not in gen.uids_by_level[-1]
            assert gen.random_text_uid(rng) in gen.text_uids
            level2 = gen.random_uid_at_level(rng, 2)
            assert level2 in gen.uids_by_level[2]

    def test_min_max_uid(self, level3_config):
        _db, gen = _generate(level3_config)
        assert gen.min_uid == 1
        assert gen.max_uid == 156


class TestStats:
    def test_phase_counters_match_structure(self, level3_config):
        _db, gen = _generate(level3_config)
        stats = gen.stats
        assert stats.internal_nodes == 31
        assert stats.leaf_nodes == 125
        assert stats.one_n_links == 155
        assert stats.m_n_links == 31 * 5
        assert stats.m_n_att_links == 156

    def test_per_item_milliseconds_present(self, level3_config):
        _db, gen = _generate(level3_config)
        per_node = gen.stats.per_node_ms()
        per_rel = gen.stats.per_relationship_ms()
        assert set(per_node) == {"internal", "leaf"}
        assert set(per_rel) == {"1-N", "M-N", "M-N-att"}
        assert all(v >= 0 for v in {**per_node, **per_rel}.values())
        assert gen.stats.total_seconds > 0


class TestSecondStructure:
    def test_two_structures_coexist_disjointly(self, level3_config):
        """The paper's N.B.: a second copy of the test database may
        exist; scans must not leak across structures."""
        db = MemoryDatabase()
        db.open()
        generator = DatabaseGenerator(level3_config)
        gen1 = generator.generate(db, structure_id=1)
        gen2 = generator.generate(db, structure_id=2, first_uid=1000)
        assert db.node_count(1) == 156
        assert db.node_count(2) == 156
        assert db.scan_ten(1) == 156
        assert db.scan_ten(2) == 156
        assert gen2.min_uid == 1000
        uids_1 = {db.get_attribute(n, "uniqueId") for n in db.iter_nodes(1)}
        uids_2 = {db.get_attribute(n, "uniqueId") for n in db.iter_nodes(2)}
        assert not (uids_1 & uids_2)
