"""The discrete-event simulation core: sampler, transport, scheduler."""

import random

import pytest

from repro.backends.clientserver import ClientServerDatabase
from repro.netsim.latency import LatencyModel, SimulatedClock
from repro.netsim.server import ObjectServer
from repro.netsim.sim import (
    ContendedTransport,
    DirectTransport,
    DiscreteEventScheduler,
    Workstation,
    ZipfSampler,
)


class TestZipfSampler:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)
        with pytest.raises(ValueError):
            ZipfSampler(10, theta=-0.1)

    def test_deterministic_for_seed(self):
        sampler = ZipfSampler(50, theta=0.8)
        first = [sampler.sample(random.Random(7)) for _ in range(1)]
        draws_a = [sampler.sample(random.Random(7))]
        rng_a, rng_b = random.Random(9), random.Random(9)
        seq_a = [sampler.sample(rng_a) for _ in range(200)]
        seq_b = [sampler.sample(rng_b) for _ in range(200)]
        assert seq_a == seq_b
        assert first == draws_a

    def test_skew_prefers_low_ranks(self):
        sampler = ZipfSampler(100, theta=1.0)
        rng = random.Random(3)
        draws = [sampler.sample(rng) for _ in range(2000)]
        head = sum(1 for d in draws if d < 10)
        tail = sum(1 for d in draws if d >= 90)
        assert head > 4 * tail

    def test_theta_zero_is_uniform(self):
        sampler = ZipfSampler(10, theta=0.0)
        rng = random.Random(5)
        draws = [sampler.sample(rng) for _ in range(5000)]
        counts = [draws.count(r) for r in range(10)]
        assert min(counts) > 300  # every rank drawn roughly equally

    def test_range(self):
        sampler = ZipfSampler(5, theta=0.9)
        rng = random.Random(11)
        assert all(0 <= sampler.sample(rng) < 5 for _ in range(500))


class _FakeStation:
    def __init__(self):
        self.clock = SimulatedClock()


class TestContendedTransport:
    def test_fifo_queueing_delays_second_request(self):
        latency = LatencyModel(
            round_trip_seconds=0.010, bandwidth_bytes_per_second=1e6
        )
        transport = ContendedTransport(latency, service_time_seconds=0.100)
        a, b = _FakeStation(), _FakeStation()
        transport.station = a
        transport.charge_request(0)
        # a: arrival 0.005, service to 0.105, depart 0.110
        assert a.clock.now == pytest.approx(0.110)
        transport.station = b
        transport.charge_request(0)
        # b arrives at 0.005 but the server is busy until 0.105.
        assert b.clock.now == pytest.approx(0.210)
        assert transport.queue_seconds == pytest.approx(0.100)
        assert transport.busy_seconds == pytest.approx(0.200)
        assert transport.requests == 2

    def test_no_contention_no_queueing(self):
        latency = LatencyModel(round_trip_seconds=0.010)
        transport = ContendedTransport(latency, service_time_seconds=0.001)
        a = _FakeStation()
        a.clock.advance(5.0)  # arrives long after the server idles
        transport.station = a
        transport.charge_request(0)
        assert transport.queue_seconds == 0.0
        assert a.clock.now == pytest.approx(5.011)

    def test_transfer_time_counts_as_service(self):
        latency = LatencyModel(
            round_trip_seconds=0.010, bandwidth_bytes_per_second=1000.0
        )
        transport = ContendedTransport(latency, service_time_seconds=0.0)
        a = _FakeStation()
        transport.station = a
        transport.charge_request(10)  # 10 bytes at 1 kB/s = 10 ms
        assert transport.busy_seconds == pytest.approx(0.010)
        assert a.clock.now == pytest.approx(0.020)

    def test_fallback_clock_without_station(self):
        fallback = SimulatedClock()
        latency = LatencyModel(round_trip_seconds=0.004)
        transport = ContendedTransport(
            latency, service_time_seconds=0.001, fallback_clock=fallback
        )
        cost = transport.charge_request(0)
        assert fallback.now == pytest.approx(cost)
        assert transport.requests == 0  # admin traffic is not queued

    def test_direct_transport_matches_latency_model(self):
        clock = SimulatedClock()
        latency = LatencyModel(round_trip_seconds=0.002)
        transport = DirectTransport(clock, latency)
        cost = transport.charge_request(500)
        assert cost == pytest.approx(latency.request_cost(500))
        assert clock.now == pytest.approx(cost)


def _make_station(server, index):
    client = ClientServerDatabase(
        server=server, clock=SimulatedClock(), client_id=f"w{index:02d}"
    )
    client.open()
    return Workstation(index, client, random.Random(index))


class TestDiscreteEventScheduler:
    def test_tasks_interleave_by_virtual_time(self):
        server = ObjectServer()
        a = _make_station(server, 0)
        b = _make_station(server, 1)
        order = []
        transport = ContendedTransport(
            server.latency, 0.0, fallback_clock=server.clock
        )
        scheduler = DiscreteEventScheduler(
            server, transport, think_time_seconds=0.0
        )
        # b starts later on its own clock, so a's tasks all run first
        # at time 0 ties, then b's.
        b.clock.advance(10.0)
        jobs = [
            (a, [lambda: order.append("a1"), lambda: order.append("a2")]),
            (b, [lambda: order.append("b1")]),
        ]
        makespan = scheduler.run(jobs)
        assert order == ["a1", "a2", "b1"]
        assert makespan >= 10.0

    def test_continuation_runs_next_on_same_station(self):
        server = ObjectServer()
        a = _make_station(server, 0)
        order = []

        def second():
            order.append("second")

        def first():
            order.append("first")
            return second

        transport = ContendedTransport(
            server.latency, 0.0, fallback_clock=server.clock
        )
        scheduler = DiscreteEventScheduler(server, transport, 0.0)
        scheduler.run([(a, [first, lambda: order.append("tail")])])
        assert order == ["first", "second", "tail"]

    def test_think_time_spaces_tasks(self):
        server = ObjectServer()
        a = _make_station(server, 0)
        times = []
        transport = ContendedTransport(
            server.latency, 0.0, fallback_clock=server.clock
        )
        scheduler = DiscreteEventScheduler(
            server, transport, think_time_seconds=0.5
        )
        scheduler.run(
            [(a, [lambda: times.append(a.clock.now) for _ in range(3)])]
        )
        assert times == pytest.approx([0.0, 0.5, 1.0])

    def test_server_clock_advances_with_the_run(self):
        server = ObjectServer()
        before = server.clock.now
        a = _make_station(server, 0)
        a.clock.advance(2.0)
        transport = ContendedTransport(
            server.latency, 0.0, fallback_clock=server.clock
        )
        DiscreteEventScheduler(server, transport, 0.0).run(
            [(a, [lambda: None])]
        )
        assert server.clock.now >= before + 2.0

    def test_single_client_direct_behaviour_unchanged(self):
        """Without a scheduler the server charges the shared clock."""
        server = ObjectServer()
        client = ClientServerDatabase(server=server)
        client.open()
        before = server.clock.now
        from repro.core.model import NodeData

        client.create_node(
            NodeData(unique_id=20_000_001, ten=1, hundred=2, million=3)
        )
        client.commit()
        assert server.clock.now > before
        assert client.simulated_clock is server.clock
