"""Typed netsim configuration and the deprecated keyword surface."""

import pytest

from repro.backends import create_backend
from repro.backends.clientserver import ClientServerDatabase
from repro.core.config import HyperModelConfig
from repro.core.generator import DatabaseGenerator
from repro.errors import ConfigurationError
from repro.netsim.config import NetworkConfig, SimConfig
from repro.netsim.faults import FaultModel
from repro.netsim.latency import LatencyModel
from repro.netsim.server import ObjectServer


class TestNetworkConfig:
    def test_defaults(self):
        config = NetworkConfig()
        assert config.cache_capacity == 4096
        assert config.pushdown is True
        assert config.concurrency == "none"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(cache_capacity=0)
        with pytest.raises(ConfigurationError):
            NetworkConfig(rpc_retries=-1)
        with pytest.raises(ConfigurationError):
            NetworkConfig(rpc_backoff_seconds=-0.1)
        with pytest.raises(ConfigurationError):
            NetworkConfig(readahead_depth=-1)
        with pytest.raises(ConfigurationError):
            NetworkConfig(concurrency="pessimistic")

    def test_replace(self):
        base = NetworkConfig()
        variant = base.replace(pushdown=False, cache_capacity=16)
        assert variant.pushdown is False
        assert variant.cache_capacity == 16
        assert base.pushdown is True  # frozen original untouched
        with pytest.raises(ConfigurationError):
            base.replace(concurrency="bogus")


class TestSimConfig:
    def test_defaults(self):
        sim = SimConfig()
        assert sim.think_time_seconds > 0
        assert sim.zipf_theta == pytest.approx(0.8)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SimConfig(think_time_seconds=-1)
        with pytest.raises(ConfigurationError):
            SimConfig(service_time_seconds=-0.1)
        with pytest.raises(ConfigurationError):
            SimConfig(fsync_seconds=-0.1)
        with pytest.raises(ConfigurationError):
            SimConfig(zipf_theta=-0.5)
        with pytest.raises(ConfigurationError):
            SimConfig(retry_backoff_seconds=-0.1)

    def test_replace(self):
        sim = SimConfig().replace(think_time_seconds=0.0)
        assert sim.think_time_seconds == 0.0


class TestDeprecatedKeywords:
    """Old per-knob constructor kwargs warn but keep working."""

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cache_capacity": 64},
            {"latency": LatencyModel(round_trip_seconds=0.002)},
            {"fault_model": FaultModel(seed=1)},
            {"rpc_retries": 2},
            {"rpc_backoff_seconds": 0.001},
            {"pushdown": False},
            {"readahead_depth": 0},
        ],
    )
    def test_each_legacy_kwarg_warns(self, kwargs):
        with pytest.warns(DeprecationWarning, match="deprecated"):
            db = ClientServerDatabase(**kwargs)
        # ... and the value landed in the typed config.
        (name, value), = kwargs.items()
        assert getattr(db.network, name) == value

    def test_legacy_kwargs_override_network(self):
        with pytest.warns(DeprecationWarning):
            db = ClientServerDatabase(
                network=NetworkConfig(cache_capacity=100), cache_capacity=7
            )
        assert db.network.cache_capacity == 7

    def test_network_config_does_not_warn(self, recwarn):
        ClientServerDatabase(network=NetworkConfig(cache_capacity=32))
        assert not [
            w for w in recwarn if issubclass(w.category, DeprecationWarning)
        ]

    def test_registry_bfs_variant_does_not_warn(self, recwarn):
        db = create_backend("clientserver-bfs")
        assert db.pushdown is False
        assert not [
            w for w in recwarn if issubclass(w.category, DeprecationWarning)
        ]

    def test_registry_accepts_network_option(self):
        db = create_backend(
            "clientserver", network=NetworkConfig(readahead_depth=0)
        )
        assert db.readahead_depth == 0


class TestDeprecatedLoadEntryPoints:
    @pytest.fixture
    def shared(self):
        server = ObjectServer()
        loader = ClientServerDatabase(server=server)
        loader.open()
        gen = DatabaseGenerator(
            HyperModelConfig(levels=3, seed=17)
        ).generate(loader)
        loader.commit()
        loader.close()
        return server, gen

    def test_run_read_load_warns(self, shared):
        from repro.concurrency.multiuser import run_read_load

        server, gen = shared
        with pytest.warns(DeprecationWarning, match="run_read_mix"):
            result = run_read_load(
                server, gen, users=2, operations_per_user=5
            )
        assert result.total_operations == 10

    def test_run_update_load_warns(self, shared):
        from repro.concurrency.multiuser import run_update_load

        server, gen = shared
        with pytest.warns(DeprecationWarning, match="run_disjoint_updates"):
            result = run_update_load(server, gen, users=2, edits_per_user=1)
        assert result.all_edits_visible_everywhere


class TestReplicationConfig:
    def test_defaults(self):
        from repro.netsim.config import ReplicationConfig

        config = ReplicationConfig()
        assert config.replicas == 2
        assert config.policy == "round_robin"
        assert config.apply_lag_seconds == 0.0

    def test_validation(self):
        from repro.netsim.config import ReplicationConfig

        with pytest.raises(ConfigurationError):
            ReplicationConfig(replicas=0)
        with pytest.raises(ConfigurationError):
            ReplicationConfig(policy="random")
        with pytest.raises(ConfigurationError):
            ReplicationConfig(apply_lag_seconds=-0.1)

    def test_replace(self):
        from repro.netsim.config import ReplicationConfig

        base = ReplicationConfig()
        variant = base.replace(replicas=4, policy="least_queue")
        assert variant.replicas == 4
        assert variant.policy == "least_queue"
        assert base.replicas == 2

    def test_replication_and_sharding_exclusive(self):
        from repro.netsim.config import ReplicationConfig, ShardConfig

        with pytest.raises(ConfigurationError):
            NetworkConfig(
                replication=ReplicationConfig(),
                sharding=ShardConfig(shards=2),
            )


class TestWarnOnce:
    """Deprecation warnings fire once per process, pinned by tests.

    The conftest autouse fixture clears the registries per test, so
    each test observes the once-per-process behaviour from a clean
    slate without breaking the ``pytest.warns`` pins above.
    """

    def test_legacy_kwargs_warn_once_per_fingerprint(self):
        import warnings

        with warnings.catch_warnings(record=True) as seen:
            warnings.simplefilter("always")
            ClientServerDatabase(cache_capacity=64).close()
            ClientServerDatabase(cache_capacity=64).close()
        deprecations = [
            w for w in seen if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        # A different legacy fingerprint is a different warning.
        with warnings.catch_warnings(record=True) as seen:
            warnings.simplefilter("always")
            ClientServerDatabase(pushdown=False).close()
        assert any(
            issubclass(w.category, DeprecationWarning) for w in seen
        )

    def test_multiuser_shims_warn_once_each(self):
        import warnings

        from repro.concurrency.multiuser import (
            run_read_load,
            run_update_load,
        )
        from repro.core.config import HyperModelConfig
        from repro.core.generator import DatabaseGenerator

        server = ObjectServer()
        loader = ClientServerDatabase(server=server)
        loader.open()
        gen = DatabaseGenerator(
            HyperModelConfig(levels=2, seed=5)
        ).generate(loader)
        loader.commit()
        loader.close()
        with warnings.catch_warnings(record=True) as seen:
            warnings.simplefilter("always")
            run_read_load(server, gen, users=1, operations_per_user=2)
            run_read_load(server, gen, users=1, operations_per_user=2)
            run_update_load(server, gen, users=1, edits_per_user=1)
        deprecations = [
            str(w.message)
            for w in seen
            if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 2  # one per shim, not per call
        assert any("run_read_mix" in m for m in deprecations)
        assert any("run_disjoint_updates" in m for m in deprecations)
