"""Garbage collection and backup/restore (requirement R10)."""

import os

import pytest

from repro.backends.oodb import OodbDatabase
from repro.core.model import LinkAttributes, NodeData
from repro.engine.catalog import FieldDefinition
from repro.engine.gc import collect_garbage, mark
from repro.engine.store import ObjectStore
from repro.errors import NodeNotFoundError


def _node(uid):
    return NodeData(unique_id=uid, ten=1, hundred=1, million=1)


@pytest.fixture
def store(tmp_path):
    s = ObjectStore(os.path.join(str(tmp_path), "gc.hmdb"), sync_commits=False)
    s.open()
    s.define_class(
        "Cell", [FieldDefinition("next", default=0), FieldDefinition("tag", default="")]
    )
    yield s
    if s.is_open:
        s.close()


def _extract(class_name, state):
    return [state["next"]] if state["next"] else []


class TestEngineGc:
    def test_mark_follows_chains(self, store):
        c3 = store.new("Cell", {"tag": "c"})
        c2 = store.new("Cell", {"tag": "b", "next": c3})
        c1 = store.new("Cell", {"tag": "a", "next": c2})
        orphan = store.new("Cell", {"tag": "x"})
        store.commit()
        marked = mark(store, [c1], _extract)
        assert marked == {c1, c2, c3}
        assert orphan not in marked

    def test_sweep_deletes_unreachable_only(self, store):
        keep = store.new("Cell", {})
        lose_a = store.new("Cell", {})
        lose_b = store.new("Cell", {"next": lose_a})
        store.commit()
        stats = collect_garbage(store, [keep], _extract, classes=["Cell"])
        assert stats.collected == 2
        assert stats.live == 1
        assert store.exists(keep)
        assert not store.exists(lose_a)
        assert not store.exists(lose_b)

    def test_cycles_are_collected_when_unrooted(self, store):
        a = store.new("Cell", {})
        b = store.new("Cell", {"next": a})
        store.update(a, {"next": b})  # a <-> b cycle
        store.commit()
        stats = collect_garbage(store, [], _extract, classes=["Cell"])
        assert stats.collected == 2

    def test_cycles_survive_when_rooted(self, store):
        a = store.new("Cell", {})
        b = store.new("Cell", {"next": a})
        store.update(a, {"next": b})
        store.commit()
        stats = collect_garbage(store, [a], _extract, classes=["Cell"])
        assert stats.collected == 0
        assert store.exists(b)

    def test_dangling_reference_in_root_set_ignored(self, store):
        keep = store.new("Cell", {})
        store.commit()
        stats = collect_garbage(store, [keep, 99999], _extract, classes=["Cell"])
        assert stats.live == 1


class TestHyperModelGc:
    @pytest.fixture
    def db(self, tmp_path):
        db = OodbDatabase(os.path.join(str(tmp_path), "hm.hmdb"))
        db.open()
        yield db
        if db.is_open:
            db.close()

    def test_detached_subtree_collected(self, db):
        root = db.create_node(_node(1))
        child = db.create_node(_node(2))
        grandchild = db.create_node(_node(3))
        db.add_child(root, child)
        db.add_child(child, grandchild)
        detached = db.create_node(_node(10))
        detached_leaf = db.create_node(_node(11))
        db.add_child(detached, detached_leaf)
        db.commit()

        stats = db.collect_garbage(roots=[root])
        assert stats.collected == 2
        assert db.node_count() == 3
        with pytest.raises(NodeNotFoundError):
            db.lookup(10)

    def test_node_kept_alive_by_outgoing_reference(self, db):
        root = db.create_node(_node(1))
        target = db.create_node(_node(2))
        db.add_reference(root, target, LinkAttributes(1, 1))
        db.commit()
        stats = db.collect_garbage(roots=[root])
        assert stats.collected == 0  # refTo keeps the target live

    def test_inverse_reference_does_not_keep_alive(self, db):
        root = db.create_node(_node(1))
        referrer = db.create_node(_node(2))
        db.add_reference(referrer, root, LinkAttributes(1, 1))
        db.commit()
        stats = db.collect_garbage(roots=[root])
        # `referrer` points AT the root but nothing owns it: collected.
        assert stats.collected == 1
        # The survivor's refFrom was scrubbed of the dead oid.
        assert db.refs_from(db.lookup(1)) == []

    def test_stored_node_lists_are_roots(self, db):
        root = db.create_node(_node(1))
        precious = db.create_node(_node(2))
        db.store_node_list("bookmarks", [precious])
        db.commit()
        stats = db.collect_garbage(roots=[root])
        assert stats.collected == 0
        assert db.get_attribute(db.lookup(2), "ten") == 1

    def test_shared_part_survives_via_either_owner(self, db):
        root = db.create_node(_node(1))
        other = db.create_node(_node(2))
        shared = db.create_node(_node(3))
        db.add_part(root, shared)
        db.add_part(other, shared)
        db.commit()
        stats = db.collect_garbage(roots=[root])
        assert stats.collected == 1  # `other` goes; `shared` stays
        assert db.part_of(db.lookup(3)) == [db.lookup(1)]


class TestBackupRestore:
    def test_backup_and_restore_roundtrip(self, tmp_path):
        path = os.path.join(str(tmp_path), "main.hmdb")
        backup_path = os.path.join(str(tmp_path), "snapshot.hmdb")
        db = OodbDatabase(path)
        db.open()
        db.create_node(_node(1))
        db.commit()
        db.backup(backup_path)
        assert os.path.exists(backup_path)

        # Damage the live database after the snapshot.
        db.set_attribute(db.lookup(1), "ten", 9)
        db.create_node(_node(2))
        db.commit()
        db.close()

        ObjectStore.restore(backup_path, path)
        restored = OodbDatabase(path)
        restored.open()
        assert restored.node_count() == 1
        assert restored.get_attribute(restored.lookup(1), "ten") == 1
        restored.close()

    def test_backup_with_uncommitted_writes_rejected(self, tmp_path):
        from repro.errors import TransactionError

        path = os.path.join(str(tmp_path), "busy.hmdb")
        db = OodbDatabase(path)
        db.open()
        db.create_node(_node(1))  # uncommitted
        with pytest.raises(TransactionError):
            db.backup(os.path.join(str(tmp_path), "never.hmdb"))
        db.commit()
        db.close()

    def test_backup_is_openable_directly(self, tmp_path):
        path = os.path.join(str(tmp_path), "src.hmdb")
        snapshot = os.path.join(str(tmp_path), "copy.hmdb")
        db = OodbDatabase(path)
        db.open()
        db.create_node(_node(7))
        db.commit()
        db.backup(snapshot)
        db.close()

        clone = OodbDatabase(snapshot)
        clone.open()
        assert clone.get_attribute(clone.lookup(7), "uniqueId") == 7
        clone.close()
