"""The B+tree: splits, duplicates, ranges, deletes and invariants."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.btree import ORDER, BTree
from repro.engine.buffer import BufferPool
from repro.engine.pages import PageFile
from repro.errors import PageError


@pytest.fixture
def tree(tmp_path):
    pf = PageFile(str(tmp_path / "t.db"))
    pool = BufferPool(pf, capacity=64)
    tree = BTree(pool, 0)
    yield tree
    pool.flush_all()
    pf.close()


class TestBasics:
    def test_empty_tree(self, tree):
        assert tree.search(1) == []
        assert tree.search_unique(1) is None
        assert len(tree) == 0

    def test_insert_and_search(self, tree):
        tree.insert(10, 100)
        tree.insert(20, 200)
        assert tree.search_unique(10) == 100
        assert tree.search_unique(20) == 200
        assert tree.search_unique(15) is None

    def test_exact_duplicate_entry_rejected(self, tree):
        tree.insert(5, 50)
        with pytest.raises(PageError):
            tree.insert(5, 50)

    def test_duplicate_keys_with_distinct_values(self, tree):
        for value in (7, 3, 9):
            tree.insert(1, value)
        assert tree.search(1) == [3, 7, 9]  # discriminator order

    def test_negative_keys_supported(self, tree):
        tree.insert(-100, 1)
        tree.insert(0, 2)
        tree.insert(100, 3)
        assert [k for k, _v in tree.scan_all()] == [-100, 0, 100]

    def test_contains(self, tree):
        tree.insert(4, 44)
        assert tree.contains(4, 44)
        assert not tree.contains(4, 45)
        assert not tree.contains(5, 44)


class TestSplits:
    def test_many_sequential_inserts(self, tree):
        count = ORDER * 6  # forces leaf and internal splits
        for key in range(count):
            tree.insert(key, key * 2)
        assert len(tree) == count
        for key in (0, 1, ORDER, count - 1, count // 2):
            assert tree.search_unique(key) == key * 2
        tree.check_invariants()

    def test_many_random_inserts(self, tree):
        rng = random.Random(8)
        keys = list(range(ORDER * 4))
        rng.shuffle(keys)
        for key in keys:
            tree.insert(key, key)
        assert [k for k, _v in tree.scan_all()] == sorted(keys)
        tree.check_invariants()

    def test_root_grows_in_height(self, tree):
        first_root = tree.root
        for key in range(ORDER + 1):
            tree.insert(key, key)
        assert tree.root != first_root


class TestNodeCache:
    def test_cache_fills_on_reads_and_serves_hits(self, tree):
        for key in range(ORDER * 3):
            tree.insert(key, key)
        tree._nodes.clear()
        assert tree.search_unique(5) == 5
        cached = len(tree._nodes)
        assert cached > 0
        assert tree.search_unique(5) == 5  # same path: no new entries
        assert len(tree._nodes) == cached

    def test_write_invalidates_touched_nodes(self, tree):
        """A dirty unpin bumps the frame LSN; the cached view for that
        page must be rebuilt, not served stale."""
        for key in range(ORDER * 3):
            tree.insert(key, key)
        assert tree.search_unique(1) == 1  # populate node views
        tree.update_value(1, 1, 999)
        assert tree.search_unique(1) == 999

    def test_results_identical_with_and_without_cache(self, tree):
        rng = random.Random(31)
        keys = list(range(ORDER * 4))
        rng.shuffle(keys)
        for key in keys:
            tree.insert(key, key * 3)
        with_cache = list(tree.scan_range(10, ORDER * 2))
        tree._nodes.clear()
        assert list(tree.scan_range(10, ORDER * 2)) == with_cache

    def test_cache_survives_interleaved_deletes(self, tree):
        for key in range(ORDER * 2):
            tree.insert(key, key)
        assert tree.search_unique(3) == 3
        tree.delete(3, 3)
        assert tree.search_unique(3) is None
        assert tree.search_unique(4) == 4
        tree.check_invariants()


class TestRangeScan:
    def test_range_bounds_inclusive(self, tree):
        for key in range(1, 101):
            tree.insert(key, key * 10)
        result = list(tree.scan_range(40, 49))
        assert [k for k, _v in result] == list(range(40, 50))
        assert result[0] == (40, 400)

    def test_range_crossing_leaves(self, tree):
        for key in range(ORDER * 3):
            tree.insert(key, key)
        span = list(tree.scan_range(ORDER - 5, ORDER + 5))
        assert [k for k, _v in span] == list(range(ORDER - 5, ORDER + 6))

    def test_empty_range(self, tree):
        tree.insert(1, 1)
        tree.insert(100, 100)
        assert list(tree.scan_range(10, 50)) == []

    def test_range_with_duplicates(self, tree):
        for value in range(5):
            tree.insert(7, value)
        assert [v for _k, v in tree.scan_range(7, 7)] == [0, 1, 2, 3, 4]


class TestDelete:
    def test_delete_present_and_absent(self, tree):
        tree.insert(1, 10)
        assert tree.delete(1, 10)
        assert not tree.delete(1, 10)
        assert tree.search(1) == []

    def test_delete_one_duplicate_keeps_others(self, tree):
        for value in (1, 2, 3):
            tree.insert(9, value)
        tree.delete(9, 2)
        assert tree.search(9) == [1, 3]

    def test_mass_delete_then_reinsert(self, tree):
        for key in range(ORDER * 2):
            tree.insert(key, key)
        for key in range(0, ORDER * 2, 2):
            assert tree.delete(key, key)
        assert len(tree) == ORDER
        for key in range(0, ORDER * 2, 2):
            tree.insert(key, key + 1)
        assert len(tree) == ORDER * 2
        tree.check_invariants()


class TestUpdateValue:
    def test_update_value_in_place(self, tree):
        tree.insert(3, 30, disc=0)
        assert tree.update_value(3, 0, 99)
        assert tree.search_unique(3) == 99

    def test_update_missing_returns_false(self, tree):
        assert not tree.update_value(3, 0, 99)


class TestPersistence:
    def test_tree_survives_reopen(self, tmp_path):
        path = str(tmp_path / "persist.db")
        pf = PageFile(path)
        pool = BufferPool(pf, capacity=64)
        tree = BTree(pool, 0)
        for key in range(500):
            tree.insert(key, key * 3)
        root = tree.root
        pool.flush_all()
        pf.sync()
        pf.close()

        pf2 = PageFile(path)
        tree2 = BTree(BufferPool(pf2, capacity=64), root)
        assert tree2.search_unique(123) == 369
        assert len(tree2) == 500
        pf2.close()


@settings(max_examples=30, deadline=None)
@given(
    entries=st.lists(
        st.tuples(st.integers(-1000, 1000), st.integers(0, 100_000)),
        max_size=400,
        unique=True,
    ),
    deletions=st.sets(st.integers(0, 399), max_size=200),
)
def test_property_btree_matches_sorted_model(tmp_path_factory, entries, deletions):
    """Insert/delete sequences agree with a sorted-list reference model."""
    base = tmp_path_factory.mktemp("btree-prop")
    pf = PageFile(str(base / "m.db"))
    tree = BTree(BufferPool(pf, capacity=64), 0)
    model = []
    for key, value in entries:
        tree.insert(key, value)
        model.append((key, value))
    for index in sorted(deletions, reverse=True):
        if index < len(model):
            key, value = model.pop(index)
            assert tree.delete(key, value)
    model.sort()
    assert list(tree.scan_all()) == model
    tree.check_invariants()
    if model:
        low = model[len(model) // 3][0]
        high = model[2 * len(model) // 3][0]
        if low <= high:
            expected = [(k, v) for k, v in model if low <= k <= high]
            assert list(tree.scan_range(low, high)) == expected
    pf.close()
