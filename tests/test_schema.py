"""Figure 1 as data: the OMT schema description and R4 evolution."""

import pytest

from repro.core.schema import (
    AttributeDef,
    ClassDef,
    RelationshipDef,
    RelationshipKind,
    Schema,
    add_draw_node_class,
    build_hypermodel_schema,
)
from repro.errors import SchemaError


@pytest.fixture
def schema():
    return build_hypermodel_schema()


class TestFigure1Structure:
    def test_three_classes(self, schema):
        assert schema.class_names == ["Node", "TextNode", "FormNode"]

    def test_generalization_edges(self, schema):
        assert schema.get_class("TextNode").base == "Node"
        assert schema.get_class("FormNode").base == "Node"
        assert schema.subclasses("Node") == ["TextNode", "FormNode"]

    def test_node_has_the_four_attributes(self, schema):
        names = [a.name for a in schema.get_class("Node").attributes]
        assert names == ["uniqueId", "ten", "hundred", "million"]

    def test_subtype_attributes_inherited(self, schema):
        names = [a.name for a in schema.all_attributes("TextNode")]
        assert names == ["uniqueId", "ten", "hundred", "million", "text"]

    def test_three_relationships(self, schema):
        assert schema.relationship_names == [
            "parentChildren", "partOfParts", "refToRefFrom",
        ]

    def test_only_the_1n_aggregation_is_ordered(self, schema):
        assert schema.get_relationship("parentChildren").ordered
        assert not schema.get_relationship("partOfParts").ordered
        assert not schema.get_relationship("refToRefFrom").ordered

    def test_relationship_kinds(self, schema):
        assert (
            schema.get_relationship("parentChildren").kind
            is RelationshipKind.AGGREGATION_1N
        )
        assert (
            schema.get_relationship("partOfParts").kind
            is RelationshipKind.AGGREGATION_MN
        )
        assert (
            schema.get_relationship("refToRefFrom").kind
            is RelationshipKind.ASSOCIATION_MN
        )

    def test_only_the_association_carries_attributes(self, schema):
        offsets = schema.get_relationship("refToRefFrom").attributes
        assert [a.name for a in offsets] == ["offsetFrom", "offsetTo"]
        assert schema.get_relationship("parentChildren").attributes == ()

    def test_roles_match_the_paper(self, schema):
        one_n = schema.get_relationship("parentChildren")
        assert (one_n.forward_role, one_n.inverse_role) == ("children", "parent")
        assoc = schema.get_relationship("refToRefFrom")
        assert (assoc.forward_role, assoc.inverse_role) == ("refTo", "refFrom")


class TestSubclassing:
    def test_is_subclass_reflexive_and_transitive(self, schema):
        assert schema.is_subclass("Node", "Node")
        assert schema.is_subclass("TextNode", "Node")
        assert not schema.is_subclass("Node", "TextNode")
        assert not schema.is_subclass("TextNode", "FormNode")


class TestEvolution:
    def test_add_draw_node_class(self, schema):
        """The R4 experiment: a DrawNode with circles/rectangles/ellipses."""
        draw = add_draw_node_class(schema)
        assert draw.base == "Node"
        assert schema.is_subclass("DrawNode", "Node")
        names = [a.name for a in schema.all_attributes("DrawNode")]
        assert names[-3:] == ["circles", "rectangles", "ellipses"]
        assert names[:4] == ["uniqueId", "ten", "hundred", "million"]

    def test_add_attribute_dynamically(self, schema):
        schema.add_attribute("TextNode", AttributeDef("language", "str"))
        assert schema.all_attributes("TextNode")[-1].name == "language"

    def test_duplicate_attribute_rejected(self, schema):
        with pytest.raises(SchemaError):
            schema.add_attribute("Node", AttributeDef("ten", "int"))


class TestErrors:
    def test_duplicate_class_rejected(self, schema):
        with pytest.raises(SchemaError):
            schema.add_class(ClassDef("Node"))

    def test_unknown_base_rejected(self):
        fresh = Schema()
        with pytest.raises(SchemaError):
            fresh.add_class(ClassDef("Child", base="Ghost"))

    def test_unknown_class_lookup(self, schema):
        with pytest.raises(SchemaError):
            schema.get_class("Ghost")

    def test_duplicate_relationship_rejected(self, schema):
        with pytest.raises(SchemaError):
            schema.add_relationship(
                RelationshipDef(
                    "parentChildren",
                    RelationshipKind.AGGREGATION_1N,
                    "children",
                    "parent",
                )
            )

    def test_unknown_relationship_lookup(self, schema):
        with pytest.raises(SchemaError):
            schema.get_relationship("ghost")
