"""Bitmaps: packing, the op 17 invert, clipping and serialization."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.core.bitmap import Bitmap, generate_bitmap


class TestBasics:
    def test_new_bitmap_is_white(self):
        bitmap = Bitmap(64, 32)
        assert bitmap.is_white()
        assert bitmap.popcount() == 0

    def test_dimensions_validated(self):
        with pytest.raises(ValueError):
            Bitmap(0, 10)
        with pytest.raises(ValueError):
            Bitmap(10, -1)

    def test_set_and_get_single_pixels(self):
        bitmap = Bitmap(17, 9)  # odd width exercises the row tail
        bitmap.set(0, 0, 1)
        bitmap.set(16, 8, 1)
        bitmap.set(7, 4, 1)
        assert bitmap.get(0, 0) == 1
        assert bitmap.get(16, 8) == 1
        assert bitmap.get(7, 4) == 1
        assert bitmap.get(1, 0) == 0
        assert bitmap.popcount() == 3

    def test_set_zero_clears(self):
        bitmap = Bitmap(8, 8)
        bitmap.set(3, 3, 1)
        bitmap.set(3, 3, 0)
        assert bitmap.is_white()

    def test_out_of_range_pixel_raises(self):
        bitmap = Bitmap(10, 10)
        with pytest.raises(IndexError):
            bitmap.get(10, 0)
        with pytest.raises(IndexError):
            bitmap.set(0, 10, 1)
        with pytest.raises(IndexError):
            bitmap.get(-1, 0)

    def test_size_bytes_matches_packing(self):
        # 250x250 -> 32 bytes/row * 250 rows ~ 7.9 kB (the paper's ~7800).
        assert Bitmap(250, 250).size_bytes == 32 * 250
        assert Bitmap(8, 1).size_bytes == 1
        assert Bitmap(9, 1).size_bytes == 2


class TestInvertRect:
    def test_op17_rectangle(self):
        """Op 17: a 25x25 invert at (50, 50) flips exactly 625 pixels."""
        bitmap = Bitmap(100, 100)
        bitmap.invert_rect(50, 50, 25, 25)
        assert bitmap.popcount() == 625
        assert bitmap.get(50, 50) == 1
        assert bitmap.get(74, 74) == 1
        assert bitmap.get(49, 50) == 0
        assert bitmap.get(75, 74) == 0

    def test_double_invert_is_identity(self):
        bitmap = Bitmap(120, 90)
        bitmap.invert_rect(50, 50, 25, 25)
        bitmap.invert_rect(50, 50, 25, 25)
        assert bitmap.is_white()

    def test_clipped_at_edges(self):
        bitmap = Bitmap(60, 60)
        bitmap.invert_rect(50, 50, 25, 25)  # only 10x10 fits
        assert bitmap.popcount() == 100

    def test_fully_outside_is_noop(self):
        bitmap = Bitmap(40, 40)
        bitmap.invert_rect(50, 50, 25, 25)
        assert bitmap.is_white()

    def test_overlapping_inverts_xor(self):
        bitmap = Bitmap(100, 100)
        bitmap.invert_rect(0, 0, 10, 10)
        bitmap.invert_rect(5, 5, 10, 10)  # 5x5 overlap flips back
        assert bitmap.popcount() == 100 + 100 - 2 * 25


class TestSerialization:
    def test_roundtrip(self):
        bitmap = Bitmap(33, 17)
        bitmap.invert_rect(3, 3, 7, 5)
        clone = Bitmap.from_bytes(33, 17, bitmap.to_bytes())
        assert clone == bitmap

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            Bitmap.from_bytes(16, 16, b"\x00" * 3)

    def test_copy_is_independent(self):
        bitmap = Bitmap(16, 16)
        clone = bitmap.copy()
        clone.set(0, 0, 1)
        assert bitmap.is_white()
        assert not clone.is_white()

    def test_equality_requires_same_dimensions(self):
        assert Bitmap(8, 8) != Bitmap(8, 9)

    def test_bitmaps_are_unhashable(self):
        with pytest.raises(TypeError):
            hash(Bitmap(8, 8))

    def test_rows_iteration(self):
        bitmap = Bitmap(9, 3)
        rows = list(bitmap.rows())
        assert len(rows) == 3
        assert all(len(row) == 2 for row in rows)


class TestGeneration:
    def test_dimensions_in_paper_range(self):
        rng = random.Random(10)
        for _ in range(20):
            bitmap = generate_bitmap(rng)
            assert 100 <= bitmap.width <= 400
            assert 100 <= bitmap.height <= 400
            assert bitmap.is_white()

    def test_average_size_near_7800_bytes(self):
        """Section 5.2 estimates ~7800 bytes per FormNode."""
        rng = random.Random(11)
        sizes = [generate_bitmap(rng).size_bytes for _ in range(200)]
        average = sum(sizes) / len(sizes)
        assert 6000 < average < 10000


@given(
    width=st.integers(min_value=1, max_value=64),
    height=st.integers(min_value=1, max_value=64),
    pixels=st.lists(
        st.tuples(st.integers(0, 63), st.integers(0, 63)), max_size=30
    ),
)
def test_property_popcount_matches_distinct_set_pixels(width, height, pixels):
    """popcount equals the number of distinct in-range pixels set."""
    bitmap = Bitmap(width, height)
    expected = set()
    for x, y in pixels:
        if x < width and y < height:
            bitmap.set(x, y, 1)
            expected.add((x, y))
    assert bitmap.popcount() == len(expected)
    for x, y in expected:
        assert bitmap.get(x, y) == 1


@given(
    width=st.integers(min_value=1, max_value=80),
    height=st.integers(min_value=1, max_value=80),
    x=st.integers(min_value=-10, max_value=90),
    y=st.integers(min_value=-10, max_value=90),
    rect_w=st.integers(min_value=0, max_value=40),
    rect_h=st.integers(min_value=0, max_value=40),
)
def test_property_invert_flips_exactly_the_clipped_area(
    width, height, x, y, rect_w, rect_h
):
    """The flipped-pixel count is the clipped rectangle's area."""
    bitmap = Bitmap(width, height)
    bitmap.invert_rect(x, y, rect_w, rect_h)
    clipped_w = max(0, min(x + rect_w, width) - max(x, 0))
    clipped_h = max(0, min(y + rect_h, height) - max(y, 0))
    assert bitmap.popcount() == clipped_w * clipped_h
    bitmap.invert_rect(x, y, rect_w, rect_h)
    assert bitmap.is_white()
