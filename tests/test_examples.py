"""Smoke tests: every example script runs to completion.

Examples are deliverables; these tests keep them from rotting.  Each
runs in a subprocess with small parameters where the script accepts
them (level-sweep and the grid comparison default to laptop-scale runs
that are still too slow for a unit-test suite).
"""

import os
import subprocess
import sys

import pytest

_EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, os.path.join(_EXAMPLES_DIR, script), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


class TestExamples:
    def test_quickstart(self):
        result = _run("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "op 01 nameLookup" in result.stdout
        assert "done" in result.stdout

    def test_document_archive(self):
        result = _run("document_archive.py")
        assert result.returncode == 0, result.stderr
        assert "table of contents" in result.stdout
        assert "durability holds" in result.stdout

    def test_multiuser_collaboration(self):
        result = _run("multiuser_collaboration.py")
        assert result.returncode == 0, result.stderr
        assert "conflicts: 0" in result.stdout
        assert "bob's validation fails" in result.stdout

    def test_versions_and_access(self):
        result = _run("versions_and_access.py")
        assert result.returncode == 0, result.stderr
        assert "previous version text" in result.stdout
        assert "links across protection boundaries" in result.stdout

    def test_benchmark_comparison_small(self):
        result = _run(
            "benchmark_comparison.py",
            "--backends", "memory",
            "--level", "2",
            "--repetitions", "2",
        )
        assert result.returncode == 0, result.stderr
        assert "nameLookup" in result.stdout
        assert "geometric-mean warm speedup" in result.stdout

    def test_level_sweep_small(self):
        result = _run(
            "level_sweep.py",
            "--levels", "2,3",
            "--backends", "memory",
            "--repetitions", "2",
        )
        assert result.returncode == 0, result.stderr
        assert "Scaling, backend memory" in result.stdout
