"""Gauge registry + flight recorder tests (src/repro/obs/timeseries.py).

Pins the telemetry-plane contracts the dashboard and CI rely on:

* gauge semantics — callback vs settable, replacement, exception
  skipping, the ``reset()`` half-clear (settable values go, callbacks
  survive);
* the extended ``Instrumentation.reset`` contract — an attached flight
  recorder's ring is cleared and its baselines rebased atomically;
* recorder sampling — counter rates, gauge evaluation, windowed
  histogram percentiles, the virtual-clock skip of wall-measured
  histograms, ring bounding, and per-cell ``rebind``;
* JSONL export — byte-identical across two identical runs (the
  property the CI hard gates and ``repro dash`` build on).
"""

import io
import re
import tracemalloc

import pytest

from repro.obs import Instrumentation
from repro.obs.instrumentation import NO_OP
from repro.obs.timeseries import (
    GAUGE_NAME_PATTERN,
    WALL_CLOCK_HISTOGRAMS,
    FlightRecorder,
    GaugeRegistry,
    read_jsonl,
)


class TestGaugeRegistry:
    def test_callback_is_evaluated_only_at_collect(self):
        registry = GaugeRegistry()
        calls = []
        registry.register("engine.wal.backlog", lambda: calls.append(1) or 3.0)
        assert calls == []  # registration is free
        assert registry.collect() == {"engine.wal.backlog": 3.0}
        assert len(calls) == 1

    def test_settable_shadow_and_replacement(self):
        registry = GaugeRegistry()
        registry.register("backend.occ.inflight", lambda: 1.0)
        registry.set("backend.occ.inflight", 7.0)
        # A settable value shadows the callback of the same name.
        assert registry.collect() == {"backend.occ.inflight": 7.0}
        # Re-registration replaces: the newest owner of a name wins.
        registry.register("backend.occ.inflight", lambda: 2.0)
        registry.reset()
        assert registry.collect() == {"backend.occ.inflight": 2.0}

    def test_collect_skips_raising_callbacks(self):
        registry = GaugeRegistry()

        def broken() -> float:
            raise RuntimeError("component mid-teardown")

        registry.register("netsim.cache.occupancy", broken)
        registry.register("engine.wal.backlog", lambda: 1.5)
        assert registry.collect() == {"engine.wal.backlog": 1.5}

    def test_reset_clears_settable_but_callbacks_survive(self):
        registry = GaugeRegistry()
        registry.register("engine.buffer.occupancy", lambda: 0.25)
        registry.set("backend.occ.aborted", 4.0)
        registry.reset()
        assert "backend.occ.aborted" not in registry
        assert registry.collect() == {"engine.buffer.occupancy": 0.25}

    def test_unregister_and_container_protocol(self):
        registry = GaugeRegistry()
        registry.register("a.b", lambda: 0.0)
        registry.set("c.d", 1.0)
        assert len(registry) == 2
        assert registry.names() == ("a.b", "c.d")
        registry.unregister("a.b")
        registry.unregister("missing.name")  # absent names are fine
        assert "a.b" not in registry and "c.d" in registry

    def test_collect_keys_are_sorted(self):
        registry = GaugeRegistry()
        registry.set("z.last", 1.0)
        registry.set("a.first", 2.0)
        assert list(registry.collect()) == ["a.first", "z.last"]

    def test_in_tree_gauge_names_match_the_taxonomy(self):
        # The same regex scripts/lint_gauge_names.py enforces over src/.
        pattern = re.compile(GAUGE_NAME_PATTERN)
        for name in (
            "netsim.transport.queue_depth",
            "netsim.cache.client0.hit_ratio",
            "engine.wal.batch_fill",
            "backend.2pc.shard1.in_doubt",
            "backend.occ.inflight",
        ):
            assert pattern.match(name), name
        for bad in ("Engine.wal", "nodots", "trailing.", ".leading", "a.B"):
            assert not pattern.match(bad), bad


class TestResetContractWithRecorder:
    def test_reset_clears_the_attached_recorder_ring(self):
        instr = Instrumentation()
        recorder = FlightRecorder(instr)
        instr.attach_recorder(recorder)
        instr.count("backend.rpc.round_trips", 10)
        recorder.sample(1.0)
        assert len(recorder) == 1
        instr.reset()
        assert len(recorder) == 0
        # Baselines rebased: the first post-reset sample reports the
        # post-reset counter value, not a negative delta.
        instr.count("backend.rpc.round_trips", 3)
        entry = recorder.sample(2.0)
        assert entry["rates"]["backend.rpc.round_trips"] == 3.0

    def test_reset_keeps_gauge_callbacks_through_the_recorder(self):
        instr = Instrumentation()
        recorder = FlightRecorder(instr)
        instr.attach_recorder(recorder)
        instr.gauge("engine.buffer.occupancy", lambda: 0.5)
        instr.set_gauge("backend.occ.inflight", 9.0)
        instr.reset()
        entry = recorder.sample(0.0)
        assert entry["gauges"] == {"engine.buffer.occupancy": 0.5}


class TestFlightRecorder:
    def test_rates_are_deltas_over_dt(self):
        instr = Instrumentation()
        recorder = FlightRecorder(instr)
        instr.count("backend.mp.txn.committed", 4)
        first = recorder.sample(0.0)
        # First sample: no previous t, raw delta.
        assert first["rates"]["backend.mp.txn.committed"] == 4.0
        instr.count("backend.mp.txn.committed", 6)
        second = recorder.sample(2.0)
        assert second["rates"]["backend.mp.txn.committed"] == 3.0

    def test_nonpositive_dt_falls_back_to_raw_delta(self):
        # Grid cells restart their virtual clocks near zero, so a
        # shared recorder sees t go backwards at cell boundaries.
        instr = Instrumentation()
        recorder = FlightRecorder(instr)
        recorder.sample(5.0)
        instr.count("backend.rpc.round_trips", 2)
        entry = recorder.sample(1.0)  # t went backwards
        assert entry["rates"]["backend.rpc.round_trips"] == 2.0

    def test_windowed_percentiles_cover_only_the_window(self):
        instr = Instrumentation()
        recorder = FlightRecorder(instr)
        for value in (1.0, 1.0, 1.0):
            instr.observe("backend.mp.queue_delay", value)
        recorder.sample(1.0)
        for value in (64.0, 64.0):
            instr.observe("backend.mp.queue_delay", value)
        entry = recorder.sample(2.0)
        window = entry["windows"]["backend.mp.queue_delay"]
        assert window["count"] == 2.0
        # The first sample's 1.0s are outside this window: every
        # percentile sits in the 64-bucket (32, 64], far above 1.
        assert window["p50"] > 32.0

    def test_quiet_histograms_emit_no_window(self):
        instr = Instrumentation()
        recorder = FlightRecorder(instr)
        instr.observe("backend.mp.queue_delay", 2.0)
        recorder.sample(1.0)
        entry = recorder.sample(2.0)  # nothing new arrived
        assert entry["windows"] == {}

    def test_virtual_clock_skips_wall_measured_histograms(self):
        instr = Instrumentation()
        virtual = FlightRecorder(instr, clock="virtual")
        wall = FlightRecorder(instr, clock="wall")
        for name in WALL_CLOCK_HISTOGRAMS:
            instr.observe(name.rstrip(".") if not name.endswith(".") else name + "cold", 1.0)
        instr.observe("backend.mp.queue_delay", 1.0)
        v_entry = virtual.sample(1.0)
        w_entry = wall.sample(1.0)
        assert list(v_entry["windows"]) == ["backend.mp.queue_delay"]
        assert set(w_entry["windows"]) > {"backend.mp.queue_delay"}

    def test_ring_is_bounded(self):
        instr = Instrumentation()
        recorder = FlightRecorder(instr, capacity=3)
        for step in range(5):
            recorder.sample(float(step))
        kept = [entry["t"] for entry in recorder.samples()]
        assert kept == [2.0, 3.0, 4.0]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(Instrumentation(), capacity=0)

    def test_rebind_rebases_but_keeps_samples(self):
        first = Instrumentation()
        first.count("backend.rpc.round_trips", 100)
        recorder = FlightRecorder(first)
        recorder.sample(1.0)
        second = Instrumentation()
        second.count("backend.rpc.round_trips", 5)
        recorder.rebind(second)
        entry = recorder.sample(0.5)
        assert len(recorder) == 2  # retained across the rebind
        # Fresh baseline: the new handle's full value, not 5 - 100.
        assert entry["rates"]["backend.rpc.round_trips"] == 5.0

    def test_labels_are_recorded_only_when_given(self):
        instr = Instrumentation()
        recorder = FlightRecorder(instr)
        with_label = recorder.sample(0.0, label="cell-a/closure")
        without = recorder.sample(1.0)
        assert with_label["label"] == "cell-a/closure"
        assert "label" not in without


class TestJsonlDeterminism:
    @staticmethod
    def _run() -> str:
        instr = Instrumentation()
        recorder = FlightRecorder(instr)
        for step in range(4):
            instr.count("backend.mp.txn.committed", step + 1)
            instr.observe("backend.mp.queue_delay", float(2**step))
            instr.set_gauge("backend.occ.inflight", float(step))
            recorder.sample(step * 0.25, label=f"step-{step}")
        stream = io.StringIO()
        recorder.dump_jsonl(stream)
        return stream.getvalue()

    def test_two_identical_runs_are_byte_identical(self):
        assert self._run() == self._run()

    def test_write_and_read_roundtrip(self, tmp_path):
        instr = Instrumentation()
        recorder = FlightRecorder(instr)
        instr.count("backend.rpc.round_trips", 2)
        recorder.sample(1.0, label="only")
        path = tmp_path / "timeline.jsonl"
        assert recorder.write_jsonl(str(path)) == 1
        loaded = read_jsonl(str(path))
        assert loaded == recorder.samples()


class TestNoOpGaugeZeroCost:
    def test_noop_gauge_calls_allocate_nothing(self):
        # Mirrors TestNoOpZeroCost in test_obs.py: 10k disabled gauge
        # registrations + sets must stay inside allocation noise.
        NO_OP.gauge("backend.occ.inflight", lambda: 1.0)  # warm up
        NO_OP.set_gauge("backend.occ.inflight", 1.0)
        tracemalloc.start()
        try:
            before, _peak = tracemalloc.get_traced_memory()
            for _ in range(10_000):
                NO_OP.set_gauge("backend.occ.inflight", 1.0)
                NO_OP.gauge("engine.wal.backlog", float)
            after, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert after - before < 16_384
        assert peak - before < 16_384
        assert len(NO_OP.gauges) == 0

    def test_noop_reset_tolerates_no_recorder(self):
        NO_OP.reset()  # must not raise; there is nothing to clear
