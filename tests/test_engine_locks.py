"""Lock manager: compatibility, upgrades, deadlock detection (R8)."""

import threading
import time

import pytest

from repro.engine.locks import LockManager, LockMode
from repro.errors import DeadlockError

S = LockMode.SHARED
X = LockMode.EXCLUSIVE


@pytest.fixture
def locks():
    return LockManager(timeout=0.5)


class TestCompatibility:
    def test_shared_locks_coexist(self, locks):
        locks.acquire(1, 100, S)
        locks.acquire(2, 100, S)
        assert locks.holders_of(100) == {1, 2}

    def test_exclusive_excludes(self, locks):
        locks.acquire(1, 100, X)
        with pytest.raises(DeadlockError):  # timeout backstop
            locks.acquire(2, 100, X)

    def test_shared_blocks_exclusive(self, locks):
        locks.acquire(1, 100, S)
        with pytest.raises(DeadlockError):
            locks.acquire(2, 100, X)

    def test_reacquire_is_idempotent(self, locks):
        locks.acquire(1, 100, S)
        locks.acquire(1, 100, S)
        locks.acquire(1, 100, X)  # sole holder may upgrade
        locks.acquire(1, 100, S)  # X already covers S
        assert locks.holders_of(100) == {1}

    def test_upgrade_blocked_by_other_reader(self, locks):
        locks.acquire(1, 100, S)
        locks.acquire(2, 100, S)
        with pytest.raises(DeadlockError):
            locks.acquire(1, 100, X)


class TestRelease:
    def test_release_all_frees_everything(self, locks):
        locks.acquire(1, 100, X)
        locks.acquire(1, 101, S)
        locks.release_all(1)
        assert locks.holders_of(100) == set()
        assert locks.locks_held(1) == set()
        locks.acquire(2, 100, X)  # now available

    def test_release_wakes_waiter(self, locks):
        locks.acquire(1, 100, X)
        acquired = threading.Event()

        def waiter():
            locks.acquire(2, 100, X)
            acquired.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)
        assert not acquired.is_set()
        locks.release_all(1)
        thread.join(timeout=2)
        assert acquired.is_set()
        locks.release_all(2)


class TestDeadlock:
    def test_two_party_deadlock_detected(self, locks):
        locks.acquire(1, 100, X)
        locks.acquire(2, 200, X)
        results = {}

        def txn1():
            try:
                locks.acquire(1, 200, X)  # waits for 2
                results[1] = "ok"
            except DeadlockError:
                results[1] = "deadlock"
            finally:
                locks.release_all(1)

        thread = threading.Thread(target=txn1)
        thread.start()
        time.sleep(0.05)
        # Txn 2 requesting 100 closes the cycle: it must be refused.
        try:
            locks.acquire(2, 100, X)
            results[2] = "ok"
        except DeadlockError:
            results[2] = "deadlock"
        finally:
            locks.release_all(2)
        thread.join(timeout=2)
        assert "deadlock" in results.values()
        assert list(results.values()).count("ok") >= 1

    def test_timeout_reported_as_deadlock_error(self, locks):
        locks.acquire(1, 100, X)
        started = time.perf_counter()
        with pytest.raises(DeadlockError):
            locks.acquire(2, 100, S)
        assert time.perf_counter() - started >= 0.4


class TestStress:
    def test_many_threads_random_locks_no_leaks(self):
        """Eight threads hammer ten objects with mixed S/X locks.

        Deadlock victims retry after releasing; the invariants are that
        nothing crashes, every thread finishes, and all locks are free
        at the end.
        """
        import random

        locks = LockManager(timeout=0.2)
        finished = []
        errors = []

        def worker(txid: int) -> None:
            rng = random.Random(txid)
            try:
                for _round in range(40):
                    wanted = rng.sample(range(10), rng.randint(1, 3))
                    mode = X if rng.random() < 0.3 else S
                    try:
                        for oid in wanted:
                            locks.acquire(txid, oid, mode)
                    except DeadlockError:
                        pass  # victim: release and move on
                    finally:
                        locks.release_all(txid)
                finished.append(txid)
            except Exception as exc:  # pragma: no cover - defensive
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(txid,)) for txid in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert sorted(finished) == list(range(8))
        for oid in range(10):
            assert locks.holders_of(oid) == set()
