"""Level sweeps, scaling tables and crossover detection."""

import pytest

from repro.harness.sweep import (
    LevelSweep,
    find_crossovers,
    per_node_series,
    scaling_table,
)


@pytest.fixture(scope="module")
def sweep_results(tmp_path_factory):
    sweep = LevelSweep(
        backend="memory",
        levels=(2, 3),
        op_ids=["01", "03", "10"],
        repetitions=3,
        workdir=str(tmp_path_factory.mktemp("sweep")),
    )
    return sweep.run()


class TestLevelSweep:
    def test_covers_all_levels_and_ops(self, sweep_results):
        assert sweep_results.levels == [2, 3]
        assert set(sweep_results.op_ids) == {"01", "03", "10"}
        assert len(sweep_results) == 6

    def test_series_extraction(self, sweep_results):
        series = per_node_series(sweep_results, "memory", "01")
        assert [level for level, _ms in series] == [2, 3]
        assert all(ms >= 0 for _level, ms in series)

    def test_scaling_table_renders(self, sweep_results):
        table = scaling_table(sweep_results, "memory")
        assert "01 nameLookup" in table
        assert "L 2" in table and "L 3" in table
        assert "x" in table
        with pytest.raises(ValueError):
            scaling_table(sweep_results, "memory", "tepid")


class TestCrossovers:
    def _fake_results(self):
        """Hand-built results where backend b overtakes a at level 3."""
        from repro.harness.protocol import ColdWarmResult
        from repro.harness.results import ResultSet
        from repro.harness.timing import Stats

        def cell(backend, level, cold_mean):
            stats = Stats.from_samples([cold_mean])
            return ColdWarmResult(
                op_id="01", op_name="nameLookup", category="Name Lookup",
                backend=backend, level=level, repetitions=1,
                cold=stats, warm=stats, commit_seconds=0.0,
                cold_total_seconds=cold_mean, warm_total_seconds=cold_mean,
                nodes_per_repetition=1.0,
            )

        return ResultSet(
            [
                cell("a", 2, 1.0), cell("a", 3, 5.0),
                cell("b", 2, 2.0), cell("b", 3, 3.0),
            ]
        )

    def test_crossover_found(self):
        flips = find_crossovers(self._fake_results(), "a", "b")
        assert flips == {"01": 3}

    def test_no_crossover_when_one_side_dominates(self):
        from repro.harness.results import ResultSet

        results = self._fake_results()
        dominated = ResultSet(
            [r for r in results if not (r.backend == "a" and r.level == 3)]
        )
        # Only one shared level remains: no verdict possible.
        assert find_crossovers(dominated, "a", "b") == {}
