"""Access control (R11): policy resolution and the guarded wrapper."""

import pytest

from repro.access import PUBLIC, AccessController, GuardedDatabase, Permission
from repro.core.bitmap import Bitmap
from repro.core.model import LinkAttributes
from repro.errors import AccessDeniedError


@pytest.fixture
def guarded(memory_populated):
    db, gen = memory_populated
    controller = AccessController(db, default=Permission.READ_WRITE)
    return GuardedDatabase(db, controller, principal="alice"), db, gen, controller


def _doc_roots(db, gen):
    """The five level-1 nodes: the 'documents' of the structure."""
    return db.children(db.lookup(gen.root_uid))


class TestPermissionResolution:
    def test_default_applies_without_policies(self, guarded):
        g, db, gen, controller = guarded
        ref = db.lookup(10)
        assert controller.effective_permission("anyone", ref) == Permission.READ_WRITE

    def test_policy_covers_whole_subtree(self, guarded):
        g, db, gen, controller = guarded
        doc = _doc_roots(db, gen)[0]
        doc_uid = db.get_attribute(doc, "uniqueId")
        controller.set_policy(doc_uid, PUBLIC, Permission.READ)
        leaf = db.children(db.children(doc)[0])[0]
        assert controller.effective_permission("bob", leaf) == Permission.READ

    def test_nearest_ancestor_wins(self, guarded):
        g, db, gen, controller = guarded
        doc = _doc_roots(db, gen)[0]
        section = db.children(doc)[0]
        controller.set_policy(db.get_attribute(doc, "uniqueId"),
                              PUBLIC, Permission.READ)
        controller.set_policy(db.get_attribute(section, "uniqueId"),
                              PUBLIC, Permission.READ_WRITE)
        leaf = db.children(section)[0]
        assert controller.effective_permission("bob", leaf) == Permission.READ_WRITE

    def test_principal_entry_shadows_public_on_same_node(self, guarded):
        g, db, gen, controller = guarded
        doc = _doc_roots(db, gen)[0]
        uid = db.get_attribute(doc, "uniqueId")
        controller.set_policy(uid, PUBLIC, Permission.READ)
        controller.set_policy(uid, "alice", Permission.READ_WRITE)
        assert controller.effective_permission("alice", doc) == Permission.READ_WRITE
        assert controller.effective_permission("bob", doc) == Permission.READ

    def test_clear_policy(self, guarded):
        g, db, gen, controller = guarded
        doc = _doc_roots(db, gen)[0]
        uid = db.get_attribute(doc, "uniqueId")
        controller.set_policy(uid, PUBLIC, Permission.NONE)
        controller.clear_policy(uid, PUBLIC)
        assert controller.effective_permission("bob", doc) == Permission.READ_WRITE
        assert controller.policies_on(uid) == {}


class TestR11Scenario:
    """The paper's example: public read on one document structure,
    public write on another, links between them still possible."""

    def test_scenario(self, guarded):
        g, db, gen, controller = guarded
        read_doc, write_doc = _doc_roots(db, gen)[:2]
        controller.set_policy(
            db.get_attribute(read_doc, "uniqueId"), PUBLIC, Permission.READ
        )
        controller.set_policy(
            db.get_attribute(write_doc, "uniqueId"),
            PUBLIC,
            Permission.READ_WRITE,
        )
        # Reading both works.
        assert g.get_attribute(read_doc, "ten")
        assert g.get_attribute(write_doc, "ten")
        # Writing only in the writable document.
        g.set_attribute(write_doc, "ten", 3)
        with pytest.raises(AccessDeniedError):
            g.set_attribute(read_doc, "ten", 3)
        # A link from the writable structure into the read-only one.
        source = db.children(write_doc)[0]
        target = db.children(read_doc)[0]
        g.add_reference(source, target, LinkAttributes(1, 2))
        assert any(t is target for t, _a in db.refs_to(source))


class TestGuardedOperations:
    def _lock_down(self, guarded):
        g, db, gen, controller = guarded
        doc = _doc_roots(db, gen)[0]
        controller.set_policy(
            db.get_attribute(doc, "uniqueId"), PUBLIC, Permission.NONE
        )
        return g, db, gen, doc

    def test_reads_denied_without_read(self, guarded):
        g, db, gen, doc = self._lock_down(guarded)
        for call in (
            lambda: g.get_attribute(doc, "ten"),
            lambda: g.children(doc),
            lambda: g.parts(doc),
            lambda: g.parent(doc),
            lambda: g.kind_of(doc),
            lambda: g.refs_to(doc),
        ):
            with pytest.raises(AccessDeniedError):
                call()

    def test_lookup_of_denied_node_refused(self, guarded):
        g, db, gen, doc = self._lock_down(guarded)
        with pytest.raises(AccessDeniedError):
            g.lookup(db.get_attribute(doc, "uniqueId"))

    def test_range_results_filtered(self, guarded):
        g, db, gen, doc = self._lock_down(guarded)
        allowed = g.range_hundred(1, 100)
        denied_subtree = {
            db.get_attribute(n, "uniqueId")
            for n in [doc] + db.children(doc)
        }
        got = {db.get_attribute(r, "uniqueId") for r in allowed}
        assert not (got & denied_subtree)

    def test_scan_skips_denied_nodes(self, guarded):
        g, db, gen, doc = self._lock_down(guarded)
        # The locked document subtree: 1 + 5 + 25 = 31 of 156 nodes.
        assert g.scan_ten() == 156 - 31

    def test_content_writes_denied(self, guarded):
        g, db, gen, controller = guarded
        text_ref = db.lookup(gen.text_uids[0])
        controller.set_policy(gen.text_uids[0], "alice", Permission.READ)
        assert g.get_text(text_ref)
        with pytest.raises(AccessDeniedError):
            g.set_text(text_ref, "denied")

    def test_as_principal_switches_identity(self, guarded):
        g, db, gen, controller = guarded
        doc = _doc_roots(db, gen)[0]
        uid = db.get_attribute(doc, "uniqueId")
        controller.set_policy(uid, "alice", Permission.NONE)
        controller.set_policy(uid, "bob", Permission.READ_WRITE)
        with pytest.raises(AccessDeniedError):
            g.get_attribute(doc, "ten")
        as_bob = g.as_principal("bob")
        assert as_bob.get_attribute(doc, "ten")
        as_bob.set_attribute(doc, "ten", 2)

    def test_error_carries_context(self, guarded):
        g, db, gen, controller = guarded
        doc = _doc_roots(db, gen)[0]
        uid = db.get_attribute(doc, "uniqueId")
        controller.set_policy(uid, PUBLIC, Permission.READ)
        with pytest.raises(AccessDeniedError) as excinfo:
            g.set_attribute(doc, "ten", 1)
        error = excinfo.value
        assert error.principal == "alice"
        assert error.action == "write"
        assert error.target == uid

    def test_backend_name_is_decorated(self, guarded):
        g, *_ = guarded
        assert g.backend_name == "guarded(memory)"

    def test_aggregation_needs_write_on_both_ends(self, guarded):
        g, db, gen, controller = guarded
        from repro.core.model import NodeData

        orphan = db.create_node(
            NodeData(unique_id=5000, ten=1, hundred=1, million=1)
        )
        doc = _doc_roots(db, gen)[0]
        controller.set_policy(
            db.get_attribute(doc, "uniqueId"), PUBLIC, Permission.READ
        )
        with pytest.raises(AccessDeniedError):
            g.add_part(doc, orphan)
