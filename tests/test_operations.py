"""Semantics of the twenty benchmark operations (section 6)."""

import random

import pytest

from repro.core.operations import CATALOG, Operations
from repro.core.text import VERSION_1, VERSION_2


@pytest.fixture
def ops(memory_populated):
    db, gen = memory_populated
    return Operations(db, gen.config), db, gen


def _level3_start(db, gen, seed=5):
    rng = random.Random(seed)
    return db.lookup(gen.random_uid_at_level(rng, 2))  # deepest internal level


class TestNameLookup:
    def test_op01_returns_hundred_by_key(self, ops):
        operations, db, gen = ops
        node = db.lookup(77)
        assert operations.name_lookup(77) == db.get_attribute(node, "hundred")

    def test_op02_returns_hundred_by_reference(self, ops):
        operations, db, _gen = ops
        node = db.lookup(42)
        assert operations.name_oid_lookup(node) == db.get_attribute(node, "hundred")


class TestRangeLookup:
    def test_op03_ten_percent_selectivity_shape(self, ops):
        operations, db, gen = ops
        result = operations.range_lookup_hundred(41)
        for ref in result:
            assert 41 <= db.get_attribute(ref, "hundred") <= 50
        brute = [
            n
            for n in db.iter_nodes()
            if 41 <= db.get_attribute(n, "hundred") <= 50
        ]
        assert len(result) == len(brute)

    def test_op04_million_range(self, ops):
        operations, db, _gen = ops
        result = operations.range_lookup_million(100_000)
        for ref in result:
            assert 100_000 <= db.get_attribute(ref, "million") <= 109_999


class TestGroupLookup:
    def test_op05a_returns_five_ordered_children(self, ops):
        operations, db, gen = ops
        node = _level3_start(db, gen)
        children = operations.group_lookup_1n(node)
        assert len(children) == 5
        assert children == db.children(node)  # ordered, stable

    def test_op05b_returns_five_parts(self, ops):
        operations, db, gen = ops
        node = _level3_start(db, gen)
        assert len(operations.group_lookup_mn(node)) == 5

    def test_op06_returns_single_referenced_node(self, ops):
        operations, db, gen = ops
        node = db.lookup(gen.random_uid(random.Random(8)))
        assert len(operations.group_lookup_mnatt(node)) == 1


class TestReferenceLookup:
    def test_op07a_parent_of_non_root(self, ops):
        operations, db, gen = ops
        node = db.lookup(gen.random_non_root_uid(random.Random(9)))
        parents = operations.ref_lookup_1n(node)
        assert len(parents) == 1
        assert node in db.children(parents[0])

    def test_op07a_root_has_no_parent(self, ops):
        operations, db, gen = ops
        assert operations.ref_lookup_1n(db.lookup(gen.root_uid)) == []

    def test_op07b_inverse_of_parts(self, ops):
        operations, db, gen = ops
        node = _level3_start(db, gen)
        for part in db.parts(node):
            assert node in operations.ref_lookup_mn(part)

    def test_op08_possibly_empty_inverse_references(self, ops):
        operations, db, gen = ops
        total = 0
        for uid in range(1, 157):
            node = db.lookup(uid)
            referrers = operations.ref_lookup_mnatt(node)
            for referrer in referrers:
                targets = [t for t, _a in db.refs_to(referrer)]
                assert node in targets
            total += len(referrers)
        assert total == 156  # one outgoing ref per node, globally


class TestSeqScan:
    def test_op09_visits_every_node_once(self, ops):
        operations, _db, gen = ops
        assert operations.seq_scan() == gen.total_nodes


class TestClosureTraversals:
    def test_op10_preorder_order_and_size(self, ops):
        operations, db, gen = ops
        start = _level3_start(db, gen)
        result = operations.closure_1n(start)
        assert len(result) == 6  # level-3 node + 5 leaves at this scale
        assert result[0] is start
        assert result[1:] == db.children(start)

    def test_op10_preorder_from_root_is_depth_first(self, ops):
        operations, db, gen = ops
        root = db.lookup(gen.root_uid)
        result = operations.closure_1n(root)
        assert len(result) == gen.total_nodes
        # Pre-order: the second element is the first child, and that
        # child's whole subtree precedes the second child.
        first_child, second_child = db.children(root)[:2]
        assert result[1] is first_child
        subtree_size = 1 + 5 + 25  # child at level 1 in a level-3 db
        assert result[1 + subtree_size] is second_child

    def test_op14_counts_visits_not_distinct_nodes(self, ops):
        operations, db, gen = ops
        start = _level3_start(db, gen)
        result = operations.closure_mn(start)
        assert len(result) == 6  # 1 + 5 parts (leaves have none)

    def test_op14_from_root_matches_paper_arithmetic(self, ops):
        operations, db, gen = ops
        root = db.lookup(gen.root_uid)
        # Visits: 1 + 5 + 25 + 125 regardless of sharing.
        assert len(operations.closure_mn(root)) == 156

    def test_op15_depth_limited_walk(self, ops):
        operations, db, gen = ops
        start = _level3_start(db, gen)
        assert len(operations.closure_mnatt(start)) == 25
        assert len(operations.closure_mnatt(start, depth=7)) == 7

    def test_op15_follows_the_single_reference_chain(self, ops):
        operations, db, gen = ops
        start = _level3_start(db, gen)
        result = operations.closure_mnatt(start, depth=3)
        node = start
        for expected in result:
            (target, _attrs), = db.refs_to(node)
            assert target is expected
            node = target


class TestClosureOperations:
    def test_op11_sum_matches_manual_walk(self, ops):
        operations, db, gen = ops
        start = _level3_start(db, gen)
        manual = sum(
            db.get_attribute(n, "hundred")
            for n in operations.closure_1n(start)
        )
        assert operations.closure_1n_att_sum(start) == manual

    def test_op12_set_is_self_inverse(self, ops):
        operations, db, gen = ops
        start = _level3_start(db, gen)
        before = [
            db.get_attribute(n, "hundred") for n in operations.closure_1n(start)
        ]
        count = operations.closure_1n_att_set(start)
        assert count == 6
        during = [
            db.get_attribute(n, "hundred") for n in operations.closure_1n(start)
        ]
        assert during == [99 - v for v in before]
        operations.closure_1n_att_set(start)
        after = [
            db.get_attribute(n, "hundred") for n in operations.closure_1n(start)
        ]
        assert after == before

    def test_op13_excludes_and_prunes(self, ops):
        operations, db, gen = ops
        root = db.lookup(gen.root_uid)
        # Pick a window that is guaranteed to hit at least one node.
        some_million = db.get_attribute(db.lookup(40), "million")
        x = max(1, some_million - 5000)

        def expected(node):
            if x <= db.get_attribute(node, "million") <= x + 9999:
                return []  # excluded AND recursion terminates here
            collected = [node]
            for child in db.children(node):
                collected.extend(expected(child))
            return collected

        result = operations.closure_1n_pred(root, x)
        assert {db.get_attribute(n, "uniqueId") for n in result} == {
            db.get_attribute(n, "uniqueId") for n in expected(root)
        }
        assert len(result) < gen.total_nodes  # something was pruned

    def test_op13_no_matches_returns_whole_closure(self, ops):
        operations, db, gen = ops
        start = _level3_start(db, gen)
        closure = operations.closure_1n(start)
        if all(
            not (990_000 <= db.get_attribute(n, "million") <= 999_999)
            for n in closure
        ):
            assert operations.closure_1n_pred(start, 990_000) == closure

    def test_op18_distances_accumulate_offset_to(self, ops):
        operations, db, gen = ops
        start = _level3_start(db, gen)
        pairs = operations.closure_mnatt_linksum(start, depth=5)
        assert len(pairs) == 5
        node, running = start, 0
        for reached, distance in pairs:
            (target, attrs), = db.refs_to(node)
            running += attrs.offset_to
            assert reached is target
            assert distance == running
            node = target


class TestEditing:
    def test_op16_alternates_and_round_trips(self, ops):
        operations, db, gen = ops
        node = db.lookup(gen.random_text_uid(random.Random(3)))
        original = db.get_text(node)
        operations.text_node_edit(node)
        assert VERSION_2 in db.get_text(node)
        assert VERSION_1 not in db.get_text(node).split(" ")
        operations.text_node_edit(node)
        assert db.get_text(node) == original

    def test_op17_inverts_the_same_rectangle(self, ops):
        operations, db, gen = ops
        node = db.lookup(gen.random_form_uid(random.Random(4)))
        operations.form_node_edit(node)
        assert db.get_bitmap(node).popcount() == 625
        operations.form_node_edit(node)
        assert db.get_bitmap(node).is_white()


class TestCatalog:
    def test_all_twenty_operations_present(self):
        assert len(CATALOG) == 20
        assert CATALOG.op_ids == [
            "01", "02", "03", "04", "05A", "05B", "06", "07A", "07B",
            "08", "09", "10", "11", "12", "13", "14", "15", "16", "17", "18",
        ]

    def test_seven_categories_in_paper_order(self):
        assert CATALOG.categories == [
            "Name Lookup",
            "Range Lookup",
            "Group Lookup",
            "Reference Lookup",
            "Sequential Scan",
            "Closure Traversal",
            "Closure Operation",
            "Editing",
        ]

    def test_category_membership(self):
        assert [s.op_id for s in CATALOG.in_category("Editing")] == ["16", "17"]
        assert [s.op_id for s in CATALOG.in_category("Closure Traversal")] == [
            "10", "14", "15",
        ]

    def test_mutating_flags(self):
        for op_id in ("12", "16", "17"):
            assert CATALOG.get(op_id).mutates
        for op_id in ("01", "10", "15"):
            assert not CATALOG.get(op_id).mutates

    def test_op17_reuses_one_input(self):
        assert CATALOG.get("17").same_input_every_repetition
        assert not CATALOG.get("16").same_input_every_repetition

    def test_unknown_op_id_raises(self):
        with pytest.raises(KeyError):
            CATALOG.get("99")

    def test_input_makers_produce_valid_inputs(self, memory_populated):
        db, gen = memory_populated
        rng = random.Random(0)
        operations = Operations(db, gen.config)
        for spec in CATALOG:
            args = spec.make_input(gen, rng, db)
            result = spec.run(operations, args)
            assert spec.result_size(result, gen) >= 1
