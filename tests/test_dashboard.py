"""The ``repro dash`` HTML renderer (src/repro/obs/dashboard.py).

Pins the self-containment contract (one file, zero network
dependencies, no JavaScript) and the presence of every section the
game-day dashboard promises: provenance header, timeline charts with
table-view twins, benchmark percentile tables, and the trace summary.
"""

import json

import pytest

from repro.obs import FlightRecorder, Instrumentation
from repro.obs.dashboard import render_dashboard, write_dashboard
from repro.obs.traceexport import build_trace


def _multiuser_doc():
    """A minimal but shape-correct BENCH_multiuser document."""
    leaf = {
        "mode": "multiuser",
        "committed": 8,
        "aborted": 1,
        "abort_rate": 0.111,
        "throughput_per_s": 120.5,
        "p50_ms": 1.2,
        "p90_ms": 2.4,
        "p99_ms": 4.8,
        "max_ms": 5.0,
    }
    return {
        "benchmark": "multiuser",
        "provenance": {"seed": 1989, "level": 3},
        "cells": {
            "clients-1": {"conflict-0": dict(leaf)},
            "clients-8": {
                "conflict-0": dict(leaf),
                "conflict-0.2": dict(leaf, aborted=4, abort_rate=0.3),
            },
        },
        "wal": {
            "per_commit": {
                "fsyncs_per_commit": 1.0,
                "wal_syncs": 64,
                "throughput_per_s": 80.0,
            },
            "group_commit": {
                "fsyncs_per_commit": 0.125,
                "wal_syncs": 8,
                "throughput_per_s": 118.0,
            },
        },
    }


def _timeline_samples():
    instr = Instrumentation()
    recorder = FlightRecorder(instr)
    for step in range(6):
        instr.count("backend.mp.txn.committed", step + 1)
        instr.set_gauge("backend.occ.inflight", float(step % 3))
        instr.observe("backend.mp.queue_delay", float(2**step))
        # t resets halfway through, like a new grid cell.
        t = (step % 3) * 0.1
        label = "cell-a" if step < 3 else "cell-b"
        recorder.sample(t, label=label)
    return recorder.samples()


@pytest.fixture(scope="module")
def rendered():
    instr = Instrumentation()
    with instr.span("rpc.fetch", client="client·shard0"):
        pass
    instr.count("backend.rpc.round_trips", 3)
    trace = build_trace(instr)
    return render_dashboard(
        benches=[("BENCH_multiuser.json", _multiuser_doc())],
        timeline=_timeline_samples(),
        trace=trace,
    )


class TestSelfContainment:
    def test_single_document_no_network_no_js(self, rendered):
        assert rendered.startswith("<!DOCTYPE html>")
        for forbidden in (
            "http://", "https://", "<script", "src=", "@import", "url(",
        ):
            assert forbidden not in rendered, forbidden
        assert "<style>" in rendered

    def test_dark_mode_is_selected_not_inverted(self, rendered):
        # Dark palette steps are declared explicitly, not derived.
        assert "prefers-color-scheme: dark" in rendered
        assert "#3987e5" in rendered  # dark series-1 step
        assert "#2a78d6" in rendered  # light series-1 step


class TestSections:
    def test_provenance_header_names_every_source(self, rendered):
        assert "BENCH_multiuser.json" in rendered
        assert "timeline (6 samples)" in rendered
        assert "chrome trace" in rendered

    def test_timeline_charts_and_segment_bands(self, rendered):
        assert "OCC transactions in flight" in rendered
        assert "commit rate (txn/s)" in rendered
        assert "backend.mp.queue_delay window (ms)" in rendered
        # Segment labels from the sample stream appear in the table.
        assert "cell-a" in rendered and "cell-b" in rendered

    def test_every_chart_has_a_table_view_twin(self, rendered):
        assert rendered.count("<svg") > 0
        assert rendered.count("<details") >= rendered.count(
            'role="img"'
        )

    def test_bench_section_has_percentile_table_and_wal_rows(
        self, rendered
    ):
        assert "Latency percentiles (virtual ms)" in rendered
        assert "clients-1 / conflict-0" in rendered
        assert "group-commit" in rendered

    def test_trace_section_lists_lanes_and_counters(self, rendered):
        assert "Trace" in rendered
        assert "shard0" in rendered
        assert "backend.rpc.round_trips" in rendered

    def test_kpi_tiles_aggregate_the_multiuser_cells(self, rendered):
        assert "committed txns" in rendered
        assert "peak throughput /s" in rendered


class TestWriteDashboard:
    def test_write_dashboard_loads_all_inputs(self, tmp_path):
        bench_path = tmp_path / "BENCH_multiuser.json"
        bench_path.write_text(json.dumps(_multiuser_doc()))
        timeline_path = tmp_path / "timeline.jsonl"
        instr = Instrumentation()
        recorder = FlightRecorder(instr)
        instr.count("backend.mp.txn.committed", 2)
        recorder.sample(0.5, label="only")
        recorder.write_jsonl(str(timeline_path))
        out = tmp_path / "dash.html"
        write_dashboard(
            str(out),
            bench_paths=[str(bench_path)],
            timeline_path=str(timeline_path),
            title="smoke",
        )
        data = out.read_text()
        assert data.startswith("<!DOCTYPE html>")
        assert "<title>smoke</title>" in data

    def test_render_with_no_inputs_is_still_valid(self):
        document = render_dashboard()
        assert document.startswith("<!DOCTYPE html>")
        assert "sources: none" in document


class TestCumulativeAxis:
    def test_resetting_t_yields_a_monotonic_axis(self):
        from repro.obs.dashboard import _continuous_axis

        samples = [
            {"t": 0.1, "label": "a"},
            {"t": 0.2, "label": "a"},
            {"t": 0.05, "label": "b"},  # new cell: clock restarted
            {"t": 0.15, "label": "b"},
        ]
        xs, bands = _continuous_axis(samples)
        assert xs == sorted(xs)
        assert xs[2] == pytest.approx(0.25)  # 0.2 offset + 0.05
        assert [label for _, label in bands] == ["a", "b"]
