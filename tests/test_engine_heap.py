"""Heap files: RIDs, overflow chains, relocation and placement hints."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.buffer import BufferPool
from repro.engine.heap import HeapFile, make_rid, rid_page, rid_slot
from repro.engine.pages import PageFile
from repro.errors import RecordNotFoundError


@pytest.fixture
def heap(tmp_path):
    pf = PageFile(str(tmp_path / "h.db"))
    pool = BufferPool(pf, capacity=16)
    heap = HeapFile(pool, "data")
    yield heap
    pool.flush_all()
    pf.close()


class TestRids:
    def test_rid_packing_roundtrip(self):
        rid = make_rid(1234, 56)
        assert rid_page(rid) == 1234
        assert rid_slot(rid) == 56


class TestBasics:
    def test_insert_read_roundtrip(self, heap):
        rid = heap.insert(b"record-1")
        assert heap.read(rid) == b"record-1"

    def test_missing_rid_raises(self, heap):
        rid = heap.insert(b"x")
        heap.delete(rid)
        with pytest.raises(RecordNotFoundError):
            heap.read(rid)
        with pytest.raises(RecordNotFoundError):
            heap.delete(rid)
        with pytest.raises(RecordNotFoundError):
            heap.update(rid, b"y")

    def test_scan_in_physical_order(self, heap):
        rids = [heap.insert(bytes([i]) * 10) for i in range(20)]
        scanned = list(heap.scan())
        assert [r for r, _ in scanned] == rids
        assert scanned[3][1] == bytes([3]) * 10

    def test_heap_grows_across_pages(self, heap):
        for i in range(50):
            heap.insert(b"p" * 500)
        assert len(list(heap.page_ids())) > 5
        assert len(list(heap.scan())) == 50

    def test_persistence_across_reopen(self, tmp_path):
        path = str(tmp_path / "p.db")
        pf = PageFile(path)
        pool = BufferPool(pf, capacity=8)
        heap = HeapFile(pool, "data")
        rid = heap.insert(b"durable")
        pool.flush_all()
        pf.sync()
        pf.close()
        pf2 = PageFile(path)
        heap2 = HeapFile(BufferPool(pf2, capacity=8), "data")
        assert heap2.read(rid) == b"durable"
        pf2.close()


class TestUpdate:
    def test_in_place_update_keeps_rid(self, heap):
        rid = heap.insert(b"aaaa")
        assert heap.update(rid, b"bb") == rid
        assert heap.read(rid) == b"bb"

    def test_relocating_update_returns_new_rid(self, heap):
        rids = [heap.insert(b"f" * 1300) for _ in range(3)]
        new_rid = heap.update(rids[0], b"g" * 3500)
        assert new_rid != rids[0]
        assert heap.read(new_rid) == b"g" * 3500
        with pytest.raises(RecordNotFoundError):
            heap.read(rids[0])


class TestOverflow:
    def test_record_larger_than_page(self, heap):
        big = bytes(range(256)) * 100  # 25,600 bytes
        rid = heap.insert(big)
        assert heap.read(rid) == big

    def test_overflow_update_and_shrink(self, heap):
        big = b"B" * 20_000
        rid = heap.insert(big)
        rid = heap.update(rid, b"small now")
        assert heap.read(rid) == b"small now"

    def test_overflow_delete_frees_pages(self, heap):
        pf = heap._pool._file
        rid = heap.insert(b"C" * 30_000)
        grown = pf.page_count
        heap.delete(rid)
        # Freed overflow pages are recycled by the next big insert.
        heap.insert(b"D" * 30_000)
        assert pf.page_count == grown

    def test_mixed_inline_and_overflow_scan(self, heap):
        heap.insert(b"tiny")
        heap.insert(b"H" * 10_000)
        heap.insert(b"also tiny")
        lengths = [len(data) for _rid, data in heap.scan()]
        assert lengths == [4, 10_000, 9]


class TestPlacementHints:
    def test_near_hint_places_on_same_page(self, heap):
        anchor = heap.insert(b"anchor" * 10)
        # Fill elsewhere so the tail page differs from the anchor's page.
        for _ in range(40):
            heap.insert(b"fill" * 200)
        near = heap.insert(b"neighbour", near=anchor)
        assert rid_page(near) == rid_page(anchor)

    def test_full_hint_page_falls_back(self, heap):
        anchor = heap.insert(b"a" * 3000)
        heap.insert(b"b" * 900)
        near = heap.insert(b"c" * 900, near=anchor)  # does not fit there
        assert heap.read(near) == b"c" * 900


@settings(max_examples=40, deadline=None)
@given(
    payloads=st.lists(st.binary(min_size=0, max_size=6000), max_size=25),
    delete_mask=st.lists(st.booleans(), max_size=25),
)
def test_property_heap_matches_dict_model(tmp_path_factory, payloads, delete_mask):
    """Insert/delete sequences agree with a dict reference model."""
    base = tmp_path_factory.mktemp("heap-prop")
    pf = PageFile(str(base / "m.db"))
    heap = HeapFile(BufferPool(pf, capacity=16), "data")
    model = {}
    for payload in payloads:
        rid = heap.insert(payload)
        assert rid not in model
        model[rid] = payload
    for (rid, payload), kill in zip(list(model.items()), delete_mask):
        if kill:
            heap.delete(rid)
            del model[rid]
    assert dict(heap.scan()) == model
    for rid, payload in model.items():
        assert heap.read(rid) == payload
    pf.close()
