"""Shared fixtures: configurations, backends and generated databases.

The parametrized ``any_backend`` fixture runs conformance-style tests
against every backend; ``small_config`` keeps the structures tiny
(level 2, 31 nodes) so the full suite stays fast, while dedicated tests
exercise the paper's real levels.
"""

from __future__ import annotations

import os

import pytest

from repro.backends.clientserver import ClientServerDatabase
from repro.backends.memory import MemoryDatabase
from repro.backends.oodb import OodbDatabase
from repro.backends.sqlite_backend import SqliteDatabase
from repro.core.config import HyperModelConfig
from repro.core.generator import DatabaseGenerator
from repro.netsim.config import (
    NetworkConfig,
    ReplicationConfig,
    ShardConfig,
)

BACKEND_NAMES = [
    "memory", "sqlite", "sqlite-file", "oodb",
    "clientserver", "clientserver-bfs",
    "clientserver-sharded-hash", "clientserver-sharded-affine",
    "clientserver-replicated",
]


@pytest.fixture(autouse=True)
def _reset_warn_once_registries():
    """Deprecation warnings fire once per process; tests that pin them
    (``pytest.warns``) need each test to start with a clean slate."""
    from repro.backends import clientserver
    from repro.concurrency import multiuser

    clientserver._WARNED_LEGACY.clear()
    multiuser._WARNED_SHIMS.clear()
    yield


def make_backend(name: str, tmp_path, suffix: str = "db"):
    """Construct a closed backend of the given kind."""
    if name == "memory":
        return MemoryDatabase()
    if name == "sqlite":
        return SqliteDatabase(":memory:")
    if name == "sqlite-file":
        return SqliteDatabase(os.path.join(str(tmp_path), f"{suffix}.sqlite"))
    if name == "oodb":
        return OodbDatabase(os.path.join(str(tmp_path), f"{suffix}.hmdb"))
    if name == "clientserver":
        return ClientServerDatabase()
    if name == "clientserver-bfs":
        return ClientServerDatabase(network=NetworkConfig(pushdown=False))
    if name == "clientserver-sharded-hash":
        return ClientServerDatabase(
            network=NetworkConfig(
                sharding=ShardConfig(shards=2, placement="hash")
            )
        )
    if name == "clientserver-sharded-affine":
        return ClientServerDatabase(
            network=NetworkConfig(
                sharding=ShardConfig(shards=2, placement="affine")
            )
        )
    if name == "clientserver-replicated":
        return ClientServerDatabase(
            network=NetworkConfig(
                replication=ReplicationConfig(replicas=2)
            )
        )
    raise ValueError(name)


@pytest.fixture
def small_config() -> HyperModelConfig:
    """A level-2 configuration: 31 nodes, fast everywhere."""
    return HyperModelConfig(levels=2, seed=42)


@pytest.fixture
def level3_config() -> HyperModelConfig:
    """A level-3 configuration: 156 nodes, closures have depth."""
    return HyperModelConfig(levels=3, seed=42)


@pytest.fixture(params=BACKEND_NAMES)
def any_backend(request, tmp_path):
    """An open, empty backend of every kind (parametrized)."""
    db = make_backend(request.param, tmp_path)
    db.open()
    yield db
    if db.is_open:
        db.close()


@pytest.fixture(params=BACKEND_NAMES)
def populated(request, tmp_path, level3_config):
    """(db, gen) for a generated level-3 structure on every backend."""
    db = make_backend(request.param, tmp_path)
    db.open()
    gen = DatabaseGenerator(level3_config).generate(db)
    db.commit()
    yield db, gen
    if db.is_open:
        db.close()


@pytest.fixture
def memory_populated(level3_config):
    """(db, gen) on the in-memory backend only (fast semantic tests)."""
    db = MemoryDatabase()
    db.open()
    gen = DatabaseGenerator(level3_config).generate(db)
    yield db, gen
    db.close()
