"""The page file: I/O, named roots, allocation and the free list."""

import os

import pytest

from repro.engine.pages import FORMAT_VERSION, PAGE_SIZE, PageFile
from repro.errors import PageError


@pytest.fixture
def page_file(tmp_path):
    pf = PageFile(str(tmp_path / "test.db"))
    yield pf
    if pf.is_open:
        pf.close()


class TestLifecycle:
    def test_fresh_file_has_only_header(self, page_file):
        assert page_file.page_count == 1

    def test_reopen_restores_state(self, tmp_path):
        path = str(tmp_path / "x.db")
        pf = PageFile(path)
        pid = pf.allocate()
        pf.write_page(pid, b"\xab" * PAGE_SIZE)
        pf.set_root("hello", 42)
        pf.close()

        reopened = PageFile(path)
        assert reopened.page_count == 2
        assert reopened.get_root("hello") == 42
        assert reopened.read_page(pid) == bytearray(b"\xab" * PAGE_SIZE)
        reopened.close()

    def test_opening_a_non_database_fails(self, tmp_path):
        path = tmp_path / "junk.db"
        path.write_bytes(b"x" * PAGE_SIZE)
        with pytest.raises(PageError):
            PageFile(str(path))


class TestPageIO:
    def test_roundtrip(self, page_file):
        pid = page_file.allocate()
        data = bytes(range(256)) * 16
        page_file.write_page(pid, data)
        assert bytes(page_file.read_page(pid)) == data

    def test_wrong_size_write_rejected(self, page_file):
        pid = page_file.allocate()
        with pytest.raises(PageError):
            page_file.write_page(pid, b"short")

    def test_header_page_not_addressable(self, page_file):
        with pytest.raises(PageError):
            page_file.read_page(0)
        with pytest.raises(PageError):
            page_file.write_page(0, b"\x00" * PAGE_SIZE)

    def test_unallocated_page_rejected(self, page_file):
        with pytest.raises(PageError):
            page_file.read_page(7)

    def test_write_page_extending_grows_file(self, page_file):
        page_file.write_page_extending(5, b"\x01" * PAGE_SIZE)
        assert page_file.page_count == 6
        assert page_file.read_page(5)[0] == 1


class TestFreeList:
    def test_freed_pages_are_recycled(self, page_file):
        first = page_file.allocate()
        second = page_file.allocate()
        page_file.free(first)
        assert page_file.allocate() == first  # recycled before growing
        assert page_file.allocate() == second + 1

    def test_free_list_survives_reopen(self, tmp_path):
        path = str(tmp_path / "f.db")
        pf = PageFile(path)
        pids = [pf.allocate() for _ in range(3)]
        pf.free(pids[1])
        pf.close()
        reopened = PageFile(path)
        assert reopened.allocate() == pids[1]
        reopened.close()


class TestRoots:
    def test_default_for_missing_root(self, page_file):
        assert page_file.get_root("absent", 99) == 99

    def test_roots_snapshot_and_restore(self, page_file):
        page_file.set_root("a", 1)
        page_file.set_root("b", 2)
        snap = page_file.roots_snapshot()
        page_file.set_root("a", 100)
        page_file.restore_roots(snap)
        assert page_file.get_root("a") == 1
        assert page_file.get_root("b") == 2

    def test_long_root_name_rejected(self, page_file):
        with pytest.raises(PageError):
            page_file.set_root("x" * 17, 1)

    def test_many_roots_capped(self, page_file):
        for i in range(32):
            page_file.set_root(f"r{i}", i)
        with pytest.raises(PageError):
            page_file.set_root("one-too-many", 1)
