"""The write-ahead log: framing, torn tails, redo extraction."""

import os

import pytest

from repro.engine import wal as wal_mod
from repro.engine.wal import (
    ABORT,
    BEGIN,
    COMMIT,
    DELETE,
    PAGE,
    PUT,
    ROOTS,
    LogRecord,
    WriteAheadLog,
    delete_record,
    page_image,
    page_record,
    put_record,
    roots_record,
)


@pytest.fixture
def wal(tmp_path):
    log = WriteAheadLog(str(tmp_path / "test.wal"), sync_on_commit=False)
    yield log
    if log._file is not None:
        log.close()


class TestFraming:
    def test_records_roundtrip(self, wal):
        wal.append(LogRecord(BEGIN, txid=1))
        wal.append(put_record(1, 7, {"value": 3}))
        wal.append(delete_record(1, 8))
        wal.append(LogRecord(COMMIT, txid=1))
        wal.sync()
        kinds = [(r.kind, r.txid, r.oid) for r in wal.read_all()]
        assert kinds == [(BEGIN, 1, 0), (PUT, 1, 7), (DELETE, 1, 8), (COMMIT, 1, 0)]

    def test_page_record_compresses_and_restores(self, wal):
        image = bytes(range(256)) * 16
        record = page_record(1, 9, image)
        wal.append(record)
        wal.sync()
        (loaded,) = wal.read_all()
        assert loaded.kind == PAGE
        assert loaded.oid == 9
        assert page_image(loaded) == image

    def test_roots_record_roundtrip(self, wal):
        wal.append(roots_record(1, {"dir.root": 4, "extent.root": 7}))
        wal.sync()
        (loaded,) = wal.read_all()
        assert loaded.kind == ROOTS
        assert loaded.state == {"dir.root": 4, "extent.root": 7}

    def test_torn_tail_ignored(self, wal, tmp_path):
        wal.log_commit(1, [put_record(1, 1, {"a": 1})])
        wal.append(LogRecord(BEGIN, txid=2))
        wal.sync()
        wal.close()
        path = str(tmp_path / "test.wal")
        with open(path, "r+b") as f:
            f.truncate(os.path.getsize(path) - 3)  # tear the last record
        reopened = WriteAheadLog(path, sync_on_commit=False)
        kinds = [r.kind for r in reopened.read_all()]
        assert kinds == [BEGIN, PUT, COMMIT]  # intact prefix only
        reopened.close()

    def test_corrupt_crc_stops_reading(self, wal, tmp_path):
        wal.log_commit(1, [put_record(1, 1, {"a": 1})])
        size_after_first = os.path.getsize(str(tmp_path / "test.wal"))
        wal.log_commit(2, [put_record(2, 2, {"b": 2})])
        wal.close()
        path = str(tmp_path / "test.wal")
        with open(path, "r+b") as f:
            f.seek(size_after_first + 10)
            f.write(b"\xde\xad")
        reopened = WriteAheadLog(path, sync_on_commit=False)
        committed = reopened.recover_operations()
        assert [txid for txid, _ops in committed] == [1]
        reopened.close()


class TestRecoverOperations:
    def test_only_committed_transactions_returned(self, wal):
        wal.log_commit(1, [put_record(1, 10, {"x": 1})])
        wal.append(LogRecord(BEGIN, txid=2))
        wal.append(put_record(2, 11, {"y": 2}))  # never commits
        wal.append(LogRecord(BEGIN, txid=3))
        wal.append(put_record(3, 12, {"z": 3}))
        wal.append(LogRecord(ABORT, txid=3))
        wal.sync()
        committed = wal.recover_operations()
        assert [txid for txid, _ in committed] == [1]
        assert committed[0][1][0].oid == 10

    def test_commit_order_preserved(self, wal):
        for txid in (5, 2, 9):
            wal.log_commit(txid, [put_record(txid, txid, {})])
        assert [txid for txid, _ in wal.recover_operations()] == [5, 2, 9]

    def test_checkpoint_discards_earlier_work(self, wal):
        wal.log_commit(1, [put_record(1, 1, {})])
        wal.log_checkpoint()
        wal.log_commit(2, [put_record(2, 2, {})])
        committed = wal.recover_operations()
        assert [txid for txid, _ in committed] == [2]

    def test_checkpoint_truncates_file(self, wal, tmp_path):
        for txid in range(10):
            wal.log_commit(txid, [page_record(txid, 1, b"\x00" * 4096)])
        grown = os.path.getsize(str(tmp_path / "test.wal"))
        wal.log_checkpoint()
        assert os.path.getsize(str(tmp_path / "test.wal")) < grown

    def test_empty_log_recovers_nothing(self, wal):
        assert wal.recover_operations() == []

    def test_counters(self, wal):
        wal.log_commit(1, [put_record(1, 1, {})])
        assert wal.records_written == 3  # BEGIN + PUT + COMMIT
        assert wal.syncs == 1
