"""The write-ahead log: framing, torn tails, redo extraction."""

import os

import pytest

from repro.engine import wal as wal_mod
from repro.engine.wal import (
    ABORT,
    BEGIN,
    COMMIT,
    DELETE,
    PAGE,
    PUT,
    ROOTS,
    LogRecord,
    WriteAheadLog,
    delete_record,
    page_image,
    page_record,
    put_record,
    roots_record,
)


@pytest.fixture
def wal(tmp_path):
    log = WriteAheadLog(str(tmp_path / "test.wal"), sync_on_commit=False)
    yield log
    if log._file is not None:
        log.close()


class TestFraming:
    def test_records_roundtrip(self, wal):
        wal.append(LogRecord(BEGIN, txid=1))
        wal.append(put_record(1, 7, {"value": 3}))
        wal.append(delete_record(1, 8))
        wal.append(LogRecord(COMMIT, txid=1))
        wal.sync()
        kinds = [(r.kind, r.txid, r.oid) for r in wal.read_all()]
        assert kinds == [(BEGIN, 1, 0), (PUT, 1, 7), (DELETE, 1, 8), (COMMIT, 1, 0)]

    def test_page_record_compresses_and_restores(self, wal):
        image = bytes(range(256)) * 16
        record = page_record(1, 9, image)
        wal.append(record)
        wal.sync()
        (loaded,) = wal.read_all()
        assert loaded.kind == PAGE
        assert loaded.oid == 9
        assert page_image(loaded) == image

    def test_roots_record_roundtrip(self, wal):
        wal.append(roots_record(1, {"dir.root": 4, "extent.root": 7}))
        wal.sync()
        (loaded,) = wal.read_all()
        assert loaded.kind == ROOTS
        assert loaded.state == {"dir.root": 4, "extent.root": 7}

    def test_torn_tail_ignored(self, wal, tmp_path):
        wal.log_commit(1, [put_record(1, 1, {"a": 1})])
        wal.append(LogRecord(BEGIN, txid=2))
        wal.sync()
        wal.close()
        path = str(tmp_path / "test.wal")
        with open(path, "r+b") as f:
            f.truncate(os.path.getsize(path) - 3)  # tear the last record
        reopened = WriteAheadLog(path, sync_on_commit=False)
        kinds = [r.kind for r in reopened.read_all()]
        assert kinds == [BEGIN, PUT, COMMIT]  # intact prefix only
        reopened.close()

    def test_corrupt_crc_stops_reading(self, wal, tmp_path):
        wal.log_commit(1, [put_record(1, 1, {"a": 1})])
        size_after_first = os.path.getsize(str(tmp_path / "test.wal"))
        wal.log_commit(2, [put_record(2, 2, {"b": 2})])
        wal.close()
        path = str(tmp_path / "test.wal")
        with open(path, "r+b") as f:
            f.seek(size_after_first + 10)
            f.write(b"\xde\xad")
        reopened = WriteAheadLog(path, sync_on_commit=False)
        committed = reopened.recover_operations()
        assert [txid for txid, _ops in committed] == [1]
        reopened.close()


class TestTornTailEdgeCases:
    """The four tail shapes a crash can leave (see docs/durability.md)."""

    def _commit_one(self, wal):
        wal.log_commit(1, [put_record(1, 1, {"a": 1})])
        return [BEGIN, PUT, COMMIT]

    def test_frame_header_truncated_mid_frame(self, wal, tmp_path):
        intact = self._commit_one(wal)
        size_before = os.path.getsize(str(tmp_path / "test.wal"))
        wal.append(LogRecord(BEGIN, txid=2))
        wal.sync()
        wal.close()
        path = str(tmp_path / "test.wal")
        with open(path, "r+b") as f:
            # Leave only half of the last record's length/crc header.
            f.truncate(size_before + wal_mod._FRAME.size // 2)
        reopened = WriteAheadLog(path, sync_on_commit=False)
        assert [r.kind for r in reopened.read_all()] == intact
        reopened.close()

    def test_crc_mismatch_on_last_record(self, wal, tmp_path):
        intact = self._commit_one(wal)
        size_before = os.path.getsize(str(tmp_path / "test.wal"))
        wal.append(LogRecord(BEGIN, txid=2))
        wal.sync()
        wal.close()
        path = str(tmp_path / "test.wal")
        with open(path, "r+b") as f:
            f.seek(size_before + wal_mod._FRAME.size)  # first payload byte
            f.write(b"\xff")
        reopened = WriteAheadLog(path, sync_on_commit=False)
        assert [r.kind for r in reopened.read_all()] == intact
        assert [t for t, _ in reopened.recover_operations()] == [1]
        reopened.close()

    def test_zero_filled_tail_reads_as_end_of_log(self, wal, tmp_path):
        intact = self._commit_one(wal)
        wal.close()
        path = str(tmp_path / "test.wal")
        with open(path, "ab") as f:
            # A preallocated-but-unwritten tail block: all zeros.  The
            # zero length/crc pair must read as end-of-log, not as an
            # infinite stream of empty records (crc32(b"") is 0).
            f.write(b"\x00" * 64)
        reopened = WriteAheadLog(path, sync_on_commit=False)
        assert [r.kind for r in reopened.read_all()] == intact
        reopened.close()

    def test_valid_record_after_torn_one_is_ignored(self, wal, tmp_path):
        import zlib

        intact = self._commit_one(wal)
        wal.close()
        payload = LogRecord(BEGIN, txid=9).to_payload()
        frame = wal_mod._FRAME.pack(
            len(payload), zlib.crc32(payload) & 0xFFFFFFFF
        )
        path = str(tmp_path / "test.wal")
        with open(path, "ab") as f:
            f.write(frame + payload[:-3])  # torn record ...
            f.write(frame + payload)  # ... then a perfectly valid one
        reopened = WriteAheadLog(path, sync_on_commit=False)
        # Replay must stop at the tear: bytes beyond it are garbage even
        # if they happen to contain a well-formed frame.
        assert [r.kind for r in reopened.read_all()] == intact
        reopened.close()


class TestGroupCommit:
    def _group_wal(self, tmp_path, size=4):
        return WriteAheadLog(
            str(tmp_path / "group.wal"),
            sync_on_commit=True,
            group_commit=True,
            group_commit_size=size,
        )

    def test_batches_commits_into_one_sync(self, tmp_path):
        wal = self._group_wal(tmp_path, size=4)
        results = [
            wal.log_commit(txid, [put_record(txid, txid, {})])
            for txid in range(1, 5)
        ]
        assert results == [False, False, False, True]
        assert wal.syncs == 1  # one durability point for four commits
        assert wal.pending_commits == 0
        wal.close()

    def test_deferred_commits_still_visible(self, tmp_path):
        wal = self._group_wal(tmp_path, size=8)
        wal.log_commit(1, [put_record(1, 1, {"a": 1})])
        assert wal.pending_commits == 1
        assert [t for t, _ in wal.recover_operations()] == [1]
        wal.close()

    def test_close_forces_pending_batch(self, tmp_path):
        wal = self._group_wal(tmp_path, size=8)
        wal.log_commit(1, [put_record(1, 1, {})])
        wal.close()
        reopened = WriteAheadLog(str(tmp_path / "group.wal"))
        assert [t for t, _ in reopened.recover_operations()] == [1]
        reopened.close()

    def test_checkpoint_resets_pending(self, tmp_path):
        wal = self._group_wal(tmp_path, size=8)
        wal.log_commit(1, [put_record(1, 1, {})])
        wal.log_checkpoint()
        assert wal.pending_commits == 0
        wal.close()

    def test_size_one_degenerates_to_per_commit_sync(self, tmp_path):
        wal = self._group_wal(tmp_path, size=1)
        assert wal.log_commit(1, [put_record(1, 1, {})]) is True
        assert wal.syncs == 1
        wal.close()

    def test_invalid_batch_size_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            WriteAheadLog(
                str(tmp_path / "bad.wal"),
                group_commit=True,
                group_commit_size=0,
            )


class TestRecoverOperations:
    def test_only_committed_transactions_returned(self, wal):
        wal.log_commit(1, [put_record(1, 10, {"x": 1})])
        wal.append(LogRecord(BEGIN, txid=2))
        wal.append(put_record(2, 11, {"y": 2}))  # never commits
        wal.append(LogRecord(BEGIN, txid=3))
        wal.append(put_record(3, 12, {"z": 3}))
        wal.append(LogRecord(ABORT, txid=3))
        wal.sync()
        committed = wal.recover_operations()
        assert [txid for txid, _ in committed] == [1]
        assert committed[0][1][0].oid == 10

    def test_commit_order_preserved(self, wal):
        for txid in (5, 2, 9):
            wal.log_commit(txid, [put_record(txid, txid, {})])
        assert [txid for txid, _ in wal.recover_operations()] == [5, 2, 9]

    def test_checkpoint_discards_earlier_work(self, wal):
        wal.log_commit(1, [put_record(1, 1, {})])
        wal.log_checkpoint()
        wal.log_commit(2, [put_record(2, 2, {})])
        committed = wal.recover_operations()
        assert [txid for txid, _ in committed] == [2]

    def test_checkpoint_truncates_file(self, wal, tmp_path):
        for txid in range(10):
            wal.log_commit(txid, [page_record(txid, 1, b"\x00" * 4096)])
        grown = os.path.getsize(str(tmp_path / "test.wal"))
        wal.log_checkpoint()
        assert os.path.getsize(str(tmp_path / "test.wal")) < grown

    def test_empty_log_recovers_nothing(self, wal):
        assert wal.recover_operations() == []

    def test_counters(self, wal):
        wal.log_commit(1, [put_record(1, 1, {})])
        assert wal.records_written == 3  # BEGIN + PUT + COMMIT
        assert wal.syncs == 1


class TestReadFrom:
    """Offset-resumable tail reads (the log shipper's primitive)."""

    def test_resumes_at_returned_offset(self, wal):
        wal.log_commit(1, [put_record(1, 10, {"a": 1})])
        first = list(wal.read_from(0))
        assert [r.kind for r, _ in first] == [BEGIN, PUT, COMMIT]
        resume = first[-1][1]
        wal.log_commit(2, [put_record(2, 11, {"a": 2})])
        second = list(wal.read_from(resume))
        assert [r.txid for r, _ in second] == [2, 2, 2]
        # Nothing new: resuming at the tail yields nothing.
        assert list(wal.read_from(second[-1][1])) == []

    def test_offset_zero_equals_read_all(self, wal):
        wal.log_commit(1, [put_record(1, 10, {"a": 1})])
        wal.log_commit(2, [delete_record(2, 10)])
        by_offset = [r.kind for r, _ in wal.read_from(0)]
        assert by_offset == [r.kind for r in wal.read_all()]

    def test_stops_cleanly_at_torn_tail(self, wal, tmp_path):
        wal.log_commit(1, [put_record(1, 10, {"a": 1})])
        intact = list(wal.read_from(0))
        resume = intact[-1][1]
        wal.append(LogRecord(BEGIN, txid=2))
        wal.sync()
        path = str(tmp_path / "test.wal")
        wal.close()
        with open(path, "r+b") as f:
            f.truncate(os.path.getsize(path) - 3)
        reopened = WriteAheadLog(path, sync_on_commit=False)
        tail = list(reopened.read_from(resume))
        assert tail == []  # torn record never surfaces
        reopened.close()
