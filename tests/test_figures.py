"""The ASCII figure renderers."""

import pytest

from repro.core.operations import CATALOG
from repro.harness.figures import (
    backend_figure,
    bar_chart,
    cold_warm_figure,
    speedup_figure,
)
from repro.harness.protocol import run_operation_sequence
from repro.harness.results import ResultSet


@pytest.fixture
def results(memory_populated):
    db, gen = memory_populated
    collected = ResultSet()
    for op_id in ("01", "10"):
        collected.add(
            run_operation_sequence(db, CATALOG.get(op_id), gen,
                                   repetitions=2, seed=1)
        )
    return collected


class TestBarChart:
    def test_renders_labels_values_and_bars(self):
        chart = bar_chart([("alpha", 1.0), ("beta", 10.0)], title="demo")
        assert "demo" in chart
        assert "alpha" in chart and "beta" in chart
        assert "█" in chart
        assert "1.0000" in chart and "10.0000" in chart

    def test_larger_value_gets_longer_bar(self):
        chart = bar_chart(
            [("small", 0.001), ("large", 10.0)], title="t", width=30
        )
        lines = chart.splitlines()[1:]
        small_bar = lines[0].count("█")
        large_bar = lines[1].count("█")
        assert large_bar > small_bar

    def test_linear_scale(self):
        chart = bar_chart(
            [("half", 5.0), ("full", 10.0)], title="t",
            width=20, logarithmic=False,
        )
        lines = chart.splitlines()[1:]
        assert lines[1].count("█") == 2 * lines[0].count("█")
        assert "linear scale" in chart

    def test_zero_value_gets_stub(self):
        chart = bar_chart([("nil", 0.0), ("some", 1.0)], title="t")
        assert "▌" in chart.splitlines()[1]

    def test_empty_rows(self):
        assert "(no data)" in bar_chart([], title="t")


class TestResultFigures:
    def test_cold_warm_figure(self, results):
        figure = cold_warm_figure(results, "memory", level=3)
        assert "01 cold" in figure and "01 warm" in figure
        assert "10 cold" in figure
        assert "memory" in figure

    def test_cold_warm_figure_no_data(self, results):
        assert "(no data)" in cold_warm_figure(results, "ghost")

    def test_backend_figure(self, results):
        figure = backend_figure(results, "01", "cold")
        assert "nameLookup" in figure
        assert "memory" in figure
        with pytest.raises(ValueError):
            backend_figure(results, "01", "lukewarm")

    def test_speedup_figure(self, results):
        figure = speedup_figure(results, level=3)
        assert "memory" in figure
        assert "x" in figure
