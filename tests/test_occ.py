"""Optimistic concurrency on the client/server backend.

Two (or more) handles share one :class:`ObjectServer` in
``concurrency="optimistic"`` mode: reads pin the version the client
saw, ``commit()`` ships the write set plus the pinned read versions in
one validated request, and the first committer wins — the loser's
commit raises, its stale cache entries are invalidated, and a retry
re-reads fresh state.
"""

import pytest

from repro.backends.clientserver import ClientServerDatabase
from repro.core.config import HyperModelConfig
from repro.core.generator import DatabaseGenerator
from repro.core.model import NodeData
from repro.errors import CommitConflictError, ConflictError
from repro.netsim.config import NetworkConfig
from repro.netsim.server import ObjectServer

OPTIMISTIC = NetworkConfig(concurrency="optimistic")


@pytest.fixture
def shared():
    server = ObjectServer()
    loader = ClientServerDatabase(server=server)
    loader.open()
    gen = DatabaseGenerator(HyperModelConfig(levels=3, seed=17)).generate(
        loader
    )
    loader.commit()
    loader.close()
    server.stats.reset()
    return server, gen


def _client(server, client_id=None):
    db = ClientServerDatabase(
        network=OPTIMISTIC, server=server, client_id=client_id
    )
    db.open()
    return db


class TestOptimisticCommit:
    def test_stale_read_conflicts(self, shared):
        server, gen = shared
        target = gen.text_uids[0]
        a, b = _client(server, "a"), _client(server, "b")
        # Both read the same node; b commits first.
        a.get_text(a.lookup(target))
        b.set_text(b.lookup(target), "b wins")
        b.commit()
        a.set_text(target, "a loses")
        with pytest.raises(CommitConflictError) as info:
            a.commit()
        assert target in info.value.conflicts
        assert server.stats.commit_conflicts == 1

    def test_conflict_is_a_conflict_error(self, shared):
        server, gen = shared
        assert issubclass(CommitConflictError, ConflictError)

    def test_retry_after_conflict_succeeds(self, shared):
        server, gen = shared
        target = gen.text_uids[1]
        a, b = _client(server, "a"), _client(server, "b")
        a.get_text(a.lookup(target))
        b.set_text(b.lookup(target), "first")
        b.commit()
        a.set_text(target, "second attempt")
        with pytest.raises(CommitConflictError):
            a.commit()
        # The abort invalidated a's stale copy: the retry re-reads the
        # committed state and wins.
        assert a.get_text(a.lookup(target)) == "first"
        a.set_text(target, "second attempt")
        a.commit()
        assert b.get_text(b.lookup(target)) == "second attempt"

    def test_disjoint_writes_do_not_conflict(self, shared):
        server, gen = shared
        a, b = _client(server, "a"), _client(server, "b")
        a.set_text(a.lookup(gen.text_uids[0]), "a's node")
        b.set_text(b.lookup(gen.text_uids[1]), "b's node")
        a.commit()
        b.commit()
        assert server.stats.commit_conflicts == 0
        assert server.stats.commits == 2

    def test_read_only_commit_is_a_no_op(self, shared):
        server, gen = shared
        a = _client(server, "a")
        a.get_text(a.lookup(gen.text_uids[0]))
        commits_before = server.stats.commits
        a.commit()  # nothing written: no validation round trip
        assert server.stats.commits == commits_before

    def test_write_without_stale_read_commits(self, shared):
        """Blind read-modify-write in one txn: versions are current."""
        server, gen = shared
        a = _client(server, "a")
        target = gen.text_uids[2]
        a.set_text(a.lookup(target), "fresh")
        a.commit()
        assert server.stats.commit_conflicts == 0

    def test_create_create_race_conflicts(self, shared):
        server, gen = shared
        a, b = _client(server, "a"), _client(server, "b")
        data = NodeData(unique_id=77_000_001, ten=1, hundred=1, million=1)
        a.create_node(data)
        b.create_node(data)
        a.commit()
        with pytest.raises(CommitConflictError):
            b.commit()

    def test_abort_clears_pinned_reads(self, shared):
        server, gen = shared
        target = gen.text_uids[0]
        a, b = _client(server, "a"), _client(server, "b")
        a.get_text(a.lookup(target))
        a.abort()
        b.set_text(b.lookup(target), "new")
        b.commit()
        # a's aborted transaction pinned nothing: a fresh read-write
        # cycle sees the new version and commits cleanly.
        assert a.get_text(a.lookup(target)) == "new"
        a.set_text(target, "newer")
        a.commit()

    def test_conflicting_cache_entries_invalidated_on_abort(self, shared):
        server, gen = shared
        target = gen.text_uids[3]
        a, b = _client(server, "a"), _client(server, "b")
        a.get_text(a.lookup(target))
        assert target in a.cache
        b.set_text(b.lookup(target), "winner")
        b.commit()
        a.set_text(target, "loser")
        with pytest.raises(CommitConflictError):
            a.commit()
        assert target not in a.cache

    def test_versions_flow_through_batched_reads(self, shared):
        """fetch_many / traverse replies also pin read versions."""
        server, gen = shared
        a, b = _client(server, "a"), _client(server, "b")
        root = a.lookup(gen.root_uid)
        children = a.children(root)  # batched fetch of the child level
        victim = children[0]
        a.get_attribute(victim, "hundred")
        b.set_attribute(b.lookup(victim), "hundred", 99)
        b.commit()
        a.set_attribute(victim, "hundred", 1)
        with pytest.raises(CommitConflictError):
            a.commit()

    def test_legacy_mode_unaffected(self, shared):
        """concurrency='none' keeps last-writer-wins semantics."""
        server, gen = shared
        target = gen.text_uids[0]
        a = ClientServerDatabase(server=server)
        b = ClientServerDatabase(server=server)
        a.open(), b.open()
        a.get_text(a.lookup(target))
        b.set_text(b.lookup(target), "b")
        b.commit()
        a.set_text(target, "a")
        a.commit()  # no validation: last writer wins silently
        assert server.stats.commit_conflicts == 0


class TestDecodeCacheCoherence:
    """OCC validation must stay correct with the decode cache enabled.

    The engine-level optimistic coordinator validates read sets through
    :meth:`ObjectStore.record_timestamp`, which is served from the
    ``(pid, slot, lsn)`` decode cache.  Two transactions standing in
    for two clients race on one object: the cache may serve the
    timestamp read, but it must never serve a *stale* one — a committed
    write invalidates the entry, so first-committer-wins still holds.
    """

    @pytest.fixture
    def occ_store(self, tmp_path):
        import os

        from repro.concurrency.optimistic import OptimisticCoordinator
        from repro.engine.catalog import FieldDefinition
        from repro.engine.store import ObjectStore
        from repro.obs import Instrumentation

        instr = Instrumentation()
        store = ObjectStore(
            os.path.join(str(tmp_path), "occ.hmdb"),
            sync_commits=False,
            instrumentation=instr,
        )
        store.open()
        store.define_class("Doc", [FieldDefinition("body", default="")])
        oid = store.new("Doc", {"body": "v0"})
        store.commit()
        yield OptimisticCoordinator(store), store, oid, instr
        store.close()

    def test_stale_timestamp_never_served_across_clients(self, occ_store):
        coordinator, store, oid, instr = occ_store
        a, b = coordinator.begin(), coordinator.begin()
        # Client A's read warms the decode cache with the v0 record.
        assert a.read(oid)["body"] == "v0"
        b.write(oid, {"body": "b committed"})
        b.commit()
        # A's validation re-reads the timestamp through the cache; the
        # committed write invalidated the entry, so the conflict with
        # A's pinned version is detected, not masked by a stale hit.
        a.write(oid, {"body": "a stale"})
        with pytest.raises(ConflictError):
            a.commit()
        assert store.get(oid)["body"] == "b committed"

    def test_validation_is_served_from_cache_when_unchanged(self, occ_store):
        coordinator, store, oid, instr = occ_store
        a = coordinator.begin()
        a.read(oid)  # populates the cache for oid's rid
        before = instr.snapshot()
        a.write(oid, {"body": "clean commit"})
        a.commit()  # validation timestamp read: a cache hit, and correct
        delta = instr.snapshot().delta(before)
        assert delta.get("engine.decode_cache.hits", 0) >= 1
        assert store.get(oid)["body"] == "clean commit"

    def test_repeated_races_stay_coherent(self, occ_store):
        """Each round's loser must observe the winner's committed state
        on re-read — across many invalidate/refill cycles."""
        coordinator, store, oid, instr = occ_store
        for round_no in range(5):
            winner, loser = coordinator.begin(), coordinator.begin()
            expected = f"round {round_no}"
            loser.read(oid)
            winner.write(oid, {"body": expected})
            winner.commit()
            loser.write(oid, {"body": "never lands"})
            with pytest.raises(ConflictError):
                loser.commit()
            # A fresh read after the conflict sees the winner's commit:
            # the refilled cache entry carries the new state.
            assert store.get(oid)["body"] == expected
        assert coordinator.conflicts == 5
        counters = instr.snapshot()
        assert counters.get("engine.decode_cache.invalidations", 0) >= 5
