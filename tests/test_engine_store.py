"""The object store facade: CRUD, transactions, indexes, recovery."""

import os

import pytest

from repro.engine.catalog import FieldDefinition
from repro.engine.store import ObjectStore
from repro.errors import (
    DatabaseClosedError,
    RecordNotFoundError,
    SchemaError,
    TransactionError,
)


def _make_store(tmp_path, name="s.hmdb", **kwargs):
    kwargs.setdefault("sync_commits", False)
    return ObjectStore(os.path.join(str(tmp_path), name), **kwargs)


@pytest.fixture
def store(tmp_path):
    s = _make_store(tmp_path)
    s.open()
    s.define_class(
        "Item",
        [
            FieldDefinition("name", default=""),
            FieldDefinition("value", default=0),
        ],
    )
    yield s
    if s.is_open:
        s.close()


class TestLifecycle:
    def test_closed_store_rejects_operations(self, tmp_path):
        s = _make_store(tmp_path)
        with pytest.raises(DatabaseClosedError):
            s.get(1)

    def test_open_is_idempotent(self, store):
        store.open()
        assert store.is_open

    def test_close_aborts_open_transaction(self, store):
        oid = store.new("Item", {"value": 1})
        store.commit()
        store.update(oid, {"value": 2})  # implicit txn, uncommitted
        store.close()
        store.open()
        assert store.get(oid)["value"] == 1


class TestCrud:
    def test_new_get_update_delete(self, store):
        oid = store.new("Item", {"name": "a", "value": 1})
        assert store.get(oid) == {"name": "a", "value": 1}
        store.update(oid, {"value": 2})
        assert store.get(oid)["value"] == 2
        store.put(oid, {"name": "b", "value": 3})
        assert store.get(oid) == {"name": "b", "value": 3}
        store.delete(oid)
        with pytest.raises(RecordNotFoundError):
            store.get(oid)
        assert not store.exists(oid)

    def test_defaults_filled_on_create(self, store):
        oid = store.new("Item", {})
        assert store.get(oid) == {"name": "", "value": 0}

    def test_unknown_fields_rejected(self, store):
        with pytest.raises(SchemaError):
            store.new("Item", {"ghost": 1})

    def test_class_of(self, store):
        oid = store.new("Item", {})
        assert store.class_of(oid) == "Item"

    def test_get_returns_private_copy(self, store):
        oid = store.new("Item", {"value": 1})
        store.commit()
        state = store.get(oid)
        state["value"] = 999
        assert store.get(oid)["value"] == 1


class TestTransactions:
    def test_explicit_commit_and_abort(self, store):
        with store.begin() as txn:
            oid = store.new("Item", {"value": 5}, txn=txn)
        assert store.get(oid)["value"] == 5

        txn = store.begin()
        store.update(oid, {"value": 6}, txn=txn)
        assert store.get(oid, txn=txn)["value"] == 6  # own writes visible
        txn.abort()
        assert store.get(oid)["value"] == 5

    def test_context_manager_aborts_on_exception(self, store):
        oid = store.new("Item", {"value": 1})
        store.commit()
        with pytest.raises(RuntimeError):
            with store.begin() as txn:
                store.update(oid, {"value": 2}, txn=txn)
                raise RuntimeError("boom")
        assert store.get(oid)["value"] == 1

    def test_only_one_active_transaction(self, store):
        store.begin()
        with pytest.raises(TransactionError):
            store.begin()
        store.abort()

    def test_created_object_visible_in_scan_before_commit(self, store):
        oid = store.new("Item", {})
        assert oid in list(store.scan_class("Item"))

    def test_deleted_object_hidden_before_commit(self, store):
        oid = store.new("Item", {})
        store.commit()
        store.delete(oid)
        assert oid not in list(store.scan_class("Item"))
        store.abort()
        assert oid in list(store.scan_class("Item"))

    def test_commit_without_changes_is_cheap_noop(self, store):
        commits = store.stats.commits
        store.commit()  # no active txn
        assert store.stats.commits == commits


class TestExtents:
    def test_scan_includes_subclasses(self, store):
        store.define_class("Special", [FieldDefinition("extra", default=0)],
                           base="Item")
        a = store.new("Item", {})
        b = store.new("Special", {})
        store.commit()
        assert set(store.scan_class("Item")) == {a, b}
        assert set(store.scan_class("Item", include_subclasses=False)) == {a}
        assert set(store.scan_class("Special")) == {b}


class TestIndexes:
    def test_index_lookup_and_range(self, store):
        store.create_index("Item", "value")
        oids = [store.new("Item", {"value": v}) for v in (5, 3, 9, 3)]
        store.commit()
        assert set(store.index_lookup("Item", "value", 3)) == {oids[1], oids[3]}
        assert set(store.index_range("Item", "value", 4, 10)) == {
            oids[0], oids[2],
        }

    def test_index_backfills_existing_objects(self, store):
        oid = store.new("Item", {"value": 7})
        store.commit()
        store.create_index("Item", "value")
        assert store.index_lookup("Item", "value", 7) == [oid]

    def test_index_maintained_on_update_and_delete(self, store):
        store.create_index("Item", "value")
        oid = store.new("Item", {"value": 1})
        store.commit()
        store.update(oid, {"value": 2})
        store.commit()
        assert store.index_lookup("Item", "value", 1) == []
        assert store.index_lookup("Item", "value", 2) == [oid]
        store.delete(oid)
        store.commit()
        assert store.index_lookup("Item", "value", 2) == []

    def test_index_covers_subclasses(self, store):
        store.create_index("Item", "value")
        store.define_class("Special", [], base="Item")
        oid = store.new("Special", {"value": 11})
        store.commit()
        assert store.index_lookup("Item", "value", 11) == [oid]

    def test_non_integer_values_rejected(self, store):
        store.create_index("Item", "name")  # name is a str field
        with pytest.raises(SchemaError):
            store.new("Item", {"name": "text"})
            store.commit()
        store.abort()

    def test_duplicate_index_rejected(self, store):
        store.create_index("Item", "value")
        with pytest.raises(SchemaError):
            store.create_index("Item", "value")

    def test_missing_index_rejected(self, store):
        with pytest.raises(SchemaError):
            store.index_range("Item", "value", 1, 2)


class TestPersistenceAndRecovery:
    def test_state_survives_clean_close(self, tmp_path):
        store = _make_store(tmp_path, "clean.hmdb")
        store.open()
        store.define_class("Item", [FieldDefinition("value", default=0)])
        store.create_index("Item", "value")
        oid = store.new("Item", {"value": 123})
        store.commit()
        store.close()

        store.open()
        assert store.get(oid)["value"] == 123
        assert store.index_lookup("Item", "value", 123) == [oid]
        store.close()

    def test_crash_recovery_replays_committed_work(self, tmp_path):
        """Simulated crash: committed work is never checkpointed, the
        process 'dies' (no close), and a new store must recover it
        from the WAL alone."""
        path = os.path.join(str(tmp_path), "crash.hmdb")
        store = ObjectStore(path, sync_commits=False)
        store.open()
        store.define_class("Item", [FieldDefinition("value", default=0)])
        oid = store.new("Item", {"value": 77})
        store.commit()
        # Crash: abandon the handles without close/checkpoint.  Reach in
        # and close the raw files so the OS lets us reopen them.
        store._wal._file.flush()
        store._wal._file.close()
        store._wal._file = None
        store._file._file.close()
        store._file._file = None

        recovered = ObjectStore(path, sync_commits=False)
        recovered.open()
        assert recovered.stats.recovered_transactions >= 1
        assert recovered.get(oid)["value"] == 77
        recovered.close()

    def test_uncommitted_work_lost_on_crash(self, tmp_path):
        path = os.path.join(str(tmp_path), "crash2.hmdb")
        store = ObjectStore(path, sync_commits=False)
        store.open()
        store.define_class("Item", [FieldDefinition("value", default=0)])
        committed = store.new("Item", {"value": 1})
        store.commit()
        store.new("Item", {"value": 2})  # never committed
        store._wal._file.flush()
        store._wal._file.close()
        store._wal._file = None
        store._file._file.close()
        store._file._file = None

        recovered = ObjectStore(path, sync_commits=False)
        recovered.open()
        oids = list(recovered.scan_class("Item"))
        assert oids == [committed]
        recovered.close()


def _chain_distance(store, page_a, page_b):
    """Distance between two pages in the heap's chain order."""
    order = {pid: i for i, pid in enumerate(store._heap.page_ids())}
    return abs(order[page_a] - order[page_b])


class TestClustering:
    def test_near_hint_places_on_same_or_adjacent_page(self, tmp_path):
        store = _make_store(tmp_path, "cluster.hmdb", clustered=True)
        store.open()
        store.define_class("Item", [FieldDefinition("value", default=0)])
        anchor = store.new("Item", {"value": 1})
        store.commit()
        # Scatter unrelated records so the tail drifts far away.
        for i in range(200):
            store.new("Item", {"value": i})
        store.commit()
        near = store.new("Item", {"value": 2}, near=anchor)
        store.commit()
        distance = _chain_distance(
            store, store.page_of(near), store.page_of(anchor)
        )
        assert distance <= 1  # same page, or spliced right after it
        store.close()

    def test_relocate_near_moves_record(self, tmp_path):
        store = _make_store(tmp_path, "reloc.hmdb", clustered=True)
        store.open()
        store.define_class("Item", [FieldDefinition("value", default=0)])
        anchor = store.new("Item", {"value": 1})
        for i in range(200):
            store.new("Item", {"value": i})
        stray = store.new("Item", {"value": 99})
        store.commit()
        assert _chain_distance(
            store, store.page_of(stray), store.page_of(anchor)
        ) > 1
        store.relocate_near(stray, anchor)
        store.commit()
        assert _chain_distance(
            store, store.page_of(stray), store.page_of(anchor)
        ) <= 1
        assert store.get(stray)["value"] == 99
        store.close()

    def test_unclustered_store_ignores_hints(self, tmp_path):
        store = _make_store(tmp_path, "uncluster.hmdb", clustered=False)
        store.open()
        store.define_class("Item", [FieldDefinition("value", default=0)])
        anchor = store.new("Item", {"value": 1})
        stray = store.new("Item", {"value": 2})
        store.commit()
        page_before = store.page_of(stray)
        store.relocate_near(stray, anchor)
        store.commit()
        assert store.page_of(stray) == page_before
        store.close()


class TestLockingMode:
    @pytest.fixture
    def locking_store(self, tmp_path):
        s = _make_store(tmp_path, "lock.hmdb", locking=True)
        s.open()
        s.define_class("Item", [FieldDefinition("value", default=0)])
        yield s
        if s.is_open:
            s.close()

    def test_reads_take_shared_locks(self, locking_store):
        s = locking_store
        oid = s.new("Item", {"value": 1})
        s.commit()
        txn = s.begin()
        s.get(oid, txn=txn)
        assert oid in s.locks.locks_held(txn.txid)
        assert s.locks.holders_of(oid) == {txn.txid}
        txn.commit()
        assert s.locks.holders_of(oid) == set()

    def test_writes_take_exclusive_locks_until_end(self, locking_store):
        s = locking_store
        oid = s.new("Item", {"value": 1})
        s.commit()
        txn = s.begin()
        s.update(oid, {"value": 2}, txn=txn)
        assert s.locks.holders_of(oid) == {txn.txid}
        txn.abort()
        assert s.locks.holders_of(oid) == set()
        assert s.get(oid)["value"] == 1

    def test_foreign_holder_blocks_then_times_out(self, locking_store):
        from repro.errors import DeadlockError

        s = locking_store
        s.locks.timeout = 0.1
        oid = s.new("Item", {"value": 1})
        s.commit()
        # Simulate another session holding the X lock.
        from repro.engine.locks import LockMode

        s.locks.acquire(9999, oid, LockMode.EXCLUSIVE)
        txn = s.begin()
        with pytest.raises(DeadlockError):
            s.get(oid, txn=txn)
        txn.abort()
        s.locks.release_all(9999)


class TestSchemaEvolutionOnLiveData:
    def test_existing_objects_gain_new_field_lazily(self, store):
        oid = store.new("Item", {"value": 1})
        store.commit()
        store.add_field("Item", FieldDefinition("grade", default="B"))
        assert store.get(oid)["grade"] == "B"

    def test_draw_node_style_subclass_addition(self, store):
        store.define_class(
            "DrawItem",
            [
                FieldDefinition("circles", default=0),
                FieldDefinition("rectangles", default=0),
            ],
            base="Item",
        )
        oid = store.new("DrawItem", {"circles": 3})
        store.commit()
        state = store.get(oid)
        assert state["circles"] == 3
        assert state["value"] == 0  # inherited default
