"""The object store facade: CRUD, transactions, indexes, recovery."""

import os

import pytest

from repro.engine.catalog import FieldDefinition
from repro.engine.store import ObjectStore
from repro.errors import (
    DatabaseClosedError,
    RecordNotFoundError,
    SchemaError,
    TransactionError,
)


def _make_store(tmp_path, name="s.hmdb", **kwargs):
    kwargs.setdefault("sync_commits", False)
    return ObjectStore(os.path.join(str(tmp_path), name), **kwargs)


@pytest.fixture
def store(tmp_path):
    s = _make_store(tmp_path)
    s.open()
    s.define_class(
        "Item",
        [
            FieldDefinition("name", default=""),
            FieldDefinition("value", default=0),
        ],
    )
    yield s
    if s.is_open:
        s.close()


class TestLifecycle:
    def test_closed_store_rejects_operations(self, tmp_path):
        s = _make_store(tmp_path)
        with pytest.raises(DatabaseClosedError):
            s.get(1)

    def test_open_is_idempotent(self, store):
        store.open()
        assert store.is_open

    def test_close_aborts_open_transaction(self, store):
        oid = store.new("Item", {"value": 1})
        store.commit()
        store.update(oid, {"value": 2})  # implicit txn, uncommitted
        store.close()
        store.open()
        assert store.get(oid)["value"] == 1


class TestCrud:
    def test_new_get_update_delete(self, store):
        oid = store.new("Item", {"name": "a", "value": 1})
        assert store.get(oid) == {"name": "a", "value": 1}
        store.update(oid, {"value": 2})
        assert store.get(oid)["value"] == 2
        store.put(oid, {"name": "b", "value": 3})
        assert store.get(oid) == {"name": "b", "value": 3}
        store.delete(oid)
        with pytest.raises(RecordNotFoundError):
            store.get(oid)
        assert not store.exists(oid)

    def test_defaults_filled_on_create(self, store):
        oid = store.new("Item", {})
        assert store.get(oid) == {"name": "", "value": 0}

    def test_unknown_fields_rejected(self, store):
        with pytest.raises(SchemaError):
            store.new("Item", {"ghost": 1})

    def test_class_of(self, store):
        oid = store.new("Item", {})
        assert store.class_of(oid) == "Item"

    def test_get_returns_private_copy(self, store):
        oid = store.new("Item", {"value": 1})
        store.commit()
        state = store.get(oid)
        state["value"] = 999
        assert store.get(oid)["value"] == 1


class TestDecodeCache:
    """The (pid, slot, lsn) decoded-record cache behind every read."""

    def _delta(self, store, action):
        before = store.instrumentation.snapshot()
        result = action()
        return result, store.instrumentation.delta_since(before)

    @pytest.fixture
    def counted(self, tmp_path):
        from repro.obs import Instrumentation

        s = _make_store(tmp_path, instrumentation=Instrumentation())
        s.open()
        s.define_class("Item", [FieldDefinition("value", default=0)])
        yield s
        if s.is_open:
            s.close()

    def test_repeat_get_hits_cache(self, counted):
        oid = counted.new("Item", {"value": 7})
        counted.commit()
        _, first = self._delta(counted, lambda: counted.get(oid))
        assert first.get("engine.decode_cache.misses", 0) == 1
        _, second = self._delta(counted, lambda: counted.get(oid))
        assert second.get("engine.decode_cache.hits", 0) == 1
        assert second.get("engine.decode_cache.misses", 0) == 0

    def test_committed_update_invalidates(self, counted):
        oid = counted.new("Item", {"value": 1})
        counted.commit()
        assert counted.get(oid)["value"] == 1  # populate cache
        counted.update(oid, {"value": 2})
        _, delta = self._delta(counted, counted.commit)
        assert delta.get("engine.decode_cache.invalidations", 0) >= 1
        assert counted.get(oid)["value"] == 2

    def test_delete_and_slot_reuse_never_serve_stale(self, store):
        """A new object reusing a deleted object's heap slot must not
        decode to the old occupant."""
        victims = [store.new("Item", {"value": i}) for i in range(3)]
        store.commit()
        for oid in victims:
            store.get(oid)  # cache all three under their rids
        store.delete(victims[1])
        store.commit()
        fresh = store.new("Item", {"value": 999})
        store.commit()
        assert store.get(fresh)["value"] == 999
        with pytest.raises(RecordNotFoundError):
            store.get(victims[1])

    def test_cached_hit_returns_private_copy(self, store):
        oid = store.new("Item", {"name": "n", "value": 1})
        store.commit()
        store.get(oid)
        state = store.get(oid)  # cache hit
        state["value"] = 999
        assert store.get(oid)["value"] == 1

    def test_get_many_hits_are_private_copies(self, store):
        oids = [store.new("Item", {"value": i}) for i in range(4)]
        store.commit()
        store.get_many(oids)  # populate
        first = store.get_many(oids)  # all hits
        first[oids[0]]["value"] = 999
        assert store.get_many(oids)[oids[0]]["value"] == 0

    def test_schema_change_clears_cache(self, store):
        oid = store.new("Item", {"value": 1})
        store.commit()
        assert "extra" not in store.get(oid)  # cached pre-upgrade
        store.add_field("Item", FieldDefinition("extra", default=42))
        assert store.get(oid)["extra"] == 42

    def test_record_timestamp_tracks_commits(self, store):
        oid = store.new("Item", {"value": 1})
        store.commit()
        first = store.record_timestamp(oid)
        assert store.record_timestamp(oid) == first  # cache hit
        store.update(oid, {"value": 2})
        store.commit()
        assert store.record_timestamp(oid) > first

    def test_survives_reopen_cold(self, store):
        oid = store.new("Item", {"value": 5})
        store.commit()
        store.get(oid)
        store.close()
        store.open()  # fresh cache: recovery must never serve pre-crash
        assert store._decode_cache is not None
        assert len(store._decode_cache) == 0
        assert store.get(oid)["value"] == 5

    def test_disabled_cache_still_correct(self, tmp_path):
        s = _make_store(tmp_path, decode_cache_size=0)
        s.open()
        s.define_class("Item", [FieldDefinition("value", default=0)])
        assert s._decode_cache is None
        oid = s.new("Item", {"value": 3})
        s.commit()
        assert s.get(oid)["value"] == 3
        s.update(oid, {"value": 4})
        s.commit()
        assert s.get(oid)["value"] == 4
        s.close()

    def test_capacity_bounds_entries(self, tmp_path):
        s = _make_store(tmp_path, decode_cache_size=4)
        s.open()
        s.define_class("Item", [FieldDefinition("value", default=0)])
        oids = [s.new("Item", {"value": i}) for i in range(10)]
        s.commit()
        for oid in oids:
            s.get(oid)
        assert len(s._decode_cache) <= 4
        for oid in oids:  # correctness under constant eviction
            assert s.get(oid)["value"] == oids.index(oid)
        s.close()


class TestTransactions:
    def test_explicit_commit_and_abort(self, store):
        with store.begin() as txn:
            oid = store.new("Item", {"value": 5}, txn=txn)
        assert store.get(oid)["value"] == 5

        txn = store.begin()
        store.update(oid, {"value": 6}, txn=txn)
        assert store.get(oid, txn=txn)["value"] == 6  # own writes visible
        txn.abort()
        assert store.get(oid)["value"] == 5

    def test_context_manager_aborts_on_exception(self, store):
        oid = store.new("Item", {"value": 1})
        store.commit()
        with pytest.raises(RuntimeError):
            with store.begin() as txn:
                store.update(oid, {"value": 2}, txn=txn)
                raise RuntimeError("boom")
        assert store.get(oid)["value"] == 1

    def test_only_one_active_transaction(self, store):
        store.begin()
        with pytest.raises(TransactionError):
            store.begin()
        store.abort()

    def test_created_object_visible_in_scan_before_commit(self, store):
        oid = store.new("Item", {})
        assert oid in list(store.scan_class("Item"))

    def test_deleted_object_hidden_before_commit(self, store):
        oid = store.new("Item", {})
        store.commit()
        store.delete(oid)
        assert oid not in list(store.scan_class("Item"))
        store.abort()
        assert oid in list(store.scan_class("Item"))

    def test_commit_without_changes_is_cheap_noop(self, store):
        commits = store.stats.commits
        store.commit()  # no active txn
        assert store.stats.commits == commits


class TestExtents:
    def test_scan_includes_subclasses(self, store):
        store.define_class("Special", [FieldDefinition("extra", default=0)],
                           base="Item")
        a = store.new("Item", {})
        b = store.new("Special", {})
        store.commit()
        assert set(store.scan_class("Item")) == {a, b}
        assert set(store.scan_class("Item", include_subclasses=False)) == {a}
        assert set(store.scan_class("Special")) == {b}


class TestIndexes:
    def test_index_lookup_and_range(self, store):
        store.create_index("Item", "value")
        oids = [store.new("Item", {"value": v}) for v in (5, 3, 9, 3)]
        store.commit()
        assert set(store.index_lookup("Item", "value", 3)) == {oids[1], oids[3]}
        assert set(store.index_range("Item", "value", 4, 10)) == {
            oids[0], oids[2],
        }

    def test_index_backfills_existing_objects(self, store):
        oid = store.new("Item", {"value": 7})
        store.commit()
        store.create_index("Item", "value")
        assert store.index_lookup("Item", "value", 7) == [oid]

    def test_index_maintained_on_update_and_delete(self, store):
        store.create_index("Item", "value")
        oid = store.new("Item", {"value": 1})
        store.commit()
        store.update(oid, {"value": 2})
        store.commit()
        assert store.index_lookup("Item", "value", 1) == []
        assert store.index_lookup("Item", "value", 2) == [oid]
        store.delete(oid)
        store.commit()
        assert store.index_lookup("Item", "value", 2) == []

    def test_index_covers_subclasses(self, store):
        store.create_index("Item", "value")
        store.define_class("Special", [], base="Item")
        oid = store.new("Special", {"value": 11})
        store.commit()
        assert store.index_lookup("Item", "value", 11) == [oid]

    def test_non_integer_values_rejected(self, store):
        store.create_index("Item", "name")  # name is a str field
        with pytest.raises(SchemaError):
            store.new("Item", {"name": "text"})
            store.commit()
        store.abort()

    def test_duplicate_index_rejected(self, store):
        store.create_index("Item", "value")
        with pytest.raises(SchemaError):
            store.create_index("Item", "value")

    def test_missing_index_rejected(self, store):
        with pytest.raises(SchemaError):
            store.index_range("Item", "value", 1, 2)


class TestPersistenceAndRecovery:
    def test_state_survives_clean_close(self, tmp_path):
        store = _make_store(tmp_path, "clean.hmdb")
        store.open()
        store.define_class("Item", [FieldDefinition("value", default=0)])
        store.create_index("Item", "value")
        oid = store.new("Item", {"value": 123})
        store.commit()
        store.close()

        store.open()
        assert store.get(oid)["value"] == 123
        assert store.index_lookup("Item", "value", 123) == [oid]
        store.close()

    def test_crash_recovery_replays_committed_work(self, tmp_path):
        """Simulated crash: committed work is never checkpointed, the
        process 'dies' (no close), and a new store must recover it
        from the WAL alone."""
        path = os.path.join(str(tmp_path), "crash.hmdb")
        store = ObjectStore(path, sync_commits=False)
        store.open()
        store.define_class("Item", [FieldDefinition("value", default=0)])
        oid = store.new("Item", {"value": 77})
        store.commit()
        # Crash: abandon the handles without close/checkpoint.  Reach in
        # and close the raw files so the OS lets us reopen them.
        store._wal._file.flush()
        store._wal._file.close()
        store._wal._file = None
        store._file._file.close()
        store._file._file = None

        recovered = ObjectStore(path, sync_commits=False)
        recovered.open()
        assert recovered.stats.recovered_transactions >= 1
        assert recovered.get(oid)["value"] == 77
        recovered.close()

    def test_uncommitted_work_lost_on_crash(self, tmp_path):
        path = os.path.join(str(tmp_path), "crash2.hmdb")
        store = ObjectStore(path, sync_commits=False)
        store.open()
        store.define_class("Item", [FieldDefinition("value", default=0)])
        committed = store.new("Item", {"value": 1})
        store.commit()
        store.new("Item", {"value": 2})  # never committed
        store._wal._file.flush()
        store._wal._file.close()
        store._wal._file = None
        store._file._file.close()
        store._file._file = None

        recovered = ObjectStore(path, sync_commits=False)
        recovered.open()
        oids = list(recovered.scan_class("Item"))
        assert oids == [committed]
        recovered.close()


def _chain_distance(store, page_a, page_b):
    """Distance between two pages in the heap's chain order."""
    order = {pid: i for i, pid in enumerate(store._heap.page_ids())}
    return abs(order[page_a] - order[page_b])


class TestClustering:
    def test_near_hint_places_on_same_or_adjacent_page(self, tmp_path):
        store = _make_store(tmp_path, "cluster.hmdb", clustered=True)
        store.open()
        store.define_class("Item", [FieldDefinition("value", default=0)])
        anchor = store.new("Item", {"value": 1})
        store.commit()
        # Scatter unrelated records so the tail drifts far away.
        for i in range(200):
            store.new("Item", {"value": i})
        store.commit()
        near = store.new("Item", {"value": 2}, near=anchor)
        store.commit()
        distance = _chain_distance(
            store, store.page_of(near), store.page_of(anchor)
        )
        assert distance <= 1  # same page, or spliced right after it
        store.close()

    def test_relocate_near_moves_record(self, tmp_path):
        store = _make_store(tmp_path, "reloc.hmdb", clustered=True)
        store.open()
        store.define_class("Item", [FieldDefinition("value", default=0)])
        anchor = store.new("Item", {"value": 1})
        for i in range(200):
            store.new("Item", {"value": i})
        stray = store.new("Item", {"value": 99})
        store.commit()
        assert _chain_distance(
            store, store.page_of(stray), store.page_of(anchor)
        ) > 1
        store.relocate_near(stray, anchor)
        store.commit()
        assert _chain_distance(
            store, store.page_of(stray), store.page_of(anchor)
        ) <= 1
        assert store.get(stray)["value"] == 99
        store.close()

    def test_unclustered_store_ignores_hints(self, tmp_path):
        store = _make_store(tmp_path, "uncluster.hmdb", clustered=False)
        store.open()
        store.define_class("Item", [FieldDefinition("value", default=0)])
        anchor = store.new("Item", {"value": 1})
        stray = store.new("Item", {"value": 2})
        store.commit()
        page_before = store.page_of(stray)
        store.relocate_near(stray, anchor)
        store.commit()
        assert store.page_of(stray) == page_before
        store.close()


class TestLockingMode:
    @pytest.fixture
    def locking_store(self, tmp_path):
        s = _make_store(tmp_path, "lock.hmdb", locking=True)
        s.open()
        s.define_class("Item", [FieldDefinition("value", default=0)])
        yield s
        if s.is_open:
            s.close()

    def test_reads_take_shared_locks(self, locking_store):
        s = locking_store
        oid = s.new("Item", {"value": 1})
        s.commit()
        txn = s.begin()
        s.get(oid, txn=txn)
        assert oid in s.locks.locks_held(txn.txid)
        assert s.locks.holders_of(oid) == {txn.txid}
        txn.commit()
        assert s.locks.holders_of(oid) == set()

    def test_writes_take_exclusive_locks_until_end(self, locking_store):
        s = locking_store
        oid = s.new("Item", {"value": 1})
        s.commit()
        txn = s.begin()
        s.update(oid, {"value": 2}, txn=txn)
        assert s.locks.holders_of(oid) == {txn.txid}
        txn.abort()
        assert s.locks.holders_of(oid) == set()
        assert s.get(oid)["value"] == 1

    def test_foreign_holder_blocks_then_times_out(self, locking_store):
        from repro.errors import DeadlockError

        s = locking_store
        s.locks.timeout = 0.1
        oid = s.new("Item", {"value": 1})
        s.commit()
        # Simulate another session holding the X lock.
        from repro.engine.locks import LockMode

        s.locks.acquire(9999, oid, LockMode.EXCLUSIVE)
        txn = s.begin()
        with pytest.raises(DeadlockError):
            s.get(oid, txn=txn)
        txn.abort()
        s.locks.release_all(9999)


class TestSchemaEvolutionOnLiveData:
    def test_existing_objects_gain_new_field_lazily(self, store):
        oid = store.new("Item", {"value": 1})
        store.commit()
        store.add_field("Item", FieldDefinition("grade", default="B"))
        assert store.get(oid)["grade"] == "B"

    def test_draw_node_style_subclass_addition(self, store):
        store.define_class(
            "DrawItem",
            [
                FieldDefinition("circles", default=0),
                FieldDefinition("rectangles", default=0),
            ],
            base="Item",
        )
        oid = store.new("DrawItem", {"circles": 3})
        store.commit()
        state = store.get(oid)
        assert state["circles"] == 3
        assert state["value"] == 0  # inherited default


class TestOpenFailureCleanup:
    """Regression: a failed open() must not leak the WAL handle."""

    def _write_corrupt_wal(self, path):
        """A frame whose CRC checks out but whose payload is garbage."""
        import struct
        import zlib

        payload = b"\xff\xfe\xfd\xfc not a serialized record"
        frame = struct.pack(
            "<II", len(payload), zlib.crc32(payload) & 0xFFFFFFFF
        )
        with open(path + ".wal", "wb") as f:
            f.write(frame + payload)

    def test_recovery_error_releases_handles(self, tmp_path):
        from repro.errors import RecoveryError

        path = os.path.join(str(tmp_path), "corrupt.hmdb")
        self._write_corrupt_wal(path)
        store = ObjectStore(path, sync_commits=False)
        with pytest.raises(RecoveryError):
            store.open()
        # The leak: _wal used to keep its descriptor open here, and
        # close() (a no-op on a closed store) never released it.
        assert store._wal is None
        assert store._file is None
        assert not store.is_open

    def test_store_reopens_after_fixing_the_wal(self, tmp_path):
        from repro.errors import RecoveryError

        path = os.path.join(str(tmp_path), "corrupt2.hmdb")
        self._write_corrupt_wal(path)
        store = ObjectStore(path, sync_commits=False)
        with pytest.raises(RecoveryError):
            store.open()
        os.remove(path + ".wal")  # operator repair: discard the bad log
        store.open()
        store.define_class("Item", [FieldDefinition("value", default=0)])
        oid = store.new("Item", {"value": 5})
        store.commit()
        assert store.get(oid)["value"] == 5
        store.close()


class TestCloseDropCacheContract:
    """close() silently aborts; drop_cache() raises.  Both are pinned."""

    def test_close_silently_discards_uncommitted_writes(self, store):
        oid = store.new("Item", {"value": 1})
        store.commit()
        store.update(oid, {"value": 99})  # uncommitted
        store.close()  # no exception: end-of-session discard
        store.open()
        assert store.get(oid)["value"] == 1

    def test_drop_cache_raises_on_uncommitted_writes(self, store):
        oid = store.new("Item", {"value": 1})
        store.commit()
        store.update(oid, {"value": 99})  # uncommitted
        with pytest.raises(TransactionError):
            store.drop_cache()
        store.commit()
        store.drop_cache()  # fine once the writes are committed
        assert store.get(oid)["value"] == 99

    def test_drop_cache_allows_read_only_transaction(self, store):
        oid = store.new("Item", {"value": 7})
        store.commit()
        store.get(oid)  # read-only implicit transaction
        store.drop_cache()  # reads buffered nothing: allowed
        assert store.get(oid)["value"] == 7


class TestStoreGroupCommit:
    def _group_store(self, tmp_path, **kwargs):
        kwargs.setdefault("group_commit", True)
        kwargs.setdefault("group_commit_size", 4)
        kwargs.setdefault("sync_commits", True)
        return _make_store(tmp_path, "group.hmdb", **kwargs)

    def test_fewer_syncs_than_commits(self, tmp_path):
        from repro.obs import Instrumentation

        instr = Instrumentation()
        store = self._group_store(tmp_path, instrumentation=instr)
        store.open()
        store.define_class("Item", [FieldDefinition("value", default=0)])
        before = instr.snapshot()
        for value in range(8):
            store.new("Item", {"value": value})
            store.commit()
        delta = instr.snapshot().delta(before)
        assert delta.get("engine.wal.group_commit.batches", 0) == 2
        assert delta.get("engine.wal.group_commit.deferred", 0) == 6
        assert delta.get("engine.wal.syncs", 0) < 8
        store.close()

    def test_deferred_commits_survive_close(self, tmp_path):
        store = self._group_store(tmp_path, group_commit_size=16)
        store.open()
        store.define_class("Item", [FieldDefinition("value", default=0)])
        oids = []
        for value in range(3):  # all three deferred (batch of 16)
            oids.append(store.new("Item", {"value": value}))
            store.commit()
        store.close()
        store.open()
        assert [store.get(oid)["value"] for oid in oids] == [0, 1, 2]
        store.close()

    def test_deferred_commits_recovered_after_crash(self, tmp_path):
        path = os.path.join(str(tmp_path), "groupcrash.hmdb")
        store = ObjectStore(
            path, sync_commits=False, group_commit=True, group_commit_size=8
        )
        store.open()
        store.define_class("Item", [FieldDefinition("value", default=0)])
        oid = store.new("Item", {"value": 42})
        store.commit()  # deferred: pages not forced yet
        # Crash without close: the flushed-but-unsynced WAL survives in
        # the OS page cache (this process's view), so recovery sees it.
        store._wal._file.flush()
        store._wal._file.close()
        store._wal._file = None
        store._file._file.close()
        store._file._file = None

        recovered = ObjectStore(path, sync_commits=False)
        recovered.open()
        assert recovered.get(oid)["value"] == 42
        recovered.close()

    def test_invalid_group_commit_size_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            self._group_store(tmp_path, group_commit_size=0).open()


class TestVfsThreading:
    def test_engine_io_counters_flow_from_store(self, tmp_path):
        from repro.obs import Instrumentation

        instr = Instrumentation()
        store = _make_store(tmp_path, "io.hmdb", instrumentation=instr)
        store.open()
        store.define_class("Item", [FieldDefinition("value", default=0)])
        store.new("Item", {"value": 1})
        store.commit()
        store.close()
        counters = instr.snapshot()
        assert counters.get("engine.io.opens") >= 2  # data file + WAL
        assert counters.get("engine.io.writes") > 0
        assert counters.get("engine.io.bytes_written") > 0
        assert counters.get("engine.io.syncs") > 0

    def test_injected_crash_mid_commit_recovers_cleanly(self, tmp_path):
        from repro.engine.vfs import FaultInjectingVFS, SimulatedCrash

        path = os.path.join(str(tmp_path), "inject.hmdb")
        # First pass: count the I/O of one committed transaction.
        probe = FaultInjectingVFS()
        store = ObjectStore(path, sync_commits=True, vfs=probe)
        store.open()
        store.define_class("Item", [FieldDefinition("value", default=0)])
        oid = store.new("Item", {"value": 1})
        store.commit()
        ops_through_first_commit = probe.mutation_ops
        store._dispose_handles()
        os.remove(path)
        os.remove(path + ".wal")

        # Second pass: crash during the *second* commit's I/O.
        vfs = FaultInjectingVFS().crash_at(ops_through_first_commit + 2)
        store = ObjectStore(path, sync_commits=True, vfs=vfs)
        store.open()
        store.define_class("Item", [FieldDefinition("value", default=0)])
        oid = store.new("Item", {"value": 1})
        store.commit()
        store.new("Item", {"value": 2})
        with pytest.raises(SimulatedCrash):
            store.commit()
        store._dispose_handles()

        recovered = ObjectStore(path)  # fresh RealVFS
        recovered.open()
        values = sorted(
            recovered.get(o)["value"]
            for o in recovered.scan_class("Item")
        )
        assert values in ([1], [1, 2])  # atomic: never a torn mix
        assert recovered.get(oid)["value"] == 1  # durable: commit 1 held
        recovered.close()
