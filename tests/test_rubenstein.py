"""The /RUBE87/ baseline: generator, the seven operations, both backends."""

import random

import pytest

from repro.errors import NodeNotFoundError
from repro.rubenstein import (
    MemorySimpleDatabase,
    SIMPLE_OP_NAMES,
    SimpleGenerator,
    SimpleOperations,
    SqliteSimpleDatabase,
)
from repro.rubenstein.generator import BIRTH_RANGE


@pytest.fixture(params=["memory", "sqlite"])
def simple_db(request, tmp_path):
    if request.param == "memory":
        db = MemorySimpleDatabase()
    else:
        db = SqliteSimpleDatabase(str(tmp_path / "rube.db"))
    db.open()
    info = SimpleGenerator(persons=150, documents=120, seed=3).generate(db)
    yield db, info
    if db.is_open:
        db.close()


class TestGenerator:
    def test_counts(self, simple_db):
        db, info = simple_db
        assert db.person_count() == 150
        assert info.persons == 150
        assert info.documents == 120
        assert 120 <= info.authorships <= 360  # 1-3 authors per document

    def test_birth_in_domain(self, simple_db):
        db, _info = simple_db
        for person in db.scan_persons():
            assert BIRTH_RANGE[0] <= person.birth <= BIRTH_RANGE[1]

    def test_deterministic(self, tmp_path):
        a, b = MemorySimpleDatabase(), MemorySimpleDatabase()
        a.open(), b.open()
        SimpleGenerator(50, 50, seed=9).generate(a)
        SimpleGenerator(50, 50, seed=9).generate(b)
        assert a.person_by_id(10) == b.person_by_id(10)
        docs_a = sorted(d.document_id for d in a.documents_of(10))
        docs_b = sorted(d.document_id for d in b.documents_of(10))
        assert docs_a == docs_b


class TestOperations:
    def test_name_lookup(self, simple_db):
        db, info = simple_db
        ops = SimpleOperations(db, info)
        assert ops.name_lookup(7) == db.person_by_id(7).name
        with pytest.raises(NodeNotFoundError):
            ops.name_lookup(99999)

    def test_range_lookup_matches_brute_force(self, simple_db):
        db, info = simple_db
        ops = SimpleOperations(db, info)
        result = {p.person_id for p in ops.range_lookup(20_000)}
        expected = {
            p.person_id
            for p in db.scan_persons()
            if 20_000 <= p.birth <= 29_999
        }
        assert result == expected

    def test_group_and_reference_are_inverses(self, simple_db):
        db, info = simple_db
        ops = SimpleOperations(db, info)
        rng = random.Random(5)
        for _ in range(10):
            document_id = info.random_document_id(rng)
            for author in ops.reference_lookup(document_id):
                document_ids = {
                    d.document_id for d in ops.group_lookup(author.person_id)
                }
                assert document_id in document_ids

    def test_record_insert_and_cleanup(self, simple_db):
        db, info = simple_db
        ops = SimpleOperations(db, info)
        rng = random.Random(6)
        before = db.person_count()
        inserted = ops.record_insert(rng)
        assert db.person_count() == before + 1
        db.delete_person(inserted)
        assert db.person_count() == before

    def test_sequential_scan_counts_all(self, simple_db):
        db, info = simple_db
        ops = SimpleOperations(db, info)
        assert ops.sequential_scan() == 150

    def test_database_open_cycle(self, simple_db):
        db, info = simple_db
        ops = SimpleOperations(db, info)
        ops.database_open()
        assert db.is_open
        assert db.person_count() == 150


class TestRunner:
    def test_run_all_times_all_seven(self, simple_db):
        db, info = simple_db
        ops = SimpleOperations(db, info)
        results = ops.run_all(repetitions=5)
        assert set(results) == set(SIMPLE_OP_NAMES)
        for stats in results.values():
            assert stats.mean >= 0
            assert stats.count >= 5 or stats.count >= 1
        # Probe records were cleaned up.
        assert db.person_count() == 150
