"""The ad-hoc query language (R12): lexing, parsing, execution, plans."""

import pytest

from repro.core.model import NodeKind
from repro.errors import QuerySyntaxError
from repro.query import execute, explain, parse
from repro.query.ast import (
    And,
    Between,
    Comparison,
    Not,
    Or,
    attributes_used,
    evaluate,
)
from repro.query.lexer import TokenType, tokenize


class TestLexer:
    def test_tokens_and_positions(self):
        tokens = tokenize("find nodes where ten >= 5")
        kinds = [t.type for t in tokens]
        assert kinds == [
            TokenType.KEYWORD, TokenType.KEYWORD, TokenType.KEYWORD,
            TokenType.IDENT, TokenType.OPERATOR, TokenType.NUMBER,
            TokenType.END,
        ]
        assert tokens[4].text == ">="
        assert tokens[5].position == 24

    def test_keywords_case_insensitive(self):
        tokens = tokenize("FIND Nodes WHERE")
        assert all(t.type is TokenType.KEYWORD for t in tokens[:3])
        assert tokens[0].text == "find"

    def test_negative_numbers(self):
        tokens = tokenize("x = -5")
        assert tokens[2].text == "-5"

    def test_unexpected_character(self):
        with pytest.raises(QuerySyntaxError) as excinfo:
            tokenize("ten @ 5")
        assert excinfo.value.position == 4


class TestParser:
    def test_minimal_query(self):
        query = parse("find nodes")
        assert query.kind == "nodes"
        assert query.predicate is None

    def test_kinds(self):
        assert parse("find text").kind == "text"
        assert parse("find form").kind == "form"

    def test_comparison(self):
        query = parse("find nodes where hundred >= 10")
        assert query.predicate == Comparison("hundred", ">=", 10)

    def test_between(self):
        query = parse("find nodes where million between 100 and 200")
        assert query.predicate == Between("million", 100, 200)

    def test_precedence_and_binds_tighter_than_or(self):
        query = parse("find nodes where ten = 1 or ten = 2 and hundred = 3")
        assert isinstance(query.predicate, Or)
        assert isinstance(query.predicate.right, And)

    def test_parentheses_override(self):
        query = parse("find nodes where (ten = 1 or ten = 2) and hundred = 3")
        assert isinstance(query.predicate, And)
        assert isinstance(query.predicate.left, Or)

    def test_not(self):
        query = parse("find nodes where not ten = 1")
        assert query.predicate == Not(Comparison("ten", "=", 1))

    def test_nested_not(self):
        query = parse("find nodes where not not ten = 1")
        assert query.predicate == Not(Not(Comparison("ten", "=", 1)))

    @pytest.mark.parametrize(
        "bad",
        [
            "nodes where ten = 1",       # missing find
            "find gizmos",                # unknown kind
            "find nodes where",           # missing predicate
            "find nodes where ten",       # missing operator
            "find nodes where ten = ",    # missing value
            "find nodes where thousand = 1",  # unknown attribute
            "find nodes where (ten = 1",  # unclosed paren
            "find nodes where ten between 9 and 2",  # reversed bounds
            "find nodes extra",           # trailing input
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(QuerySyntaxError):
            parse(bad)


class TestAst:
    def test_attributes_used(self):
        query = parse(
            "find nodes where ten = 1 and (hundred > 2 or not million = 3)"
        )
        assert attributes_used(query.predicate) == {"ten", "hundred", "million"}
        assert attributes_used(None) == frozenset()

    @pytest.mark.parametrize(
        "text,attrs,expected",
        [
            ("find nodes where ten = 5", {"ten": 5}, True),
            ("find nodes where ten != 5", {"ten": 5}, False),
            ("find nodes where ten < 5", {"ten": 4}, True),
            ("find nodes where ten <= 5", {"ten": 5}, True),
            ("find nodes where ten > 5", {"ten": 5}, False),
            ("find nodes where ten between 3 and 7", {"ten": 7}, True),
            ("find nodes where ten = 1 and hundred = 2",
             {"ten": 1, "hundred": 2}, True),
            ("find nodes where ten = 1 or hundred = 2",
             {"ten": 9, "hundred": 2}, True),
            ("find nodes where not ten = 1", {"ten": 1}, False),
        ],
    )
    def test_evaluate(self, text, attrs, expected):
        assert evaluate(parse(text).predicate, attrs) is expected


class TestExecutor:
    def _brute_force(self, db, query_text):
        query = parse(query_text)
        kind = {"nodes": None, "text": NodeKind.TEXT, "form": NodeKind.FORM}[
            query.kind
        ]
        out = set()
        for ref in db.iter_nodes():
            if kind is not None and db.kind_of(ref) is not kind:
                continue
            attrs = {
                name: db.get_attribute(ref, name)
                for name in ("uniqueId", "ten", "hundred", "million")
            }
            if evaluate(query.predicate, attrs):
                out.add(attrs["uniqueId"])
        return out

    @pytest.mark.parametrize(
        "text",
        [
            "find nodes",
            "find nodes where hundred between 10 and 19",
            "find nodes where million <= 100000",
            "find text where hundred between 1 and 50",
            "find form where ten > 0",
            "find nodes where ten = 5 and hundred > 50",
            "find nodes where not hundred between 10 and 90",
            "find nodes where uniqueId <= 10",
            "find nodes where hundred = 7 or hundred = 9",
        ],
    )
    def test_matches_brute_force(self, memory_populated, text):
        db, _gen = memory_populated
        result = execute(db, text)
        expected = self._brute_force(db, text)
        got = {db.get_attribute(r, "uniqueId") for r in result}
        assert got == expected

    def test_planner_uses_index_for_ranges(self):
        assert explain("find nodes where hundred between 10 and 19").startswith(
            "index-range(hundred"
        )
        assert explain("find nodes where million > 500000").startswith(
            "index-range(million"
        )
        assert explain(
            "find nodes where hundred = 5 and ten = 1"
        ).startswith("index-range(hundred in 5..5")

    def test_planner_falls_back_to_scan(self):
        assert explain("find nodes") == "scan"
        assert explain("find nodes where ten = 5") == "scan"
        assert explain("find nodes where hundred != 5") == "scan"
        assert explain("find nodes where not hundred = 5") == "scan"
        assert explain(
            "find nodes where hundred = 5 or ten = 1"
        ) == "scan"  # disjunction: the range is not a necessary condition

    def test_index_plan_examines_fewer_nodes(self, memory_populated):
        db, gen = memory_populated
        indexed = execute(db, "find nodes where hundred between 10 and 19")
        scanned = execute(db, "find nodes where ten = 5")
        assert indexed.plan.startswith("index-range")
        assert scanned.plan == "scan"
        assert indexed.nodes_examined < scanned.nodes_examined

    def test_same_answer_on_every_backend(self, populated):
        db, _gen = populated
        result = execute(db, "find nodes where hundred between 20 and 29")
        for ref in result:
            assert 20 <= db.get_attribute(ref, "hundred") <= 29

    def test_index_plan_respects_structure_boundaries(self, level3_config):
        from repro.backends.memory import MemoryDatabase
        from repro.core.generator import DatabaseGenerator

        db = MemoryDatabase()
        db.open()
        generator = DatabaseGenerator(level3_config)
        generator.generate(db, structure_id=1)
        generator.generate(db, structure_id=2, first_uid=1000)
        result = execute(db, "find nodes where hundred between 1 and 100",
                         structure_id=1)
        assert len(result) == 156  # only structure 1, despite global index
