"""Vacuum: copy-compaction preserving OIDs, indexes and history."""

import os

import pytest

from repro.engine.catalog import FieldDefinition
from repro.engine.store import ObjectStore
from repro.errors import TransactionError


@pytest.fixture
def store(tmp_path):
    s = ObjectStore(
        os.path.join(str(tmp_path), "v.hmdb"), sync_commits=False
    )
    s.open()
    s.define_class(
        "Item",
        [FieldDefinition("value", default=0), FieldDefinition("blob", default=b"")],
    )
    s.create_index("Item", "value")
    yield s
    if s.is_open:
        s.close()


class TestVacuum:
    def test_reclaims_space_after_mass_delete(self, store):
        oids = [
            store.new("Item", {"value": i, "blob": b"x" * 2000})
            for i in range(200)
        ]
        store.commit()
        keep = oids[:10]
        for oid in oids[10:]:
            store.delete(oid)
        store.commit()
        stats = store.vacuum()
        assert stats.size_after < stats.size_before
        assert stats.reclaimed > 100_000  # 190 x 2 kB blobs went away

    def test_oids_and_state_preserved(self, store):
        a = store.new("Item", {"value": 1})
        b = store.new("Item", {"value": 2})
        store.commit()
        store.delete(a)
        store.commit()
        store.vacuum()
        assert not store.exists(a)
        assert store.get(b) == {"value": 2, "blob": b""}
        assert store.class_of(b) == "Item"

    def test_indexes_rebuilt_and_live(self, store):
        oid = store.new("Item", {"value": 7})
        store.commit()
        store.vacuum()
        assert store.index_lookup("Item", "value", 7) == [oid]
        # Index maintenance still works after the rebuild.
        store.update(oid, {"value": 8})
        store.commit()
        assert store.index_lookup("Item", "value", 7) == []
        assert store.index_lookup("Item", "value", 8) == [oid]

    def test_new_objects_after_vacuum_get_fresh_oids(self, store):
        first = store.new("Item", {})
        store.commit()
        store.vacuum()
        second = store.new("Item", {})
        store.commit()
        assert second > first  # the OID counter survived

    def test_version_chains_survive(self, tmp_path):
        s = ObjectStore(
            os.path.join(str(tmp_path), "vh.hmdb"),
            versioned=True,
            sync_commits=False,
        )
        s.open()
        s.define_class("Doc", [FieldDefinition("body", default="")])
        oid = s.new("Doc", {"body": "v1"})
        s.commit()
        for body in ("v2", "v3"):
            s.update(oid, {"body": body})
            s.commit()
        s.vacuum()
        chain = s.version_chain(oid).all()
        assert [v.state["body"] for v in chain] == ["v2", "v1"]
        assert s.get(oid)["body"] == "v3"
        s.close()

    def test_vacuum_with_uncommitted_writes_rejected(self, store):
        store.new("Item", {})
        with pytest.raises(TransactionError):
            store.vacuum()
        store.abort()

    def test_schema_versions_preserved(self, store):
        oid = store.new("Item", {"value": 3})
        store.commit()
        store.add_field("Item", FieldDefinition("grade", default="B"))
        store.vacuum()
        assert store.catalog.get("Item").version == 2
        assert store.get(oid)["grade"] == "B"

    def test_subclass_extents_preserved(self, store):
        store.define_class("Special", [], base="Item")
        a = store.new("Item", {})
        b = store.new("Special", {})
        store.commit()
        store.vacuum()
        assert set(store.scan_class("Item")) == {a, b}
        assert set(store.scan_class("Special")) == {b}

    def test_hypermodel_database_vacuums_cleanly(self, tmp_path):
        from repro.backends.oodb import OodbDatabase
        from repro.core.config import HyperModelConfig
        from repro.core.generator import DatabaseGenerator
        from repro.core.verification import verify_database

        db = OodbDatabase(os.path.join(str(tmp_path), "hm.hmdb"))
        db.open()
        gen = DatabaseGenerator(HyperModelConfig(levels=2, seed=8)).generate(db)
        db.commit()
        db.store.vacuum()
        verify_database(db, gen, content_sample=5).raise_if_failed()
        db.close()
