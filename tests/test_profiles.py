"""The R7 latency-profile arithmetic."""

import pytest

from repro.netsim.latency import LatencyModel, ZERO_COST
from repro.netsim.profiles import (
    LAN_1990,
    LAN_MODERN,
    PROFILES,
    R7_MAXIMUM_OBJECTS_PER_SECOND,
    R7_MINIMUM_OBJECTS_PER_SECOND,
    WAN,
    assess_r7,
    objects_per_second,
    r7_table,
)


class TestObjectsPerSecond:
    def test_matches_request_cost(self):
        model = LatencyModel(0.01, 1_000_000)
        # 10 ms + 100/1e6 s = 10.1 ms -> ~99 objects/s
        assert objects_per_second(model) == pytest.approx(1 / 0.0101)

    def test_zero_cost_is_unbounded(self):
        assert objects_per_second(ZERO_COST) == float("inf")

    def test_profiles_are_ordered_sensibly(self):
        assert (
            objects_per_second(LAN_MODERN)
            > objects_per_second(LAN_1990)
            > objects_per_second(WAN)
        )


class TestR7Assessment:
    def test_1990_lan_needs_the_cache(self):
        """The paper's own conclusion: ~500 objects/s over a 2 ms LAN
        meets the floor but not the 10k ceiling — caching is needed."""
        assessment = assess_r7("lan-1990", LAN_1990)
        assert assessment.meets_minimum
        assert not assessment.meets_maximum
        assert assessment.cache_required
        assert 100 < assessment.uncached_objects_per_second < 1000

    def test_wan_misses_even_the_floor(self):
        assessment = assess_r7("wan", WAN)
        assert not assessment.meets_minimum
        assert assessment.uncached_objects_per_second < (
            R7_MINIMUM_OBJECTS_PER_SECOND
        )

    def test_modern_lan_reaches_the_ceiling(self):
        assessment = assess_r7("lan-modern", LAN_MODERN)
        assert assessment.meets_maximum
        assert assessment.uncached_objects_per_second > (
            R7_MAXIMUM_OBJECTS_PER_SECOND
        )
        assert not assessment.cache_required

    def test_table_lists_every_profile(self):
        table = r7_table()
        for name in PROFILES:
            assert name in table
        assert "needed" in table  # at least one profile needs the cache
