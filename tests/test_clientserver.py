"""The client/server backend: caching, commits and the cold/warm gap."""

import random

import pytest

from repro.backends.clientserver import ClientServerDatabase
from repro.core.generator import DatabaseGenerator
from repro.core.model import NodeData
from repro.netsim import ObjectServer
from repro.netsim.latency import LatencyModel


@pytest.fixture
def db(level3_config):
    db = ClientServerDatabase()
    db.open()
    gen = DatabaseGenerator(level3_config).generate(db)
    db.commit()
    return db, gen


class TestCacheBehaviour:
    def test_first_access_is_a_fetch_second_is_cached(self, db):
        database, gen = db
        database.close()
        database.open()
        ref = database.lookup(50)
        clock = database.simulated_clock
        before = clock.now
        database.get_attribute(ref, "ten")
        cold_cost = clock.now - before
        assert cold_cost > 0
        before = clock.now
        database.get_attribute(ref, "ten")
        assert clock.now == before  # cached: free

    def test_close_clears_workstation_cache_not_server(self, db):
        database, _gen = db
        ref = database.lookup(10)
        database.get_attribute(ref, "ten")
        assert len(database.cache) > 0
        database.close()
        assert len(database.cache) == 0
        database.open()
        assert database.node_count() == 156  # server retained everything

    def test_warm_traversal_is_free(self, db):
        database, gen = db
        database.close()
        database.open()
        clock = database.simulated_clock
        start = database.lookup(gen.uids_by_level[2][0])
        from repro.core.operations import Operations

        ops = Operations(database, gen.config)
        before = clock.now
        ops.closure_1n(start)
        cold = clock.now - before
        before = clock.now
        ops.closure_1n(start)
        warm = clock.now - before
        assert cold > 0
        assert warm == 0.0


class TestWriteBuffer:
    def test_dirty_records_upload_at_commit(self, db):
        database, gen = db
        stores_before = database.server.stats.stores
        ref = database.lookup(gen.text_uids[0])
        database.set_text(ref, "version1 edited version1 x version1")
        assert database.server.stats.stores == stores_before
        database.commit()
        assert database.server.stats.stores == stores_before + 1

    def test_abort_discards_local_edits(self, db):
        database, gen = db
        ref = database.lookup(25)
        original = database.get_attribute(ref, "ten")
        database.set_attribute(ref, "ten", original + 1)
        database.abort()
        # Cache may still hold the clean copy; re-open to be sure.
        database.close()
        database.open()
        assert database.get_attribute(database.lookup(25), "ten") == original

    def test_abort_does_not_leak_list_edits_into_the_cache(self, db):
        """Regression: private edits to nested relationship lists must
        not alias the cached (or server) copy — an aborted add_child
        once left the phantom child visible."""
        database, gen = db
        parent = database.lookup(gen.uids_by_level[2][0])
        children_before = list(database.children(parent))  # caches parent
        from repro.core.model import NodeData

        stray = database.create_node(
            NodeData(unique_id=8000, ten=1, hundred=1, million=1)
        )
        database.add_child(parent, stray)
        database.abort()
        assert database.children(parent) == children_before
        # The server's copy is pristine too.
        database.cache.clear()
        assert database.children(database.lookup(
            gen.uids_by_level[2][0])) == children_before

    def test_uncommitted_nodes_visible_locally(self, db):
        database, gen = db
        database.create_node(
            NodeData(unique_id=9001, ten=1, hundred=1, million=1)
        )
        assert database.node_count() == 157
        ref = database.lookup(9001)
        assert database.get_attribute(ref, "ten") == 1

    def test_range_query_merges_local_changes(self, db):
        database, _gen = db
        ref = database.lookup(60)
        database.set_attribute(ref, "hundred", 1000)  # out of any window
        in_window_before = 60 in database.range_hundred(1, 100)
        assert not in_window_before
        database.set_attribute(ref, "hundred", 50)
        assert 60 in [int(r) for r in database.range_hundred(45, 55)]


class TestSharedServer:
    def test_two_clients_share_one_server(self, level3_config):
        server = ObjectServer(latency=LatencyModel(0.0001, 10_000_000))
        writer = ClientServerDatabase(server=server)
        writer.open()
        gen = DatabaseGenerator(level3_config).generate(writer)
        writer.commit()

        reader = ClientServerDatabase(server=server)
        reader.open()
        assert reader.node_count() == 156
        ref = reader.lookup(gen.text_uids[0])
        assert reader.get_text(ref).startswith("version1")

    def test_second_client_sees_committed_edits_after_cache_miss(
        self, level3_config
    ):
        server = ObjectServer()
        alice = ClientServerDatabase(server=server)
        bob = ClientServerDatabase(server=server)
        alice.open()
        gen = DatabaseGenerator(level3_config).generate(alice)
        alice.commit()
        bob.open()

        uid = gen.text_uids[0]
        alice.set_text(alice.lookup(uid), "version1 new version1 body version1")
        alice.commit()
        assert bob.get_text(bob.lookup(uid)).split(" ")[1] == "new"

    def test_coherence_invalidates_stale_cached_copy(self, level3_config):
        """Bob has the node *cached*; Alice's commit must invalidate it
        so Bob's next read refetches the new version (R6 coordination)."""
        server = ObjectServer()
        alice = ClientServerDatabase(server=server)
        bob = ClientServerDatabase(server=server)
        alice.open()
        gen = DatabaseGenerator(level3_config).generate(alice)
        alice.commit()
        bob.open()

        uid = gen.text_uids[1]
        original = bob.get_text(bob.lookup(uid))  # now cached at bob
        assert uid in bob.cache

        alice.set_text(alice.lookup(uid), "version1 fresh version1 x version1")
        alice.commit()
        assert uid not in bob.cache  # invalidated by the broadcast
        assert bob.get_text(bob.lookup(uid)) != original
        assert bob.cache.stats.invalidations >= 1
        # Alice's own cache kept her copy (she was the writer).
        assert uid in alice.cache
