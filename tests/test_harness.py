"""The measurement harness: stats, timers, protocol, runner, reports."""

import pytest

from repro.core.operations import CATALOG
from repro.harness import BenchmarkRunner, ResultSet, RunnerConfig, Stats, Timer
from repro.harness.protocol import run_operation_sequence
from repro.harness.report import (
    backend_comparison_table,
    creation_table,
    full_report,
    operation_table,
    speedup_table,
)
from repro.netsim import SimulatedClock


class TestStats:
    def test_summary_values(self):
        stats = Stats.from_samples([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.mean == 2.5
        assert stats.median == 2.5
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0
        assert stats.total == 10.0
        assert stats.stdev == pytest.approx(1.118, abs=1e-3)

    def test_odd_median(self):
        assert Stats.from_samples([5.0, 1.0, 3.0]).median == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Stats.from_samples([])

    def test_scaled(self):
        stats = Stats.from_samples([1.0, 3.0]).scaled(1000)
        assert stats.mean == 2000
        assert stats.total == 4000

    def test_dict_roundtrip(self):
        stats = Stats.from_samples([0.5, 1.5])
        assert Stats.from_dict(stats.to_dict()) == stats


class TestTimer:
    def test_wall_time_measured(self):
        timer = Timer()
        with timer:
            sum(range(10000))
        assert timer.elapsed > 0
        assert timer.simulated == 0.0

    def test_simulated_time_added(self):
        clock = SimulatedClock()
        timer = Timer(clock)
        with timer:
            clock.advance(1.5)
        assert timer.simulated == pytest.approx(1.5)
        assert timer.elapsed >= 1.5


class TestProtocol:
    def test_cold_warm_sequence_shape(self, populated):
        db, gen = populated
        spec = CATALOG.get("01")
        result = run_operation_sequence(db, spec, gen, repetitions=5, seed=1)
        assert result.op_id == "01"
        assert result.repetitions == 5
        assert result.cold.count == 5
        assert result.warm.count == 5
        assert result.cold.mean >= 0
        assert result.level == gen.config.levels
        assert result.nodes_per_repetition == 1
        assert not db.is_open  # the protocol closes afterwards (step e)

    def test_mutating_sequence_leaves_database_stable(self, populated):
        """Op 16 runs an even number of times per sequence, so paired
        cold/warm runs restore every edited text node."""
        db, gen = populated
        spec = CATALOG.get("16")
        db.open()
        uid = gen.text_uids[0]
        originals = {
            uid: db.get_text(db.lookup(uid)) for uid in gen.text_uids[:10]
        }
        run_operation_sequence(db, spec, gen, repetitions=4, seed=2)
        db.open()
        for uid, text in originals.items():
            assert db.get_text(db.lookup(uid)) == text

    def test_closure_result_list_stored(self, populated):
        db, gen = populated
        run_operation_sequence(db, CATALOG.get("10"), gen, repetitions=3, seed=3)
        db.open()
        stored = db.load_node_list("result.10")
        assert len(stored) == gen.config.closure_1n_size(
            min(3, gen.config.levels - 1)
        )

    def test_dict_roundtrip(self, memory_populated):
        db, gen = memory_populated
        result = run_operation_sequence(db, CATALOG.get("05A"), gen,
                                        repetitions=3, seed=4)
        from repro.harness.protocol import ColdWarmResult

        clone = ColdWarmResult.from_dict(result.to_dict())
        assert clone == result

    def test_op17_reuses_one_form_node_and_restores_it(self, populated):
        """The paper's N.B.: the same form node for all repetitions;
        paired cold/warm runs leave it white again."""
        db, gen = populated
        run_operation_sequence(db, CATALOG.get("17"), gen,
                               repetitions=5, seed=9)
        db.open()
        for uid in gen.form_uids:
            assert db.get_bitmap(db.lookup(uid)).is_white()

    def test_warm_not_slower_than_cold_on_cached_backends(self, tmp_path):
        """On the client/server backend the warm run must win clearly
        (deterministic: network time dominates and is simulated)."""
        from repro.backends.clientserver import ClientServerDatabase
        from repro.core.config import HyperModelConfig
        from repro.core.generator import DatabaseGenerator

        db = ClientServerDatabase()
        db.open()
        gen = DatabaseGenerator(HyperModelConfig(levels=3, seed=4)).generate(db)
        db.commit()
        result = run_operation_sequence(db, CATALOG.get("06"), gen,
                                        repetitions=10, seed=10)
        assert result.warm.mean < result.cold.mean


class TestCounterCapture:
    """ColdWarmResult carries per-run counter deltas when instrumented."""

    def _populated_memory(self, instr):
        from repro.backends.memory import MemoryDatabase
        from repro.core.config import HyperModelConfig
        from repro.core.generator import DatabaseGenerator
        from repro.obs import Instrumentation

        db = MemoryDatabase(instrumentation=instr)
        db.open()
        gen = DatabaseGenerator(HyperModelConfig(levels=2, seed=8)).generate(db)
        db.commit()
        return db, gen

    def test_instrumented_run_captures_cold_and_warm_deltas(self):
        from repro.obs import Instrumentation

        instr = Instrumentation()
        db, gen = self._populated_memory(instr)
        result = run_operation_sequence(db, CATALOG.get("01"), gen,
                                        repetitions=4, seed=5)
        assert result.cold_counters.get("backend.op.reads", 0) > 0
        assert result.warm_counters.get("backend.op.reads", 0) > 0
        # Deltas are per-pass, not cumulative: cold ~= warm for memory.
        assert result.cold_counters["backend.op.reads"] == pytest.approx(
            result.warm_counters["backend.op.reads"], rel=0.5
        )

    def test_uninstrumented_run_captures_nothing(self):
        from repro.obs import NO_OP

        db, gen = self._populated_memory(NO_OP)
        result = run_operation_sequence(db, CATALOG.get("01"), gen,
                                        repetitions=3, seed=5)
        assert result.cold_counters == {}
        assert result.warm_counters == {}

    def test_dict_roundtrip_preserves_counters(self):
        from repro.harness.protocol import ColdWarmResult
        from repro.obs import Instrumentation

        db, gen = self._populated_memory(Instrumentation())
        result = run_operation_sequence(db, CATALOG.get("09"), gen,
                                        repetitions=2, seed=5)
        clone = ColdWarmResult.from_dict(result.to_dict())
        assert clone.cold_counters == result.cold_counters
        assert clone == result

    def test_from_dict_tolerates_pre_counter_payloads(self):
        from repro.harness.protocol import ColdWarmResult

        db, gen = self._populated_memory(None)
        result = run_operation_sequence(db, CATALOG.get("01"), gen,
                                        repetitions=2, seed=5)
        raw = result.to_dict()
        raw.pop("cold_counters")
        raw.pop("warm_counters")
        clone = ColdWarmResult.from_dict(raw)
        assert clone.cold_counters == {}
        assert clone.warm_counters == {}

    def test_counter_table_renders_headline_rows(self, tmp_path):
        from repro.harness.report import counter_table
        from repro.obs import Instrumentation

        config = RunnerConfig(
            backends=["memory"], levels=[2], op_ids=["01", "09"],
            repetitions=2, workdir=str(tmp_path),
            instrumentation=Instrumentation(),
        )
        with BenchmarkRunner(config) as runner:
            results, _ = runner.run()
        table = counter_table(results, "memory", level=2, temperature="cold")
        assert "engine.buffer.hit" in table    # headline even at zero
        assert "backend.rpc.round_trips" in table
        assert "backend.op.reads" in table     # observed and nonzero
        assert sorted(results.counter_names())


class TestRunner:
    @pytest.fixture(scope="class")
    def grid(self, tmp_path_factory):
        config = RunnerConfig(
            backends=["memory", "oodb"],
            levels=[2],
            op_ids=["01", "05A", "10", "16"],
            repetitions=3,
            workdir=str(tmp_path_factory.mktemp("grid")),
        )
        runner = BenchmarkRunner(config)
        results, creation = runner.run()
        yield results, creation
        runner.close()

    def test_grid_covers_backends_and_ops(self, grid):
        results, _creation = grid
        assert set(results.backends) == {"memory", "oodb"}
        assert set(results.op_ids) == {"01", "05A", "10", "16"}
        assert len(results) == 2 * 4

    def test_creation_phases_recorded(self, grid):
        _results, creation = grid
        assert ("memory", 2) in creation
        phases = creation[("oodb", 2)]
        assert "node-internal" in phases
        assert "rel-1-N" in phases

    def test_op02_skipped_for_key_only_backends(self, tmp_path):
        config = RunnerConfig(
            backends=["sqlite"], levels=[2], op_ids=["01", "02"],
            repetitions=2, workdir=str(tmp_path),
        )
        runner = BenchmarkRunner(config)
        results, _ = runner.run()
        assert results.op_ids == ["01"]  # 02 is "not applicable"
        runner.close()


class TestResultSet:
    def test_selection_and_json_roundtrip(self, memory_populated):
        db, gen = memory_populated
        results = ResultSet()
        for op_id in ("01", "03"):
            results.add(
                run_operation_sequence(db, CATALOG.get(op_id), gen,
                                       repetitions=2, seed=5)
            )
        assert len(results.select(op_id="01")) == 1
        assert results.one("memory", 3, "03").op_id == "03"
        with pytest.raises(KeyError):
            results.one("memory", 3, "99")
        clone = ResultSet.from_json(results.to_json())
        assert len(clone) == 2
        assert clone.one("memory", 3, "01").cold.count == 2

    def test_save_and_load(self, memory_populated, tmp_path):
        db, gen = memory_populated
        results = ResultSet(
            [run_operation_sequence(db, CATALOG.get("01"), gen,
                                    repetitions=2, seed=6)]
        )
        path = str(tmp_path / "results.json")
        results.save(path)
        assert len(ResultSet.load(path)) == 1


class TestReports:
    @pytest.fixture
    def results(self, memory_populated):
        db, gen = memory_populated
        collected = ResultSet()
        for op_id in ("01", "05A"):
            collected.add(
                run_operation_sequence(db, CATALOG.get(op_id), gen,
                                       repetitions=2, seed=7)
            )
        return collected

    def test_operation_table_contains_ops_and_levels(self, results):
        table = operation_table(results, "memory")
        assert "01 nameLookup" in table
        assert "05A groupLookup1N" in table
        assert "L3 cold" in table and "L3 warm" in table

    def test_comparison_table(self, results):
        table = backend_comparison_table(results, 3, "cold")
        assert "memory" in table
        with pytest.raises(ValueError):
            backend_comparison_table(results, 3, "tepid")

    def test_speedup_table(self, results):
        assert "x" in speedup_table(results, "memory")

    def test_creation_table(self):
        table = creation_table(
            {"memory": {"node-leaf": 0.12, "rel-1-N": 0.03}}, level=4
        )
        assert "node-leaf" in table and "memory" in table

    def test_full_report_concatenates(self, results):
        report = full_report(results, title="Title")
        assert "Title" in report
        assert report.count("nameLookup") >= 3

    def test_delta_table_flags_regressions(self, results):
        from repro.harness.report import delta_table
        import dataclasses

        slower = ResultSet()
        for cell in results:
            slower.add(
                dataclasses.replace(cell, cold=cell.cold.scaled(3.0))
            )
        table = delta_table(results, slower, "cold", threshold=0.10)
        assert "SLOWER" in table
        assert "+200%" in table
        # Identical sets carry no flags.
        clean = delta_table(results, results, "cold")
        assert "SLOWER" not in clean and "faster" not in clean
        with pytest.raises(ValueError):
            delta_table(results, results, "tepid")


class TestLatencyHistogramCapture:
    """ColdWarmResult carries sample-derived latency histograms."""

    def test_histograms_present_even_without_instrumentation(
        self, memory_populated
    ):
        db, gen = memory_populated
        result = run_operation_sequence(db, CATALOG.get("01"), gen,
                                        repetitions=4, seed=5)
        for hist in (result.cold_hist, result.warm_hist):
            assert hist["count"] == 4
            assert hist["min"] <= hist["p50"] <= hist["p90"]
            assert hist["p90"] <= hist["p99"] <= hist["max"]

    def test_dict_roundtrip_preserves_histograms(self, memory_populated):
        from repro.harness.protocol import ColdWarmResult

        db, gen = memory_populated
        result = run_operation_sequence(db, CATALOG.get("01"), gen,
                                        repetitions=3, seed=5)
        clone = ColdWarmResult.from_dict(result.to_dict())
        assert clone.cold_hist == result.cold_hist
        assert clone.warm_hist == result.warm_hist

    def test_from_dict_tolerates_pre_histogram_payloads(
        self, memory_populated
    ):
        from repro.harness.protocol import ColdWarmResult

        db, gen = memory_populated
        result = run_operation_sequence(db, CATALOG.get("01"), gen,
                                        repetitions=3, seed=5)
        raw = result.to_dict()
        del raw["cold_hist"], raw["warm_hist"]
        clone = ColdWarmResult.from_dict(raw)
        assert clone.cold_hist == {} and clone.warm_hist == {}

    def test_percentile_table_renders(self, memory_populated):
        from repro.harness.report import percentile_table

        db, gen = memory_populated
        collected = ResultSet()
        collected.add(
            run_operation_sequence(db, CATALOG.get("01"), gen,
                                   repetitions=3, seed=7)
        )
        table = percentile_table(collected, "memory", level=3)
        assert "p50" in table and "p99" in table
        assert "01 nameLookup" in table
        with pytest.raises(ValueError):
            percentile_table(collected, "memory", temperature="tepid")

    def test_full_report_appends_percentile_tables(self, memory_populated):
        db, gen = memory_populated
        collected = ResultSet()
        collected.add(
            run_operation_sequence(db, CATALOG.get("01"), gen,
                                   repetitions=2, seed=7)
        )
        report = full_report(collected, include_percentiles=True)
        assert "Latency percentiles" in report


class TestResetBetweenPasses:
    """The harness resets instrumentation between cold and warm passes."""

    def test_warm_spans_and_histograms_describe_the_warm_pass_only(self):
        from repro.backends.memory import MemoryDatabase
        from repro.core.config import HyperModelConfig
        from repro.core.generator import DatabaseGenerator
        from repro.obs import Instrumentation

        instr = Instrumentation(span_capacity=4096)
        db = MemoryDatabase(instrumentation=instr)
        db.open()
        gen = DatabaseGenerator(
            HyperModelConfig(levels=2, seed=8)
        ).generate(db)
        db.commit()
        repetitions = 4
        result = run_operation_sequence(db, CATALOG.get("01"), gen,
                                        repetitions=repetitions, seed=5)
        # The surviving ring only holds warm-pass (and later) spans:
        # each record postdates every cold iteration the histogram saw.
        warm_hist = instr.histograms.get("harness.iteration.warm")
        assert warm_hist is not None and len(warm_hist) == repetitions
        assert instr.histograms.get("harness.iteration.cold") is None
        assert result.cold_hist["count"] == repetitions

    def test_warm_records_never_reference_cold_sequences(self):
        # The clientserver backend opens rpc/server spans on every
        # round trip, so both passes record spans; the harness reset
        # between the passes must leave the warm ring free of any
        # cold-pass sequence number.
        from repro.backends import create_backend
        from repro.core.config import HyperModelConfig
        from repro.core.generator import DatabaseGenerator
        from repro.obs import Instrumentation

        cold_sequences = set()

        class CapturingInstrumentation(Instrumentation):
            __slots__ = ()

            def reset(self):
                cold_sequences.update(
                    r.sequence for r in self.spans.records()
                )
                super().reset()

        instr = CapturingInstrumentation(span_capacity=4096)
        db = create_backend("clientserver", None, instrumentation=instr)
        db.open()
        gen = DatabaseGenerator(
            HyperModelConfig(levels=2, seed=8)
        ).generate(db)
        db.commit()
        run_operation_sequence(db, CATALOG.get("10"), gen,
                               repetitions=3, seed=5)
        warm_records = instr.spans.records()
        assert cold_sequences, "cold pass recorded no spans"
        assert warm_records, "warm pass recorded no spans"
        ceiling = max(cold_sequences)
        for record in warm_records:
            assert record.sequence > ceiling
            assert record.sequence not in cold_sequences
            if record.parent is not None:
                assert record.parent not in cold_sequences
