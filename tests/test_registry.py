"""The backend registry and the shared exception hierarchy."""

import os
import warnings

import pytest

from repro.backends import (
    BackendSpec,
    available_backends,
    backend_specs,
    create_backend,
    get_backend_spec,
    register_backend,
    unregister_backend,
)
from repro.backends.memory import MemoryDatabase
from repro.core.interface import HyperModelDatabase
from repro.errors import (
    AccessDeniedError,
    ConfigurationError,
    DeadlockError,
    HyperModelError,
    NodeNotFoundError,
    QuerySyntaxError,
    RecordNotFoundError,
    SchemaError,
    StorageError,
    TransactionError,
)


class TestRegistry:
    def test_lists_all_backends(self):
        names = available_backends()
        for expected in ("memory", "sqlite", "oodb", "clientserver"):
            assert expected in names
        assert "oodb-unclustered" in names

    def test_creates_every_backend(self, tmp_path):
        for name in available_backends():
            path = None
            if name in ("oodb", "oodb-unclustered"):
                path = os.path.join(str(tmp_path), f"{name}.hmdb")
            elif name == "sqlite-file":
                path = os.path.join(str(tmp_path), "f.db")
            db = create_backend(name, path)
            assert isinstance(db, HyperModelDatabase)
            db.open()
            assert db.is_open
            db.close()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            create_backend("dbase-iii")

    @pytest.mark.parametrize("name", ["oodb", "oodb-unclustered", "sqlite-file"])
    def test_file_backends_require_a_path(self, name):
        with pytest.raises(ConfigurationError):
            create_backend(name, None)

    def test_unclustered_variant_disables_policy(self, tmp_path):
        with create_backend(
            "oodb-unclustered", os.path.join(str(tmp_path), "u.hmdb")
        ) as db:
            assert db.backend_name == "oodb-unclustered"
            assert not db.store.clustering.enabled


class TestRegistration:
    """The public register_backend / BackendSpec surface."""

    def _spy_factory(self, calls):
        def factory(path, **options):
            calls.append((path, options))
            return MemoryDatabase()
        return factory

    def test_register_and_create_roundtrip(self):
        calls = []
        try:
            spec = register_backend(
                "test-backend",
                self._spy_factory(calls),
                description="registry test double",
            )
            assert isinstance(spec, BackendSpec)
            assert "test-backend" in available_backends()
            assert get_backend_spec("test-backend") is spec
            assert spec in backend_specs()
            db = create_backend("test-backend", cache_pages=32)
            assert isinstance(db, HyperModelDatabase)
            assert calls == [(None, {"cache_pages": 32})]
        finally:
            unregister_backend("test-backend")
        assert "test-backend" not in available_backends()

    def test_duplicate_registration_rejected_without_replace(self):
        try:
            register_backend("test-dup", self._spy_factory([]))
            with pytest.raises(ConfigurationError, match="already registered"):
                register_backend("test-dup", self._spy_factory([]))
            # replace=True overwrites cleanly.
            replaced = register_backend(
                "test-dup", self._spy_factory([]), replace=True
            )
            assert get_backend_spec("test-dup") is replaced
        finally:
            unregister_backend("test-dup")

    def test_default_options_merge_under_caller_options(self):
        calls = []
        try:
            register_backend(
                "test-opts",
                self._spy_factory(calls),
                default_options={"clustered": False, "cache_pages": 8},
            )
            create_backend("test-opts", cache_pages=64)
            assert calls == [(None, {"clustered": False, "cache_pages": 64})]
        finally:
            unregister_backend("test-opts")

    def test_needs_path_enforced_at_create_time(self):
        try:
            register_backend(
                "test-file", self._spy_factory([]), needs_path=True
            )
            with pytest.raises(ConfigurationError, match="requires a path"):
                create_backend("test-file")
        finally:
            unregister_backend("test-file")

    def test_spec_is_immutable(self):
        spec = get_backend_spec("memory")
        with pytest.raises(Exception):
            spec.name = "other"

    def test_unknown_spec_lookup_names_the_alternatives(self):
        with pytest.raises(ConfigurationError, match="available:"):
            get_backend_spec("dbase-iii")

    def test_instrumentation_option_reaches_the_backend(self):
        from repro.obs import Instrumentation

        instr = Instrumentation()
        db = create_backend("memory", instrumentation=instr)
        assert db.instrumentation is instr


class TestDeprecatedFactories:
    def test_dict_access_warns_but_still_builds(self):
        from repro.backends.registry import _FACTORIES

        with pytest.warns(DeprecationWarning, match="_FACTORIES"):
            factory = _FACTORIES["memory"]
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # the returned factory is clean
            db = factory()
        assert isinstance(db, HyperModelDatabase)

    def test_iteration_and_len_warn(self):
        from repro.backends.registry import _FACTORIES

        with pytest.warns(DeprecationWarning):
            names = list(_FACTORIES)
        assert "memory" in names
        with pytest.warns(DeprecationWarning):
            assert len(_FACTORIES) == len(available_backends())

    def test_unknown_name_raises_key_error(self):
        from repro.backends.registry import _FACTORIES

        with pytest.warns(DeprecationWarning):
            with pytest.raises(KeyError):
                _FACTORIES["dbase-iii"]


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "error_type",
        [
            NodeNotFoundError,
            RecordNotFoundError,
            StorageError,
            TransactionError,
            DeadlockError,
            SchemaError,
            QuerySyntaxError,
            AccessDeniedError,
            ConfigurationError,
        ],
    )
    def test_everything_derives_from_the_base(self, error_type):
        assert issubclass(error_type, HyperModelError)

    def test_storage_refinements(self):
        assert issubclass(DeadlockError, TransactionError)
        assert issubclass(TransactionError, StorageError)
        assert issubclass(RecordNotFoundError, StorageError)

    def test_error_payloads(self):
        node_error = NodeNotFoundError(42)
        assert node_error.ref == 42
        assert "42" in str(node_error)

        access_error = AccessDeniedError("alice", "write", 7)
        assert (access_error.principal, access_error.action) == ("alice", "write")

        syntax_error = QuerySyntaxError("boom", position=13)
        assert syntax_error.position == 13
        assert "position 13" in str(syntax_error)


class TestStorageIoOptions:
    """The vfs/group_commit options flow through create_backend."""

    def test_vfs_option_reaches_the_engine(self, tmp_path):
        from repro.backends.registry import create_backend
        from repro.engine.vfs import FaultInjectingVFS

        vfs = FaultInjectingVFS()
        db = create_backend(
            "oodb", str(tmp_path / "vfs.hmdb"), vfs=vfs, sync_commits=True
        )
        db.open()
        db.close()
        assert vfs.mutation_ops > 0  # the engine's I/O crossed the seam

    def test_group_commit_option_reaches_the_wal(self, tmp_path):
        from repro.backends.registry import create_backend

        db = create_backend(
            "oodb",
            str(tmp_path / "gc.hmdb"),
            group_commit=True,
            group_commit_size=5,
        )
        db.open()
        assert db.store._wal.group_commit is True
        assert db.store._wal.group_commit_size == 5
        db.close()

    def test_network_error_hierarchy(self):
        from repro.errors import (
            NetworkError,
            RpcDroppedError,
            RpcExhaustedError,
            RpcTimeoutError,
        )

        for refined in (RpcDroppedError, RpcTimeoutError, RpcExhaustedError):
            assert issubclass(refined, NetworkError)
        assert issubclass(NetworkError, HyperModelError)
