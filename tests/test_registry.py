"""The backend registry and the shared exception hierarchy."""

import os

import pytest

from repro.backends import available_backends, create_backend
from repro.core.interface import HyperModelDatabase
from repro.errors import (
    AccessDeniedError,
    ConfigurationError,
    DeadlockError,
    HyperModelError,
    NodeNotFoundError,
    QuerySyntaxError,
    RecordNotFoundError,
    SchemaError,
    StorageError,
    TransactionError,
)


class TestRegistry:
    def test_lists_all_backends(self):
        names = available_backends()
        for expected in ("memory", "sqlite", "oodb", "clientserver"):
            assert expected in names
        assert "oodb-unclustered" in names

    def test_creates_every_backend(self, tmp_path):
        for name in available_backends():
            path = None
            if name in ("oodb", "oodb-unclustered"):
                path = os.path.join(str(tmp_path), f"{name}.hmdb")
            elif name == "sqlite-file":
                path = os.path.join(str(tmp_path), "f.db")
            db = create_backend(name, path)
            assert isinstance(db, HyperModelDatabase)
            db.open()
            assert db.is_open
            db.close()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            create_backend("dbase-iii")

    @pytest.mark.parametrize("name", ["oodb", "oodb-unclustered", "sqlite-file"])
    def test_file_backends_require_a_path(self, name):
        with pytest.raises(ConfigurationError):
            create_backend(name, None)

    def test_unclustered_variant_disables_policy(self, tmp_path):
        db = create_backend(
            "oodb-unclustered", os.path.join(str(tmp_path), "u.hmdb")
        )
        db.open()
        assert db.backend_name == "oodb-unclustered"
        assert not db.store.clustering.enabled
        db.close()


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "error_type",
        [
            NodeNotFoundError,
            RecordNotFoundError,
            StorageError,
            TransactionError,
            DeadlockError,
            SchemaError,
            QuerySyntaxError,
            AccessDeniedError,
            ConfigurationError,
        ],
    )
    def test_everything_derives_from_the_base(self, error_type):
        assert issubclass(error_type, HyperModelError)

    def test_storage_refinements(self):
        assert issubclass(DeadlockError, TransactionError)
        assert issubclass(TransactionError, StorageError)
        assert issubclass(RecordNotFoundError, StorageError)

    def test_error_payloads(self):
        node_error = NodeNotFoundError(42)
        assert node_error.ref == 42
        assert "42" in str(node_error)

        access_error = AccessDeniedError("alice", "write", 7)
        assert (access_error.principal, access_error.action) == ("alice", "write")

        syntax_error = QuerySyntaxError("boom", position=13)
        assert syntax_error.position == 13
        assert "position 13" in str(syntax_error)
