"""B+tree bulk loading: bottom-up builds equivalent to insert loops."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.btree import ORDER, BTree
from repro.engine.buffer import BufferPool
from repro.engine.pages import PageFile
from repro.errors import PageError


def _fresh_tree(tmp_path, name="bulk.db"):
    pf = PageFile(str(tmp_path / name))
    pool = BufferPool(pf, capacity=128)
    return BTree(pool, 0), pf


class TestBulkLoad:
    def test_small_load_single_leaf(self, tmp_path):
        tree, pf = _fresh_tree(tmp_path)
        tree.bulk_load([(1, 1, 10), (2, 2, 20), (3, 3, 30)])
        assert tree.search_unique(2) == 20
        assert list(tree.scan_all()) == [(1, 10), (2, 20), (3, 30)]
        tree.check_invariants()
        pf.close()

    def test_multi_level_load(self, tmp_path):
        tree, pf = _fresh_tree(tmp_path)
        count = ORDER * 12  # several leaves and at least two levels
        tree.bulk_load([(k, k, k * 2) for k in range(count)])
        assert len(tree) == count
        for probe in (0, 1, ORDER, count // 2, count - 1):
            assert tree.search_unique(probe) == probe * 2
        assert list(tree.scan_range(500, 520)) == [
            (k, k * 2) for k in range(500, 521)
        ]
        tree.check_invariants()
        pf.close()

    def test_lone_trailing_child_group(self, tmp_path):
        """A child count of fill+2 leaves a group of one at the next
        level; the lone child must bubble up without an empty parent."""
        tree, pf = _fresh_tree(tmp_path)
        fill = max(1, (ORDER * 9) // 10)
        count = fill * (fill + 2)  # (fill+2) leaves -> groups of fill+1, 1
        tree.bulk_load([(k, k, k) for k in range(count)])
        assert len(tree) == count
        tree.check_invariants()
        pf.close()

    def test_loaded_tree_accepts_further_inserts_and_deletes(self, tmp_path):
        tree, pf = _fresh_tree(tmp_path)
        tree.bulk_load([(k, k, k) for k in range(0, 2000, 2)])
        for key in range(1, 100, 2):
            tree.insert(key, key)
        assert tree.search_unique(51) == 51
        assert tree.delete(50, 50)
        assert tree.search_unique(50) is None
        tree.check_invariants()
        pf.close()

    def test_empty_load_is_noop(self, tmp_path):
        tree, pf = _fresh_tree(tmp_path)
        tree.bulk_load([])
        assert len(tree) == 0
        tree.insert(1, 1)
        assert tree.search_unique(1) == 1
        pf.close()

    def test_non_empty_tree_rejected(self, tmp_path):
        tree, pf = _fresh_tree(tmp_path)
        tree.insert(1, 1)
        with pytest.raises(PageError):
            tree.bulk_load([(2, 2, 2)])
        pf.close()

    def test_unsorted_input_rejected(self, tmp_path):
        tree, pf = _fresh_tree(tmp_path)
        with pytest.raises(PageError):
            tree.bulk_load([(2, 2, 2), (1, 1, 1)])
        with pytest.raises(PageError):
            tree.bulk_load([(1, 1, 1), (1, 1, 9)])  # duplicate (key, disc)
        pf.close()

    def test_duplicate_keys_distinct_discs_allowed(self, tmp_path):
        tree, pf = _fresh_tree(tmp_path)
        tree.bulk_load([(5, 1, 100), (5, 2, 200), (5, 3, 300)])
        assert tree.search(5) == [100, 200, 300]
        pf.close()


@settings(max_examples=20, deadline=None)
@given(
    keys=st.sets(st.integers(-10_000, 10_000), min_size=0, max_size=600)
)
def test_property_bulk_load_equals_insert_loop(tmp_path_factory, keys):
    """A bulk-loaded tree answers exactly like an insert-built one."""
    base = tmp_path_factory.mktemp("bulk-prop")
    ordered = sorted(keys)

    loaded, pf_a = _fresh_tree(base, "a.db")
    loaded.bulk_load([(k, k, k) for k in ordered])

    inserted, pf_b = _fresh_tree(base, "b.db")
    shuffled = list(ordered)
    random.Random(1).shuffle(shuffled)
    for key in shuffled:
        inserted.insert(key, key)

    assert list(loaded.scan_all()) == list(inserted.scan_all())
    if ordered:
        low = ordered[len(ordered) // 4]
        high = ordered[3 * len(ordered) // 4]
        assert list(loaded.scan_range(low, high)) == list(
            inserted.scan_range(low, high)
        )
    loaded.check_invariants()
    pf_a.close()
    pf_b.close()
