"""Cross-cutting property-based tests on core invariants.

These push beyond the fixed paper parameters: random levels, fan-outs
and content bounds must still satisfy the structural contract, the
counting formulas must agree with the actually-generated structures,
and random CRUD sequences against the engine must match a dictionary
reference model.
"""

import os
import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.backends.memory import MemoryDatabase
from repro.core.config import HyperModelConfig
from repro.core.generator import DatabaseGenerator
from repro.core.operations import Operations
from repro.core.verification import verify_database
from repro.engine.catalog import FieldDefinition
from repro.engine.store import ObjectStore

_small_configs = st.builds(
    HyperModelConfig,
    levels=st.integers(min_value=1, max_value=3),
    fanout=st.integers(min_value=1, max_value=5),
    parts_per_node=st.integers(min_value=0, max_value=5),
    text_nodes_per_form_node=st.integers(min_value=1, max_value=10),
    min_words=st.just(3),
    max_words=st.just(8),
    max_offset=st.integers(min_value=1, max_value=10),
    min_bitmap_dim=st.just(8),
    max_bitmap_dim=st.just(16),
    seed=st.integers(min_value=0, max_value=2**31),
)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(config=_small_configs)
def test_property_any_config_generates_a_valid_structure(config):
    """Every parameter combination yields a contract-valid database."""
    db = MemoryDatabase()
    db.open()
    gen = DatabaseGenerator(config).generate(db)
    assert gen.total_nodes == config.total_nodes
    verify_database(db, gen, content_sample=3).raise_if_failed()


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(config=_small_configs)
def test_property_closure_size_formula_matches_traversal(config):
    """closure_1n_size agrees with an actual traversal at every level."""
    db = MemoryDatabase()
    db.open()
    gen = DatabaseGenerator(config).generate(db)
    ops = Operations(db, config)
    rng = random.Random(0)
    for level in range(config.levels + 1):
        start = db.lookup(gen.random_uid_at_level(rng, level))
        assert len(ops.closure_1n(start)) == config.closure_1n_size(level)


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    config=_small_configs,
    depth=st.integers(min_value=1, max_value=30),
)
def test_property_mnatt_closure_length_equals_depth(config, depth):
    """Every node has exactly one outgoing ref, so the walk is `depth`."""
    db = MemoryDatabase()
    db.open()
    gen = DatabaseGenerator(config).generate(db)
    ops = Operations(db, config)
    start = db.lookup(gen.random_uid(random.Random(1)))
    assert len(ops.closure_mnatt(start, depth=depth)) == depth


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(config=_small_configs, x=st.integers(min_value=1, max_value=90))
def test_property_range_lookup_is_exact(config, x):
    """Range results are exactly the brute-force filtered set."""
    db = MemoryDatabase()
    db.open()
    DatabaseGenerator(config).generate(db)
    got = {id(r) for r in db.range_hundred(x, x + 9)}
    expected = {
        id(n)
        for n in db.iter_nodes()
        if x <= db.get_attribute(n, "hundred") <= x + 9
    }
    assert got == expected


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=1000),
    rounds=st.integers(min_value=1, max_value=4),
)
def test_property_att_set_applied_twice_per_round_is_identity(seed, rounds):
    """Op 12 is an involution regardless of start node and repetition."""
    config = HyperModelConfig(levels=2, seed=seed)
    db = MemoryDatabase()
    db.open()
    gen = DatabaseGenerator(config).generate(db)
    ops = Operations(db, config)
    start = db.lookup(gen.random_uid_at_level(random.Random(seed), 1))
    before = [
        db.get_attribute(n, "hundred") for n in ops.closure_1n(start)
    ]
    for _ in range(rounds):
        ops.closure_1n_att_set(start)
        ops.closure_1n_att_set(start)
    after = [db.get_attribute(n, "hundred") for n in ops.closure_1n(start)]
    assert after == before


# ----------------------------------------------------------------------
# Engine store vs a dictionary reference model
# ----------------------------------------------------------------------

_store_ops = st.lists(
    st.tuples(
        st.sampled_from(["new", "update", "delete", "commit", "abort"]),
        st.integers(min_value=0, max_value=14),  # slot in the model
        st.integers(min_value=-1000, max_value=1000),  # value payload
    ),
    max_size=40,
)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(operations=_store_ops)
def test_property_store_matches_dict_model(tmp_path_factory, operations):
    """Random new/update/delete/commit/abort agree with a dict model.

    The model tracks committed state plus a pending overlay; abort
    drops the overlay, commit merges it — mirroring the engine's
    deferred-update transactions.
    """
    base = tmp_path_factory.mktemp("store-prop")
    store = ObjectStore(os.path.join(str(base), "m.hmdb"), sync_commits=False)
    store.open()
    store.define_class("Obj", [FieldDefinition("value", default=0)])

    committed = {}
    pending = {}
    slots = {}  # model slot -> oid

    def live_view():
        view = dict(committed)
        for oid, state in pending.items():
            if state is None:
                view.pop(oid, None)
            else:
                view[oid] = state
        return view

    for op, slot, value in operations:
        if op == "new":
            oid = store.new("Obj", {"value": value})
            slots[slot] = oid
            pending[oid] = value
        elif op == "update":
            oid = slots.get(slot)
            if oid is not None and oid in live_view():
                store.update(oid, {"value": value})
                pending[oid] = value
        elif op == "delete":
            oid = slots.get(slot)
            if oid is not None and oid in live_view():
                store.delete(oid)
                pending[oid] = None
        elif op == "commit":
            store.commit()
            for oid, state in pending.items():
                if state is None:
                    committed.pop(oid, None)
                else:
                    committed[oid] = state
            pending.clear()
        elif op == "abort":
            store.abort()
            pending.clear()

    view = live_view()
    actual = {
        oid: store.get(oid)["value"] for oid in store.scan_class("Obj")
    }
    assert actual == view
    store.close()


# ----------------------------------------------------------------------
# Generator determinism as a property
# ----------------------------------------------------------------------

# ----------------------------------------------------------------------
# Histogram merge as a property
# ----------------------------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(
    partitions=st.lists(
        st.lists(
            st.floats(
                min_value=0.0,
                max_value=1e6,
                allow_nan=False,
                allow_infinity=False,
            ),
            max_size=20,
        ),
        max_size=6,
    )
)
def test_property_histogram_merge_equals_pooled_samples(partitions):
    """Merging per-client histograms == one histogram over the pool.

    This is the identity bench-multiuser relies on: it aggregates the
    fleet histogram by merging per-client histograms, and the BENCH
    document must be byte-identical to the pooled-samples baseline.
    Bucket counts add commutatively, so everything bucket-derived is
    exactly equal for any partition of the samples into clients:
    counts, zeros, the buckets themselves, the extremes, and every
    percentile (the only statistics the BENCH document publishes).
    The running ``total`` is a float sum, so it may differ in the
    last ulp with summation order — equal to relative tolerance only.
    """
    import math

    from repro.obs import LatencyHistogram

    merged = LatencyHistogram()
    for client_samples in partitions:
        merged.merge(LatencyHistogram.from_samples(client_samples))
    pooled = LatencyHistogram.from_samples(
        [value for client in partitions for value in client]
    )
    merged_dict, pooled_dict = merged.to_dict(), pooled.to_dict()
    merged_sum = merged_dict.pop("sum"), merged_dict.pop("mean", 0.0)
    pooled_sum = pooled_dict.pop("sum"), pooled_dict.pop("mean", 0.0)
    assert merged_dict == pooled_dict
    for ours, theirs in zip(merged_sum, pooled_sum):
        assert math.isclose(ours, theirs, rel_tol=1e-12, abs_tol=1e-12)
    for quantile in (0.0, 0.5, 0.9, 0.99, 1.0):
        assert merged.percentile(quantile) == pooled.percentile(quantile)
    assert (merged.minimum, merged.maximum) == (
        pooled.minimum, pooled.maximum,
    )


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_property_generation_is_seed_deterministic(seed):
    """Two runs with one seed produce byte-identical leaf content."""
    config = HyperModelConfig(levels=1, seed=seed)
    first, second = MemoryDatabase(), MemoryDatabase()
    first.open(), second.open()
    gen_a = DatabaseGenerator(config).generate(first)
    gen_b = DatabaseGenerator(config).generate(second)
    assert gen_a.text_uids == gen_b.text_uids
    for uid in gen_a.text_uids:
        assert first.get_text(first.lookup(uid)) == second.get_text(
            second.lookup(uid)
        )
