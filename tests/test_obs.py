"""The instrumentation subsystem: counters, spans, the global handle.

Three layers under test:

* counter arithmetic (inc/add/total/snapshot/delta);
* span nesting and the ring buffer's flight-recorder semantics;
* the :class:`Instrumentation` handle, the no-op singleton and the
  process-global default (enable/disable/resolve).
"""

import pytest

from repro.obs import (
    HEADLINE_COUNTERS,
    NO_OP,
    Counters,
    CounterSnapshot,
    Instrumentation,
    NoOpInstrumentation,
    SpanRecorder,
    disable,
    enable,
    get_instrumentation,
    resolve,
    set_instrumentation,
)


@pytest.fixture(autouse=True)
def _restore_global():
    """Every test leaves the process-global handle as it found it."""
    previous = get_instrumentation()
    yield
    set_instrumentation(previous)


class TestCounters:
    def test_inc_defaults_to_one_and_accumulates(self):
        counters = Counters()
        counters.inc("engine.buffer.hit")
        counters.inc("engine.buffer.hit")
        counters.inc("engine.buffer.hit", 3)
        assert counters.get("engine.buffer.hit") == 5

    def test_missing_counter_reads_zero(self):
        assert Counters().get("never.touched") == 0

    def test_add_accepts_floats_and_negatives(self):
        counters = Counters()
        counters.add("netsim.latency.injected_ms", 1.5)
        counters.add("netsim.latency.injected_ms", 2.25)
        counters.add("netsim.latency.injected_ms", -0.75)
        assert counters.get("netsim.latency.injected_ms") == 3.0

    def test_total_rolls_up_a_dotted_subtree(self):
        counters = Counters()
        counters.inc("engine.buffer.hit", 7)
        counters.inc("engine.buffer.miss", 2)
        counters.inc("engine.wal.bytes", 100)
        counters.inc("backend.rpc.round_trips", 5)
        assert counters.total("engine.buffer") == 9
        assert counters.total("engine") == 109
        assert counters.total("") == 114

    def test_total_does_not_match_name_prefixes_without_a_dot(self):
        counters = Counters()
        counters.inc("engine.buffer.hit")
        counters.inc("engine.bufferpool.hit")  # not under engine.buffer
        assert counters.total("engine.buffer") == 1

    def test_names_are_sorted_and_len_contains_work(self):
        counters = Counters()
        counters.inc("b.two")
        counters.inc("a.one")
        assert counters.names() == ("a.one", "b.two")
        assert len(counters) == 2
        assert "a.one" in counters
        assert "c.three" not in counters

    def test_reset_drops_everything(self):
        counters = Counters()
        counters.inc("x", 9)
        counters.reset()
        assert len(counters) == 0
        assert counters.get("x") == 0


class TestSnapshots:
    def test_snapshot_is_an_immutable_copy(self):
        counters = Counters()
        counters.inc("engine.buffer.hit", 4)
        snap = counters.snapshot()
        counters.inc("engine.buffer.hit", 10)
        assert snap["engine.buffer.hit"] == 4
        assert snap.get("absent") == 0
        assert dict(snap) == {"engine.buffer.hit": 4}
        assert len(snap) == 1

    def test_delta_reports_nonzero_changes_only(self):
        counters = Counters()
        counters.inc("a", 1)
        counters.inc("b", 5)
        before = counters.snapshot()
        counters.inc("a", 2)  # changed
        counters.inc("c", 7)  # born after the snapshot
        # b untouched -> must be absent from the delta
        delta = counters.snapshot().delta(before)
        assert delta == {"a": 2, "c": 7}

    def test_delta_after_reset_shows_negative_changes(self):
        counters = Counters()
        counters.inc("a", 3)
        before = counters.snapshot()
        counters.reset()
        assert counters.snapshot().delta(before) == {"a": -3}

    def test_snapshot_total_and_as_dict(self):
        snap = CounterSnapshot({"engine.wal.bytes": 64, "engine.wal.syncs": 2})
        assert snap.total("engine.wal") == 66
        assert snap.as_dict() == {"engine.wal.bytes": 64, "engine.wal.syncs": 2}


class TestSpans:
    def test_nesting_records_depth_and_parent(self):
        recorder = SpanRecorder(capacity=16)
        with recorder.span("outer"):
            with recorder.span("inner"):
                pass
        records = recorder.records()
        assert [r.name for r in records] == ["outer", "inner"]
        outer, inner = records
        assert outer.depth == 0 and outer.parent is None
        assert inner.depth == 1 and inner.parent == outer.sequence
        assert inner.duration_ms >= 0
        assert outer.duration_seconds >= inner.duration_seconds

    def test_records_are_entry_ordered_despite_exit_order(self):
        recorder = SpanRecorder(capacity=16)
        with recorder.span("a"):
            with recorder.span("b"):
                pass
            with recorder.span("c"):
                pass
        assert [r.name for r in recorder.records()] == ["a", "b", "c"]

    def test_ring_buffer_keeps_the_most_recent_spans(self):
        recorder = SpanRecorder(capacity=3)
        for index in range(7):
            with recorder.span(f"span-{index}"):
                pass
        assert len(recorder) == 3
        assert [r.name for r in recorder.records()] == [
            "span-4", "span-5", "span-6",
        ]

    def test_open_depth_and_clear(self):
        recorder = SpanRecorder(capacity=4)
        assert recorder.open_depth == 0
        with recorder.span("open"):
            assert recorder.open_depth == 1
        assert recorder.open_depth == 0
        recorder.clear()
        assert len(recorder) == 0

    def test_exception_inside_a_span_still_records_it(self):
        recorder = SpanRecorder(capacity=4)
        with pytest.raises(RuntimeError):
            with recorder.span("doomed"):
                raise RuntimeError("boom")
        assert [r.name for r in recorder.records()] == ["doomed"]
        assert recorder.open_depth == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            SpanRecorder(capacity=0)


class TestInstrumentationHandle:
    def test_count_and_span_are_wired_through(self):
        instr = Instrumentation(span_capacity=8)
        instr.count("engine.buffer.hit")
        instr.count("engine.wal.bytes", 512)
        with instr.span("store.commit"):
            pass
        assert instr.counters.get("engine.buffer.hit") == 1
        assert instr.counters.get("engine.wal.bytes") == 512
        assert [r.name for r in instr.spans.records()] == ["store.commit"]
        assert instr.enabled

    def test_snapshot_delta_since_and_reset(self):
        instr = Instrumentation()
        instr.count("a", 2)
        before = instr.snapshot()
        instr.count("a", 3)
        assert instr.delta_since(before) == {"a": 3}
        instr.reset()
        assert instr.snapshot().as_dict() == {}
        assert len(instr.spans) == 0

    def test_noop_records_nothing(self):
        NO_OP.count("engine.buffer.hit", 1000)
        with NO_OP.span("anything"):
            NO_OP.count("nested", 1)
        assert not NO_OP.enabled
        assert NO_OP.snapshot().as_dict() == {}
        assert len(NO_OP.spans) == 0

    def test_noop_span_is_a_shared_stateless_object(self):
        # The disabled hot path must not allocate per call.
        assert NO_OP.span("a") is NO_OP.span("b")

    def test_noop_is_an_instrumentation(self):
        # Components type against Instrumentation; NO_OP must satisfy it.
        assert isinstance(NO_OP, Instrumentation)
        assert isinstance(NO_OP, NoOpInstrumentation)


class TestGlobalHandle:
    def test_default_is_the_noop_singleton(self):
        disable()
        assert get_instrumentation() is NO_OP

    def test_enable_installs_a_live_handle_and_disable_restores(self):
        live = enable(span_capacity=4)
        assert get_instrumentation() is live
        assert live.enabled
        disable()
        assert get_instrumentation() is NO_OP

    def test_set_instrumentation_returns_the_previous_handle(self):
        disable()
        mine = Instrumentation()
        previous = set_instrumentation(mine)
        assert previous is NO_OP
        assert set_instrumentation(None) is mine
        assert get_instrumentation() is NO_OP

    def test_resolve_prefers_the_explicit_handle(self):
        explicit = Instrumentation()
        globally = enable()
        assert resolve(explicit) is explicit
        assert resolve(None) is globally
        disable()
        assert resolve(None) is NO_OP


class TestHeadlineCounters:
    def test_headline_counters_cover_the_acceptance_names(self):
        assert "engine.buffer.hit" in HEADLINE_COUNTERS
        assert "engine.buffer.miss" in HEADLINE_COUNTERS
        assert "backend.rpc.round_trips" in HEADLINE_COUNTERS
