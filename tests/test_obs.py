"""The instrumentation subsystem: counters, spans, the global handle.

Five layers under test:

* counter arithmetic (inc/add/total/snapshot/delta);
* span nesting and the ring buffer's flight-recorder semantics,
  including wraparound parent healing and trace-context plumbing;
* log-bucketed latency histograms and the per-handle registry;
* the :class:`Instrumentation` handle, the no-op singleton and the
  process-global default (enable/disable/resolve);
* the pinned :meth:`Instrumentation.reset` contract the cold/warm
  harness protocol builds on.
"""

import tracemalloc

import pytest

from repro.obs import (
    HEADLINE_COUNTERS,
    NO_OP,
    Counters,
    CounterSnapshot,
    HistogramRegistry,
    Instrumentation,
    LatencyHistogram,
    NoOpInstrumentation,
    SpanRecorder,
    TraceContext,
    disable,
    enable,
    get_instrumentation,
    resolve,
    set_instrumentation,
)


@pytest.fixture(autouse=True)
def _restore_global():
    """Every test leaves the process-global handle as it found it."""
    previous = get_instrumentation()
    yield
    set_instrumentation(previous)


class TestCounters:
    def test_inc_defaults_to_one_and_accumulates(self):
        counters = Counters()
        counters.inc("engine.buffer.hit")
        counters.inc("engine.buffer.hit")
        counters.inc("engine.buffer.hit", 3)
        assert counters.get("engine.buffer.hit") == 5

    def test_missing_counter_reads_zero(self):
        assert Counters().get("never.touched") == 0

    def test_add_accepts_floats_and_negatives(self):
        counters = Counters()
        counters.add("netsim.latency.injected_ms", 1.5)
        counters.add("netsim.latency.injected_ms", 2.25)
        counters.add("netsim.latency.injected_ms", -0.75)
        assert counters.get("netsim.latency.injected_ms") == 3.0

    def test_total_rolls_up_a_dotted_subtree(self):
        counters = Counters()
        counters.inc("engine.buffer.hit", 7)
        counters.inc("engine.buffer.miss", 2)
        counters.inc("engine.wal.bytes", 100)
        counters.inc("backend.rpc.round_trips", 5)
        assert counters.total("engine.buffer") == 9
        assert counters.total("engine") == 109
        assert counters.total("") == 114

    def test_total_does_not_match_name_prefixes_without_a_dot(self):
        counters = Counters()
        counters.inc("engine.buffer.hit")
        counters.inc("engine.bufferpool.hit")  # not under engine.buffer
        assert counters.total("engine.buffer") == 1

    def test_names_are_sorted_and_len_contains_work(self):
        counters = Counters()
        counters.inc("b.two")
        counters.inc("a.one")
        assert counters.names() == ("a.one", "b.two")
        assert len(counters) == 2
        assert "a.one" in counters
        assert "c.three" not in counters

    def test_reset_drops_everything(self):
        counters = Counters()
        counters.inc("x", 9)
        counters.reset()
        assert len(counters) == 0
        assert counters.get("x") == 0


class TestSnapshots:
    def test_snapshot_is_an_immutable_copy(self):
        counters = Counters()
        counters.inc("engine.buffer.hit", 4)
        snap = counters.snapshot()
        counters.inc("engine.buffer.hit", 10)
        assert snap["engine.buffer.hit"] == 4
        assert snap.get("absent") == 0
        assert dict(snap) == {"engine.buffer.hit": 4}
        assert len(snap) == 1

    def test_delta_reports_nonzero_changes_only(self):
        counters = Counters()
        counters.inc("a", 1)
        counters.inc("b", 5)
        before = counters.snapshot()
        counters.inc("a", 2)  # changed
        counters.inc("c", 7)  # born after the snapshot
        # b untouched -> must be absent from the delta
        delta = counters.snapshot().delta(before)
        assert delta == {"a": 2, "c": 7}

    def test_delta_after_reset_shows_negative_changes(self):
        counters = Counters()
        counters.inc("a", 3)
        before = counters.snapshot()
        counters.reset()
        assert counters.snapshot().delta(before) == {"a": -3}

    def test_snapshot_total_and_as_dict(self):
        snap = CounterSnapshot({"engine.wal.bytes": 64, "engine.wal.syncs": 2})
        assert snap.total("engine.wal") == 66
        assert snap.as_dict() == {"engine.wal.bytes": 64, "engine.wal.syncs": 2}


class TestSpans:
    def test_nesting_records_depth_and_parent(self):
        recorder = SpanRecorder(capacity=16)
        with recorder.span("outer"):
            with recorder.span("inner"):
                pass
        records = recorder.records()
        assert [r.name for r in records] == ["outer", "inner"]
        outer, inner = records
        assert outer.depth == 0 and outer.parent is None
        assert inner.depth == 1 and inner.parent == outer.sequence
        assert inner.duration_ms >= 0
        assert outer.duration_seconds >= inner.duration_seconds

    def test_records_are_entry_ordered_despite_exit_order(self):
        recorder = SpanRecorder(capacity=16)
        with recorder.span("a"):
            with recorder.span("b"):
                pass
            with recorder.span("c"):
                pass
        assert [r.name for r in recorder.records()] == ["a", "b", "c"]

    def test_ring_buffer_keeps_the_most_recent_spans(self):
        recorder = SpanRecorder(capacity=3)
        for index in range(7):
            with recorder.span(f"span-{index}"):
                pass
        assert len(recorder) == 3
        assert [r.name for r in recorder.records()] == [
            "span-4", "span-5", "span-6",
        ]

    def test_open_depth_and_clear(self):
        recorder = SpanRecorder(capacity=4)
        assert recorder.open_depth == 0
        with recorder.span("open"):
            assert recorder.open_depth == 1
        assert recorder.open_depth == 0
        recorder.clear()
        assert len(recorder) == 0

    def test_exception_inside_a_span_still_records_it(self):
        recorder = SpanRecorder(capacity=4)
        with pytest.raises(RuntimeError):
            with recorder.span("doomed"):
                raise RuntimeError("boom")
        assert [r.name for r in recorder.records()] == ["doomed"]
        assert recorder.open_depth == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            SpanRecorder(capacity=0)


class TestInstrumentationHandle:
    def test_count_and_span_are_wired_through(self):
        instr = Instrumentation(span_capacity=8)
        instr.count("engine.buffer.hit")
        instr.count("engine.wal.bytes", 512)
        with instr.span("store.commit"):
            pass
        assert instr.counters.get("engine.buffer.hit") == 1
        assert instr.counters.get("engine.wal.bytes") == 512
        assert [r.name for r in instr.spans.records()] == ["store.commit"]
        assert instr.enabled

    def test_snapshot_delta_since_and_reset(self):
        instr = Instrumentation()
        instr.count("a", 2)
        before = instr.snapshot()
        instr.count("a", 3)
        assert instr.delta_since(before) == {"a": 3}
        instr.reset()
        assert instr.snapshot().as_dict() == {}
        assert len(instr.spans) == 0

    def test_noop_records_nothing(self):
        NO_OP.count("engine.buffer.hit", 1000)
        with NO_OP.span("anything"):
            NO_OP.count("nested", 1)
        assert not NO_OP.enabled
        assert NO_OP.snapshot().as_dict() == {}
        assert len(NO_OP.spans) == 0

    def test_noop_span_is_a_shared_stateless_object(self):
        # The disabled hot path must not allocate per call.
        assert NO_OP.span("a") is NO_OP.span("b")

    def test_noop_is_an_instrumentation(self):
        # Components type against Instrumentation; NO_OP must satisfy it.
        assert isinstance(NO_OP, Instrumentation)
        assert isinstance(NO_OP, NoOpInstrumentation)


class TestGlobalHandle:
    def test_default_is_the_noop_singleton(self):
        disable()
        assert get_instrumentation() is NO_OP

    def test_enable_installs_a_live_handle_and_disable_restores(self):
        live = enable(span_capacity=4)
        assert get_instrumentation() is live
        assert live.enabled
        disable()
        assert get_instrumentation() is NO_OP

    def test_set_instrumentation_returns_the_previous_handle(self):
        disable()
        mine = Instrumentation()
        previous = set_instrumentation(mine)
        assert previous is NO_OP
        assert set_instrumentation(None) is mine
        assert get_instrumentation() is NO_OP

    def test_resolve_prefers_the_explicit_handle(self):
        explicit = Instrumentation()
        globally = enable()
        assert resolve(explicit) is explicit
        assert resolve(None) is globally
        disable()
        assert resolve(None) is NO_OP


class TestHeadlineCounters:
    def test_headline_counters_cover_the_acceptance_names(self):
        assert "engine.buffer.hit" in HEADLINE_COUNTERS
        assert "engine.buffer.miss" in HEADLINE_COUNTERS
        assert "backend.rpc.round_trips" in HEADLINE_COUNTERS


class TestLatencyHistogram:
    def test_empty_histogram_is_all_zeros(self):
        hist = LatencyHistogram()
        assert len(hist) == 0
        assert hist.mean == 0.0
        assert hist.percentile(0.5) == 0.0
        assert hist.summary()["count"] == 0

    def test_count_mean_min_max(self):
        hist = LatencyHistogram.from_samples([1.0, 2.0, 3.0, 10.0])
        assert len(hist) == 4
        assert hist.mean == pytest.approx(4.0)
        assert hist.minimum == 1.0
        assert hist.maximum == 10.0

    def test_percentiles_are_monotone_and_bounded(self):
        samples = [0.1 * i for i in range(1, 201)]  # 0.1 .. 20.0 ms
        hist = LatencyHistogram.from_samples(samples)
        p50 = hist.percentile(0.50)
        p90 = hist.percentile(0.90)
        p99 = hist.percentile(0.99)
        assert hist.minimum <= p50 <= p90 <= p99 <= hist.maximum
        # Log buckets are coarse, but the median of a uniform ramp
        # must land in the right half-decade.
        assert 5.0 <= p50 <= 16.0

    def test_single_sample_every_quantile_is_that_sample(self):
        hist = LatencyHistogram.from_samples([3.25])
        for q in (0.0, 0.5, 0.9, 0.99, 1.0):
            assert hist.percentile(q) == pytest.approx(3.25)

    def test_zeros_and_negatives_land_in_the_underflow_bucket(self):
        hist = LatencyHistogram.from_samples([0.0, 0.0, -1.0, 4.0])
        assert len(hist) == 4
        assert hist.zeros == 3
        # Underflow quantiles report the observed minimum, never a
        # made-up positive latency.
        assert hist.percentile(0.25) == hist.minimum == -1.0
        assert hist.maximum == 4.0

    def test_merge_equals_recording_everything_in_one(self):
        a = LatencyHistogram.from_samples([1.0, 2.0, 4.0])
        b = LatencyHistogram.from_samples([8.0, 16.0])
        a.merge(b)
        both = LatencyHistogram.from_samples([1.0, 2.0, 4.0, 8.0, 16.0])
        assert len(a) == len(both)
        assert a.summary() == both.summary()

    def test_dict_roundtrip_preserves_the_summary(self):
        hist = LatencyHistogram.from_samples([0.5, 1.5, 2.5, 100.0])
        clone = LatencyHistogram.from_dict(hist.to_dict())
        assert clone.summary() == hist.summary()
        assert list(clone.buckets()) == list(hist.buckets())

    def test_registry_observe_get_reset(self):
        registry = HistogramRegistry()
        registry.observe("backend.rpc.call", 1.0)
        registry.observe("backend.rpc.call", 3.0)
        registry.observe("engine.wal.fsync", 0.2)
        assert set(registry.names()) == {
            "backend.rpc.call", "engine.wal.fsync",
        }
        assert len(registry.get("backend.rpc.call")) == 2
        assert "engine.wal.fsync" in registry
        summaries = registry.summaries()
        assert summaries["backend.rpc.call"]["count"] == 2
        registry.reset()
        assert len(registry) == 0
        assert registry.get("backend.rpc.call") is None


class TestSpanWraparound:
    def test_dangling_parent_after_wraparound_becomes_top_level(self):
        # Simulate the post-wraparound ring state: a retained record
        # whose parent's record was evicted (and whose parent is not
        # on the open stack).  It must read as top-level, not point at
        # a sequence number the ring no longer holds — and definitely
        # not mis-nest under whatever span later reuses the slot.
        from repro.obs.spans import SpanRecord

        recorder = SpanRecorder(capacity=4)
        recorder._record(
            SpanRecord(
                name="orphan", start=0.0, end=1.0, depth=1,
                parent=99, sequence=101,
            )
        )
        recorder._record(
            SpanRecord(
                name="root", start=1.0, end=2.0, depth=0,
                parent=None, sequence=102,
            )
        )
        recorder._record(
            SpanRecord(
                name="child", start=1.2, end=1.8, depth=1,
                parent=102, sequence=103,
            )
        )
        records = recorder.records()
        assert [r.name for r in records] == ["orphan", "root", "child"]
        orphan, root, child = records
        assert orphan.parent is None  # healed: 99 was evicted
        assert child.parent == root.sequence  # intact: 102 is retained

    def test_no_record_ever_references_an_evicted_sequence(self):
        # Black-box wraparound invariant: whatever the ring evicted,
        # every surviving parent pointer resolves to a retained record
        # or an open span.
        recorder = SpanRecorder(capacity=3)
        with recorder.span("a"):
            with recorder.span("b"):
                for index in range(5):
                    with recorder.span(f"leaf-{index}"):
                        pass
        retained = {r.sequence for r in recorder.records()}
        for record in recorder.records():
            assert record.parent is None or record.parent in retained

    def test_open_parent_still_counts_as_known(self):
        # A parent that is still *open* (on the stack) is not dangling
        # even though it has no record yet.
        recorder = SpanRecorder(capacity=8)
        with recorder.span("outer") as outer:
            with recorder.span("inner"):
                pass
            records = recorder.records()
            assert records[0].name == "inner"
            assert records[0].parent == outer.sequence

    def test_remote_parent_and_trace_are_recorded(self):
        recorder = SpanRecorder(capacity=8)
        with recorder.span("server.fetch", remote_parent=41, remote_trace=7):
            pass
        record = recorder.records()[0]
        assert record.remote_parent == 41
        assert record.remote_trace == 7
        assert record.parent is None


class TestTraceContext:
    def test_current_context_reflects_the_open_span(self):
        instr = Instrumentation()
        assert instr.current_context() is None
        with instr.span("rpc.fetch") as span:
            context = instr.current_context()
            assert context == TraceContext(
                trace_id=instr.trace_id, span_id=span.sequence
            )
        assert instr.current_context() is None

    def test_trace_ids_are_unique_per_live_handle(self):
        first = Instrumentation()
        second = Instrumentation()
        assert first.trace_id != second.trace_id


class TestResetContract:
    """The pinned cold/warm contract (see docs/observability.md)."""

    def test_reset_clears_counters_histograms_and_spans(self):
        instr = Instrumentation()
        instr.count("engine.buffer.hit", 5)
        instr.observe("backend.rpc.call", 1.25)
        with instr.span("cold.work"):
            pass
        instr.reset()
        assert instr.snapshot().as_dict() == {}
        assert len(instr.histograms) == 0
        assert len(instr.spans) == 0

    def test_warm_spans_never_reference_cold_sequence_numbers(self):
        # Sequence numbers stay monotonic across reset(): every span
        # recorded *after* the reset has a sequence strictly greater
        # than every cold-pass sequence, and no warm parent/record can
        # alias a cold one.
        instr = Instrumentation(span_capacity=64)
        with instr.span("cold.outer"):
            with instr.span("cold.inner"):
                pass
        cold_sequences = {r.sequence for r in instr.spans.records()}
        instr.reset()
        with instr.span("warm.outer"):
            with instr.span("warm.inner"):
                pass
        warm = instr.spans.records()
        assert {r.name for r in warm} == {"warm.outer", "warm.inner"}
        for record in warm:
            assert record.sequence > max(cold_sequences)
            assert record.sequence not in cold_sequences
            if record.parent is not None:
                assert record.parent not in cold_sequences

    def test_reset_preserves_open_spans(self):
        instr = Instrumentation()
        with instr.span("outer"):
            instr.reset()
            assert instr.spans.open_depth == 1
        assert [r.name for r in instr.spans.records()] == ["outer"]


class TestNoOpZeroCost:
    def test_noop_observe_and_span_allocate_nothing(self):
        # The disabled hot path: histogram record + span open must not
        # allocate per call (shared singleton span, pass-through
        # observe).  tracemalloc bounds the *total* allocation of 10k
        # iterations to noise (<16 KiB), which a per-call allocation
        # of any kind would blow through.
        NO_OP.observe("backend.rpc.call", 1.0)  # warm up
        with NO_OP.span("warmup"):
            pass
        tracemalloc.start()
        try:
            before, _peak = tracemalloc.get_traced_memory()
            for _ in range(10_000):
                NO_OP.observe("backend.rpc.call", 1.0)
                with NO_OP.span("anything"):
                    pass
            after, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert after - before < 16_384
        assert peak - before < 16_384
        assert len(NO_OP.histograms) == 0
        assert len(NO_OP.spans) == 0

    def test_noop_current_context_is_none(self):
        with NO_OP.span("rpc.fetch"):
            assert NO_OP.current_context() is None
