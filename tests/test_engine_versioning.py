"""Version chains (R5): previous versions and time-point snapshots."""

import os

import pytest

from repro.engine.catalog import FieldDefinition
from repro.engine.store import ObjectStore


@pytest.fixture
def store(tmp_path):
    s = ObjectStore(
        os.path.join(str(tmp_path), "v.hmdb"),
        versioned=True,
        sync_commits=False,
    )
    s.open()
    s.define_class("Doc", [FieldDefinition("body", default="")])
    yield s
    if s.is_open:
        s.close()


class TestVersionChains:
    def test_fresh_object_has_no_history(self, store):
        oid = store.new("Doc", {"body": "v1"})
        store.commit()
        assert store.previous_version(oid) is None
        assert len(store.version_chain(oid)) == 0

    def test_update_preserves_previous_state(self, store):
        oid = store.new("Doc", {"body": "v1"})
        store.commit()
        store.update(oid, {"body": "v2"})
        store.commit()
        assert store.get(oid)["body"] == "v2"
        assert store.previous_version(oid)["body"] == "v1"

    def test_chain_grows_newest_first(self, store):
        oid = store.new("Doc", {"body": "v1"})
        store.commit()
        for body in ("v2", "v3", "v4"):
            store.update(oid, {"body": body})
            store.commit()
        chain = store.version_chain(oid).all()
        assert [v.state["body"] for v in chain] == ["v3", "v2", "v1"]
        timestamps = [v.timestamp for v in chain]
        assert timestamps == sorted(timestamps, reverse=True)

    def test_version_at_timestamp(self, store):
        oid = store.new("Doc", {"body": "v1"})
        store.commit()
        ts_v1 = store.commit_timestamp
        store.update(oid, {"body": "v2"})
        store.commit()
        ts_v2 = store.commit_timestamp
        store.update(oid, {"body": "v3"})
        store.commit()

        assert store.version_at(oid, ts_v1)["body"] == "v1"
        assert store.version_at(oid, ts_v2)["body"] == "v2"
        assert store.version_at(oid, store.commit_timestamp)["body"] == "v3"

    def test_version_before_creation_is_none(self, store):
        baseline = store.commit_timestamp
        oid = store.new("Doc", {"body": "v1"})
        store.commit()
        store.update(oid, {"body": "v2"})
        store.commit()
        assert store.version_at(oid, baseline) is None

    def test_several_updates_in_one_commit_keep_one_version(self, store):
        """Deferred updates: the write set collapses to one post-state,
        so one commit preserves exactly one pre-state."""
        oid = store.new("Doc", {"body": "v1"})
        store.commit()
        store.update(oid, {"body": "a"})
        store.update(oid, {"body": "b"})
        store.commit()
        chain = store.version_chain(oid).all()
        assert [v.state["body"] for v in chain] == ["v1"]

    def test_history_survives_reopen(self, tmp_path):
        path = os.path.join(str(tmp_path), "vp.hmdb")
        store = ObjectStore(path, versioned=True, sync_commits=False)
        store.open()
        store.define_class("Doc", [FieldDefinition("body", default="")])
        oid = store.new("Doc", {"body": "v1"})
        store.commit()
        store.update(oid, {"body": "v2"})
        store.commit()
        store.close()

        store.open()
        assert store.previous_version(oid)["body"] == "v1"
        store.close()

    def test_unversioned_store_keeps_no_history(self, tmp_path):
        store = ObjectStore(
            os.path.join(str(tmp_path), "nv.hmdb"),
            versioned=False,
            sync_commits=False,
        )
        store.open()
        store.define_class("Doc", [FieldDefinition("body", default="")])
        oid = store.new("Doc", {"body": "v1"})
        store.commit()
        store.update(oid, {"body": "v2"})
        store.commit()
        assert store.previous_version(oid) is None
        store.close()


class TestVersionedHyperModel:
    def test_previous_version_of_a_text_node(self, tmp_path):
        """The R5 extension experiment from section 6.8: retrieve the
        previous version of a node after an edit."""
        from repro.backends.oodb import OodbDatabase
        from repro.core.generator import DatabaseGenerator
        from repro.core.config import HyperModelConfig
        from repro.core.operations import Operations

        db = OodbDatabase(
            os.path.join(str(tmp_path), "vh.hmdb"), versioned=True
        )
        db.open()
        gen = DatabaseGenerator(HyperModelConfig(levels=2, seed=1)).generate(db)
        db.commit()
        uid = gen.text_uids[0]
        ref = db.lookup(uid)
        original = db.get_text(ref)
        Operations(db, gen.config).text_node_edit(ref)
        db.commit()
        assert db.get_text(ref) != original
        assert db.store.previous_version(int(ref))["text"] == original
        db.close()
