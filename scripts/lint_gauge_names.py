#!/usr/bin/env python
"""Lint: every gauge registered in ``src/`` obeys the taxonomy regex.

Walks the AST of every module under ``src/repro`` and checks the name
argument of each ``.gauge(...)`` / ``.set_gauge(...)`` call against
``repro.obs.timeseries.GAUGE_NAME_PATTERN`` (dotted lowercase
segments, e.g. ``engine.wal.backlog``).  F-strings are checked with
each interpolated ``{...}`` replaced by a valid dummy segment, so
``f"netsim.cache.{name}.occupancy"`` passes while
``f"Cache-{name}"`` fails.

Dynamic names are allowed only through a variable whose name contains
``gauge_name`` (the ``WorkstationCache._gauge_names`` idiom); the
literal parts of those assignments are linted too, so nothing escapes
the taxonomy by indirection.

Exit status: 0 when every checked name matches, 1 otherwise.  Run from
the repository root: ``PYTHONPATH=src python scripts/lint_gauge_names.py``.
"""

from __future__ import annotations

import ast
import pathlib
import re
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.obs.timeseries import GAUGE_NAME_PATTERN  # noqa: E402

_PATTERN = re.compile(GAUGE_NAME_PATTERN)
_GAUGE_CALLS = ("gauge", "set_gauge")
_SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"


def _template(node: ast.AST) -> str | None:
    """The checkable text of a string-ish node, or None if dynamic.

    F-string interpolations become the dummy segment ``x0`` — a valid
    taxonomy segment, so only the literal skeleton is judged.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        parts = []
        for value in node.values:
            if isinstance(value, ast.Constant):
                parts.append(str(value.value))
            else:
                parts.append("x0")
        return "".join(parts)
    return None


def _is_gauge_name_var(node: ast.AST) -> bool:
    """True for ``self._gauge_names[0]``-style dynamic name sources."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return "gauge_name" in node.attr
    if isinstance(node, ast.Name):
        return "gauge_name" in node.id
    return False


def lint_file(path: pathlib.Path) -> list[str]:
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    errors: list[str] = []
    rel = path.relative_to(_SRC.parent.parent)

    def check(node: ast.AST, lineno: int, context: str) -> None:
        text = _template(node)
        if text is None:
            if not _is_gauge_name_var(node):
                errors.append(
                    f"{rel}:{lineno}: {context} name is dynamic and not"
                    " a *gauge_name* variable — unlintable"
                )
            return
        if not _PATTERN.match(text):
            errors.append(
                f"{rel}:{lineno}: {context} name {text!r} does not"
                f" match {GAUGE_NAME_PATTERN}"
            )

    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _GAUGE_CALLS
                and node.args
            ):
                check(node.args[0], node.lineno, f"{func.attr}()")
        elif isinstance(node, ast.Assign):
            # Literal parts of *gauge_name* assignments are linted so
            # indirection cannot smuggle a name past the taxonomy.
            if not any(
                _is_gauge_name_var(target) for target in node.targets
            ):
                continue
            values = (
                node.value.elts
                if isinstance(node.value, (ast.Tuple, ast.List))
                else [node.value]
            )
            for value in values:
                check(value, node.lineno, "gauge-name assignment")
    return errors


def main() -> int:
    errors: list[str] = []
    checked = 0
    for path in sorted(_SRC.rglob("*.py")):
        file_errors = lint_file(path)
        errors.extend(file_errors)
        checked += 1
    if errors:
        print("\n".join(errors))
        print(f"gauge-name lint: {len(errors)} violation(s)")
        return 1
    print(f"gauge-name lint: OK ({checked} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
