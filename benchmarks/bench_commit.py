"""Commit throughput across the durability grid (docs/durability.md).

Times small committed transactions on the ``oodb`` engine over the
``sync_commits × group_commit`` grid:

* ``sync=on,  group=off``  — the safe default: one fsync per commit;
* ``sync=on,  group=on``   — group commit: one fsync per
  ``GROUP_SIZE`` commits, bounded durability relaxation;
* ``sync=off, group=off``  — no fsync at all (the benchmark-mode
  upper bound; crash durability surrendered);
* ``sync=off, group=on``   — group commit without fsyncs, isolating
  the batching bookkeeping itself.

Expected shape: with syncs on, group commit recovers most of the gap
to the no-fsync bound (the fsync dominates small commits); with syncs
off the two modes are within noise of each other.  ``extra_info``
records the measured WAL sync count per configuration so the fsync
arithmetic is visible next to the timings.
"""

import os

import pytest

from repro.engine.catalog import FieldDefinition
from repro.engine.store import ObjectStore
from repro.obs import Instrumentation

#: Commits per timed batch (and per group-commit window flush).
BATCH = 16
#: Commits folded into one fsync in group-commit mode.
GROUP_SIZE = 8

_GRID = [
    ("sync", dict(sync_commits=True, group_commit=False)),
    (
        "sync+group",
        dict(
            sync_commits=True,
            group_commit=True,
            group_commit_size=GROUP_SIZE,
        ),
    ),
    ("nosync", dict(sync_commits=False, group_commit=False)),
    (
        "nosync+group",
        dict(
            sync_commits=False,
            group_commit=True,
            group_commit_size=GROUP_SIZE,
        ),
    ),
]


@pytest.mark.benchmark(group="commit throughput (durability grid)")
@pytest.mark.parametrize("mode,options", _GRID, ids=[m for m, _ in _GRID])
def test_commit_throughput(benchmark, mode, options, tmp_path):
    instr = Instrumentation()
    store = ObjectStore(
        os.path.join(str(tmp_path), f"commit-{mode}.hmdb"),
        instrumentation=instr,
        **options,
    )
    store.open()
    store.define_class(
        "Item",
        [FieldDefinition("value", default=0), FieldDefinition("body", "")],
    )
    counter = {"n": 0}

    def commit_batch():
        for _ in range(BATCH):
            counter["n"] += 1
            store.new(
                "Item", {"value": counter["n"], "body": "x" * 128}
            )
            store.commit()

    before = instr.snapshot()
    benchmark(commit_batch)
    delta = instr.snapshot().delta(before)
    commits = delta.get("engine.store.commits", 0)
    syncs = delta.get("engine.io.syncs", 0)
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["commits"] = commits
    benchmark.extra_info["io_syncs"] = syncs
    benchmark.extra_info["syncs_per_commit"] = (
        round(syncs / commits, 3) if commits else 0.0
    )
    benchmark.extra_info["group_commit_batches"] = delta.get(
        "engine.wal.group_commit.batches", 0
    )
    store.close()


def test_group_commit_syncs_less(tmp_path):
    """The arithmetic itself: one fsync per GROUP_SIZE commits (untimed)."""

    def syncs_for(**options):
        instr = Instrumentation()
        store = ObjectStore(
            os.path.join(
                str(tmp_path), f"probe-{len(os.listdir(tmp_path))}.hmdb"
            ),
            instrumentation=instr,
            sync_commits=True,
            **options,
        )
        store.open()
        store.define_class("Item", [FieldDefinition("value", default=0)])
        before = instr.snapshot()
        for value in range(BATCH):
            store.new("Item", {"value": value})
            store.commit()
        delta = instr.snapshot().delta(before)
        store.close()
        return delta.get("engine.wal.syncs", 0)

    plain = syncs_for(group_commit=False)
    grouped = syncs_for(group_commit=True, group_commit_size=GROUP_SIZE)
    assert grouped < plain
    assert grouped == BATCH // GROUP_SIZE
