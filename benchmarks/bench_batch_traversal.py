"""T-BATCH — frontier-BFS closures over the batched navigation API.

Companion to ``hypermodel bench-closure`` (which writes
``BENCH_closure.json``): the same traversals, driven by
pytest-benchmark for interactive exploration.  Two angles:

* whole-structure closures from the *root* (the deepest traversal the
  database offers — the case the batch layer was built for), and
* the raw batch verb against its per-item equivalent on a full
  frontier, so the per-call overhead collapse is measured in
  isolation from traversal logic.

Expected shape: on the client/server backend the root closure costs
O(depth) round trips instead of O(nodes), so its simulated-latency
share collapses by roughly the tree fan-out per level; on the paged
backend the clustering-aware ``get_many`` turns per-object faults
into sequential page prefetches.
"""

import pytest

from benchmarks.conftest import make_driver
from repro.core.interface import HyperModelDatabase
from repro.core.operations import Operations


def _root(cell):
    return cell.db.lookup(cell.gen.root_uid)


def _ops(cell):
    return Operations(cell.db, cell.gen.config)


@pytest.mark.benchmark(group="op10 closure1N (root, batched)")
def test_op10_root_closure_batched(benchmark, cell):
    if not cell.db.is_open:
        cell.db.open()
    ops = _ops(cell)
    root = _root(cell)
    benchmark.extra_info["backend"] = cell.backend_name
    result = benchmark(lambda: ops.closure_1n(root))
    assert len(result) == cell.gen.total_nodes


@pytest.mark.benchmark(group="op11 closure1NAttSum (root, batched)")
def test_op11_root_attsum_batched(benchmark, cell):
    if not cell.db.is_open:
        cell.db.open()
    ops = _ops(cell)
    root = _root(cell)
    benchmark.extra_info["backend"] = cell.backend_name
    benchmark(lambda: ops.closure_1n_att_sum(root))


@pytest.mark.benchmark(group="op10 closure1N (level-3 start)")
def test_op10_level3_closure(benchmark, cell):
    driver = make_driver(cell, "10")
    benchmark.extra_info["backend"] = cell.backend_name
    benchmark(driver)


@pytest.mark.benchmark(group="children_many vs per-item children")
def test_children_many_full_frontier(benchmark, cell):
    if not cell.db.is_open:
        cell.db.open()
    db = cell.db
    refs = list(db.iter_nodes(cell.gen.structure_id))
    benchmark.extra_info["backend"] = cell.backend_name
    benchmark.extra_info["frontier"] = len(refs)
    result = benchmark(lambda: db.children_many(refs))
    assert len(result) == len(refs)


@pytest.mark.benchmark(group="children_many vs per-item children")
def test_children_per_item_full_frontier(benchmark, cell):
    if not cell.db.is_open:
        cell.db.open()
    db = cell.db
    refs = list(db.iter_nodes(cell.gen.structure_id))
    benchmark.extra_info["backend"] = cell.backend_name
    benchmark.extra_info["frontier"] = len(refs)
    result = benchmark(
        lambda: HyperModelDatabase.children_many(db, refs)
    )
    assert len(result) == len(refs)
