"""T-r12 — the ad-hoc query language's plans (requirement R12).

R12 anticipates ad-hoc queries once browsing stops scaling.  This
bench compares the executor's two plans on the same database: an
index-seeded range query versus a full-scan predicate, plus the
aggregate path.  Expected shape: on index-capable backends the range
plan examines ~selectivity x N nodes and beats the scan plan; `count`
tracks its underlying plan.
"""

import pytest

from repro.query import execute

_QUERIES = {
    "index-range": "find nodes where hundred between 10 and 19",
    "scan-filter": "find nodes where ten = 5",
    "count-indexed": "count nodes where million <= 100000",
    "ordered-top10": "find nodes where ten > 2 order by million desc limit 10",
}


@pytest.mark.benchmark(group="r12 ad-hoc queries")
@pytest.mark.parametrize("label", sorted(_QUERIES))
def test_query_plan(benchmark, cell, label):
    db = cell.db
    if not db.is_open:
        db.open()
    text = _QUERIES[label]

    result = benchmark(lambda: execute(db, text))
    benchmark.extra_info["backend"] = cell.backend_name
    benchmark.extra_info["query"] = text
    benchmark.extra_info["plan"] = result.plan
    benchmark.extra_info["matched"] = result.count
    benchmark.extra_info["examined"] = result.nodes_examined


@pytest.mark.benchmark(group="r12 plan comparison (examined nodes)")
def test_index_examines_fewer_nodes_than_scan(benchmark, cell):
    db = cell.db
    if not db.is_open:
        db.open()

    def both():
        indexed = execute(db, _QUERIES["index-range"])
        scanned = execute(db, _QUERIES["scan-filter"])
        return indexed, scanned

    indexed, scanned = benchmark.pedantic(both, rounds=1, iterations=1)
    benchmark.extra_info["backend"] = cell.backend_name
    benchmark.extra_info["indexed_examined"] = indexed.nodes_examined
    benchmark.extra_info["scanned_examined"] = scanned.nodes_examined
    assert indexed.nodes_examined < scanned.nodes_examined
