"""Benchmark suite regenerating the paper's measurement grid.

One module per table/figure group of DESIGN.md's per-experiment index;
run with ``pytest benchmarks/ --benchmark-only``.
"""
