"""T-16/T-17 — section 6.7 Editing.

Op 16 swaps the ``version1``/``version-2`` markers in a random text
node (the replacement is one character longer, forcing a size-changing
store); op 17 inverts a 25x25 rectangle at (50, 50) of one form node,
reused for every repetition per the paper's N.B.  Expected shape: 17
costs more than 16 (kilobytes of bitmap vs a few hundred bytes of
text); both dwarf pure lookups because they retrieve *and* store.
"""

import pytest

from benchmarks.conftest import make_driver


@pytest.mark.benchmark(group="op16 textNodeEdit")
def test_op16_text_node_edit(benchmark, cell):
    driver = make_driver(cell, "16")
    benchmark.extra_info["backend"] = cell.backend_name
    benchmark.extra_info["mutates"] = True
    benchmark(driver)
    cell.db.commit()


@pytest.mark.benchmark(group="op17 formNodeEdit")
def test_op17_form_node_edit(benchmark, cell):
    driver = make_driver(cell, "17")
    benchmark.extra_info["backend"] = cell.backend_name
    benchmark.extra_info["same_node_every_repetition"] = True
    benchmark(driver)
    cell.db.commit()
