"""T-create / T-size / F2-F4 — section 5.3 Database Creation.

Times a complete test-database generation (internal nodes, leaf nodes
and the three relationship types, each phase with its commit) on a
fresh database, and records the per-phase milliseconds plus the size
model's prediction in ``extra_info``.  Expected shape: leaf creation
dominates node time (text/bitmap content); the M-N-attribute phase is
the cheapest per relationship; the level-6 size estimate lands near the
paper's ~8 MB.
"""

import os

import pytest

from benchmarks.conftest import BACKENDS, LEVEL
from repro.backends.registry import create_backend
from repro.core.config import HyperModelConfig
from repro.core.generator import DatabaseGenerator

_FILE_BACKENDS = {"oodb", "oodb-unclustered", "sqlite-file"}


@pytest.mark.benchmark(group="creation (section 5.3)")
@pytest.mark.parametrize("backend", BACKENDS)
def test_database_creation(benchmark, backend, tmp_path):
    config = HyperModelConfig(levels=LEVEL)
    counter = {"n": 0}

    def build():
        counter["n"] += 1
        path = None
        if backend in _FILE_BACKENDS:
            suffix = "db" if backend == "sqlite-file" else "hmdb"
            path = os.path.join(str(tmp_path), f"c{counter['n']}.{suffix}")
        db = create_backend(backend, path)
        db.open()
        gen = DatabaseGenerator(config).generate(db)
        db.commit()
        db.close()
        return gen

    gen = benchmark.pedantic(build, rounds=1, iterations=1)
    benchmark.extra_info["backend"] = backend
    benchmark.extra_info["level"] = LEVEL
    benchmark.extra_info["total_nodes"] = gen.total_nodes
    benchmark.extra_info["estimated_size_bytes"] = config.estimated_size_bytes()
    benchmark.extra_info["per_node_ms"] = gen.stats.per_node_ms()
    benchmark.extra_info["per_relationship_ms"] = gen.stats.per_relationship_ms()


def test_size_model_matches_paper():
    """T-size: the sizing table of section 5.2 (not timed)."""
    level6 = HyperModelConfig(levels=6)
    assert level6.total_nodes == 19531
    size = level6.estimated_size_bytes()
    assert 7_000_000 < size < 10_000_000  # "around 8 MB"
    level7 = HyperModelConfig(levels=7)
    assert 4.5 < level7.estimated_size_bytes() / size < 5.5  # "increase by 5"
