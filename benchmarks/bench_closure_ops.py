"""T-11/T-12/T-13/T-18 — section 6.6 Other Closure Operations.

Derived closures over the same level-3 subtrees: attribute sum (11),
attribute set to 99-v (12, self-inverse so repetition restores the
database), million-range predicate pruning (13), and link-distance
accumulation along the attributed association (18).  Expected shape:
12 is the most expensive (it writes and maintains the hundred index);
11 and 13 cost a read per node; 18 tracks op 15 plus arithmetic.
"""

import pytest

from benchmarks.conftest import make_driver


@pytest.mark.benchmark(group="op11 closure1NAttSum")
def test_op11_closure_1n_att_sum(benchmark, cell):
    driver = make_driver(cell, "11")
    benchmark.extra_info["backend"] = cell.backend_name
    result = benchmark(driver)
    assert result > 0


@pytest.mark.benchmark(group="op12 closure1NAttSet")
def test_op12_closure_1n_att_set(benchmark, cell):
    driver = make_driver(cell, "12")
    benchmark.extra_info["backend"] = cell.backend_name
    benchmark.extra_info["mutates"] = True
    result = benchmark(driver)
    assert result >= 1
    cell.db.commit()


@pytest.mark.benchmark(group="op13 closure1NPred")
def test_op13_closure_1n_pred(benchmark, cell):
    driver = make_driver(cell, "13")
    benchmark.extra_info["backend"] = cell.backend_name
    benchmark(driver)


@pytest.mark.benchmark(group="op18 closureMNATTLinkSum")
def test_op18_closure_mnatt_linksum(benchmark, cell):
    driver = make_driver(cell, "18")
    benchmark.extra_info["backend"] = cell.backend_name
    result = benchmark(driver)
    assert len(result) == cell.gen.config.closure_depth
    assert all(distance >= 0 for _node, distance in result)
