"""Shared fixtures for the benchmark suite.

Each benchmark module regenerates one row-group of the paper's
measurement grid (see DESIGN.md's per-experiment index).  The grid is
parametrized by environment variables so the full paper-scale runs are
one shell line away:

* ``HYPERMODEL_LEVEL``    — leaf level of the test databases
  (default 4; the paper also uses 5 and 6);
* ``HYPERMODEL_BACKENDS`` — comma-separated backend list (default
  ``memory,sqlite,oodb,clientserver``).

Databases are generated once per session and reused; benchmark
functions draw fresh random inputs per batch, mirroring the paper's
"50 random inputs" protocol (pytest-benchmark controls the repetition
counts instead of a fixed 50).
"""

from __future__ import annotations

import itertools
import os
import random

import pytest

from repro.core.operations import CATALOG, Operations
from repro.harness.runner import BenchmarkRunner, RunnerConfig

LEVEL = int(os.environ.get("HYPERMODEL_LEVEL", "4"))
BACKENDS = os.environ.get(
    "HYPERMODEL_BACKENDS", "memory,sqlite,oodb,clientserver"
).split(",")

#: Inputs pre-drawn per operation benchmark (cycled through).
INPUT_POOL = 50


@pytest.fixture(scope="session")
def runner(tmp_path_factory):
    config = RunnerConfig(
        backends=list(BACKENDS),
        levels=[LEVEL],
        workdir=str(tmp_path_factory.mktemp("hypermodel-bench")),
    )
    with BenchmarkRunner(config) as runner:
        yield runner


@pytest.fixture(scope="session", params=BACKENDS)
def cell(request, runner):
    """One populated (backend, LEVEL) database, built once per session."""
    built = runner.build_cell(request.param, LEVEL)
    if not built.db.is_open:
        built.db.open()
    return built


class OperationDriver:
    """Cycles an operation over a pool of pre-drawn random inputs."""

    def __init__(self, cell, op_id: str, seed: int = 1988) -> None:
        self.cell = cell
        self.spec = CATALOG.get(op_id)
        self.ops = Operations(cell.db, cell.gen.config)
        rng = random.Random(seed)
        if self.spec.same_input_every_repetition:
            inputs = [self.spec.make_input(cell.gen, rng, cell.db)]
        else:
            inputs = [
                self.spec.make_input(cell.gen, rng, cell.db)
                for _ in range(INPUT_POOL)
            ]
        self._cycle = itertools.cycle(inputs)

    def __call__(self):
        return self.spec.run(self.ops, next(self._cycle))


def make_driver(cell, op_id: str) -> OperationDriver:
    """Build a cycling driver, ensuring the cell's database is open."""
    if not cell.db.is_open:
        cell.db.open()
    return OperationDriver(cell, op_id)


def skip_if_not_applicable(cell, op_id: str) -> None:
    """Skip op 02 on key-only backends (the paper's clause)."""
    if op_id == "02" and not cell.db.supports_object_identity:
        pytest.skip(f"{cell.backend_name}: object-identity lookup not applicable")
