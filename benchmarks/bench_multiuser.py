"""T-multiuser — the section 7 parallel-applications experiment.

"Starting up two and more HyperModel applications in parallel and
running the operations as for the single user case": N clients share
one simulated server on the discrete-event scheduler
(:class:`repro.concurrency.multiuser.MultiUserHarness`).  The read mix
measures how the centralized server bounds aggregate throughput while
per-client caches keep warm work local (R6/R7); the update load stages
the non-conflicting multi-user write workload; the transaction grid
adds the optimistic-concurrency cells behind ``repro bench-multiuser``
(abort/retry under a shared hot set).
"""

import pytest

from benchmarks.conftest import LEVEL
from repro.backends.clientserver import ClientServerDatabase
from repro.concurrency.multiuser import MultiUserHarness
from repro.core.config import HyperModelConfig
from repro.core.generator import DatabaseGenerator
from repro.netsim.server import ObjectServer


@pytest.fixture(scope="module")
def shared_server():
    server = ObjectServer()
    loader = ClientServerDatabase(server=server)
    loader.open()
    config = HyperModelConfig(levels=min(LEVEL, 4))
    gen = DatabaseGenerator(config).generate(loader)
    loader.commit()
    loader.close()
    return server, gen


@pytest.mark.benchmark(group="multiuser read load (section 7)")
@pytest.mark.parametrize("users", [1, 2, 4, 8])
def test_parallel_read_load(benchmark, shared_server, users):
    server, gen = shared_server
    harness = MultiUserHarness(server, gen, users=users, seed=1989)

    def load():
        return harness.run_read_mix(operations_per_user=25)

    result = benchmark.pedantic(load, rounds=3, iterations=1)
    benchmark.extra_info["users"] = users
    benchmark.extra_info["server_seconds"] = result.server_seconds
    benchmark.extra_info["aggregate_ops_per_second"] = (
        result.aggregate_ops_per_second
    )
    benchmark.extra_info["cache_hit_ratios"] = result.per_user_cache_hit_ratio
    assert result.total_operations == users * 25


@pytest.mark.benchmark(group="multiuser disjoint updates (section 7)")
@pytest.mark.parametrize("users", [2, 4])
def test_parallel_update_load(benchmark, shared_server, users):
    server, gen = shared_server
    state = {"round": 0}

    def load():
        # Alternate forward/backward edit rounds so the database ends
        # each pair of rounds in its original state.
        state["round"] += 1
        harness = MultiUserHarness(
            server, gen, users=users, seed=1990 + state["round"] % 2
        )
        return harness.run_disjoint_updates(edits_per_user=2)

    result = benchmark.pedantic(load, rounds=2, iterations=1)
    benchmark.extra_info["users"] = users
    benchmark.extra_info["total_edits"] = result.total_edits
    assert result.all_edits_visible_everywhere


@pytest.mark.benchmark(group="multiuser optimistic transactions")
@pytest.mark.parametrize("users,conflict", [(2, 0.0), (8, 0.0), (8, 0.5)])
def test_transaction_grid(benchmark, shared_server, users, conflict):
    server, gen = shared_server

    def load():
        harness = MultiUserHarness(server, gen, users=users, seed=1989)
        return harness.run_transactions(
            transactions_per_user=4, conflict_rate=conflict
        )

    result = benchmark.pedantic(load, rounds=2, iterations=1)
    benchmark.extra_info["users"] = users
    benchmark.extra_info["conflict_rate"] = conflict
    benchmark.extra_info["throughput_per_s"] = result.throughput_per_second
    benchmark.extra_info["abort_rate"] = result.abort_rate
    assert result.committed + result.giveups == users * 4
    if conflict == 0.0:
        assert result.aborted == 0
