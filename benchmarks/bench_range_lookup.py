"""T-03/T-04 — section 6.2 Range Lookup.

Op 03 probes ``hundred`` with 10% selectivity; op 04 probes ``million``
with 1% selectivity.  Both may use indexes (sqlite B-trees, the
engine's B+trees); expected shape: the 1% query returns ~10x fewer
nodes but is not 10x cheaper (per-query overhead), and indexed backends
beat the memory backend's linear scan per *examined* node at scale.
"""

import pytest

from benchmarks.conftest import make_driver


@pytest.mark.benchmark(group="op03 rangeLookupHundred")
def test_op03_range_lookup_hundred(benchmark, cell):
    driver = make_driver(cell, "03")
    benchmark.extra_info["backend"] = cell.backend_name
    benchmark.extra_info["selectivity"] = "10%"
    result = benchmark(driver)
    assert result  # ~10% of the structure


@pytest.mark.benchmark(group="op04 rangeLookupMillion")
def test_op04_range_lookup_million(benchmark, cell):
    driver = make_driver(cell, "04")
    benchmark.extra_info["backend"] = cell.backend_name
    benchmark.extra_info["selectivity"] = "1%"
    benchmark(driver)
