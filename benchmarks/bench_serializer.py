"""T-SER — the serializer's encode/decode hot path in isolation.

The closure traversals spend most of their engine time decoding object
records (the cold-pass profile in ``docs/performance.md``), so this
microbench pins the serializer's own cost per payload shape:

* a HyperModel node record (the hot-path payload: small ints, child
  lists, a text attribute) — encode, decode from bytes, and decode
  from a ``memoryview`` (the zero-copy slotted-page path);
* a form record with a large byte blob (the overflow-chain payload);
* a deeply nested value, exercising the iterative decoder's explicit
  stack against the recursion the encoder still uses.

Run with ``pytest benchmarks/bench_serializer.py --benchmark-only``.
"""

import pytest

from repro.engine.serializer import decode, decode_view, encode

#: A level-4 node record as the store actually serializes one: catalog
#: envelope around the HyperModel state (five children, back-refs, the
#: ten-word text attribute).
NODE_RECORD = {
    "c": 1,
    "v": 1,
    "s": {
        "uniqueId": 4021,
        "ten": 7,
        "hundred": 42,
        "thousand": 421,
        "million": 98765,
        "text": "version1 " * 10,
        "children": [4101, 4102, 4103, 4104, 4105],
        "partOf": [4004],
        "refTo": [311, 1422, 2933],
        "refFrom": [17, 208],
    },
    "p": 0,
    "ts": 12,
}

#: A form node: the 400x400 bitmap dominates (overflow-chain payload).
FORM_RECORD = {
    "c": 2,
    "v": 1,
    "s": {"uniqueId": 90001, "bitMap": b"\x5a" * 20_000},
    "p": 0,
    "ts": 3,
}


def _nested(depth: int):
    value = {"leaf": [1, 2.5, "end"]}
    for _ in range(depth):
        value = {"child": [value]}
    return value


NESTED_VALUE = _nested(400)


@pytest.mark.benchmark(group="serializer encode")
def test_encode_node_record(benchmark):
    benchmark(encode, NODE_RECORD)


@pytest.mark.benchmark(group="serializer decode")
def test_decode_node_record_bytes(benchmark):
    blob = encode(NODE_RECORD)
    assert benchmark(decode, blob) == NODE_RECORD


@pytest.mark.benchmark(group="serializer decode")
def test_decode_node_record_view(benchmark):
    """The zero-copy path: decode straight out of a page-like buffer."""
    page = bytearray(b"\x00" * 64 + encode(NODE_RECORD) + b"\x00" * 64)
    view = memoryview(page)[64:-64]
    assert benchmark(decode_view, view) == NODE_RECORD


@pytest.mark.benchmark(group="serializer decode")
def test_decode_many_node_records(benchmark):
    """A closure frontier's worth of decodes (125 node records)."""
    blobs = [encode(NODE_RECORD) for _ in range(125)]

    def run():
        for blob in blobs:
            decode(blob)

    benchmark(run)


@pytest.mark.benchmark(group="serializer blob")
def test_decode_form_record(benchmark):
    blob = encode(FORM_RECORD)
    assert benchmark(decode, blob)["s"]["bitMap"] == FORM_RECORD["s"]["bitMap"]


@pytest.mark.benchmark(group="serializer nesting")
def test_decode_deeply_nested(benchmark):
    blob = encode(NESTED_VALUE)
    benchmark(decode, blob)
