"""A-cluster — the section 5.2 clustering ablation.

The paper: "a notion of complex objects based on an aggregation-
relationship [could] allow for clustering of data, which would make
transitive closure operations perform more efficiently", and clustering
"should be done along the 1-N relationship-hierarchy".

This ablation runs ``closure1N`` cold on the paged OODB with the
clustering policy on and off and records the physical locality
(distinct pages per level-2 subtree).  Expected shape: clustered
subtrees span fewer pages and the cold closure faults fewer pages, so
clustered <= unclustered; and on the clustered arm ``closure1N`` does
not lose to ``closureMN`` (the paper's stated hypothesis).
"""

import os
import random

import pytest

from benchmarks.conftest import LEVEL
from repro.backends.oodb import OodbDatabase
from repro.core.config import HyperModelConfig
from repro.core.generator import DatabaseGenerator
from repro.core.operations import Operations


@pytest.fixture(scope="module", params=[True, False], ids=["clustered", "unclustered"])
def ablation_cell(request, tmp_path_factory):
    clustered = request.param
    base = tmp_path_factory.mktemp("cluster-ablation")
    db = OodbDatabase(
        os.path.join(str(base), f"{'c' if clustered else 'u'}.hmdb"),
        clustered=clustered,
        cache_pages=64,  # small pool so faults matter
    )
    db.open()
    config = HyperModelConfig(levels=LEVEL)
    gen = DatabaseGenerator(config).generate(db)
    db.commit()
    yield db, gen, clustered
    db.close()


@pytest.mark.benchmark(group="ablation closure1N cold (clustered vs not)")
def test_cold_closure_1n(benchmark, ablation_cell):
    db, gen, clustered = ablation_cell
    rng = random.Random(5)
    start_level = min(3, gen.config.levels - 1) - 1  # one above: 31 nodes
    start_level = max(start_level, 1)
    uids = [gen.random_uid_at_level(rng, start_level) for _ in range(30)]
    uid_cycle = iter(uids * 1000)
    ops = Operations(db, gen.config)

    def cold_closure():
        db.drop_cache()  # every round starts cold
        return ops.closure_1n(db.lookup(next(uid_cycle)))

    result = benchmark(cold_closure)
    pages = {db.store.page_of(int(ref)) for ref in result}
    benchmark.extra_info["clustered"] = clustered
    benchmark.extra_info["distinct_pages_last_subtree"] = len(pages)
    benchmark.extra_info["subtree_nodes"] = len(result)


@pytest.mark.benchmark(group="ablation closureMN cold (vs closure1N)")
def test_cold_closure_mn(benchmark, ablation_cell):
    """The paper's hypothesis: clustered closure1N beats closureMN
    when cold, because M-N parts jump to random next-level nodes while
    the 1-N subtree sits on few pages."""
    db, gen, clustered = ablation_cell
    rng = random.Random(5)
    start_level = max(min(3, gen.config.levels - 1) - 1, 1)
    uids = [gen.random_uid_at_level(rng, start_level) for _ in range(30)]
    uid_cycle = iter(uids * 1000)
    ops = Operations(db, gen.config)

    def cold_closure():
        db.drop_cache()
        return ops.closure_mn(db.lookup(next(uid_cycle)))

    result = benchmark(cold_closure)
    pages = {db.store.page_of(int(ref)) for ref in result}
    benchmark.extra_info["clustered"] = clustered
    benchmark.extra_info["distinct_pages_last_subtree"] = len(pages)
    benchmark.extra_info["subtree_nodes"] = len(result)


@pytest.mark.benchmark(group="ablation locality metric")
def test_subtree_page_spread(benchmark, ablation_cell):
    db, gen, clustered = ablation_cell
    rng = random.Random(9)
    ops = Operations(db, gen.config)
    level = max(min(3, gen.config.levels - 1) - 1, 1)

    def average_spread():
        spreads = []
        for _ in range(10):
            start = db.lookup(gen.random_uid_at_level(rng, level))
            closure = ops.closure_1n(start)
            spreads.append(len({db.store.page_of(int(r)) for r in closure}))
        return sum(spreads) / len(spreads)

    spread = benchmark.pedantic(average_spread, rounds=1, iterations=1)
    benchmark.extra_info["clustered"] = clustered
    benchmark.extra_info["avg_distinct_pages_per_subtree"] = spread
