"""T-05A/T-05B/T-06 — section 6.3 Group Lookup (forward traversal).

Op 05A reads the ordered children (clustering may help), op 05B the
M-N parts, op 06 the single attributed reference.  Expected shape: all
three are one-object-fault operations; 05A vs 05B exposes any ordered
vs unordered representation gap.
"""

import pytest

from benchmarks.conftest import make_driver


@pytest.mark.benchmark(group="op05A groupLookup1N")
def test_op05a_group_lookup_1n(benchmark, cell):
    driver = make_driver(cell, "05A")
    benchmark.extra_info["backend"] = cell.backend_name
    result = benchmark(driver)
    assert len(result) == cell.gen.config.fanout


@pytest.mark.benchmark(group="op05B groupLookupMN")
def test_op05b_group_lookup_mn(benchmark, cell):
    driver = make_driver(cell, "05B")
    benchmark.extra_info["backend"] = cell.backend_name
    result = benchmark(driver)
    assert len(result) == cell.gen.config.parts_per_node


@pytest.mark.benchmark(group="op06 groupLookupMNATT")
def test_op06_group_lookup_mnatt(benchmark, cell):
    driver = make_driver(cell, "06")
    benchmark.extra_info["backend"] = cell.backend_name
    result = benchmark(driver)
    assert len(result) == 1
