"""T-01/T-02 — section 6.1 Name Lookup.

Op 01 resolves a uniqueId key (index path) and returns the node's
``hundred``; op 02 starts from an object reference (OID path) where the
backend has one.  Expected shape: memory fastest; OID lookup no slower
than key lookup; client/server pays a round trip on cache misses.
"""

import pytest

from benchmarks.conftest import make_driver, skip_if_not_applicable


@pytest.mark.benchmark(group="op01 nameLookup")
def test_op01_name_lookup(benchmark, cell):
    driver = make_driver(cell, "01")
    benchmark.extra_info["backend"] = cell.backend_name
    benchmark.extra_info["level"] = cell.level
    result = benchmark(driver)
    assert 1 <= result <= 100  # a hundred-attribute value


@pytest.mark.benchmark(group="op02 nameOIDLookup")
def test_op02_name_oid_lookup(benchmark, cell):
    skip_if_not_applicable(cell, "02")
    driver = make_driver(cell, "02")
    benchmark.extra_info["backend"] = cell.backend_name
    result = benchmark(driver)
    assert 1 <= result <= 100
