"""T-07A/T-07B/T-08 — section 6.4 Reference Lookup (inverse traversal).

The inverses of the group lookups: parent, part-of, referenced-by.
Expected shape: comparable to the forward direction for backends that
materialize both ends (memory, oodb, clientserver); the relational
backend answers 07B/08 from the join-table's secondary index.
"""

import pytest

from benchmarks.conftest import make_driver


@pytest.mark.benchmark(group="op07A refLookup1N")
def test_op07a_ref_lookup_1n(benchmark, cell):
    driver = make_driver(cell, "07A")
    benchmark.extra_info["backend"] = cell.backend_name
    result = benchmark(driver)
    assert len(result) == 1  # inputs exclude the root


@pytest.mark.benchmark(group="op07B refLookupMN")
def test_op07b_ref_lookup_mn(benchmark, cell):
    driver = make_driver(cell, "07B")
    benchmark.extra_info["backend"] = cell.backend_name
    benchmark(driver)


@pytest.mark.benchmark(group="op08 refLookupMNATT")
def test_op08_ref_lookup_mnatt(benchmark, cell):
    driver = make_driver(cell, "08")
    benchmark.extra_info["backend"] = cell.backend_name
    benchmark(driver)  # possibly empty, per the paper
