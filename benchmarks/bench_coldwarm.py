"""T-coldwarm — the section 5.3(b)/(d) cold vs warm effect.

Runs the paper's full cold/warm protocol (open, 50 cold, commit, 50
warm, close) for a representative operation slice and reports the warm
speedup per backend.  Expected shape: the client/server backend shows
the largest cold/warm gap (network fetches vs workstation-cache hits);
the memory backend shows none (it has no cold state); the OODB sits in
between (page faults vs buffer-pool hits).
"""

import pytest

from repro.core.operations import CATALOG
from repro.harness.protocol import run_operation_sequence

#: One representative per category with per-node normalization.
_REPRESENTATIVE_OPS = ["01", "05A", "10", "15"]


@pytest.mark.benchmark(group="cold/warm protocol (section 5.3)")
@pytest.mark.parametrize("op_id", _REPRESENTATIVE_OPS)
def test_cold_warm_protocol(benchmark, cell, op_id):
    if op_id == "02" and not cell.db.supports_object_identity:
        pytest.skip("not applicable")
    spec = CATALOG.get(op_id)

    def sequence():
        return run_operation_sequence(
            cell.db, spec, cell.gen, repetitions=50, seed=77
        )

    result = benchmark.pedantic(sequence, rounds=1, iterations=1)
    cell.db.open()  # the protocol closes the database; restore for peers
    benchmark.extra_info["backend"] = cell.backend_name
    benchmark.extra_info["op"] = f"{result.op_id} {result.op_name}"
    benchmark.extra_info["cold_ms_per_node"] = result.cold.mean
    benchmark.extra_info["warm_ms_per_node"] = result.warm.mean
    benchmark.extra_info["warm_speedup"] = result.warm_speedup
    benchmark.extra_info["commit_seconds"] = result.commit_seconds
    assert result.cold.count == 50
    assert result.warm.count == 50
