"""X-ext — section 6.8 Possible Extensions to the Operation Set.

The three extension experiments the paper sketches:

1. **Schema modification (R4)** — add a ``DrawNode`` type and add an
   attribute to an existing type; both must be O(1) in the extent size
   (the engine upgrades objects lazily on read).
2. **Versions (R5)** — create a new version of a node by editing it,
   then retrieve the previous version and a time-point snapshot.
3. **Access control (R11)** — set a document read-only for the public
   and measure the per-operation checking overhead.
"""

import os
import random

import pytest

from benchmarks.conftest import LEVEL
from repro.access import PUBLIC, AccessController, GuardedDatabase, Permission
from repro.backends.oodb import OodbDatabase
from repro.core.config import HyperModelConfig
from repro.core.generator import DatabaseGenerator
from repro.core.operations import Operations
from repro.engine.catalog import FieldDefinition


@pytest.fixture(scope="module")
def versioned_db(tmp_path_factory):
    base = tmp_path_factory.mktemp("ext")
    db = OodbDatabase(os.path.join(str(base), "ext.hmdb"), versioned=True)
    db.open()
    gen = DatabaseGenerator(HyperModelConfig(levels=min(LEVEL, 3))).generate(db)
    db.commit()
    yield db, gen
    db.close()


@pytest.mark.benchmark(group="ext1 schema modification (R4)")
def test_add_draw_node_class(benchmark, tmp_path):
    """Adding a subclass must not touch the existing extent."""
    db = OodbDatabase(os.path.join(str(tmp_path), "schema.hmdb"))
    db.open()
    DatabaseGenerator(HyperModelConfig(levels=2)).generate(db)
    db.commit()
    counter = {"n": 0}

    def add_class():
        counter["n"] += 1
        db.store.define_class(
            f"DrawNode{counter['n']}",
            [
                FieldDefinition("circles", default=0),
                FieldDefinition("rectangles", default=0),
                FieldDefinition("ellipses", default=0),
            ],
            base="Node",
        )

    benchmark.pedantic(add_class, rounds=5, iterations=1)
    db.close()


@pytest.mark.benchmark(group="ext1 add attribute (R4)")
def test_add_attribute_to_existing_type(benchmark, tmp_path):
    """Adding a field is lazy: old objects upgrade on first read."""
    db = OodbDatabase(os.path.join(str(tmp_path), "attr.hmdb"))
    db.open()
    gen = DatabaseGenerator(HyperModelConfig(levels=2)).generate(db)
    db.commit()
    counter = {"n": 0}

    def add_field():
        counter["n"] += 1
        db.store.add_field(
            "TextNode", FieldDefinition(f"lang{counter['n']}", default="en")
        )

    benchmark.pedantic(add_field, rounds=5, iterations=1)
    # Lazy upgrade: an object written before the change has the default.
    state = db.store.get(int(db.lookup(gen.text_uids[0])))
    assert state["lang1"] == "en"
    db.close()


@pytest.mark.benchmark(group="ext2 versions (R5)")
def test_edit_then_retrieve_previous_version(benchmark, versioned_db):
    db, gen = versioned_db
    ops = Operations(db, gen.config)
    rng = random.Random(3)
    uids = [gen.random_text_uid(rng) for _ in range(20)]
    state = {"i": 0}

    def edit_and_fetch_previous():
        uid = uids[state["i"] % len(uids)]
        state["i"] += 1
        ref = db.lookup(uid)
        ops.text_node_edit(ref)
        db.commit()
        return db.store.previous_version(int(ref))

    previous = benchmark(edit_and_fetch_previous)
    assert previous is not None and "text" in previous


@pytest.mark.benchmark(group="ext2 snapshot at time-point (R5)")
def test_version_at_time_point(benchmark, versioned_db):
    db, gen = versioned_db
    uid = gen.text_uids[-1]
    ref = db.lookup(uid)
    snapshot_ts = db.store.commit_timestamp
    original = db.get_text(ref)
    ops = Operations(db, gen.config)
    for _ in range(4):
        ops.text_node_edit(ref)
        db.commit()

    result = benchmark(lambda: db.store.version_at(int(ref), snapshot_ts))
    assert result["text"] == original


@pytest.mark.benchmark(group="ext3 access control overhead (R11)")
@pytest.mark.parametrize("guard", [False, True], ids=["bare", "guarded"])
def test_access_check_overhead(benchmark, guard, tmp_path):
    from repro.backends.memory import MemoryDatabase

    inner = MemoryDatabase()
    inner.open()
    gen = DatabaseGenerator(HyperModelConfig(levels=3)).generate(inner)
    db = inner
    if guard:
        controller = AccessController(inner)
        doc = inner.children(inner.lookup(gen.root_uid))[0]
        controller.set_policy(
            inner.get_attribute(doc, "uniqueId"), PUBLIC, Permission.READ
        )
        db = GuardedDatabase(inner, controller, principal="reader")
    ops = Operations(db, gen.config)
    rng = random.Random(8)
    starts = [
        db.lookup(gen.random_uid_at_level(rng, 2)) for _ in range(20)
    ]
    import itertools

    cycle = itertools.cycle(starts)
    benchmark.extra_info["guarded"] = guard
    benchmark(lambda: ops.closure_1n(next(cycle)))
