"""T-arch — the R7 architecture sweep (section 3.2).

R7: an interactive application needs 100-10,000 objects/second at ~100
bytes per object, which "could mean that parts of the database have to
be cached/checked-out to main memory in the workstations".  The sweep
runs a cold and a warm ``closure1N`` on the client/server backend under
three latency profiles (1990 LAN, modern LAN, WAN) and reports the
achieved objects/second.  Expected shape: no profile reaches the 10k/s
ceiling uncached over per-object round trips except the modern LAN; the
warm (cached) runs exceed it everywhere — the cache is the answer, as
R7 predicts.
"""

import random

import pytest

from benchmarks.conftest import LEVEL
from repro.backends.clientserver import ClientServerDatabase
from repro.core.config import HyperModelConfig
from repro.core.generator import DatabaseGenerator
from repro.core.operations import Operations
from repro.netsim.config import NetworkConfig
from repro.netsim.profiles import PROFILES, assess_r7


@pytest.fixture(scope="module", params=sorted(PROFILES))
def profiled_client(request):
    name = request.param
    db = ClientServerDatabase(network=NetworkConfig(latency=PROFILES[name]))
    db.open()
    config = HyperModelConfig(levels=min(LEVEL, 4))
    gen = DatabaseGenerator(config).generate(db)
    db.commit()
    return name, db, gen


@pytest.mark.benchmark(group="latency sweep: cold closure1N (R7)")
def test_cold_closure_under_profile(benchmark, profiled_client):
    name, db, gen = profiled_client
    ops = Operations(db, gen.config)
    rng = random.Random(31)
    level = min(3, gen.config.levels - 1)
    uids = [gen.random_uid_at_level(rng, level) for _ in range(30)]
    cycle = iter(uids * 10_000)
    clock = db.simulated_clock

    def cold_closure():
        db.cache.clear()  # force the faults
        before = clock.now
        result = ops.closure_1n(db.lookup(next(cycle)))
        return len(result), clock.now - before

    (nodes, sim_seconds) = benchmark(cold_closure)
    assessment = assess_r7(name, PROFILES[name])
    benchmark.extra_info["profile"] = name
    benchmark.extra_info["simulated_seconds_per_closure"] = sim_seconds
    benchmark.extra_info["objects_per_second_cold"] = (
        nodes / sim_seconds if sim_seconds else float("inf")
    )
    benchmark.extra_info["uncached_model_objects_per_second"] = (
        assessment.uncached_objects_per_second
    )
    benchmark.extra_info["cache_required_for_r7"] = assessment.cache_required


@pytest.mark.benchmark(group="latency sweep: warm closure1N (R7)")
def test_warm_closure_under_profile(benchmark, profiled_client):
    name, db, gen = profiled_client
    ops = Operations(db, gen.config)
    rng = random.Random(32)
    level = min(3, gen.config.levels - 1)
    start = db.lookup(gen.random_uid_at_level(rng, level))
    ops.closure_1n(start)  # warm the cache once
    clock = db.simulated_clock

    def warm_closure():
        before = clock.now
        result = ops.closure_1n(start)
        assert clock.now == before  # fully cached: zero network time
        return result

    benchmark(warm_closure)
    benchmark.extra_info["profile"] = name
    benchmark.extra_info["network_seconds"] = 0.0
