"""T-09 — section 6.4.1 Sequential Scan.

Every node of the test structure is visited and its ``ten`` read,
without using the global class extent (the structure tag filters).
Expected shape: cheapest per node of all operations; the relational
backend's single-cursor scan wins per node, the OODB pays per-object
decode cost, the client/server backend pays one fetch per uncached
node.
"""

import pytest

from benchmarks.conftest import make_driver


@pytest.mark.benchmark(group="op09 seqScan")
def test_op09_seq_scan(benchmark, cell):
    driver = make_driver(cell, "09")
    benchmark.extra_info["backend"] = cell.backend_name
    benchmark.extra_info["nodes"] = cell.gen.total_nodes
    result = benchmark(driver)
    assert result == cell.gen.total_nodes
