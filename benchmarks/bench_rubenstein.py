"""T-rube — the /RUBE87/ baseline (section 4).

The seven simple operations the HyperModel incorporates, on the
Person/Document model, for both the in-memory and the relational
implementation.  Expected shape: the same ordering the original paper
reports — name lookup cheapest, sequential scan most expensive in
total, record insert dominated by commit cost.
"""

import itertools
import random

import pytest

from repro.rubenstein import (
    MemorySimpleDatabase,
    SimpleGenerator,
    SimpleOperations,
    SqliteSimpleDatabase,
)
from repro.rubenstein.generator import BIRTH_RANGE
from repro.rubenstein.operations import RANGE_WIDTH


@pytest.fixture(scope="module", params=["memory", "sqlite"])
def simple(request, tmp_path_factory):
    if request.param == "memory":
        db = MemorySimpleDatabase()
    else:
        base = tmp_path_factory.mktemp("rube")
        db = SqliteSimpleDatabase(str(base / "rube.db"))
    db.open()
    info = SimpleGenerator(persons=1000, documents=1000).generate(db)
    yield SimpleOperations(db, info), db, info
    db.close()


def _id_cycle(info, picker, count=50, seed=4):
    rng = random.Random(seed)
    return itertools.cycle([picker(rng) for _ in range(count)])


@pytest.mark.benchmark(group="rube87 op1 nameLookup")
def test_rube_name_lookup(benchmark, simple):
    ops, db, info = simple
    ids = _id_cycle(info, info.random_person_id)
    benchmark.extra_info["backend"] = db.backend_name
    benchmark(lambda: ops.name_lookup(next(ids)))


@pytest.mark.benchmark(group="rube87 op2 rangeLookup")
def test_rube_range_lookup(benchmark, simple):
    ops, db, info = simple
    rng = random.Random(5)
    lows = itertools.cycle(
        [rng.randint(1, BIRTH_RANGE[1] - RANGE_WIDTH + 1) for _ in range(50)]
    )
    benchmark.extra_info["backend"] = db.backend_name
    benchmark(lambda: ops.range_lookup(next(lows)))


@pytest.mark.benchmark(group="rube87 op3 groupLookup")
def test_rube_group_lookup(benchmark, simple):
    ops, db, info = simple
    ids = _id_cycle(info, info.random_person_id)
    benchmark.extra_info["backend"] = db.backend_name
    benchmark(lambda: ops.group_lookup(next(ids)))


@pytest.mark.benchmark(group="rube87 op4 referenceLookup")
def test_rube_reference_lookup(benchmark, simple):
    ops, db, info = simple
    ids = _id_cycle(info, info.random_document_id)
    benchmark.extra_info["backend"] = db.backend_name
    benchmark(lambda: ops.reference_lookup(next(ids)))


@pytest.mark.benchmark(group="rube87 op5 recordInsert")
def test_rube_record_insert(benchmark, simple):
    ops, db, info = simple
    rng = random.Random(6)
    benchmark.extra_info["backend"] = db.backend_name
    before = ops._insert_id
    benchmark(lambda: ops.record_insert(rng))
    for probe in range(before + 1, ops._insert_id + 1):
        db.delete_person(probe)
    db.commit()


@pytest.mark.benchmark(group="rube87 op6 sequentialScan")
def test_rube_sequential_scan(benchmark, simple):
    ops, db, _info = simple
    benchmark.extra_info["backend"] = db.backend_name
    result = benchmark(ops.sequential_scan)
    assert result == 1000


@pytest.mark.benchmark(group="rube87 op7 databaseOpen")
def test_rube_database_open(benchmark, simple):
    ops, db, _info = simple
    benchmark.extra_info["backend"] = db.backend_name
    benchmark(ops.database_open)
    if not db.is_open:
        db.open()
