"""T-10/T-14/T-15 — section 6.5 Closure Traversals.

From a random level-3 node: op 10 walks the 1-N aggregation to the
leaves in pre-order, op 14 walks the M-N aggregation, op 15 follows the
attributed association to depth 25.  Expected shape (the paper's
stated hypothesis): with clustering along 1-N, ``closure1N`` is at
least as fast as ``closureMN`` on the paged backend; both touch the
paper's 6/31/156 nodes depending on the level.
"""

import pytest

from benchmarks.conftest import make_driver


def _expected_closure_size(cell):
    config = cell.gen.config
    return config.closure_1n_size(min(3, config.levels - 1))


@pytest.mark.benchmark(group="op10 closure1N")
def test_op10_closure_1n(benchmark, cell):
    driver = make_driver(cell, "10")
    benchmark.extra_info["backend"] = cell.backend_name
    benchmark.extra_info["nodes_per_closure"] = _expected_closure_size(cell)
    result = benchmark(driver)
    assert len(result) == _expected_closure_size(cell)


@pytest.mark.benchmark(group="op14 closureMN")
def test_op14_closure_mn(benchmark, cell):
    driver = make_driver(cell, "14")
    benchmark.extra_info["backend"] = cell.backend_name
    result = benchmark(driver)
    assert len(result) == _expected_closure_size(cell)


@pytest.mark.benchmark(group="op15 closureMNATT")
def test_op15_closure_mnatt(benchmark, cell):
    driver = make_driver(cell, "15")
    benchmark.extra_info["backend"] = cell.backend_name
    benchmark.extra_info["depth"] = cell.gen.config.closure_depth
    result = benchmark(driver)
    assert len(result) == cell.gen.config.closure_depth
