"""The Person/Document model of the /RUBE87/ baseline benchmark.

Two record types with a many-to-many *authorship* relationship between
them — deliberately simpler than the HyperModel (no recursion, no
closure operations), which is precisely the paper's critique of it.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Iterator, List


@dataclasses.dataclass(frozen=True)
class Person:
    """One person record.

    ``birth`` is an integer (days since an epoch) drawn uniformly from
    1..100 000, giving the range-lookup operation a known selectivity.
    """

    person_id: int
    name: str
    birth: int


@dataclasses.dataclass(frozen=True)
class Document:
    """One document record."""

    document_id: int
    title: str
    pages: int


class SimpleDatabase(abc.ABC):
    """Backend interface for the seven simple operations."""

    @abc.abstractmethod
    def open(self) -> None:
        """Open the database (op 7 times this)."""

    @abc.abstractmethod
    def close(self) -> None:
        """Close the database."""

    @abc.abstractmethod
    def commit(self) -> None:
        """Make changes durable."""

    @property
    @abc.abstractmethod
    def is_open(self) -> bool:
        """Whether the database is open."""

    # -- creation ----------------------------------------------------------

    @abc.abstractmethod
    def insert_person(self, person: Person) -> None:
        """Insert one person (op 5 times this, indexes included)."""

    @abc.abstractmethod
    def insert_document(self, document: Document) -> None:
        """Insert one document."""

    @abc.abstractmethod
    def add_authorship(self, person_id: int, document_id: int) -> None:
        """Relate a person to a document (M-N)."""

    @abc.abstractmethod
    def delete_person(self, person_id: int) -> None:
        """Remove a person (cleanup after the insert measurement)."""

    # -- the seven operations' read paths ------------------------------------

    @abc.abstractmethod
    def person_by_id(self, person_id: int) -> Person:
        """Op 1, name lookup: key access to one person."""

    @abc.abstractmethod
    def persons_by_birth_range(self, low: int, high: int) -> List[Person]:
        """Op 2, range lookup on the indexed ``birth`` attribute."""

    @abc.abstractmethod
    def documents_of(self, person_id: int) -> List[Document]:
        """Op 3, group lookup: the documents a person authored."""

    @abc.abstractmethod
    def authors_of(self, document_id: int) -> List[Person]:
        """Op 4, reference lookup: the authors of a document."""

    @abc.abstractmethod
    def scan_persons(self) -> Iterator[Person]:
        """Op 6, sequential scan over all persons."""

    @abc.abstractmethod
    def person_count(self) -> int:
        """Number of person records."""

    @property
    def backend_name(self) -> str:
        """Short backend identifier for reports."""
        return type(self).__name__
