"""The /RUBE87/ "simple database operations" baseline benchmark.

Section 4 of the paper positions the HyperModel as an extension of
Rubenstein, Kubicar & Cattell's SIGMOD-87 benchmark: a Person/Document
model with a many-to-many relationship, exercised by seven simple
operations (name lookup, range lookup, group lookup, reference lookup,
record insert, sequential scan and database open).  The paper keeps
those seven operations and adds the closure/editing operations its
richer schema enables.

This package implements the baseline so the reproduction can report
both benchmarks side by side: the
:class:`~repro.rubenstein.model.SimpleDatabase` interface, in-memory
and SQLite implementations, the test-data generator and the seven
timed operations.
"""

from repro.rubenstein.model import Person, Document, SimpleDatabase
from repro.rubenstein.backends import MemorySimpleDatabase, SqliteSimpleDatabase
from repro.rubenstein.generator import SimpleGenerator, SimpleDatasetInfo
from repro.rubenstein.operations import SimpleOperations, SIMPLE_OP_NAMES

__all__ = [
    "Person",
    "Document",
    "SimpleDatabase",
    "MemorySimpleDatabase",
    "SqliteSimpleDatabase",
    "SimpleGenerator",
    "SimpleDatasetInfo",
    "SimpleOperations",
    "SIMPLE_OP_NAMES",
]
