"""The seven /RUBE87/ operations, with a small timing runner."""

from __future__ import annotations

import random
import time
from typing import Callable, Dict, List

from repro.harness.timing import Stats
from repro.rubenstein.generator import BIRTH_RANGE, SimpleDatasetInfo
from repro.rubenstein.model import Person, SimpleDatabase

#: Operation names in the order /RUBE87/ lists them.
SIMPLE_OP_NAMES = (
    "nameLookup",
    "rangeLookup",
    "groupLookup",
    "referenceLookup",
    "recordInsert",
    "sequentialScan",
    "databaseOpen",
)

#: Width of the birth range probe (10% selectivity over 1..100000).
RANGE_WIDTH = 10_000


class SimpleOperations:
    """Implementations of the seven operations over one backend."""

    def __init__(self, db: SimpleDatabase, info: SimpleDatasetInfo) -> None:
        self.db = db
        self.info = info
        self._insert_id = 10_000_000  # id space disjoint from generated data

    def name_lookup(self, person_id: int) -> str:
        """Op 1: key lookup, returns one attribute of the person."""
        return self.db.person_by_id(person_id).name

    def range_lookup(self, low: int) -> List[Person]:
        """Op 2: persons born within a 10%-selectivity window."""
        return self.db.persons_by_birth_range(low, low + RANGE_WIDTH - 1)

    def group_lookup(self, person_id: int) -> list:
        """Op 3: the documents of a person (M-N forward)."""
        return self.db.documents_of(person_id)

    def reference_lookup(self, document_id: int) -> list:
        """Op 4: the authors of a document (M-N inverse)."""
        return self.db.authors_of(document_id)

    def record_insert(self, rng: random.Random) -> int:
        """Op 5: insert one person (with index update) and commit."""
        self._insert_id += 1
        self.db.insert_person(
            Person(self._insert_id, "inserted", rng.randint(*BIRTH_RANGE))
        )
        self.db.commit()
        return self._insert_id

    def sequential_scan(self) -> int:
        """Op 6: visit every person, reading the birth attribute."""
        count = 0
        for person in self.db.scan_persons():
            _ = person.birth
            count += 1
        return count

    def database_open(self) -> None:
        """Op 7: close and reopen the database."""
        self.db.close()
        self.db.open()

    # ------------------------------------------------------------------
    # Timing runner
    # ------------------------------------------------------------------

    def run_all(
        self, repetitions: int = 50, seed: int = 1987
    ) -> Dict[str, Stats]:
        """Time every operation; returns name -> per-call ms stats.

        Inserted probe records are removed afterwards, leaving the
        database in its generated state.
        """
        rng = random.Random(seed)
        info = self.info
        runners: Dict[str, Callable[[], object]] = {
            "nameLookup": lambda: self.name_lookup(info.random_person_id(rng)),
            "rangeLookup": lambda: self.range_lookup(
                rng.randint(1, BIRTH_RANGE[1] - RANGE_WIDTH + 1)
            ),
            "groupLookup": lambda: self.group_lookup(
                info.random_person_id(rng)
            ),
            "referenceLookup": lambda: self.reference_lookup(
                info.random_document_id(rng)
            ),
            "recordInsert": lambda: self.record_insert(rng),
            "sequentialScan": self.sequential_scan,
            "databaseOpen": self.database_open,
        }
        results: Dict[str, Stats] = {}
        inserted_before = self._insert_id
        for name in SIMPLE_OP_NAMES:
            run = runners[name]
            reps = repetitions if name != "databaseOpen" else min(repetitions, 10)
            samples = []
            for _ in range(reps):
                started = time.perf_counter()
                run()
                samples.append((time.perf_counter() - started) * 1000.0)
            results[name] = Stats.from_samples(samples)
        for probe_id in range(inserted_before + 1, self._insert_id + 1):
            self.db.delete_person(probe_id)
        self.db.commit()
        return results
