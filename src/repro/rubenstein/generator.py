"""Test-data generation for the /RUBE87/ baseline."""

from __future__ import annotations

import dataclasses
import random
import string
from repro.rubenstein.model import Document, Person, SimpleDatabase

_LETTERS = string.ascii_lowercase

#: Inclusive domain of the birth attribute (range-lookup selectivity).
BIRTH_RANGE = (1, 100_000)


@dataclasses.dataclass
class SimpleDatasetInfo:
    """Shape of a generated Person/Document dataset."""

    persons: int
    documents: int
    authorships: int
    seed: int

    def random_person_id(self, rng: random.Random) -> int:
        """A uniformly random existing person id."""
        return rng.randint(1, self.persons)

    def random_document_id(self, rng: random.Random) -> int:
        """A uniformly random existing document id."""
        return rng.randint(1, self.documents)


class SimpleGenerator:
    """Populates a :class:`~repro.rubenstein.model.SimpleDatabase`.

    Each document gets 1-3 random authors; ``birth`` is uniform over
    :data:`BIRTH_RANGE`, so a width-W range lookup has selectivity
    W / 100 000 (10 % for W = 10 000, mirroring the original's setup).
    """

    def __init__(
        self,
        persons: int = 1000,
        documents: int = 1000,
        seed: int = 19870501,
    ) -> None:
        self.persons = persons
        self.documents = documents
        self.seed = seed

    def _random_name(self, rng: random.Random) -> str:
        return "".join(rng.choice(_LETTERS) for _ in range(rng.randint(4, 12)))

    def generate(self, db: SimpleDatabase) -> SimpleDatasetInfo:
        """Fill ``db``; returns the dataset description."""
        rng = random.Random(self.seed)
        for person_id in range(1, self.persons + 1):
            db.insert_person(
                Person(
                    person_id,
                    self._random_name(rng),
                    rng.randint(*BIRTH_RANGE),
                )
            )
        for document_id in range(1, self.documents + 1):
            db.insert_document(
                Document(
                    document_id,
                    self._random_name(rng),
                    rng.randint(1, 500),
                )
            )
        authorships = 0
        for document_id in range(1, self.documents + 1):
            authors = rng.sample(
                range(1, self.persons + 1), rng.randint(1, 3)
            )
            for person_id in authors:
                db.add_authorship(person_id, document_id)
                authorships += 1
        db.commit()
        return SimpleDatasetInfo(
            persons=self.persons,
            documents=self.documents,
            authorships=authorships,
            seed=self.seed,
        )
