"""In-memory and SQLite implementations of the /RUBE87/ model."""

from __future__ import annotations

import sqlite3
from typing import Dict, Iterator, List, Optional

from repro.errors import DatabaseClosedError, NodeNotFoundError
from repro.rubenstein.model import Document, Person, SimpleDatabase


class MemorySimpleDatabase(SimpleDatabase):
    """Dictionaries and inverted maps; the no-I/O baseline."""

    def __init__(self) -> None:
        self._open = False
        self._persons: Dict[int, Person] = {}
        self._documents: Dict[int, Document] = {}
        self._docs_of: Dict[int, List[int]] = {}
        self._authors_of: Dict[int, List[int]] = {}

    def open(self) -> None:
        self._open = True

    def close(self) -> None:
        self._open = False

    def commit(self) -> None:
        self._require_open()

    @property
    def is_open(self) -> bool:
        return self._open

    def _require_open(self) -> None:
        if not self._open:
            raise DatabaseClosedError("simple database is not open")

    def insert_person(self, person: Person) -> None:
        self._require_open()
        self._persons[person.person_id] = person
        self._docs_of.setdefault(person.person_id, [])

    def insert_document(self, document: Document) -> None:
        self._require_open()
        self._documents[document.document_id] = document
        self._authors_of.setdefault(document.document_id, [])

    def add_authorship(self, person_id: int, document_id: int) -> None:
        self._require_open()
        self._docs_of[person_id].append(document_id)
        self._authors_of[document_id].append(person_id)

    def delete_person(self, person_id: int) -> None:
        self._require_open()
        self._persons.pop(person_id, None)
        for document_id in self._docs_of.pop(person_id, []):
            self._authors_of[document_id] = [
                p for p in self._authors_of[document_id] if p != person_id
            ]

    def person_by_id(self, person_id: int) -> Person:
        self._require_open()
        try:
            return self._persons[person_id]
        except KeyError:
            raise NodeNotFoundError(person_id) from None

    def persons_by_birth_range(self, low: int, high: int) -> List[Person]:
        self._require_open()
        return [p for p in self._persons.values() if low <= p.birth <= high]

    def documents_of(self, person_id: int) -> List[Document]:
        self._require_open()
        return [self._documents[d] for d in self._docs_of.get(person_id, [])]

    def authors_of(self, document_id: int) -> List[Person]:
        self._require_open()
        return [self._persons[p] for p in self._authors_of.get(document_id, [])]

    def scan_persons(self) -> Iterator[Person]:
        self._require_open()
        return iter(list(self._persons.values()))

    def person_count(self) -> int:
        self._require_open()
        return len(self._persons)

    @property
    def backend_name(self) -> str:
        return "memory"


_SCHEMA = """
CREATE TABLE IF NOT EXISTS person (
    id INTEGER PRIMARY KEY,
    name TEXT NOT NULL,
    birth INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_person_birth ON person(birth);
CREATE TABLE IF NOT EXISTS document (
    id INTEGER PRIMARY KEY,
    title TEXT NOT NULL,
    pages INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS authorship (
    person INTEGER NOT NULL,
    document INTEGER NOT NULL,
    PRIMARY KEY (person, document)
);
CREATE INDEX IF NOT EXISTS idx_auth_document ON authorship(document);
"""


class SqliteSimpleDatabase(SimpleDatabase):
    """The relational implementation, mirroring /RUBE87/'s tables."""

    def __init__(self, path: str = ":memory:") -> None:
        self.path = path
        self._conn: Optional[sqlite3.Connection] = None
        self._memory_conn: Optional[sqlite3.Connection] = None

    def open(self) -> None:
        if self._conn is not None:
            return
        if self.path == ":memory:" and self._memory_conn is not None:
            self._conn = self._memory_conn
            return
        self._conn = sqlite3.connect(self.path)
        self._conn.executescript(_SCHEMA)
        self._conn.commit()
        if self.path == ":memory:":
            self._memory_conn = self._conn

    def close(self) -> None:
        if self._conn is None:
            return
        self._conn.commit()
        if self.path != ":memory:":
            self._conn.close()
        self._conn = None

    def commit(self) -> None:
        self._require_open().commit()

    @property
    def is_open(self) -> bool:
        return self._conn is not None

    def _require_open(self) -> sqlite3.Connection:
        if self._conn is None:
            raise DatabaseClosedError("simple database is not open")
        return self._conn

    def insert_person(self, person: Person) -> None:
        self._require_open().execute(
            "INSERT INTO person (id, name, birth) VALUES (?, ?, ?)",
            (person.person_id, person.name, person.birth),
        )

    def insert_document(self, document: Document) -> None:
        self._require_open().execute(
            "INSERT INTO document (id, title, pages) VALUES (?, ?, ?)",
            (document.document_id, document.title, document.pages),
        )

    def add_authorship(self, person_id: int, document_id: int) -> None:
        self._require_open().execute(
            "INSERT INTO authorship (person, document) VALUES (?, ?)",
            (person_id, document_id),
        )

    def delete_person(self, person_id: int) -> None:
        conn = self._require_open()
        conn.execute("DELETE FROM authorship WHERE person = ?", (person_id,))
        conn.execute("DELETE FROM person WHERE id = ?", (person_id,))

    def person_by_id(self, person_id: int) -> Person:
        row = self._require_open().execute(
            "SELECT id, name, birth FROM person WHERE id = ?", (person_id,)
        ).fetchone()
        if row is None:
            raise NodeNotFoundError(person_id)
        return Person(*row)

    def persons_by_birth_range(self, low: int, high: int) -> List[Person]:
        return [
            Person(*row)
            for row in self._require_open().execute(
                "SELECT id, name, birth FROM person WHERE birth BETWEEN ? AND ?",
                (low, high),
            )
        ]

    def documents_of(self, person_id: int) -> List[Document]:
        return [
            Document(*row)
            for row in self._require_open().execute(
                "SELECT d.id, d.title, d.pages FROM document d"
                " JOIN authorship a ON a.document = d.id WHERE a.person = ?",
                (person_id,),
            )
        ]

    def authors_of(self, document_id: int) -> List[Person]:
        return [
            Person(*row)
            for row in self._require_open().execute(
                "SELECT p.id, p.name, p.birth FROM person p"
                " JOIN authorship a ON a.person = p.id WHERE a.document = ?",
                (document_id,),
            )
        ]

    def scan_persons(self) -> Iterator[Person]:
        for row in self._require_open().execute(
            "SELECT id, name, birth FROM person"
        ):
            yield Person(*row)

    def person_count(self) -> int:
        return self._require_open().execute(
            "SELECT COUNT(*) FROM person"
        ).fetchone()[0]

    @property
    def backend_name(self) -> str:
        return "sqlite"
