"""Exception hierarchy shared by every subsystem in the reproduction.

All library errors derive from :class:`HyperModelError` so applications
can catch one base class.  Subsystems refine it: the storage engine
raises :class:`StorageError` subclasses, the query language raises
:class:`QueryError` subclasses, and so on.
"""


class HyperModelError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(HyperModelError):
    """An invalid benchmark or engine configuration was supplied."""


class DatabaseClosedError(HyperModelError):
    """An operation was attempted on a database that is not open."""


class NodeNotFoundError(HyperModelError):
    """A node reference or uniqueId did not resolve to a node."""

    def __init__(self, ref: object) -> None:
        super().__init__(f"no such node: {ref!r}")
        self.ref = ref


class InvalidOperationError(HyperModelError):
    """The operation is not valid for the given node kind or state."""


class StorageError(HyperModelError):
    """Base class for errors raised by the object storage engine."""


class PageError(StorageError):
    """A page-level invariant was violated (bad id, overflow, corruption)."""


class RecordNotFoundError(StorageError):
    """A record id (RID) or object id (OID) did not resolve."""

    def __init__(self, ref: object) -> None:
        super().__init__(f"no such record: {ref!r}")
        self.ref = ref


class TransactionError(StorageError):
    """A transaction was used incorrectly (not active, already ended)."""


class DeadlockError(TransactionError):
    """Lock acquisition aborted because it would deadlock (or timed out)."""


class ConflictError(TransactionError):
    """Optimistic validation failed: another transaction committed first."""


class CommitConflictError(ConflictError):
    """A server-side optimistic commit was rejected: stale reads.

    Carries the conflicting uids so the client can invalidate exactly
    the cached copies that went stale before retrying.
    """

    def __init__(self, conflicts):
        uids = sorted(conflicts)
        shown = ", ".join(str(uid) for uid in uids[:8])
        if len(uids) > 8:
            shown += ", ..."
        super().__init__(
            f"optimistic commit rejected: {len(uids)} stale read(s)"
            f" [{shown}]"
        )
        self.conflicts = uids


class RecoveryError(StorageError):
    """The write-ahead log could not be replayed cleanly."""


class SchemaError(StorageError):
    """A catalog/schema operation failed (unknown class, duplicate field)."""


class NetworkError(HyperModelError):
    """Base class for simulated network failures (see repro.netsim.faults)."""


class RpcDroppedError(NetworkError):
    """A simulated RPC was dropped on the wire (request or response lost)."""


class RpcTimeoutError(NetworkError):
    """A simulated RPC timed out waiting for the server's response."""


class RpcExhaustedError(NetworkError):
    """An RPC kept failing after the client's bounded retries ran out."""


class QueryError(HyperModelError):
    """Base class for ad-hoc query language errors."""


class QuerySyntaxError(QueryError):
    """The query text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at position {position})")
        self.position = position


class QueryExecutionError(QueryError):
    """The query referenced an unknown attribute or mis-typed a value."""


class AccessDeniedError(HyperModelError):
    """An access-control policy forbids the attempted operation (R11)."""

    def __init__(self, principal: str, action: str, target: object) -> None:
        super().__init__(f"{principal!r} may not {action} {target!r}")
        self.principal = principal
        self.action = action
        self.target = target


class WorkspaceError(HyperModelError):
    """A cooperative-workspace operation failed (R9)."""


class CheckOutConflictError(WorkspaceError):
    """A node is already checked out to a different workspace."""
