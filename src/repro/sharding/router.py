"""The shard router: client-side fan-out over N object servers.

:class:`ShardRouter` presents the *same verb surface* as a single
:class:`~repro.netsim.server.ObjectServer`, so
:class:`~repro.backends.clientserver.ClientServerDatabase` plugs it in
as its ``server`` unchanged — every workstation-cache, retry and
trace-propagation behaviour carries over.  Behind the surface:

* **Point reads** (``fetch``, ``exists``, ``store``) route to the one
  shard the :class:`~repro.sharding.placement.Placement` policy names;
  ``fetch_many`` partitions its batch into one sub-batch per owning
  shard (one round trip each).
* **Closure push-down** (``traverse``, ``readahead``) scatter-gathers:
  each round sends every shard *one* multi-seed ``traverse_shard``
  call for the frontier uids it owns; shards walk their local records
  and hand back **border OIDs** — cross-shard edge targets with their
  remaining depth budget — which the router groups by placement into
  the next round.  Total RPC count is O(shards × depth-crossing
  rounds), never O(nodes), pinned by a regression test.
* **Commits**: a transaction whose write/read/list sets touch one
  shard commits with that shard's ordinary one-round-trip
  ``commit_batch``.  A multi-shard transaction runs **two-phase
  commit** with the router as coordinator: phase one sends each
  participant its slice via ``prepare_batch`` (validated, WAL-logged
  with a PREPARE record, pinned); a unanimous yes is force-logged to
  the coordinator's *decision log*, then phase two delivers
  ``commit_prepared`` to every participant.  Any validation conflict
  or exhausted prepare aborts every participant (presumed abort — the
  abort decision needs no forced log write).

Recovery contract (presumed abort): a participant that crashes after
PREPARE re-parks the transaction in doubt on
:meth:`~repro.netsim.server.ObjectServer.recover_from_wal`;
:meth:`ShardRouter.resolve_in_doubt` then consults the decision log —
a logged COMMIT means deliver ``commit_prepared``, anything else
(including a coordinator that crashed before logging) means
``abort_prepared``.  Either way every shard lands on the same side.
"""

from __future__ import annotations

import contextlib
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.engine.wal import WriteAheadLog
from repro.errors import (
    InvalidOperationError,
    NetworkError,
    NodeNotFoundError,
    RpcExhaustedError,
    StorageError,
)
from repro.netsim.config import ShardConfig
from repro.netsim.faults import FaultModel
from repro.netsim.latency import LatencyModel, SimulatedClock
from repro.netsim.server import ObjectServer
from repro.obs import Instrumentation, TraceContext, resolve
from repro.sharding.placement import Placement, _digest, make_placement

#: Safety cap on decision-delivery attempts after a *logged* commit.
#: The decision is durable, so giving up must not look like a retryable
#: network fault (the client would restart the transaction); past this
#: cap the router raises ``StorageError`` and ``resolve_in_doubt``
#: finishes the delivery.
_DECISION_ATTEMPTS = 64


def _budget(value: Optional[int]) -> float:
    return float("inf") if value is None else float(value)


class ShardRouter:
    """Coordinator + scatter-gather fan-out over N shard servers.

    Args:
        config: shard count and placement policy.
        clock: shared virtual clock (one client's timeline); every
            shard server built here charges it.
        latency: wire model for built servers.
        instrumentation: counter/span sink shared with the client.
        fault_model: seeded fault injection shared by built servers
            (one model, consulted in request order, keeps the fault
            sequence deterministic across the fan-out).
        wals: optional per-shard write-ahead logs for built servers.
        decision_log: the coordinator's durable decision record — a
            plain :class:`~repro.engine.wal.WriteAheadLog`; a commit
            decision is ``log_commit(txid, [])``, absence means abort.
            Without one, 2PC still runs but a coordinator crash loses
            undecided transactions to presumed abort (which is the
            correct default).
        servers: pre-built shard servers (crash harnesses build their
            own with per-shard fault/VFS wiring); overrides the
            construction knobs above.
        placement: pre-built placement policy (defaults to
            ``make_placement(config)``).
        rpc_retries / rpc_backoff_seconds: the router's *internal*
            retry budget for 2PC phase RPCs (prepare must either
            finish or abort cleanly before the error surfaces, so the
            client's own retry wrapper cannot manage these).
    """

    def __init__(
        self,
        config: ShardConfig,
        *,
        clock: Optional[SimulatedClock] = None,
        latency: Optional[LatencyModel] = None,
        instrumentation: Optional[Instrumentation] = None,
        fault_model: Optional[FaultModel] = None,
        wals: Optional[Sequence[Optional[WriteAheadLog]]] = None,
        decision_log: Optional[WriteAheadLog] = None,
        servers: Optional[Sequence[ObjectServer]] = None,
        placement: Optional[Placement] = None,
        fsync_seconds: float = 0.0,
        rpc_retries: int = 4,
        rpc_backoff_seconds: float = 0.002,
    ) -> None:
        self.config = config
        self.instrumentation = resolve(instrumentation)
        self._instr = self.instrumentation
        self.placement = placement or make_placement(config)
        self.decision_log = decision_log
        self.rpc_retries = rpc_retries
        self.rpc_backoff_seconds = rpc_backoff_seconds
        if servers is not None:
            self.shards: List[ObjectServer] = list(servers)
            self.clock = clock or self.shards[0].clock
        else:
            self.clock = clock or SimulatedClock()
            self.shards = [
                ObjectServer(
                    self.clock,
                    latency,
                    instrumentation=self.instrumentation,
                    fault_model=fault_model,
                    wal=None if wals is None else wals[index],
                    fsync_seconds=fsync_seconds,
                    shard_id=index,
                )
                for index in range(config.shards)
            ]
        if len(self.shards) != config.shards:
            raise InvalidOperationError(
                f"config names {config.shards} shards but"
                f" {len(self.shards)} servers were supplied"
            )
        if self.placement.shards != config.shards:
            raise InvalidOperationError(
                f"placement spans {self.placement.shards} shards but"
                f" the deployment has {config.shards}"
            )
        #: Global transaction ids the coordinator hands out; restored
        #: past any txid the decision log has *mentioned* (commit or
        #: abort) so a restarted coordinator never reuses one a
        #: participant may have memoized as decided.
        self._txid = 0
        if decision_log is not None:
            for record in decision_log.read_all():
                self._txid = max(self._txid, record.txid)
        self._pending_trace: Optional[TraceContext] = None
        self._reply_versions: Dict[int, int] = {}
        # Per-shard in-doubt gauge: how many transactions each shard
        # holds prepared-but-undecided right now.  Evaluated only at
        # flight-recorder sample time (in_doubt() allocates a list).
        for index, shard in enumerate(self.shards):
            self._instr.gauge(
                f"backend.2pc.shard{index}.in_doubt",
                lambda s=shard: float(len(s.in_doubt())),
            )

    def trace_lane_metadata(self) -> Dict[str, Dict[str, object]]:
        """Per-shard-lane metadata for the Chrome trace export.

        Keys are the ``shard<n>`` lane tags the servers stamp on their
        spans; the exporter merges the values into each matching
        lane's thread metadata so a trace records which placement
        policy produced the fan-out it shows.
        """
        return {
            f"shard{index}": {
                "placement": self.config.placement,
                "shards": self.config.shards,
            }
            for index in range(len(self.shards))
        }

    def _repoint_trace(
        self, phase_span, ctx: Optional[TraceContext]
    ) -> None:
        """Make a 2PC/scatter phase span the remote parent of its fan-out.

        Shard calls issued while the repointed context is pending
        record their server spans with ``remote_parent`` = the phase
        span, so the exported trace draws flow arrows from *the phase*
        (prepare, deliver, scatter round) into each shard lane instead
        of from the enclosing client RPC span.  Callers restore
        ``self._pending_trace = ctx`` when the phase ends.
        """
        if self._instr.enabled:
            self._pending_trace = TraceContext(
                self._instr.trace_id,
                phase_span.sequence,
                client_id=ctx.client_id if ctx is not None else None,
            )

    # ------------------------------------------------------------------
    # ObjectServer surface: plumbing
    # ------------------------------------------------------------------

    def accept_trace_context(self, context: Optional[TraceContext]) -> None:
        """Stash the caller's trace context for this verb's fan-out.

        Unlike the single server (one request, one context), a router
        verb issues several shard requests; each inherits the same
        client context, so the fan-out appears as sibling server spans
        under one client RPC span.
        """
        self._pending_trace = context

    def take_reply_versions(self) -> Dict[int, int]:
        """Version stamps accumulated across this verb's shard replies.

        Shard version counters are independent; stamps never collide
        because each uid has exactly one owning shard.
        """
        versions = self._reply_versions
        self._reply_versions = {}
        return versions

    def subscribe(self, cache) -> None:
        """Register a cache for invalidations from **every** shard.

        This is what keeps coherence correct under sharding: a record
        admitted into a workstation cache via a traverse served by
        shard B must still be invalidated when a commit lands on its
        owning shard A — so every cache subscribes everywhere.
        """
        for shard in self.shards:
            shard.subscribe(cache)

    def unsubscribe(self, cache) -> None:
        for shard in self.shards:
            shard.unsubscribe(cache)

    @contextlib.contextmanager
    def use_transport(self, transport):
        """Swap charge transports on every shard at once.

        Accepts one transport (shared FIFO — the whole deployment
        behind one NIC) or a per-shard sequence (independent lanes,
        see :func:`repro.netsim.sim.shard_lanes`).
        """
        if isinstance(transport, (list, tuple)):
            if len(transport) != len(self.shards):
                raise InvalidOperationError(
                    f"{len(transport)} transports for"
                    f" {len(self.shards)} shards"
                )
            lanes = list(transport)
        else:
            lanes = [transport] * len(self.shards)
        with contextlib.ExitStack() as stack:
            for shard, lane in zip(self.shards, lanes):
                stack.enter_context(shard.use_transport(lane))
            yield lanes

    @property
    def stats(self):
        """Aggregated request counters across all shards (read-only)."""
        from repro.netsim.server import ServerStats

        total = ServerStats()
        for shard in self.shards:
            for field in total.__dataclass_fields__:
                setattr(
                    total,
                    field,
                    getattr(total, field) + getattr(shard.stats, field),
                )
        return total

    @property
    def wal(self) -> Optional[WriteAheadLog]:
        """The coordinator's decision log (the router's durable state)."""
        return self.decision_log

    def _shard_of(self, uid: int) -> ObjectServer:
        return self.shards[self.placement.shard_of(uid)]

    def _list_shard(self, name: str) -> int:
        """Named lists hash to a home shard by name (uids have owners,
        list names need one too)."""
        return _digest(f"list:{name}") % len(self.shards)

    def _call(self, shard_index: int, verb: str, *args, **kwargs):
        """One shard request carrying the verb's trace context."""
        shard = self.shards[shard_index]
        shard.accept_trace_context(self._pending_trace)
        result = getattr(shard, verb)(*args, **kwargs)
        self._reply_versions.update(shard.take_reply_versions())
        return result

    def _call_with_retry(self, shard_index: int, verb: str, *args, **kwargs):
        """Bounded internal retry for 2PC phase RPCs.

        The client's retry wrapper cannot manage these: a fault in the
        middle of a prepare fan-out must resolve to a clean abort (or
        a delivered decision) *inside* the coordinator, not to a blind
        re-run of the whole multi-shard verb under a fresh txid.
        """
        attempt = 0
        while True:
            try:
                return self._call(shard_index, verb, *args, **kwargs)
            except NetworkError as fault:
                if attempt >= self.rpc_retries:
                    raise RpcExhaustedError(
                        f"shard {shard_index} {verb} still failing"
                        f" after {attempt} retries: {fault}"
                    ) from fault
                backoff = self.rpc_backoff_seconds * (2 ** attempt)
                if backoff:
                    self.clock.advance(backoff)
                    self._instr.count(
                        "backend.rpc.backoff_ms", backoff * 1000.0
                    )
                attempt += 1
                self._instr.count("backend.rpc.retries")

    # ------------------------------------------------------------------
    # Point reads and writes
    # ------------------------------------------------------------------

    def fetch(self, uid: int) -> Dict[str, Any]:
        return self._call(self.placement.shard_of(uid), "fetch", uid)

    def fetch_many(self, uids: List[int]) -> Dict[int, Dict[str, Any]]:
        """One sub-batch round trip per owning shard, merged in the
        caller's (deduplicated) uid order."""
        unique: List[int] = []
        seen = set()
        for uid in uids:
            if uid not in seen:
                seen.add(uid)
                unique.append(uid)
        merged: Dict[int, Dict[str, Any]] = {}
        for shard_index, group in self.placement.partition(unique).items():
            merged.update(self._call(shard_index, "fetch_many", group))
        return {uid: merged[uid] for uid in unique}

    def exists(self, uid: int) -> bool:
        return self._call(self.placement.shard_of(uid), "exists", uid)

    def store(self, uid: int, record: Dict[str, Any], from_cache=None) -> None:
        return self._call(
            self.placement.shard_of(uid),
            "store",
            uid,
            record,
            from_cache=from_cache,
        )

    # ------------------------------------------------------------------
    # Scatter-gather closure push-down
    # ------------------------------------------------------------------

    def _scatter(
        self,
        seeds: List[Tuple[int, Optional[int]]],
        dispatch,
        limit: Optional[int],
    ) -> Dict[int, Any]:
        """Run rounds of per-shard multi-seed walks until no borders.

        ``dispatch(shard_index, shard_seeds, remaining_limit)`` issues
        one shard call and returns ``(records, borders)``.  The router
        keeps the best depth budget each uid has been walked with and
        re-dispatches a border only when it is new or its budget
        improved (re-expansion along a longer-budget path — M-N graphs
        can need it; pure trees never do).
        """
        out: Dict[int, Any] = {}
        walked: Dict[int, float] = {}
        frontier = list(seeds)
        rounds = 0
        calls = 0
        ctx = self._pending_trace
        client = ctx.client_id if ctx is not None else None
        while frontier and (limit is None or len(out) < limit):
            rounds += 1
            groups: Dict[int, List[Tuple[int, Optional[int]]]] = {}
            for uid, depth in frontier:
                shard_index = self.placement.shard_of(uid)
                groups.setdefault(shard_index, []).append((uid, depth))
            next_frontier: Dict[int, float] = {}
            with self._instr.span(
                "rpc.scatter.round", client=client
            ) as round_span:
                self._repoint_trace(round_span, ctx)
                try:
                    for shard_index in sorted(groups):
                        remaining = (
                            None if limit is None else limit - len(out)
                        )
                        if remaining is not None and remaining <= 0:
                            break
                        records, borders = dispatch(
                            shard_index, groups[shard_index], remaining
                        )
                        calls += 1
                        for uid, record in records.items():
                            if uid not in out:
                                out[uid] = record
                        for uid, depth in borders:
                            value = _budget(depth)
                            if value > next_frontier.get(
                                uid, float("-inf")
                            ):
                                next_frontier[uid] = value
                finally:
                    self._pending_trace = ctx
            for uid, depth in frontier:
                value = _budget(depth)
                if value > walked.get(uid, float("-inf")):
                    walked[uid] = value
            frontier = [
                (uid, None if value == float("inf") else int(value))
                for uid, value in next_frontier.items()
                if value > walked.get(uid, float("-inf"))
            ]
        self._instr.count("backend.rpc.scatter.rounds", rounds)
        self._instr.count("backend.rpc.scatter.calls", calls)
        return out

    def traverse(
        self,
        root: int,
        relation: str,
        direction: str = "forward",
        depth: Optional[int] = None,
        with_records: bool = True,
        limit: Optional[int] = None,
    ) -> Dict[int, Dict[str, Any]]:
        """Scatter-gather closure BFS with border-OID hand-off.

        Same contract as the single server's ``traverse`` (records in
        discovery order, unknown root raises
        :class:`~repro.errors.NodeNotFoundError` after the charged
        first round, ``limit`` caps the reply) — but executed as one
        ``traverse_shard`` call per shard per depth-crossing round.
        """

        def dispatch(shard_index, shard_seeds, remaining):
            return self._call(
                shard_index,
                "traverse_shard",
                shard_seeds,
                relation,
                direction=direction,
                with_records=with_records,
                limit=remaining,
            )

        out = self._scatter([(root, depth)], dispatch, limit)
        if root not in out:
            raise NodeNotFoundError(root)
        return out

    def readahead(
        self, uids: List[int], depth: int = 1, limit: Optional[int] = None
    ) -> Dict[int, Dict[str, Any]]:
        """Scattered structural readahead (speculative: unknown seeds
        simply produce nothing, exactly like the single server)."""
        if depth < 0:
            raise InvalidOperationError(
                f"readahead depth cannot be negative, got {depth}"
            )

        def dispatch(shard_index, shard_seeds, remaining):
            return self._call(
                shard_index, "readahead_shard", shard_seeds, limit=remaining
            )

        return self._scatter(
            [(uid, depth) for uid in uids], dispatch, limit
        )

    # ------------------------------------------------------------------
    # Two-phase commit (coordinator side)
    # ------------------------------------------------------------------

    def commit_batch(
        self,
        writes: Dict[int, Dict[str, Any]],
        reads: Dict[int, int],
        lists: Optional[Dict[str, List[int]]] = None,
        from_cache=None,
    ) -> Dict[int, int]:
        """Commit a transaction across its owning shards.

        Single-participant transactions take the shard's ordinary
        one-round-trip ``commit_batch`` — sharding must not tax the
        common case.  Multi-participant transactions run 2PC; see the
        module docstring for the protocol and its failure rules.

        Raises:
            CommitConflictError: some participant's validation failed
                (every prepared participant was aborted first).
        """
        lists = lists or {}
        write_groups = self.placement.partition(writes)
        read_groups = self.placement.partition(reads)
        list_groups: Dict[int, Dict[str, List[int]]] = {}
        for name, uids in lists.items():
            list_groups.setdefault(self._list_shard(name), {})[name] = uids
        participants = sorted(
            set(write_groups) | set(read_groups) | set(list_groups)
        )
        slices = {
            index: (
                {uid: writes[uid] for uid in write_groups.get(index, ())},
                {uid: reads[uid] for uid in read_groups.get(index, ())},
                list_groups.get(index, {}),
            )
            for index in participants
        }
        if not participants:
            return {}
        if len(participants) == 1:
            index = participants[0]
            shard_writes, shard_reads, shard_lists = slices[index]
            return self._call(
                index,
                "commit_batch",
                shard_writes,
                shard_reads,
                shard_lists,
                from_cache=from_cache,
            )
        self._txid += 1
        txid = self._txid
        self._instr.count("backend.2pc.transactions")
        ctx = self._pending_trace
        client = ctx.client_id if ctx is not None else None
        prepared: List[int] = []
        with self._instr.span("2pc.commit", client=client):
            try:
                with self._instr.span(
                    "2pc.prepare", client=client
                ) as phase:
                    self._repoint_trace(phase, ctx)
                    try:
                        for index in participants:
                            shard_writes, shard_reads, shard_lists = (
                                slices[index]
                            )
                            self._call_with_retry(
                                index,
                                "prepare_batch",
                                txid,
                                shard_writes,
                                shard_reads,
                                shard_lists,
                                from_cache=from_cache,
                            )
                            prepared.append(index)
                    finally:
                        self._pending_trace = ctx
            except Exception:
                # Any no vote (conflict) or exhausted prepare aborts the
                # whole transaction: presumed abort — the decision needs
                # no *forced* log write, but an unforced ABORT note
                # keeps the txid watermark across a coordinator restart
                # (participants memoize decided txids and reject their
                # reuse).
                self._instr.count("backend.2pc.aborts")
                if self.decision_log is not None:
                    self.decision_log.log_decision(txid, committed=False)
                with self._instr.span(
                    "2pc.abort", client=client
                ) as phase:
                    self._repoint_trace(phase, ctx)
                    try:
                        self._abort_participants(txid, prepared)
                    finally:
                        self._pending_trace = ctx
                raise
            # Unanimous yes: the decision becomes durable *before* any
            # participant applies — this write is the commit point.
            with self._instr.span("2pc.decision", client=client):
                if self.decision_log is not None:
                    self.decision_log.log_commit(txid, [])
            self._instr.count("backend.2pc.commits")
            applied: Dict[int, int] = {}
            with self._instr.span(
                "2pc.deliver", client=client
            ) as phase:
                self._repoint_trace(phase, ctx)
                try:
                    for index in prepared:
                        applied.update(
                            self._deliver_commit(index, txid)
                        )
                finally:
                    self._pending_trace = ctx
        return applied

    def _abort_participants(
        self, txid: int, participants: Iterable[int]
    ) -> None:
        for index in participants:
            try:
                self._call_with_retry(index, "abort_prepared", txid)
            except NetworkError:
                # The participant will re-park the txn as in doubt on
                # recovery and presumed abort resolves it the same way.
                self._instr.count("backend.2pc.abort_undelivered")

    def _deliver_commit(self, shard_index: int, txid: int) -> Dict[int, int]:
        """Deliver a *logged* commit decision; must not look retryable.

        Past the attempt cap the router gives up with ``StorageError``
        (not a ``NetworkError`` — the transaction IS committed, the
        client must not re-run it) and ``resolve_in_doubt`` completes
        the delivery from the decision log later.
        """
        attempt = 0
        while True:
            try:
                return self._call(shard_index, "commit_prepared", txid)
            except NetworkError as fault:
                attempt += 1
                if attempt >= _DECISION_ATTEMPTS:
                    self._instr.count("backend.2pc.commit_undelivered")
                    raise StorageError(
                        f"txn {txid} is committed but shard {shard_index}"
                        f" never acknowledged the decision: {fault}"
                    ) from fault
                backoff = self.rpc_backoff_seconds * min(attempt, 8)
                if backoff:
                    self.clock.advance(backoff)
                self._instr.count("backend.rpc.retries")

    def resolve_in_doubt(self) -> Dict[int, str]:
        """Drive every shard's in-doubt transactions to a decision.

        Consults the decision log: txids with a logged COMMIT get
        ``commit_prepared``, all others get ``abort_prepared``
        (presumed abort covers a coordinator that crashed before — or
        while — logging).  Idempotent; call after recovering shards
        with ``recover_from_wal``.

        Returns ``{txid: "committed" | "aborted"}``.
        """
        committed = set()
        if self.decision_log is not None:
            for txid, _ops in self.decision_log.recover_operations():
                committed.add(txid)
                self._txid = max(self._txid, txid)
        outcomes: Dict[int, str] = {}
        with self._instr.span("2pc.resolve") as phase:
            self._repoint_trace(phase, None)
            try:
                for index, shard in enumerate(self.shards):
                    for txid in shard.in_doubt():
                        # The txid is proven used — never hand it out
                        # again.
                        self._txid = max(self._txid, txid)
                        if txid in committed:
                            self._deliver_commit(index, txid)
                            outcomes[txid] = "committed"
                        else:
                            self._call_with_retry(
                                index, "abort_prepared", txid
                            )
                            outcomes[txid] = "aborted"
                            if self.decision_log is not None:
                                self.decision_log.log_decision(
                                    txid, committed=False
                                )
            finally:
                self._pending_trace = None
        if outcomes:
            self._instr.count("backend.2pc.resolved", len(outcomes))
        return outcomes

    # ------------------------------------------------------------------
    # Server-evaluated queries (scatter + merge)
    # ------------------------------------------------------------------

    def range_query(self, attribute: str, low: int, high: int) -> List[int]:
        result: List[int] = []
        for index in range(len(self.shards)):
            result.extend(
                self._call(index, "range_query", attribute, low, high)
            )
        return result

    def scan_structure(self, structure_id: int) -> List[int]:
        result: List[int] = []
        for index in range(len(self.shards)):
            result.extend(self._call(index, "scan_structure", structure_id))
        return sorted(result)

    def referrers_of(self, uid: int) -> List[int]:
        result: List[int] = []
        for index in range(len(self.shards)):
            result.extend(self._call(index, "referrers_of", uid))
        return result

    # ------------------------------------------------------------------
    # Named lists
    # ------------------------------------------------------------------

    def store_list(self, name: str, uids: List[int]) -> None:
        return self._call(self._list_shard(name), "store_list", name, uids)

    def load_list(self, name: str) -> List[int]:
        return self._call(self._list_shard(name), "load_list", name)

    # ------------------------------------------------------------------
    # Administration (uncharged, like the single server's)
    # ------------------------------------------------------------------

    def count(self, structure_id: int) -> int:
        return sum(shard.count(structure_id) for shard in self.shards)

    def export_records(self) -> Dict[int, Dict[str, Any]]:
        merged: Dict[int, Dict[str, Any]] = {}
        for shard in self.shards:
            merged.update(shard.export_records())
        return merged

    def load_records(self, records: Dict[int, Dict[str, Any]]) -> None:
        """Partition a snapshot by placement and load every shard."""
        groups = self.placement.partition(records)
        for index, shard in enumerate(self.shards):
            shard.load_records(
                {uid: records[uid] for uid in groups.get(index, ())}
            )

    def __contains__(self, uid: int) -> bool:
        return uid in self._shard_of(uid)
