"""Sharding the object store: placement policies and the shard router.

One :class:`~repro.netsim.server.ObjectServer` caps both data size and
write throughput (ROADMAP item 2's level-7+ databases outgrow a single
shard's cache).  This package partitions the store across N servers:

* :mod:`repro.sharding.placement` — the OID→shard policy seam:
  consistent hashing (uniform, structure-blind) and subtree-affine
  placement (clustering as a benchmark axis, per Darmont's critique).
* :mod:`repro.sharding.router` — :class:`ShardRouter`, the client-side
  fan-out: point reads and batches partition by placement, closure
  push-down scatter-gathers with border-OID hand-off, and multi-shard
  commits run two-phase with the router as coordinator.

The single-shard configuration never builds a router at all — the
client keeps its classic one-server path bit-identical.
"""

from repro.sharding.placement import (
    HashPlacement,
    Placement,
    SubtreeAffinePlacement,
    make_placement,
)
from repro.sharding.router import ShardRouter

__all__ = [
    "HashPlacement",
    "Placement",
    "ShardRouter",
    "SubtreeAffinePlacement",
    "make_placement",
]
