"""OID→shard placement policies (the sharding policy seam).

Two policies, deliberately at the two ends of the clustering axis:

* :class:`HashPlacement` — consistent hashing over OIDs with virtual
  nodes.  Uniform and structure-blind: neighbouring nodes of the
  HyperModel tree land on unrelated shards, so every closure traversal
  crosses shards at almost every edge.  This is the placement a
  general-purpose store gives you for free.
* :class:`SubtreeAffinePlacement` — exploits the generator's
  deterministic layout (uids allocated level by level, fanout-5 1-N
  wiring) to co-locate whole subtrees: the ancestor at a configurable
  *affinity level* decides the shard, so 1-N closures below that level
  never cross shards and only M-N ``parts``/``refTo`` edges do.
  Clustering-as-placement is exactly the benchmark axis Darmont's
  critique says object-database benchmarks should expose.

Both policies are pure functions of the uid (plus static config): the
router and every shard server can evaluate them independently with no
directory service, and a uid's home never changes during a run.

Hashing uses :func:`hashlib.blake2b` digests, **not** Python's
``hash()``, so placement is stable across processes and unaffected by
``PYTHONHASHSEED`` — a requirement for deterministic benchmarks.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List

from repro.errors import ConfigurationError
from repro.netsim.config import ShardConfig


def _digest(token: str) -> int:
    """A 64-bit deterministic digest of ``token``."""
    return int.from_bytes(
        hashlib.blake2b(token.encode("ascii"), digest_size=8).digest(),
        "big",
    )


class Placement:
    """Maps every OID to the shard that owns it."""

    def __init__(self, shards: int) -> None:
        if shards < 1:
            raise ConfigurationError(
                f"placement needs at least one shard, got {shards}"
            )
        self.shards = shards

    def shard_of(self, uid: int) -> int:
        """The owning shard index (0 .. shards-1) for one uid."""
        raise NotImplementedError

    def partition(self, uids: Iterable[int]) -> Dict[int, List[int]]:
        """Group uids by owning shard, preserving iteration order.

        Only shards that own at least one uid appear in the result —
        the router sends no empty requests.
        """
        groups: Dict[int, List[int]] = {}
        for uid in uids:
            groups.setdefault(self.shard_of(uid), []).append(uid)
        return groups


class HashPlacement(Placement):
    """Consistent hashing with virtual nodes.

    Each shard contributes ``virtual_nodes`` points on a 64-bit ring;
    a uid belongs to the first ring point clockwise of its own digest.
    Consistent hashing (rather than plain ``uid % shards``) keeps the
    policy honest about what a production store would do — adding a
    shard moves only ~1/N of the keys — and the virtual nodes smooth
    the per-shard load to within a few percent.
    """

    def __init__(self, shards: int, virtual_nodes: int = 64) -> None:
        super().__init__(shards)
        if virtual_nodes < 1:
            raise ConfigurationError(
                f"virtual_nodes must be >= 1, got {virtual_nodes}"
            )
        self.virtual_nodes = virtual_nodes
        points: List[tuple] = []
        for shard in range(shards):
            for vnode in range(virtual_nodes):
                points.append((_digest(f"shard:{shard}:{vnode}"), shard))
        # Ties are impossible in practice (64-bit digests) but sort the
        # (point, shard) pairs so even a collision breaks the same way
        # everywhere.
        points.sort()
        self._points = [point for point, _shard in points]
        self._owners = [shard for _point, shard in points]

    def shard_of(self, uid: int) -> int:
        point = _digest(f"oid:{uid}")
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):
            index = 0  # wrap: past the last point means the first owner
        return self._owners[index]


class SubtreeAffinePlacement(Placement):
    """Co-locate 1-N closure subtrees using the generator's layout.

    The HyperModel generator allocates uids level by level from
    ``first_uid`` with a fixed fanout, wiring parent at (level, index
    ``i``) to children at indices ``[i*fanout, (i+1)*fanout)`` of the
    next level.  That makes a uid's (level, index) — and therefore its
    ancestor at any level — pure arithmetic:

        offset = uid - first_uid
        level  = the l with cum(l) <= offset < cum(l+1),
                 where cum(l) = (fanout**l - 1) / (fanout - 1)
        index  = offset - cum(level); ancestor index = index // fanout

    The shard is the ``affinity_level`` ancestor's index modulo the
    shard count: every node below one level-``affinity_level`` subtree
    shares that subtree's shard, so ``children`` closures below it are
    entirely shard-local and only M-N edges (``parts``, ``refTo`` —
    random across subtrees by construction) cross shards.  Uids
    outside the tree (named lists aside, e.g. a second structure's
    range) fall back to consistent hashing so the policy is total.
    """

    def __init__(
        self,
        shards: int,
        fanout: int = 5,
        first_uid: int = 1,
        affinity_level: int = 1,
        virtual_nodes: int = 64,
    ) -> None:
        super().__init__(shards)
        if fanout < 2:
            raise ConfigurationError(f"fanout must be >= 2, got {fanout}")
        if affinity_level < 0:
            raise ConfigurationError(
                f"affinity_level cannot be negative, got {affinity_level}"
            )
        self.fanout = fanout
        self.first_uid = first_uid
        self.affinity_level = affinity_level
        self._fallback = HashPlacement(shards, virtual_nodes)
        # cum[l] = number of uids strictly above level l (levels are
        # complete by construction); grown on demand for deep trees.
        self._cum = [0, 1]

    def _level_of(self, offset: int) -> int:
        cum = self._cum
        while cum[-1] <= offset:
            cum.append(cum[-1] + self.fanout ** (len(cum) - 1))
        return bisect.bisect_right(cum, offset) - 1

    def shard_of(self, uid: int) -> int:
        offset = uid - self.first_uid
        if offset < 0:
            return self._fallback.shard_of(uid)
        level = self._level_of(offset)
        index = offset - self._cum[level]
        while level > self.affinity_level:
            index //= self.fanout
            level -= 1
        return index % self.shards


def make_placement(config: ShardConfig) -> Placement:
    """Build the placement policy a :class:`ShardConfig` names."""
    if config.placement == "hash":
        return HashPlacement(config.shards, config.virtual_nodes)
    if config.placement == "affine":
        return SubtreeAffinePlacement(
            config.shards,
            fanout=config.fanout,
            first_uid=config.first_uid,
            affinity_level=config.affinity_level,
            virtual_nodes=config.virtual_nodes,
        )
    raise ConfigurationError(
        f"unknown placement policy {config.placement!r}"
    )
