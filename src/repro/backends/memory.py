"""The in-memory backend: direct object references, no persistence.

This is the reproduction's stand-in for the Smalltalk-80 image the
paper implemented the benchmark on: every relationship traversal is a
Python attribute access, commits are no-ops, and "references" are the
node objects themselves.  It provides the upper performance bound that
the persistent backends are compared against, and doubles as the
reference implementation that backend conformance tests are written
against.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.bitmap import Bitmap
from repro.core.interface import HyperModelDatabase, NodeRef
from repro.core.model import LinkAttributes, NodeData, NodeKind
from repro.obs import Instrumentation, resolve
from repro.errors import (
    DatabaseClosedError,
    InvalidOperationError,
    NodeNotFoundError,
)


class _MemoryNode:
    """One node of the in-memory graph.

    Relationship ends are direct references: ``children`` is an ordered
    list, ``parts``/``part_of`` unordered lists, and ``refs_to`` keeps
    (target, attributes) pairs with ``refs_from`` as the maintained
    inverse.
    """

    __slots__ = (
        "unique_id",
        "ten",
        "hundred",
        "million",
        "kind",
        "text",
        "bitmap",
        "structure_id",
        "children",
        "parent",
        "parts",
        "part_of",
        "refs_to",
        "refs_from",
    )

    def __init__(self, data: NodeData) -> None:
        self.unique_id = data.unique_id
        self.ten = data.ten
        self.hundred = data.hundred
        self.million = data.million
        self.kind = data.kind
        self.text = data.text
        self.bitmap = data.bitmap.copy() if data.bitmap is not None else None
        self.structure_id = data.structure_id
        self.children: List["_MemoryNode"] = []
        self.parent: Optional["_MemoryNode"] = None
        self.parts: List["_MemoryNode"] = []
        self.part_of: List["_MemoryNode"] = []
        self.refs_to: List[Tuple["_MemoryNode", LinkAttributes]] = []
        self.refs_from: List["_MemoryNode"] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<_MemoryNode uid={self.unique_id} kind={self.kind.value}>"


class MemoryDatabase(HyperModelDatabase):
    """A HyperModel database held entirely in process memory."""

    def __init__(
        self, instrumentation: Optional[Instrumentation] = None
    ) -> None:
        self.instrumentation = resolve(instrumentation)
        self._instr = self.instrumentation
        self._open = False
        self._by_uid: Dict[int, _MemoryNode] = {}
        self._insertion_order: List[_MemoryNode] = []
        self._node_lists: Dict[str, List[_MemoryNode]] = {}

    # -- lifecycle -------------------------------------------------------

    def open(self) -> None:
        self._open = True

    def close(self) -> None:
        """Close the handle.  The graph is retained: an in-memory
        database has no cold state to return to, which is exactly why
        the paper uses it as the warm-performance baseline."""
        self._open = False

    def commit(self) -> None:
        self._require_open()

    @property
    def is_open(self) -> bool:
        return self._open

    def _require_open(self) -> None:
        if not self._open:
            raise DatabaseClosedError("memory database is not open")

    def _node(self, ref: NodeRef) -> _MemoryNode:
        if not isinstance(ref, _MemoryNode):
            raise NodeNotFoundError(ref)
        return ref

    # -- creation ---------------------------------------------------------

    def create_node(self, data: NodeData) -> NodeRef:
        self._require_open()
        self._instr.count("backend.op.writes")
        if data.unique_id in self._by_uid:
            raise InvalidOperationError(
                f"duplicate uniqueId {data.unique_id}"
            )
        node = _MemoryNode(data)
        self._by_uid[data.unique_id] = node
        self._insertion_order.append(node)
        return node

    def add_child(self, parent: NodeRef, child: NodeRef) -> None:
        self._require_open()
        self._instr.count("backend.op.writes")
        parent_node, child_node = self._node(parent), self._node(child)
        if child_node.parent is not None:
            raise InvalidOperationError(
                f"node {child_node.unique_id} already has a parent"
            )
        parent_node.children.append(child_node)
        child_node.parent = parent_node

    def add_part(self, whole: NodeRef, part: NodeRef) -> None:
        self._require_open()
        self._instr.count("backend.op.writes")
        whole_node, part_node = self._node(whole), self._node(part)
        whole_node.parts.append(part_node)
        part_node.part_of.append(whole_node)

    def add_reference(
        self, source: NodeRef, target: NodeRef, attrs: LinkAttributes
    ) -> None:
        self._require_open()
        self._instr.count("backend.op.writes")
        source_node, target_node = self._node(source), self._node(target)
        source_node.refs_to.append((target_node, attrs))
        target_node.refs_from.append(source_node)

    # -- identity and attributes -------------------------------------------

    def lookup(self, unique_id: int) -> NodeRef:
        self._require_open()
        self._instr.count("backend.op.reads")
        try:
            return self._by_uid[unique_id]
        except KeyError:
            raise NodeNotFoundError(unique_id) from None

    def get_attribute(self, ref: NodeRef, name: str) -> int:
        self._require_open()
        self._instr.count("backend.op.reads")
        node = self._node(ref)
        if name == "uniqueId":
            return node.unique_id
        if name in ("ten", "hundred", "million"):
            return getattr(node, name)
        raise KeyError(f"unknown node attribute {name!r}")

    def set_attribute(self, ref: NodeRef, name: str, value: int) -> None:
        self._require_open()
        self._instr.count("backend.op.writes")
        node = self._node(ref)
        if name == "uniqueId":
            raise InvalidOperationError("uniqueId is immutable")
        if name not in ("ten", "hundred", "million"):
            raise KeyError(f"unknown node attribute {name!r}")
        setattr(node, name, value)

    def kind_of(self, ref: NodeRef) -> NodeKind:
        self._require_open()
        self._instr.count("backend.op.reads")
        return self._node(ref).kind

    def structure_of(self, ref: NodeRef) -> int:
        self._require_open()
        return self._node(ref).structure_id

    # -- range lookups -------------------------------------------------------

    def range_hundred(self, low: int, high: int) -> List[NodeRef]:
        self._require_open()
        self._instr.count("backend.op.scans")
        return [n for n in self._insertion_order if low <= n.hundred <= high]

    def range_million(self, low: int, high: int) -> List[NodeRef]:
        self._require_open()
        self._instr.count("backend.op.scans")
        return [n for n in self._insertion_order if low <= n.million <= high]

    # -- forward traversal ----------------------------------------------------

    def children(self, ref: NodeRef) -> List[NodeRef]:
        self._require_open()
        self._instr.count("backend.op.reads")
        return list(self._node(ref).children)

    def parts(self, ref: NodeRef) -> List[NodeRef]:
        self._require_open()
        self._instr.count("backend.op.reads")
        return list(self._node(ref).parts)

    def refs_to(self, ref: NodeRef) -> List[Tuple[NodeRef, LinkAttributes]]:
        self._require_open()
        self._instr.count("backend.op.reads")
        return list(self._node(ref).refs_to)

    # -- batched navigation ---------------------------------------------------

    def _batch(self, refs: Sequence[NodeRef]) -> List[_MemoryNode]:
        """Validate a frontier and account for the batch call."""
        nodes = [self._node(ref) for ref in refs]
        self._instr.count("backend.batch.calls")
        self._instr.count("backend.batch.items", len(nodes))
        self._instr.count("backend.op.reads")
        return nodes

    def children_many(self, refs: Sequence[NodeRef]) -> List[List[NodeRef]]:
        self._require_open()
        if not refs:
            return []
        return [list(n.children) for n in self._batch(refs)]

    def parts_many(self, refs: Sequence[NodeRef]) -> List[List[NodeRef]]:
        self._require_open()
        if not refs:
            return []
        return [list(n.parts) for n in self._batch(refs)]

    def refs_to_many(
        self, refs: Sequence[NodeRef]
    ) -> List[List[Tuple[NodeRef, LinkAttributes]]]:
        self._require_open()
        if not refs:
            return []
        return [list(n.refs_to) for n in self._batch(refs)]

    def get_attributes_many(
        self, refs: Sequence[NodeRef], name: str
    ) -> List[int]:
        self._require_open()
        if not refs:
            return []
        if name == "uniqueId":
            name = "unique_id"
        elif name not in ("ten", "hundred", "million"):
            raise KeyError(f"unknown node attribute {name!r}")
        return [getattr(n, name) for n in self._batch(refs)]

    # -- inverse traversal ------------------------------------------------------

    def parent(self, ref: NodeRef) -> Optional[NodeRef]:
        self._require_open()
        self._instr.count("backend.op.reads")
        return self._node(ref).parent

    def part_of(self, ref: NodeRef) -> List[NodeRef]:
        self._require_open()
        self._instr.count("backend.op.reads")
        return list(self._node(ref).part_of)

    def refs_from(self, ref: NodeRef) -> List[NodeRef]:
        self._require_open()
        self._instr.count("backend.op.reads")
        return list(self._node(ref).refs_from)

    # -- scan ----------------------------------------------------------------

    def scan_ten(self, structure_id: int = 1) -> int:
        self._require_open()
        self._instr.count("backend.op.scans")
        count = 0
        for node in self._insertion_order:
            if node.structure_id == structure_id:
                _ = node.ten
                count += 1
        return count

    def iter_nodes(self, structure_id: int = 1) -> Iterator[NodeRef]:
        self._require_open()
        for node in self._insertion_order:
            if node.structure_id == structure_id:
                yield node

    # -- content ----------------------------------------------------------------

    def get_text(self, ref: NodeRef) -> str:
        self._require_open()
        self._instr.count("backend.op.reads")
        node = self._node(ref)
        if node.kind is not NodeKind.TEXT:
            raise InvalidOperationError(
                f"node {node.unique_id} is not a text node"
            )
        return node.text  # type: ignore[return-value]

    def set_text(self, ref: NodeRef, text: str) -> None:
        self._require_open()
        self._instr.count("backend.op.writes")
        node = self._node(ref)
        if node.kind is not NodeKind.TEXT:
            raise InvalidOperationError(
                f"node {node.unique_id} is not a text node"
            )
        node.text = text

    def get_bitmap(self, ref: NodeRef) -> Bitmap:
        self._require_open()
        self._instr.count("backend.op.reads")
        node = self._node(ref)
        if node.kind is not NodeKind.FORM:
            raise InvalidOperationError(
                f"node {node.unique_id} is not a form node"
            )
        return node.bitmap  # type: ignore[return-value]

    def set_bitmap(self, ref: NodeRef, bitmap: Bitmap) -> None:
        self._require_open()
        self._instr.count("backend.op.writes")
        node = self._node(ref)
        if node.kind is not NodeKind.FORM:
            raise InvalidOperationError(
                f"node {node.unique_id} is not a form node"
            )
        node.bitmap = bitmap

    # -- result lists ---------------------------------------------------------------

    def store_node_list(self, name: str, refs: Sequence[NodeRef]) -> None:
        self._require_open()
        self._instr.count("backend.op.writes")
        self._node_lists[name] = [self._node(r) for r in refs]

    def load_node_list(self, name: str) -> List[NodeRef]:
        self._require_open()
        self._instr.count("backend.op.reads")
        try:
            return list(self._node_lists[name])
        except KeyError:
            raise NodeNotFoundError(name) from None

    # -- introspection -----------------------------------------------------------------

    def node_count(self, structure_id: int = 1) -> int:
        self._require_open()
        return sum(
            1 for n in self._insertion_order if n.structure_id == structure_id
        )

    @property
    def backend_name(self) -> str:
        return "memory"
