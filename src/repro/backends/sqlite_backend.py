"""The relational backend: HyperModel mapped onto SQLite (/BLAH88/).

The paper's section 7 mentions an in-progress relational
implementation "following the methodology outlined in /BLAH88/"
(Blaha, Premerlani & Rumbaugh's OMT-to-relational mapping).  This
backend applies that methodology:

* one ``node`` table for the generalization hierarchy (single-table
  mapping with a ``kind`` discriminator and nullable subtype content
  split into ``text_content`` / ``form_content`` tables);
* the ordered 1-N aggregation as a ``parent`` foreign key plus a
  ``seq`` ordinal on the child (buried-association mapping for the
  one-end);
* the M-N aggregation and the attributed M-N association as join
  tables (``part`` and ``ref``), the latter carrying the offset
  attributes as columns;
* indexes on ``hundred``, ``million``, ``(parent, seq)`` and both join
  tables' traversal directions.

Node references are key values (the ``uid``), so op 02 (OID lookup) is
not applicable — ``supports_object_identity`` is False, exercising the
paper's "if applicable" clause.
"""

from __future__ import annotations

import sqlite3
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.bitmap import Bitmap
from repro.core.interface import HyperModelDatabase, NodeRef
from repro.core.model import LinkAttributes, NodeData, NodeKind
from repro.obs import Instrumentation, resolve
from repro.errors import (
    DatabaseClosedError,
    InvalidOperationError,
    NodeNotFoundError,
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS node (
    uid INTEGER PRIMARY KEY,
    kind TEXT NOT NULL,
    ten INTEGER NOT NULL,
    hundred INTEGER NOT NULL,
    million INTEGER NOT NULL,
    struct INTEGER NOT NULL DEFAULT 1,
    parent INTEGER,
    seq INTEGER
);
CREATE INDEX IF NOT EXISTS idx_node_hundred ON node(hundred);
CREATE INDEX IF NOT EXISTS idx_node_million ON node(million);
CREATE INDEX IF NOT EXISTS idx_node_parent ON node(parent, seq);
CREATE INDEX IF NOT EXISTS idx_node_struct ON node(struct);

CREATE TABLE IF NOT EXISTS part (
    whole INTEGER NOT NULL,
    part INTEGER NOT NULL,
    PRIMARY KEY (whole, part)
);
CREATE INDEX IF NOT EXISTS idx_part_part ON part(part);

CREATE TABLE IF NOT EXISTS ref (
    src INTEGER NOT NULL,
    dst INTEGER NOT NULL,
    offset_from INTEGER NOT NULL,
    offset_to INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_ref_src ON ref(src);
CREATE INDEX IF NOT EXISTS idx_ref_dst ON ref(dst);

CREATE TABLE IF NOT EXISTS text_content (
    uid INTEGER PRIMARY KEY,
    body TEXT NOT NULL
);

CREATE TABLE IF NOT EXISTS form_content (
    uid INTEGER PRIMARY KEY,
    width INTEGER NOT NULL,
    height INTEGER NOT NULL,
    bits BLOB NOT NULL
);

CREATE TABLE IF NOT EXISTS node_list (
    name TEXT NOT NULL,
    pos INTEGER NOT NULL,
    uid INTEGER NOT NULL,
    PRIMARY KEY (name, pos)
);
"""

_ATTR_COLUMNS = {"uniqueId": "uid", "ten": "ten", "hundred": "hundred", "million": "million"}

_KIND_NAMES = {
    NodeKind.NODE: "node",
    NodeKind.TEXT: "text",
    NodeKind.FORM: "form",
}
_NAMES_KIND = {name: kind for kind, name in _KIND_NAMES.items()}


class SqliteDatabase(HyperModelDatabase):
    """A HyperModel database in one SQLite file (or in memory).

    An in-memory database (``path=":memory:"``) survives :meth:`close`
    (the connection is retained) because closing it would destroy the
    data; file databases close their connection fully, which drops
    SQLite's page cache and makes the next open cold at the library
    level.
    """

    def __init__(
        self,
        path: str = ":memory:",
        instrumentation: Optional[Instrumentation] = None,
    ) -> None:
        self.path = path
        self.instrumentation = resolve(instrumentation)
        self._instr = self.instrumentation
        self._conn: Optional[sqlite3.Connection] = None
        self._memory_conn: Optional[sqlite3.Connection] = None

    # -- lifecycle -------------------------------------------------------

    def open(self) -> None:
        if self._conn is not None:
            return
        if self.path == ":memory:" and self._memory_conn is not None:
            self._conn = self._memory_conn
            return
        self._conn = sqlite3.connect(self.path)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.executescript(_SCHEMA)
        self._conn.commit()
        if self.path == ":memory:":
            self._memory_conn = self._conn

    def close(self) -> None:
        if self._conn is None:
            return
        self._conn.commit()
        if self.path != ":memory:":
            self._conn.close()
        self._conn = None

    def commit(self) -> None:
        self._require_open().commit()

    def abort(self) -> None:
        self._require_open().rollback()

    @property
    def is_open(self) -> bool:
        return self._conn is not None

    @property
    def supports_object_identity(self) -> bool:
        return False  # a key value is the only node reference

    def _require_open(self) -> sqlite3.Connection:
        if self._conn is None:
            raise DatabaseClosedError("sqlite database is not open")
        return self._conn

    def _row(self, query: str, params: tuple) -> tuple:
        self._instr.count("backend.op.reads")
        row = self._require_open().execute(query, params).fetchone()
        if row is None:
            raise NodeNotFoundError(params[0] if params else query)
        return row

    # -- creation ---------------------------------------------------------

    def create_node(self, data: NodeData) -> NodeRef:
        conn = self._require_open()
        self._instr.count("backend.op.writes")
        try:
            conn.execute(
                "INSERT INTO node (uid, kind, ten, hundred, million, struct)"
                " VALUES (?, ?, ?, ?, ?, ?)",
                (
                    data.unique_id,
                    _KIND_NAMES[data.kind],
                    data.ten,
                    data.hundred,
                    data.million,
                    data.structure_id,
                ),
            )
        except sqlite3.IntegrityError:
            raise InvalidOperationError(
                f"duplicate uniqueId {data.unique_id}"
            ) from None
        if data.kind is NodeKind.TEXT:
            conn.execute(
                "INSERT INTO text_content (uid, body) VALUES (?, ?)",
                (data.unique_id, data.text),
            )
        elif data.kind is NodeKind.FORM:
            conn.execute(
                "INSERT INTO form_content (uid, width, height, bits)"
                " VALUES (?, ?, ?, ?)",
                (
                    data.unique_id,
                    data.bitmap.width,
                    data.bitmap.height,
                    data.bitmap.to_bytes(),
                ),
            )
        return data.unique_id

    def add_child(self, parent: NodeRef, child: NodeRef) -> None:
        conn = self._require_open()
        self._instr.count("backend.op.writes")
        current = self._row(
            "SELECT parent FROM node WHERE uid = ?", (child,)
        )[0]
        if current is not None:
            raise InvalidOperationError(f"node {child} already has a parent")
        (seq,) = conn.execute(
            "SELECT COUNT(*) FROM node WHERE parent = ?", (parent,)
        ).fetchone()
        conn.execute(
            "UPDATE node SET parent = ?, seq = ? WHERE uid = ?",
            (parent, seq, child),
        )

    def add_part(self, whole: NodeRef, part: NodeRef) -> None:
        self._instr.count("backend.op.writes")
        self._require_open().execute(
            "INSERT INTO part (whole, part) VALUES (?, ?)", (whole, part)
        )

    def add_reference(
        self, source: NodeRef, target: NodeRef, attrs: LinkAttributes
    ) -> None:
        self._instr.count("backend.op.writes")
        self._require_open().execute(
            "INSERT INTO ref (src, dst, offset_from, offset_to)"
            " VALUES (?, ?, ?, ?)",
            (source, target, attrs.offset_from, attrs.offset_to),
        )

    # -- identity ---------------------------------------------------------

    def lookup(self, unique_id: int) -> NodeRef:
        self._row("SELECT uid FROM node WHERE uid = ?", (unique_id,))
        return unique_id

    def get_attribute(self, ref: NodeRef, name: str) -> int:
        try:
            column = _ATTR_COLUMNS[name]
        except KeyError:
            raise KeyError(f"unknown node attribute {name!r}") from None
        return self._row(f"SELECT {column} FROM node WHERE uid = ?", (ref,))[0]

    def set_attribute(self, ref: NodeRef, name: str, value: int) -> None:
        if name == "uniqueId":
            raise InvalidOperationError("uniqueId is immutable")
        if name not in ("ten", "hundred", "million"):
            raise KeyError(f"unknown node attribute {name!r}")
        self._instr.count("backend.op.writes")
        cursor = self._require_open().execute(
            f"UPDATE node SET {name} = ? WHERE uid = ?", (value, ref)
        )
        if cursor.rowcount == 0:
            raise NodeNotFoundError(ref)

    def kind_of(self, ref: NodeRef) -> NodeKind:
        return _NAMES_KIND[
            self._row("SELECT kind FROM node WHERE uid = ?", (ref,))[0]
        ]

    def structure_of(self, ref: NodeRef) -> int:
        return self._row("SELECT struct FROM node WHERE uid = ?", (ref,))[0]

    # -- range lookups ----------------------------------------------------

    def range_hundred(self, low: int, high: int) -> List[NodeRef]:
        self._instr.count("backend.op.scans")
        return [
            row[0]
            for row in self._require_open().execute(
                "SELECT uid FROM node WHERE hundred BETWEEN ? AND ?",
                (low, high),
            )
        ]

    def range_million(self, low: int, high: int) -> List[NodeRef]:
        self._instr.count("backend.op.scans")
        return [
            row[0]
            for row in self._require_open().execute(
                "SELECT uid FROM node WHERE million BETWEEN ? AND ?",
                (low, high),
            )
        ]

    # -- forward traversal -------------------------------------------------

    def children(self, ref: NodeRef) -> List[NodeRef]:
        self._instr.count("backend.op.reads")
        return [
            row[0]
            for row in self._require_open().execute(
                "SELECT uid FROM node WHERE parent = ? ORDER BY seq", (ref,)
            )
        ]

    def parts(self, ref: NodeRef) -> List[NodeRef]:
        self._instr.count("backend.op.reads")
        # ORDER BY pins the (semantically unordered) M-N set to the same
        # deterministic order parts_many produces, so batch and per-item
        # paths are byte-identical.
        return [
            row[0]
            for row in self._require_open().execute(
                "SELECT part FROM part WHERE whole = ? ORDER BY part", (ref,)
            )
        ]

    def refs_to(self, ref: NodeRef) -> List[Tuple[NodeRef, LinkAttributes]]:
        self._instr.count("backend.op.reads")
        return [
            (dst, LinkAttributes(offset_from, offset_to))
            for dst, offset_from, offset_to in self._require_open().execute(
                "SELECT dst, offset_from, offset_to FROM ref WHERE src = ?"
                " ORDER BY rowid",
                (ref,),
            )
        ]

    # -- batched navigation ---------------------------------------------------

    #: Keys per ``IN (...)`` clause; comfortably under SQLite's host
    #: parameter limit (999 in conservative builds).
    _IN_CHUNK = 500

    def _in_chunks(self, keys: List[NodeRef]) -> Iterator[List[NodeRef]]:
        for start in range(0, len(keys), self._IN_CHUNK):
            yield keys[start : start + self._IN_CHUNK]

    def _batch_count(self, refs: Sequence[NodeRef]) -> None:
        self._instr.count("backend.batch.calls")
        self._instr.count("backend.batch.items", len(refs))

    def children_many(self, refs: Sequence[NodeRef]) -> List[List[NodeRef]]:
        """All frontier children in one ``IN (...)`` query per chunk."""
        conn = self._require_open()
        if not refs:
            return []
        self._batch_count(refs)
        by_parent: dict = {ref: [] for ref in refs}
        for chunk in self._in_chunks(sorted(set(refs))):
            self._instr.count("backend.op.reads")
            marks = ",".join("?" * len(chunk))
            for parent, uid in conn.execute(
                f"SELECT parent, uid FROM node WHERE parent IN ({marks})"
                " ORDER BY parent, seq",
                tuple(chunk),
            ):
                by_parent[parent].append(uid)
        return [list(by_parent[ref]) for ref in refs]

    def parts_many(self, refs: Sequence[NodeRef]) -> List[List[NodeRef]]:
        conn = self._require_open()
        if not refs:
            return []
        self._batch_count(refs)
        by_whole: dict = {ref: [] for ref in refs}
        for chunk in self._in_chunks(sorted(set(refs))):
            self._instr.count("backend.op.reads")
            marks = ",".join("?" * len(chunk))
            for whole, part in conn.execute(
                f"SELECT whole, part FROM part WHERE whole IN ({marks})"
                " ORDER BY whole, part",
                tuple(chunk),
            ):
                by_whole[whole].append(part)
        return [list(by_whole[ref]) for ref in refs]

    def refs_to_many(
        self, refs: Sequence[NodeRef]
    ) -> List[List[Tuple[NodeRef, LinkAttributes]]]:
        conn = self._require_open()
        if not refs:
            return []
        self._batch_count(refs)
        by_src: dict = {ref: [] for ref in refs}
        for chunk in self._in_chunks(sorted(set(refs))):
            self._instr.count("backend.op.reads")
            marks = ",".join("?" * len(chunk))
            for src, dst, offset_from, offset_to in conn.execute(
                f"SELECT src, dst, offset_from, offset_to FROM ref"
                f" WHERE src IN ({marks}) ORDER BY rowid",
                tuple(chunk),
            ):
                by_src[src].append((dst, LinkAttributes(offset_from, offset_to)))
        return [list(by_src[ref]) for ref in refs]

    def get_attributes_many(
        self, refs: Sequence[NodeRef], name: str
    ) -> List[int]:
        conn = self._require_open()
        try:
            column = _ATTR_COLUMNS[name]
        except KeyError:
            raise KeyError(f"unknown node attribute {name!r}") from None
        if not refs:
            return []
        self._batch_count(refs)
        values: dict = {}
        for chunk in self._in_chunks(sorted(set(refs))):
            self._instr.count("backend.op.reads")
            marks = ",".join("?" * len(chunk))
            for uid, value in conn.execute(
                f"SELECT uid, {column} FROM node WHERE uid IN ({marks})",
                tuple(chunk),
            ):
                values[uid] = value
        out = []
        for ref in refs:
            if ref not in values:
                raise NodeNotFoundError(ref)
            out.append(values[ref])
        return out

    # -- inverse traversal ---------------------------------------------------

    def parent(self, ref: NodeRef) -> Optional[NodeRef]:
        return self._row("SELECT parent FROM node WHERE uid = ?", (ref,))[0]

    def part_of(self, ref: NodeRef) -> List[NodeRef]:
        self._instr.count("backend.op.reads")
        return [
            row[0]
            for row in self._require_open().execute(
                "SELECT whole FROM part WHERE part = ?", (ref,)
            )
        ]

    def refs_from(self, ref: NodeRef) -> List[NodeRef]:
        self._instr.count("backend.op.reads")
        return [
            row[0]
            for row in self._require_open().execute(
                "SELECT src FROM ref WHERE dst = ?", (ref,)
            )
        ]

    # -- scan ------------------------------------------------------------------

    def scan_ten(self, structure_id: int = 1) -> int:
        self._instr.count("backend.op.scans")
        count = 0
        for (_ten,) in self._require_open().execute(
            "SELECT ten FROM node WHERE struct = ?", (structure_id,)
        ):
            count += 1
        return count

    def iter_nodes(self, structure_id: int = 1) -> Iterator[NodeRef]:
        for (uid,) in self._require_open().execute(
            "SELECT uid FROM node WHERE struct = ?", (structure_id,)
        ):
            yield uid

    # -- content -----------------------------------------------------------------

    def get_text(self, ref: NodeRef) -> str:
        self._instr.count("backend.op.reads")
        row = self._require_open().execute(
            "SELECT body FROM text_content WHERE uid = ?", (ref,)
        ).fetchone()
        if row is None:
            raise InvalidOperationError(f"node {ref} is not a text node")
        return row[0]

    def set_text(self, ref: NodeRef, text: str) -> None:
        self._instr.count("backend.op.writes")
        cursor = self._require_open().execute(
            "UPDATE text_content SET body = ? WHERE uid = ?", (text, ref)
        )
        if cursor.rowcount == 0:
            raise InvalidOperationError(f"node {ref} is not a text node")

    def get_bitmap(self, ref: NodeRef) -> Bitmap:
        self._instr.count("backend.op.reads")
        row = self._require_open().execute(
            "SELECT width, height, bits FROM form_content WHERE uid = ?",
            (ref,),
        ).fetchone()
        if row is None:
            raise InvalidOperationError(f"node {ref} is not a form node")
        return Bitmap.from_bytes(row[0], row[1], row[2])

    def set_bitmap(self, ref: NodeRef, bitmap: Bitmap) -> None:
        self._instr.count("backend.op.writes")
        cursor = self._require_open().execute(
            "UPDATE form_content SET width = ?, height = ?, bits = ?"
            " WHERE uid = ?",
            (bitmap.width, bitmap.height, bitmap.to_bytes(), ref),
        )
        if cursor.rowcount == 0:
            raise InvalidOperationError(f"node {ref} is not a form node")

    # -- result lists ----------------------------------------------------------------

    def store_node_list(self, name: str, refs: Sequence[NodeRef]) -> None:
        conn = self._require_open()
        self._instr.count("backend.op.writes")
        conn.execute("DELETE FROM node_list WHERE name = ?", (name,))
        conn.executemany(
            "INSERT INTO node_list (name, pos, uid) VALUES (?, ?, ?)",
            [(name, pos, ref) for pos, ref in enumerate(refs)],
        )

    def load_node_list(self, name: str) -> List[NodeRef]:
        self._instr.count("backend.op.reads")
        rows = self._require_open().execute(
            "SELECT uid FROM node_list WHERE name = ? ORDER BY pos", (name,)
        ).fetchall()
        if not rows:
            raise NodeNotFoundError(name)
        return [row[0] for row in rows]

    # -- introspection ------------------------------------------------------------------

    def node_count(self, structure_id: int = 1) -> int:
        return self._require_open().execute(
            "SELECT COUNT(*) FROM node WHERE struct = ?", (structure_id,)
        ).fetchone()[0]

    @property
    def backend_name(self) -> str:
        return "sqlite" if self.path == ":memory:" else "sqlite-file"
