"""Backend registry: build any HyperModel backend by name.

Backends are registered as :class:`BackendSpec` entries through
:func:`register_backend` and constructed with :func:`create_backend`.
Factories import their backend module lazily so importing the registry
never pulls in subsystems the caller does not use.  The registry is
the single place the harness, the CLI, the examples and the tests
obtain backends from — and it is *open*: external code can register
its own backend under a new name and every harness entry point picks
it up.

Construction is uniform: ``create_backend(name, path=None, **options)``
forwards ``path`` plus any keyword options to the backend factory, so
variants like ``oodb-unclustered`` are plain registrations with
``default_options={"clustered": False}`` instead of one-off wrapper
functions.  Every built-in backend accepts an ``instrumentation``
option (see :mod:`repro.obs`).  The engine-file backends (``oodb``,
``oodb-unclustered``) additionally accept ``vfs=`` (the storage I/O
seam of :mod:`repro.engine.vfs`, used for deterministic fault
injection and I/O counting) and ``group_commit=`` /
``group_commit_size=`` (batched commit fsyncs); the ``clientserver``
backend takes one typed ``network=``
:class:`~repro.netsim.config.NetworkConfig` bundling the latency and
fault models, cache size, retry policy, closure push-down and the
concurrency mode (``clientserver-bfs`` is the
``NetworkConfig(pushdown=False)`` ablation, mirroring
``oodb-unclustered``).  The old per-knob keywords (``fault_model=``,
``rpc_retries=``, ``rpc_backoff_seconds=``, ``pushdown=``,
``readahead_depth=``, ``cache_capacity=``, ``latency=``) still forward
for one release behind a ``DeprecationWarning``.

The legacy private ``_FACTORIES`` dict is retained as a deprecated
read-only view for code that used to reach into it; it warns on
access and will be removed.
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional

from repro.core.interface import HyperModelDatabase
from repro.errors import ConfigurationError
from repro.netsim.config import (
    NetworkConfig,
    ReplicationConfig,
    ShardConfig,
)

#: A mapping of keyword options forwarded to a backend factory
#: (``cache_pages=...``, ``clustered=...``, ``instrumentation=...`` …).
BackendOptions = Mapping[str, Any]

#: A backend factory: receives the filesystem path (or ``None``) plus
#: the merged keyword options and returns a *closed* backend instance.
BackendFactory = Callable[..., HyperModelDatabase]


@dataclasses.dataclass(frozen=True)
class BackendSpec:
    """One registered backend.

    Attributes:
        name: the registry key accepted by :func:`create_backend`.
        factory: callable ``factory(path, **options)`` returning a
            closed :class:`HyperModelDatabase`.
        needs_path: whether ``create_backend`` must be given a
            filesystem path for this backend.
        default_options: options merged *under* the caller's keyword
            options (the caller wins on conflict).  This is how ablation
            variants are expressed without wrapper functions.
        description: one line for ``repro info`` and error messages.
    """

    name: str
    factory: BackendFactory
    needs_path: bool = False
    default_options: Mapping[str, Any] = dataclasses.field(
        default_factory=dict
    )
    description: str = ""


_REGISTRY: Dict[str, BackendSpec] = {}


def register_backend(
    name: str,
    factory: BackendFactory,
    *,
    needs_path: bool = False,
    default_options: Optional[BackendOptions] = None,
    description: str = "",
    replace: bool = False,
) -> BackendSpec:
    """Register (or re-register) a backend factory under ``name``.

    Args:
        name: registry key; must be new unless ``replace=True``.
        factory: ``factory(path, **options) -> HyperModelDatabase``.
        needs_path: require a path at :func:`create_backend` time.
        default_options: options applied beneath the caller's.
        description: short human-readable summary.
        replace: allow overwriting an existing registration.

    Returns:
        The stored :class:`BackendSpec`.

    Raises:
        ConfigurationError: if ``name`` is taken and not ``replace``.
    """
    if name in _REGISTRY and not replace:
        raise ConfigurationError(
            f"backend {name!r} is already registered; pass replace=True"
            " to overwrite"
        )
    spec = BackendSpec(
        name=name,
        factory=factory,
        needs_path=needs_path,
        default_options=dict(default_options or {}),
        description=description,
    )
    _REGISTRY[name] = spec
    return spec


def unregister_backend(name: str) -> None:
    """Remove a registration (primarily for tests of the registry)."""
    _REGISTRY.pop(name, None)


def get_backend_spec(name: str) -> BackendSpec:
    """Return the :class:`BackendSpec` registered under ``name``.

    Raises:
        ConfigurationError: for an unknown name.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown backend {name!r}; available: {', '.join(_REGISTRY)}"
        ) from None


def available_backends() -> List[str]:
    """Names accepted by :func:`create_backend`, in registry order."""
    return list(_REGISTRY)


def backend_specs() -> List[BackendSpec]:
    """All registered specs, in registry order."""
    return list(_REGISTRY.values())


def create_backend(
    name: str, path: Optional[str] = None, **options: Any
) -> HyperModelDatabase:
    """Construct a closed backend instance by registry name.

    Args:
        name: one of :func:`available_backends`.
        path: filesystem location for file-backed backends; ignored by
            purely in-memory ones.
        **options: backend-specific keyword options, merged over the
            spec's ``default_options`` (caller wins).  All built-in
            backends accept ``instrumentation=`` here.

    Raises:
        ConfigurationError: for an unknown name or a missing required
            path.
    """
    spec = get_backend_spec(name)
    if spec.needs_path and path is None:
        raise ConfigurationError(f"{name} backend requires a path")
    merged: Dict[str, Any] = dict(spec.default_options)
    merged.update(options)
    return spec.factory(path, **merged)


# ----------------------------------------------------------------------
# Built-in backends (lazy imports inside the factories)
# ----------------------------------------------------------------------


def _memory_factory(
    path: Optional[str], **options: Any
) -> HyperModelDatabase:
    from repro.backends.memory import MemoryDatabase

    return MemoryDatabase(**options)


def _sqlite_factory(
    path: Optional[str], **options: Any
) -> HyperModelDatabase:
    from repro.backends.sqlite_backend import SqliteDatabase

    return SqliteDatabase(path or ":memory:", **options)


def _sqlite_file_factory(
    path: Optional[str], **options: Any
) -> HyperModelDatabase:
    from repro.backends.sqlite_backend import SqliteDatabase

    return SqliteDatabase(path, **options)


def _oodb_factory(path: Optional[str], **options: Any) -> HyperModelDatabase:
    from repro.backends.oodb import OodbDatabase

    return OodbDatabase(path, **options)


def _clientserver_factory(
    path: Optional[str], **options: Any
) -> HyperModelDatabase:
    from repro.backends.clientserver import ClientServerDatabase

    return ClientServerDatabase(path, **options)


register_backend(
    "memory",
    _memory_factory,
    description="in-process object graph (the Smalltalk-image bound)",
)
register_backend(
    "sqlite",
    _sqlite_factory,
    description="relational mapping on sqlite3 (in-memory by default)",
)
register_backend(
    "sqlite-file",
    _sqlite_file_factory,
    needs_path=True,
    description="relational mapping on a sqlite3 file",
)
register_backend(
    "oodb",
    _oodb_factory,
    needs_path=True,
    description="from-scratch paged object engine, 1-N clustered",
)
register_backend(
    "oodb-unclustered",
    _oodb_factory,
    needs_path=True,
    default_options={"clustered": False},
    description="paged object engine with clustering disabled (ablation)",
)
register_backend(
    "clientserver",
    _clientserver_factory,
    description=(
        "workstation cache over a simulated object server"
        " (closure push-down on)"
    ),
)
register_backend(
    "clientserver-bfs",
    _clientserver_factory,
    default_options={"network": NetworkConfig(pushdown=False)},
    description=(
        "client/server with push-down disabled: one batch RPC per"
        " closure level (ablation)"
    ),
)
register_backend(
    "clientserver-sharded-hash",
    _clientserver_factory,
    default_options={
        "network": NetworkConfig(
            sharding=ShardConfig(shards=2, placement="hash")
        )
    },
    description=(
        "client/server over 2 shards, consistent-hash placement"
        " (scatter-gather push-down, 2PC commits)"
    ),
)
register_backend(
    "clientserver-sharded-affine",
    _clientserver_factory,
    default_options={
        "network": NetworkConfig(
            sharding=ShardConfig(shards=2, placement="affine")
        )
    },
    description=(
        "client/server over 2 shards, subtree-affine placement"
        " (1-N closures stay shard-local)"
    ),
)
register_backend(
    "clientserver-sharded-occ",
    _clientserver_factory,
    default_options={
        "network": NetworkConfig(
            concurrency="optimistic",
            sharding=ShardConfig(shards=2, placement="hash"),
        )
    },
    description=(
        "client/server over 2 hash-placed shards with optimistic"
        " concurrency: commits validate via commit_batch, so"
        " cross-shard write sets exercise the two-phase commit path"
        " (the backend to trace 2PC with)"
    ),
)
register_backend(
    "clientserver-replicated",
    _clientserver_factory,
    default_options={
        "network": NetworkConfig(
            replication=ReplicationConfig(replicas=2)
        )
    },
    description=(
        "client/server over 1 primary + 2 WAL-shipping replicas:"
        " reads route to replicas under session LSN tokens, writes"
        " land on the primary"
    ),
)


# ----------------------------------------------------------------------
# Deprecated legacy surface
# ----------------------------------------------------------------------


class _DeprecatedFactories(Mapping):
    """Read-only, warning view emulating the old ``_FACTORIES`` dict.

    Old code did ``_FACTORIES[name](path)``; each value here is a
    single-argument callable delegating to :func:`create_backend`.
    """

    def _warn(self) -> None:
        warnings.warn(
            "_FACTORIES is deprecated; use register_backend() /"
            " create_backend() instead",
            DeprecationWarning,
            stacklevel=3,
        )

    def __getitem__(self, name: str) -> Callable[..., HyperModelDatabase]:
        self._warn()
        if name not in _REGISTRY:
            raise KeyError(name)
        return lambda path=None, **options: create_backend(
            name, path, **options
        )

    def __iter__(self) -> Iterator[str]:
        self._warn()
        return iter(list(_REGISTRY))

    def __len__(self) -> int:
        self._warn()
        return len(_REGISTRY)


_FACTORIES = _DeprecatedFactories()
