"""Backend factory: build any HyperModel backend by name.

Backends are constructed lazily so importing the registry never pulls
in subsystems the caller does not use.  The registry is the single
place the harness, the CLI and the examples obtain backends from.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.interface import HyperModelDatabase
from repro.errors import ConfigurationError


def _make_memory(path: Optional[str]) -> HyperModelDatabase:
    from repro.backends.memory import MemoryDatabase

    return MemoryDatabase()


def _make_sqlite(path: Optional[str]) -> HyperModelDatabase:
    from repro.backends.sqlite_backend import SqliteDatabase

    return SqliteDatabase(path or ":memory:")


def _make_sqlite_file(path: Optional[str]) -> HyperModelDatabase:
    from repro.backends.sqlite_backend import SqliteDatabase

    if path is None:
        raise ConfigurationError("sqlite-file backend requires a path")
    return SqliteDatabase(path)


def _make_oodb(path: Optional[str]) -> HyperModelDatabase:
    from repro.backends.oodb import OodbDatabase

    if path is None:
        raise ConfigurationError("oodb backend requires a path")
    return OodbDatabase(path)


def _make_oodb_unclustered(path: Optional[str]) -> HyperModelDatabase:
    from repro.backends.oodb import OodbDatabase

    if path is None:
        raise ConfigurationError("oodb-unclustered backend requires a path")
    return OodbDatabase(path, clustered=False)


def _make_clientserver(path: Optional[str]) -> HyperModelDatabase:
    from repro.backends.clientserver import ClientServerDatabase

    return ClientServerDatabase(path)


_FACTORIES: Dict[str, Callable[[Optional[str]], HyperModelDatabase]] = {
    "memory": _make_memory,
    "sqlite": _make_sqlite,
    "sqlite-file": _make_sqlite_file,
    "oodb": _make_oodb,
    "oodb-unclustered": _make_oodb_unclustered,
    "clientserver": _make_clientserver,
}


def available_backends() -> List[str]:
    """Names accepted by :func:`create_backend`, in registry order."""
    return list(_FACTORIES)


def create_backend(name: str, path: Optional[str] = None) -> HyperModelDatabase:
    """Construct a closed backend instance by registry name.

    Args:
        name: one of :func:`available_backends`.
        path: filesystem location for file-backed backends; ignored by
            purely in-memory ones.

    Raises:
        ConfigurationError: for an unknown name or a missing required
            path.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown backend {name!r}; available: {', '.join(_FACTORIES)}"
        ) from None
    return factory(path)
