"""Database backends implementing the HyperModel interface.

Four backends reproduce the architectural spectrum the paper compares:

* :mod:`repro.backends.memory` — direct object references, the
  Smalltalk-80-image upper bound;
* :mod:`repro.backends.sqlite_backend` — a relational mapping on
  ``sqlite3`` following the /BLAH88/ methodology;
* :mod:`repro.backends.oodb` — the from-scratch paged object database
  of :mod:`repro.engine`, with 1-N clustering and B+tree indexes;
* :mod:`repro.backends.clientserver` — any of the above behind a
  simulated workstation/server link with an object cache (R6/R7).

:func:`repro.backends.registry.create_backend` builds any of them by
name.
"""

from repro.backends.registry import (
    BackendOptions,
    BackendSpec,
    available_backends,
    backend_specs,
    create_backend,
    get_backend_spec,
    register_backend,
    unregister_backend,
)

__all__ = [
    "BackendOptions",
    "BackendSpec",
    "available_backends",
    "backend_specs",
    "create_backend",
    "get_backend_spec",
    "register_backend",
    "unregister_backend",
]
