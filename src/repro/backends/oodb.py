"""The OODB backend: HyperModel on the from-scratch object engine.

This is the reproduction's analogue of the paper's GemStone/Vbase
implementations.  Nodes are persistent objects whose relationship ends
are OID lists stored *inside* the object (direct references, the
object-database idiom); ``uniqueId``, ``hundred`` and ``million`` carry
B+tree indexes; and the 1-N hierarchy is **clustered**: attaching a
child relocates it onto (or next to) its parent's page, so a cold
``closure1N`` faults contiguous pages — the effect section 5.2 predicts.

Construct with ``clustered=False`` for the ablation arm
(``oodb-unclustered`` in the registry).

Node references are engine OIDs, so op 02 (lookup by object id) is a
genuine direct dereference, distinct from the op 01 index lookup.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.bitmap import Bitmap
from repro.core.interface import HyperModelDatabase, NodeRef
from repro.core.model import LinkAttributes, NodeData, NodeKind
from repro.engine.catalog import FieldDefinition
from repro.engine.store import ObjectStore
from repro.obs import Instrumentation, resolve
from repro.errors import (
    InvalidOperationError,
    NodeNotFoundError,
    RecordNotFoundError,
)

_KIND_TO_CLASS = {
    NodeKind.NODE: "Node",
    NodeKind.TEXT: "TextNode",
    NodeKind.FORM: "FormNode",
}
_CLASS_TO_KIND = {name: kind for kind, name in _KIND_TO_CLASS.items()}


class OodbDatabase(HyperModelDatabase):
    """A HyperModel database stored in one engine file.

    ``sync_commits`` defaults to ``False``: commits flush through the
    OS but skip the per-commit ``fsync``, which is the conventional
    setting for benchmarking (it measures the engine, not the disk's
    flush latency).  Deployments that need power-loss durability should
    pass ``sync_commits=True``; crash *consistency* (process death) is
    guaranteed either way by the write-ahead log.

    ``vfs`` injects the engine's file-system seam (see
    :mod:`repro.engine.vfs`): ``create_backend("oodb", path, vfs=...)``
    threads a fault-injecting or counting VFS through the page file,
    the WAL and the buffer-pool flush paths.  ``group_commit`` batches
    consecutive commit fsyncs (``docs/durability.md``).
    """

    def __init__(
        self,
        path: str,
        clustered: bool = True,
        cache_pages: int = 512,
        sync_commits: bool = False,
        versioned: bool = False,
        instrumentation: Optional[Instrumentation] = None,
        vfs=None,
        group_commit: bool = False,
        group_commit_size: int = 8,
    ) -> None:
        self.path = path
        self.instrumentation = resolve(instrumentation)
        self._store = ObjectStore(
            path,
            cache_pages=cache_pages,
            clustered=clustered,
            sync_commits=sync_commits,
            versioned=versioned,
            instrumentation=self.instrumentation,
            vfs=vfs,
            group_commit=group_commit,
            group_commit_size=group_commit_size,
        )
        self._clustered = clustered
        self._pending_uids: set = set()

    # -- lifecycle -------------------------------------------------------

    def open(self) -> None:
        self._store.open()
        self._ensure_schema()

    def close(self) -> None:
        """Commit, checkpoint and close the file: the next open is cold."""
        if self._store.is_open:
            self._store.commit()
            self._store.close()

    def commit(self) -> None:
        self._store.commit()
        self._pending_uids.clear()

    def abort(self) -> None:
        self._store.abort()
        self._pending_uids.clear()

    @property
    def is_open(self) -> bool:
        return self._store.is_open

    @property
    def store(self) -> ObjectStore:
        """The underlying engine store (for stats and ablations)."""
        return self._store

    def _ensure_schema(self) -> None:
        catalog = self._store.catalog
        if catalog.has_class("Node"):
            return
        self._store.define_class(
            "Node",
            [
                FieldDefinition("uniqueId"),
                FieldDefinition("ten"),
                FieldDefinition("hundred"),
                FieldDefinition("million"),
                FieldDefinition("structId", default=1),
                FieldDefinition("children", default=[]),
                FieldDefinition("parent", default=0),
                FieldDefinition("parts", default=[]),
                FieldDefinition("partOf", default=[]),
                FieldDefinition("refTo", default=[]),
                FieldDefinition("refFrom", default=[]),
            ],
        )
        self._store.define_class(
            "TextNode", [FieldDefinition("text", default="")], base="Node"
        )
        self._store.define_class(
            "FormNode",
            [
                FieldDefinition("width", default=0),
                FieldDefinition("height", default=0),
                FieldDefinition("bits", default=b"")
            ],
            base="Node",
        )
        self._store.define_class(
            "NodeList",
            [FieldDefinition("name", default=""), FieldDefinition("items", default=[])],
        )
        self._store.create_index("Node", "uniqueId")
        self._store.create_index("Node", "hundred")
        self._store.create_index("Node", "million")
        self._store.commit()

    # -- internals -------------------------------------------------------

    def _get(self, ref: NodeRef) -> dict:
        try:
            return self._store.get(int(ref))
        except RecordNotFoundError:
            raise NodeNotFoundError(ref) from None

    # -- creation ---------------------------------------------------------

    def create_node(self, data: NodeData) -> NodeRef:
        if (
            data.unique_id in self._pending_uids
            or self._store.index_lookup("Node", "uniqueId", data.unique_id)
        ):
            raise InvalidOperationError(f"duplicate uniqueId {data.unique_id}")
        self._pending_uids.add(data.unique_id)
        state = {
            "uniqueId": data.unique_id,
            "ten": data.ten,
            "hundred": data.hundred,
            "million": data.million,
            "structId": data.structure_id,
        }
        if data.kind is NodeKind.TEXT:
            state["text"] = data.text
        elif data.kind is NodeKind.FORM:
            state["width"] = data.bitmap.width
            state["height"] = data.bitmap.height
            state["bits"] = data.bitmap.to_bytes()
        return self._store.new(_KIND_TO_CLASS[data.kind], state)

    def add_child(self, parent: NodeRef, child: NodeRef) -> None:
        parent_state = self._get(parent)
        child_state = self._get(child)
        if child_state["parent"]:
            raise InvalidOperationError(
                f"node {child_state['uniqueId']} already has a parent"
            )
        children = list(parent_state["children"])
        children.append(int(child))
        self._store.update(int(parent), {"children": children})
        self._store.update(int(child), {"parent": int(parent)})
        if self._clustered:
            self._store.relocate_near(int(child), int(parent))

    def add_part(self, whole: NodeRef, part: NodeRef) -> None:
        whole_state = self._get(whole)
        part_state = self._get(part)
        self._store.update(
            int(whole), {"parts": list(whole_state["parts"]) + [int(part)]}
        )
        self._store.update(
            int(part), {"partOf": list(part_state["partOf"]) + [int(whole)]}
        )

    def add_reference(
        self, source: NodeRef, target: NodeRef, attrs: LinkAttributes
    ) -> None:
        source_state = self._get(source)
        target_state = self._get(target)
        refs = list(source_state["refTo"])
        refs.append([int(target), attrs.offset_from, attrs.offset_to])
        self._store.update(int(source), {"refTo": refs})
        self._store.update(
            int(target),
            {"refFrom": list(target_state["refFrom"]) + [int(source)]},
        )

    # -- identity ---------------------------------------------------------

    def lookup(self, unique_id: int) -> NodeRef:
        oids = self._store.index_lookup("Node", "uniqueId", unique_id)
        if not oids:
            raise NodeNotFoundError(unique_id)
        return oids[0]

    def get_attribute(self, ref: NodeRef, name: str) -> int:
        state = self._get(ref)
        if name not in ("uniqueId", "ten", "hundred", "million"):
            raise KeyError(f"unknown node attribute {name!r}")
        return state[name]

    def set_attribute(self, ref: NodeRef, name: str, value: int) -> None:
        if name == "uniqueId":
            raise InvalidOperationError("uniqueId is immutable")
        if name not in ("ten", "hundred", "million"):
            raise KeyError(f"unknown node attribute {name!r}")
        self._get(ref)  # existence check with the right error type
        self._store.update(int(ref), {name: value})

    def kind_of(self, ref: NodeRef) -> NodeKind:
        return _CLASS_TO_KIND[self._store.class_of(int(ref))]

    def structure_of(self, ref: NodeRef) -> int:
        return self._get(ref)["structId"]

    # -- range lookups ----------------------------------------------------

    def range_hundred(self, low: int, high: int) -> List[NodeRef]:
        return self._store.index_range("Node", "hundred", low, high)

    def range_million(self, low: int, high: int) -> List[NodeRef]:
        return self._store.index_range("Node", "million", low, high)

    # -- forward traversal -------------------------------------------------

    def children(self, ref: NodeRef) -> List[NodeRef]:
        return list(self._get(ref)["children"])

    def parts(self, ref: NodeRef) -> List[NodeRef]:
        return list(self._get(ref)["parts"])

    def refs_to(self, ref: NodeRef) -> List[Tuple[NodeRef, LinkAttributes]]:
        return [
            (target, LinkAttributes(offset_from, offset_to))
            for target, offset_from, offset_to in self._get(ref)["refTo"]
        ]

    # -- batched navigation ----------------------------------------------------

    def _get_many(self, refs: Sequence[NodeRef]) -> dict:
        """Batch state fetch keyed by oid, clustering-aware.

        Delegates to :meth:`ObjectStore.get_many`, which sorts the oids
        by heap page and prefetches the page set through the buffer
        pool — the traversal analogue of the 1-N clustering policy.
        """
        self.instrumentation.count("backend.batch.calls")
        self.instrumentation.count("backend.batch.items", len(refs))
        try:
            return self._store.get_many([int(r) for r in refs])
        except RecordNotFoundError as exc:
            raise NodeNotFoundError(exc.args[0] if exc.args else refs) from None

    def children_many(self, refs: Sequence[NodeRef]) -> List[List[NodeRef]]:
        if not refs:
            return []
        states = self._get_many(refs)
        return [list(states[int(r)]["children"]) for r in refs]

    def parts_many(self, refs: Sequence[NodeRef]) -> List[List[NodeRef]]:
        if not refs:
            return []
        states = self._get_many(refs)
        return [list(states[int(r)]["parts"]) for r in refs]

    def refs_to_many(
        self, refs: Sequence[NodeRef]
    ) -> List[List[Tuple[NodeRef, LinkAttributes]]]:
        if not refs:
            return []
        states = self._get_many(refs)
        return [
            [
                (target, LinkAttributes(offset_from, offset_to))
                for target, offset_from, offset_to in states[int(r)]["refTo"]
            ]
            for r in refs
        ]

    def get_attributes_many(
        self, refs: Sequence[NodeRef], name: str
    ) -> List[int]:
        if name not in ("uniqueId", "ten", "hundred", "million"):
            raise KeyError(f"unknown node attribute {name!r}")
        if not refs:
            return []
        states = self._get_many(refs)
        return [states[int(r)][name] for r in refs]

    # -- inverse traversal ---------------------------------------------------

    def parent(self, ref: NodeRef) -> Optional[NodeRef]:
        parent = self._get(ref)["parent"]
        return parent or None

    def part_of(self, ref: NodeRef) -> List[NodeRef]:
        return list(self._get(ref)["partOf"])

    def refs_from(self, ref: NodeRef) -> List[NodeRef]:
        return list(self._get(ref)["refFrom"])

    # -- scan ------------------------------------------------------------------

    def scan_ten(self, structure_id: int = 1) -> int:
        """Extent scan filtered by the structure tag.

        The paper forbids relying on *all* Node instances being the
        test structure; the filter on ``structId`` is the direct
        equivalent of the relational ``WHERE`` clause a multi-structure
        database needs.
        """
        count = 0
        for oid in self._store.scan_class("Node"):
            state = self._store.get(oid)
            if state["structId"] == structure_id:
                _ = state["ten"]
                count += 1
        return count

    def iter_nodes(self, structure_id: int = 1) -> Iterator[NodeRef]:
        for oid in self._store.scan_class("Node"):
            if self._store.get(oid)["structId"] == structure_id:
                yield oid

    # -- content -----------------------------------------------------------------

    def get_text(self, ref: NodeRef) -> str:
        if self._store.class_of(int(ref)) != "TextNode":
            raise InvalidOperationError(f"object {ref} is not a text node")
        return self._get(ref)["text"]

    def set_text(self, ref: NodeRef, text: str) -> None:
        if self._store.class_of(int(ref)) != "TextNode":
            raise InvalidOperationError(f"object {ref} is not a text node")
        self._store.update(int(ref), {"text": text})

    def get_bitmap(self, ref: NodeRef) -> Bitmap:
        if self._store.class_of(int(ref)) != "FormNode":
            raise InvalidOperationError(f"object {ref} is not a form node")
        state = self._get(ref)
        return Bitmap.from_bytes(state["width"], state["height"], state["bits"])

    def set_bitmap(self, ref: NodeRef, bitmap: Bitmap) -> None:
        if self._store.class_of(int(ref)) != "FormNode":
            raise InvalidOperationError(f"object {ref} is not a form node")
        self._store.update(
            int(ref),
            {
                "width": bitmap.width,
                "height": bitmap.height,
                "bits": bitmap.to_bytes(),
            },
        )

    # -- result lists ----------------------------------------------------------------

    def store_node_list(self, name: str, refs: Sequence[NodeRef]) -> None:
        existing = self._find_node_list(name)
        items = [int(r) for r in refs]
        if existing is None:
            self._store.new("NodeList", {"name": name, "items": items})
        else:
            self._store.update(existing, {"items": items})

    def load_node_list(self, name: str) -> List[NodeRef]:
        oid = self._find_node_list(name)
        if oid is None:
            raise NodeNotFoundError(name)
        return list(self._store.get(oid)["items"])

    def _find_node_list(self, name: str) -> Optional[int]:
        for oid in self._store.scan_class("NodeList", include_subclasses=False):
            if self._store.get(oid)["name"] == name:
                return oid
        return None

    # -- introspection ------------------------------------------------------------------

    def node_count(self, structure_id: int = 1) -> int:
        return sum(1 for _ in self.iter_nodes(structure_id))

    @property
    def backend_name(self) -> str:
        return "oodb" if self._clustered else "oodb-unclustered"

    def drop_cache(self) -> None:
        """Expose the engine's cold-cache hook to the harness."""
        self._store.commit()
        self._store.drop_cache()

    # -- maintenance (R10) -------------------------------------------------

    def collect_garbage(self, roots: Sequence[NodeRef]) -> "GcStats":
        """Delete nodes unreachable from ``roots`` (R10's GC).

        Reachability follows the *owning* directions — children, parts
        and outgoing references — plus every stored node list.  The
        inverse ends (parent, partOf, refFrom) do not keep a node
        alive; after the sweep, survivors' inverse lists are scrubbed
        of entries pointing at collected nodes.
        """
        from repro.engine.gc import GcStats, collect_garbage

        self._store.commit()

        def extract_refs(class_name: str, state: dict):
            if class_name == "NodeList":
                return list(state["items"])
            refs = list(state["children"]) + list(state["parts"])
            refs.extend(target for target, _f, _t in state["refTo"])
            return refs

        all_roots = [int(r) for r in roots]
        all_roots.extend(
            self._store.scan_class("NodeList", include_subclasses=False)
        )
        stats = collect_garbage(
            self._store, all_roots, extract_refs, classes=["Node"]
        )
        if stats.collected:
            self._scrub_dangling_inverses()
        self._store.commit()
        return stats

    def _scrub_dangling_inverses(self) -> None:
        """Drop parent/partOf/refFrom entries that point at dead OIDs."""
        for oid in list(self._store.scan_class("Node")):
            state = self._store.get(oid)
            changes = {}
            if state["parent"] and not self._store.exists(state["parent"]):
                changes["parent"] = 0
            part_of = [o for o in state["partOf"] if self._store.exists(o)]
            if len(part_of) != len(state["partOf"]):
                changes["partOf"] = part_of
            refs_from = [o for o in state["refFrom"] if self._store.exists(o)]
            if len(refs_from) != len(state["refFrom"]):
                changes["refFrom"] = refs_from
            if changes:
                self._store.update(oid, changes)

    def backup(self, path: str) -> None:
        """Snapshot the database file (R10 backup)."""
        self._store.backup(path)
