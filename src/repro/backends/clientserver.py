"""The client/server backend: a workstation cache over a remote server.

This backend realizes the R6 architecture the paper's protocol was
written for: node records live on an
:class:`~repro.netsim.server.ObjectServer`; the workstation keeps an
LRU :class:`~repro.netsim.cache.WorkstationCache` of fetched records
and a private write buffer of modified ones.  Reads hit the cache or
pay a simulated network fetch; :meth:`commit` uploads dirty records;
:meth:`close` clears the workstation cache (but not the server), which
is why the next operation sequence runs cold — the exact behaviour the
section 5.3 protocol measures.

Network time accrues on a virtual clock (see
:mod:`repro.netsim.latency`); the harness adds the clock delta to wall
time, so reported figures combine compute and simulated communication.
"""

from __future__ import annotations

import time
import warnings
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.bitmap import Bitmap
from repro.core.interface import HyperModelDatabase, NodeRef
from repro.core.model import LinkAttributes, NodeData, NodeKind
from repro.netsim.cache import WorkstationCache
from repro.netsim.config import NetworkConfig
from repro.netsim.faults import FaultModel
from repro.netsim.latency import LatencyModel, SimulatedClock
from repro.netsim.server import ObjectServer
from repro.obs import Instrumentation, TraceContext, resolve
from repro.replication.group import ReplicationGroup
from repro.replication.router import ReplicaRouter
from repro.sharding.router import ShardRouter
from repro.errors import (
    CommitConflictError,
    DatabaseClosedError,
    InvalidOperationError,
    NetworkError,
    NodeNotFoundError,
    RpcExhaustedError,
)

#: Legacy-kwarg combinations already warned about in this process: the
#: deprecation fires once per distinct combination, not once per call
#: (a benchmark constructing hundreds of clients must not spam it).
_WARNED_LEGACY: set = set()

_KIND_NAMES = {
    NodeKind.NODE: "node",
    NodeKind.TEXT: "text",
    NodeKind.FORM: "form",
}
_NAMES_KIND = {name: kind for kind, name in _KIND_NAMES.items()}


def _copy_record(record: Dict[str, Any]) -> Dict[str, Any]:
    """Copy a record including its nested relationship lists.

    A shallow ``dict()`` copy would share the children/parts/refTo
    lists with the source; a private edit would then silently mutate
    the cached (or even the server's) copy and survive an abort.
    """
    out: Dict[str, Any] = {}
    for key, value in record.items():
        if isinstance(value, list):
            out[key] = [
                list(item) if isinstance(item, list) else item
                for item in value
            ]
        else:
            out[key] = value
    return out


def _new_record(data: NodeData) -> Dict[str, Any]:
    record: Dict[str, Any] = {
        "uid": data.unique_id,
        "kind": _KIND_NAMES[data.kind],
        "ten": data.ten,
        "hundred": data.hundred,
        "million": data.million,
        "struct": data.structure_id,
        "children": [],
        "parent": 0,
        "parts": [],
        "partOf": [],
        "refTo": [],
        "refFrom": [],
    }
    if data.kind is NodeKind.TEXT:
        record["text"] = data.text
    elif data.kind is NodeKind.FORM:
        record["width"] = data.bitmap.width
        record["height"] = data.bitmap.height
        record["bits"] = data.bitmap.to_bytes()
    return record


class ClientServerDatabase(HyperModelDatabase):
    """A HyperModel database accessed through a simulated network.

    Configuration lives in one typed
    :class:`~repro.netsim.config.NetworkConfig` — latency and fault
    models, cache size, retry policy, push-down/readahead, and the
    concurrency mode (plain stores vs optimistic validation at
    commit).  The old per-knob keyword arguments (``cache_capacity=``,
    ``latency=``, ``fault_model=``, ``rpc_retries=``,
    ``rpc_backoff_seconds=``, ``pushdown=``, ``readahead_depth=``)
    still work for one release: each is folded into the config and
    emits a ``DeprecationWarning``.

    Args:
        path: unused (registry signature compatibility); the server
            lives in process memory and survives close/open.
        network: the typed network/cache/retry/concurrency settings
            (defaults to ``NetworkConfig()``).
        server: share an existing server between several client
            handles (the multi-user scenario).  A shared server keeps
            its own latency/fault models.
        instrumentation: counter/span/histogram sink.
        clock: the virtual clock this client's time (RPC latency
            histograms, retry backoff) is charged to.  Defaults to
            the server's clock — correct for a single client; the
            discrete-event scheduler gives each workstation its own.
        client_id: stable identity tag (``w00``, ...) carried on RPC
            spans and in trace contexts so multi-client traces stay
            attributable per client.
    """

    _LEGACY_OPTIONS = (
        "cache_capacity",
        "latency",
        "fault_model",
        "rpc_retries",
        "rpc_backoff_seconds",
        "pushdown",
        "readahead_depth",
    )

    def __init__(
        self,
        path: Optional[str] = None,
        network: Optional[NetworkConfig] = None,
        *,
        server: Optional[ObjectServer] = None,
        instrumentation: Optional[Instrumentation] = None,
        clock: Optional[SimulatedClock] = None,
        client_id: Optional[str] = None,
        cache_capacity: Optional[int] = None,
        latency: Optional[LatencyModel] = None,
        fault_model: Optional[FaultModel] = None,
        rpc_retries: Optional[int] = None,
        rpc_backoff_seconds: Optional[float] = None,
        pushdown: Optional[bool] = None,
        readahead_depth: Optional[int] = None,
    ) -> None:
        legacy = {
            name: value
            for name, value in (
                ("cache_capacity", cache_capacity),
                ("latency", latency),
                ("fault_model", fault_model),
                ("rpc_retries", rpc_retries),
                ("rpc_backoff_seconds", rpc_backoff_seconds),
                ("pushdown", pushdown),
                ("readahead_depth", readahead_depth),
            )
            if value is not None
        }
        if legacy:
            fingerprint = tuple(sorted(legacy))
            if fingerprint not in _WARNED_LEGACY:
                _WARNED_LEGACY.add(fingerprint)
                warnings.warn(
                    "ClientServerDatabase keyword option(s) "
                    + ", ".join(sorted(legacy))
                    + " are deprecated; pass network=NetworkConfig(...)"
                    " instead",
                    DeprecationWarning,
                    stacklevel=2,
                )
        network = (network or NetworkConfig()).replace(**legacy)
        self.network = network
        self.client_id = client_id
        self.pushdown = bool(network.pushdown)
        self.readahead_depth = network.readahead_depth
        self.rpc_retries = network.rpc_retries
        self.rpc_backoff_seconds = network.rpc_backoff_seconds
        self.optimistic = network.concurrency == "optimistic"
        self.instrumentation = resolve(instrumentation)
        sharding = network.sharding
        replication = network.replication
        if server is not None:
            self.simulated_clock = clock or server.clock
            if isinstance(server, ReplicationGroup):
                # Shared replication deployment: every client wraps the
                # group in its *own* router — the session LSN token and
                # the round-robin cursor are per-client state.
                self.server = ReplicaRouter(
                    server,
                    policy=(replication or server.config).policy,
                    instrumentation=self.instrumentation,
                )
            else:
                self.server = server
        elif replication is not None:
            # Private 1-primary + N-replica deployment; the router
            # presents the ObjectServer verb surface, so everything
            # below this branch is identical code either way.
            self.simulated_clock = clock or SimulatedClock()
            group = ReplicationGroup(
                replication,
                clock=self.simulated_clock,
                latency=network.latency,
                instrumentation=self.instrumentation,
                fault_model=network.fault_model,
            )
            self.server = ReplicaRouter(
                group,
                policy=replication.policy,
                instrumentation=self.instrumentation,
            )
        elif sharding is not None and sharding.shards > 1:
            # N-server deployment: the router presents the ObjectServer
            # verb surface, so everything below this branch — cache,
            # retries, trace propagation, commit protocol selection —
            # is identical code either way.
            self.simulated_clock = clock or SimulatedClock()
            self.server = ShardRouter(
                sharding,
                clock=self.simulated_clock,
                latency=network.latency,
                instrumentation=self.instrumentation,
                fault_model=network.fault_model,
                rpc_retries=network.rpc_retries,
                rpc_backoff_seconds=network.rpc_backoff_seconds,
            )
        else:
            self.simulated_clock = clock or SimulatedClock()
            self.server = ObjectServer(
                self.simulated_clock,
                network.latency,
                instrumentation=self.instrumentation,
                fault_model=network.fault_model,
            )
        self.cache = WorkstationCache(
            network.cache_capacity,
            instrumentation=self.instrumentation,
            name=client_id,
        )
        self.server.subscribe(self.cache)  # coherence invalidations
        self._local: Dict[int, Dict[str, Any]] = {}  # dirty write buffer
        self._local_lists: Dict[str, List[int]] = {}
        #: Optimistic bookkeeping: the freshest version this client has
        #: observed per uid, and the versions pinned by this
        #: transaction's first read of each uid (the read set).
        self._versions_seen: Dict[int, int] = {}
        self._txn_reads: Dict[int, int] = {}
        self._open = False

    # -- lifecycle -------------------------------------------------------

    def open(self) -> None:
        self._open = True

    def close(self) -> None:
        """Commit pending work and drop the workstation cache.

        The server keeps its data — reopening starts cold, per the
        section 5.3(e) protocol step.
        """
        if not self._open:
            return
        self.commit()
        self.cache.clear()
        self.cache.stats.reset()
        self._open = False

    def commit(self) -> None:
        """Publish this transaction's writes to the server.

        In the default mode every dirty record is uploaded with a
        last-writer-wins ``store`` (the single-user behaviour).  In
        optimistic mode (``NetworkConfig(concurrency="optimistic")``)
        the whole write set plus the transaction's read-set versions
        ship in **one** ``commit_batch`` request; the server validates
        first-committer-wins and either applies everything atomically
        or raises :class:`~repro.errors.CommitConflictError`, in which
        case this transaction's work is discarded, the stale cached
        copies are invalidated, and the caller decides whether to
        retry the transaction from the top.

        Either way, other clients' caches are invalidated for each
        published record (the server's coherence broadcast), so
        updates become visible everywhere on the next access.
        """
        self._require_open()
        if self.optimistic:
            self._commit_optimistic()
            return
        for uid, record in self._local.items():
            # A faulted store is retried by _rpc; the server raises the
            # fault before touching state, so the retry is idempotent.
            self._rpc(self.server.store, uid, record, from_cache=self.cache)
            self.cache.put(uid, record)
        self._local.clear()
        for name, uids in self._local_lists.items():
            self._rpc(self.server.store_list, name, uids)
        self._local_lists.clear()
        self._txn_reads.clear()

    def _commit_optimistic(self) -> None:
        """One validated ``commit_batch`` round trip (or a no-op)."""
        instr = self.instrumentation
        if not self._local and not self._local_lists:
            # A read-only transaction commits trivially: nothing to
            # validate against, nothing to ship.  The read set still
            # resets — the next transaction pins fresh versions.
            self._txn_reads.clear()
            return
        instr.count("backend.mp.commit.attempts")
        try:
            applied = self._rpc(
                self.server.commit_batch,
                self._local,
                self._txn_reads,
                self._local_lists,
                from_cache=self.cache,
            )
        except CommitConflictError as exc:
            # First-committer-wins: this transaction lost.  Drop its
            # work and the stale cached copies so a retry re-reads
            # current versions from the server.
            for uid in exc.conflicts:
                self.cache.invalidate(uid)
                self._versions_seen.pop(uid, None)
            self._local.clear()
            self._local_lists.clear()
            self._txn_reads.clear()
            raise
        for uid, version in applied.items():
            self._versions_seen[uid] = version
        for uid, record in self._local.items():
            self.cache.put(uid, record)
        self._local.clear()
        self._local_lists.clear()
        self._txn_reads.clear()

    def abort(self) -> None:
        """Discard the local write buffer (and the read set)."""
        self._local.clear()
        self._local_lists.clear()
        self._txn_reads.clear()

    @property
    def is_open(self) -> bool:
        return self._open

    def _require_open(self) -> None:
        if not self._open:
            raise DatabaseClosedError("client/server database is not open")

    # -- fault-tolerant RPC ----------------------------------------------

    def _rpc(self, func, *args, **kwargs):
        """Issue one server request with bounded retry and backoff.

        A request faulted by the server's
        :class:`~repro.netsim.faults.FaultModel` raises a
        :class:`~repro.errors.NetworkError`; this wrapper retries it up
        to ``rpc_retries`` times, charging an exponential backoff delay
        (``rpc_backoff_seconds`` doubling per attempt) to the simulated
        clock before each retry and counting every actual retry under
        ``backend.rpc.retries``.  When the budget runs out the last
        fault is wrapped in :class:`~repro.errors.RpcExhaustedError`.

        Observability per **attempt** (retries included, so faulted
        attempts are visible in traces and tails):

        * a client span ``rpc.<verb>`` is opened around the request;
        * the span's :class:`~repro.obs.TraceContext` (trace id + span
          sequence) rides in the request envelope — the server records
          its own span with a remote-parent link back to it;
        * the attempt's latency (wall + simulated network delta) lands
          in the ``backend.rpc.call`` histogram, in milliseconds.

        Application-level errors (``NodeNotFoundError`` and friends)
        are not network faults and propagate untouched.
        """
        attempt = 0
        instr = self.instrumentation
        clock = self.simulated_clock
        verb = getattr(func, "__name__", "call")
        span_name = "rpc." + verb
        while True:
            fault = None
            result = None
            span = instr.span(span_name, client=self.client_id)
            wall_start = time.perf_counter()
            sim_start = clock.now
            try:
                with span:
                    if instr.enabled:
                        # The request envelope: client span id + trace
                        # id, consumed by the server's next request.
                        self.server.accept_trace_context(
                            TraceContext(
                                instr.trace_id,
                                span.sequence,
                                client_id=self.client_id,
                            )
                        )
                    result = func(*args, **kwargs)
            except NetworkError as exc:
                fault = exc
            finally:
                instr.observe(
                    "backend.rpc.call",
                    (
                        (time.perf_counter() - wall_start)
                        + (clock.now - sim_start)
                    )
                    * 1000.0,
                )
            if fault is None:
                if self.optimistic:
                    # Version stamps of the records this reply carried
                    # (the in-process stand-in for per-record version
                    # fields a real wire format would embed).
                    self._versions_seen.update(
                        self.server.take_reply_versions()
                    )
                return result
            if attempt >= self.rpc_retries:
                raise RpcExhaustedError(
                    f"request still failing after {attempt} retries:"
                    f" {fault}"
                ) from fault
            backoff = self.rpc_backoff_seconds * (2 ** attempt)
            if backoff:
                clock.advance(backoff)
                instr.count("backend.rpc.backoff_ms", backoff * 1000.0)
            attempt += 1
            instr.count("backend.rpc.retries")

    # -- record access ------------------------------------------------------

    def _admit(self, reply: Dict[int, Dict[str, Any]]) -> None:
        """Bulk-admit a record-carrying server reply into the cache.

        Admission is in **server-reply order** (BFS order for the
        push-down verbs) through :meth:`WorkstationCache.put_many`, so
        eviction runs once per reply instead of once per record.
        """
        instr = self.instrumentation
        evicted = self.cache.put_many(reply.items())
        instr.count("cache.readahead.admitted", len(reply))
        if evicted:
            instr.count("cache.readahead.evicted", evicted)

    def _note_read(self, uid: int) -> None:
        """Pin a uid's first-read version into the transaction read set.

        ``setdefault`` keeps the *first* observed version: optimistic
        validation must check against what the transaction actually
        based its work on, not a later refresh.
        """
        if self.optimistic:
            self._txn_reads.setdefault(uid, self._versions_seen.get(uid, 0))

    def _fetch(self, uid: int) -> Dict[str, Any]:
        """Read a record: write buffer, then cache, then the network.

        With ``pushdown`` enabled the network leg is a **structural
        readahead**: the same single round trip that fetches the record
        also ships ``readahead_depth`` levels of its subtree/part
        graph, speculatively warming the cache for the navigation that
        a first touch almost always precedes.
        """
        record = self._local.get(uid)
        if record is not None:
            return record
        record = self.cache.get(uid)
        if record is not None:
            self._note_read(uid)
            return record
        if self.pushdown and self.readahead_depth > 0:
            self.instrumentation.count("cache.readahead.requests")
            reply = self._rpc(
                self.server.readahead,
                [uid],
                depth=self.readahead_depth,
                limit=self.cache.capacity,
            )  # one round trip, records in BFS order
            record = reply.get(uid)
            if record is None:
                raise NodeNotFoundError(uid)
            self._admit(reply)
            self._note_read(uid)
            return record
        record = self._rpc(self.server.fetch, uid)  # charges the clock
        self.cache.put(uid, record)
        self._note_read(uid)
        return record

    def _fetch_many(self, uids: Sequence[int]) -> Dict[int, Dict[str, Any]]:
        """Read a batch of records with **at most one** round trip.

        Resolution order matches :meth:`_fetch` per uid — write buffer,
        then workstation cache, then the network — but the network leg
        collapses to a single batch RPC carrying only the refs the
        first two layers missed (a partial cache hit ships the misses
        alone, see :meth:`WorkstationCache.get_many`).
        """
        records: Dict[int, Dict[str, Any]] = {}
        remaining: list = []
        seen = set()
        for uid in uids:
            if uid in seen:
                continue
            seen.add(uid)
            local = self._local.get(uid)
            if local is not None:
                records[uid] = local
            else:
                remaining.append(uid)
        if remaining:
            found, missing = self.cache.get_many(remaining)
            records.update(found)
            if missing:
                fetched = self._rpc(
                    self.server.fetch_many, missing
                )  # one round trip
                self.cache.put_many(fetched.items())  # server-reply order
                records.update(fetched)
            if self.optimistic:
                for uid in remaining:
                    self._note_read(uid)
        return records

    # -- closure push-down ------------------------------------------------

    def prefetch_closure(
        self,
        root: NodeRef,
        relation: str,
        depth: Optional[int] = None,
    ) -> bool:
        """Push a closure traversal down to the server.

        One ``traverse`` RPC runs the BFS server-side and returns every
        reachable record in a single size-charged reply, which is
        bulk-admitted into the workstation cache — the closure replay
        that follows then resolves every frontier locally, so a cold
        closure costs **one** round trip instead of one per level.

        The verb is a *hint*: it returns ``False`` (and the caller
        falls back to frontier BFS) when push-down is disabled, and it
        is skipped entirely when the root is already locally resident —
        a warm pass must stay at zero round trips.  Replies are capped
        at the cache capacity server-side, so a traversal larger than
        the cache admits a coherent BFS prefix and leaves the tail to
        the per-level path.
        """
        self._require_open()
        if not self.pushdown:
            return False
        instr = self.instrumentation
        if root in self._local or root in self.cache:
            # Locally resident root: the replay will hit the cache (or
            # fall back per level for the un-cached tail); a push-down
            # here would turn a zero-RPC warm pass into one RPC.
            instr.count("backend.rpc.pushdown.skipped_warm")
            return False
        reply = self._rpc(
            self.server.traverse,
            root,
            relation,
            direction="forward",
            depth=depth,
            with_records=True,
            limit=self.cache.capacity,
        )  # one round trip for the whole closure
        instr.count("backend.rpc.pushdown.calls")
        instr.count("backend.rpc.pushdown.objects", len(reply))
        self._admit(reply)
        return True

    def _fetch_for_write(self, uid: int) -> Dict[str, Any]:
        """Read a record and move a private copy into the write buffer."""
        record = self._local.get(uid)
        if record is not None:
            return record
        record = _copy_record(self._fetch(uid))
        self._local[uid] = record
        return record

    # -- creation ---------------------------------------------------------

    def create_node(self, data: NodeData) -> NodeRef:
        self._require_open()
        uid = data.unique_id
        if uid in self._local or uid in self.cache or uid in self.server:
            raise InvalidOperationError(f"duplicate uniqueId {uid}")
        # Creation reads "uid absent" (version 0): a concurrent creator
        # of the same uid then conflicts at optimistic commit.
        self._note_read(uid)
        self._local[uid] = _new_record(data)
        return uid

    def add_child(self, parent: NodeRef, child: NodeRef) -> None:
        self._require_open()
        child_record = self._fetch_for_write(child)
        if child_record["parent"]:
            raise InvalidOperationError(f"node {child} already has a parent")
        parent_record = self._fetch_for_write(parent)
        parent_record["children"].append(child)
        child_record["parent"] = parent

    def add_part(self, whole: NodeRef, part: NodeRef) -> None:
        self._require_open()
        self._fetch_for_write(whole)["parts"].append(part)
        self._fetch_for_write(part)["partOf"].append(whole)

    def add_reference(
        self, source: NodeRef, target: NodeRef, attrs: LinkAttributes
    ) -> None:
        self._require_open()
        self._fetch_for_write(source)["refTo"].append(
            [target, attrs.offset_from, attrs.offset_to]
        )
        self._fetch_for_write(target)["refFrom"].append(source)

    # -- identity ---------------------------------------------------------

    def lookup(self, unique_id: int) -> NodeRef:
        """Key lookup: a server index probe unless locally known."""
        self._require_open()
        if unique_id in self._local or unique_id in self.cache:
            return unique_id
        if not self._rpc(self.server.exists, unique_id):  # one round trip
            raise NodeNotFoundError(unique_id)
        return unique_id

    def get_attribute(self, ref: NodeRef, name: str) -> int:
        self._require_open()
        if name == "uniqueId":
            name = "uid"
        elif name not in ("ten", "hundred", "million"):
            raise KeyError(f"unknown node attribute {name!r}")
        return self._fetch(ref)[name]

    def set_attribute(self, ref: NodeRef, name: str, value: int) -> None:
        self._require_open()
        if name == "uniqueId":
            raise InvalidOperationError("uniqueId is immutable")
        if name not in ("ten", "hundred", "million"):
            raise KeyError(f"unknown node attribute {name!r}")
        self._fetch_for_write(ref)[name] = value

    def kind_of(self, ref: NodeRef) -> NodeKind:
        self._require_open()
        return _NAMES_KIND[self._fetch(ref)["kind"]]

    def structure_of(self, ref: NodeRef) -> int:
        self._require_open()
        return self._fetch(ref)["struct"]

    # -- range lookups ----------------------------------------------------

    def _merged_range(self, attribute: str, low: int, high: int) -> List[NodeRef]:
        """Server-side range query corrected by local dirty records."""
        result = self._rpc(self.server.range_query, attribute, low, high)
        if not self._local:
            return result
        dirty = set(self._local)
        merged = [uid for uid in result if uid not in dirty]
        merged += [
            uid
            for uid, record in self._local.items()
            if low <= record[attribute] <= high
        ]
        return merged

    def range_hundred(self, low: int, high: int) -> List[NodeRef]:
        self._require_open()
        return self._merged_range("hundred", low, high)

    def range_million(self, low: int, high: int) -> List[NodeRef]:
        self._require_open()
        return self._merged_range("million", low, high)

    # -- forward traversal -------------------------------------------------

    def children(self, ref: NodeRef) -> List[NodeRef]:
        self._require_open()
        return list(self._fetch(ref)["children"])

    def parts(self, ref: NodeRef) -> List[NodeRef]:
        self._require_open()
        return list(self._fetch(ref)["parts"])

    def refs_to(self, ref: NodeRef) -> List[Tuple[NodeRef, LinkAttributes]]:
        self._require_open()
        return [
            (dst, LinkAttributes(offset_from, offset_to))
            for dst, offset_from, offset_to in self._fetch(ref)["refTo"]
        ]

    # -- batched navigation ----------------------------------------------------

    def _count_batch(self, refs: Sequence[NodeRef]) -> None:
        self.instrumentation.count("backend.batch.calls")
        self.instrumentation.count("backend.batch.items", len(refs))

    def children_many(self, refs: Sequence[NodeRef]) -> List[List[NodeRef]]:
        self._require_open()
        if not refs:
            return []
        self._count_batch(refs)
        records = self._fetch_many(refs)
        return [list(records[ref]["children"]) for ref in refs]

    def parts_many(self, refs: Sequence[NodeRef]) -> List[List[NodeRef]]:
        self._require_open()
        if not refs:
            return []
        self._count_batch(refs)
        records = self._fetch_many(refs)
        return [list(records[ref]["parts"]) for ref in refs]

    def refs_to_many(
        self, refs: Sequence[NodeRef]
    ) -> List[List[Tuple[NodeRef, LinkAttributes]]]:
        self._require_open()
        if not refs:
            return []
        self._count_batch(refs)
        records = self._fetch_many(refs)
        return [
            [
                (dst, LinkAttributes(offset_from, offset_to))
                for dst, offset_from, offset_to in records[ref]["refTo"]
            ]
            for ref in refs
        ]

    def get_attributes_many(
        self, refs: Sequence[NodeRef], name: str
    ) -> List[int]:
        self._require_open()
        if name == "uniqueId":
            name = "uid"
        elif name not in ("ten", "hundred", "million"):
            raise KeyError(f"unknown node attribute {name!r}")
        if not refs:
            return []
        self._count_batch(refs)
        records = self._fetch_many(refs)
        return [records[ref][name] for ref in refs]

    # -- inverse traversal ---------------------------------------------------

    def parent(self, ref: NodeRef) -> Optional[NodeRef]:
        self._require_open()
        return self._fetch(ref)["parent"] or None

    def part_of(self, ref: NodeRef) -> List[NodeRef]:
        self._require_open()
        return list(self._fetch(ref)["partOf"])

    def refs_from(self, ref: NodeRef) -> List[NodeRef]:
        self._require_open()
        return list(self._fetch(ref)["refFrom"])

    # -- scan ------------------------------------------------------------------

    def scan_ten(self, structure_id: int = 1) -> int:
        """Server-side scan: references come back, ``ten`` is read
        through the cache (faulting at most once per node)."""
        self._require_open()
        uids = self._rpc(self.server.scan_structure, structure_id)
        dirty_extra = [
            uid
            for uid, record in self._local.items()
            if record["struct"] == structure_id and uid not in set(uids)
        ]
        count = 0
        for uid in list(uids) + dirty_extra:
            _ = self._fetch(uid)["ten"]
            count += 1
        return count

    def iter_nodes(self, structure_id: int = 1) -> Iterator[NodeRef]:
        self._require_open()
        seen = set()
        for uid in self._rpc(self.server.scan_structure, structure_id):
            seen.add(uid)
            yield uid
        for uid, record in self._local.items():
            if record["struct"] == structure_id and uid not in seen:
                yield uid

    # -- content -----------------------------------------------------------------

    def get_text(self, ref: NodeRef) -> str:
        self._require_open()
        record = self._fetch(ref)
        if record["kind"] != "text":
            raise InvalidOperationError(f"node {ref} is not a text node")
        return record["text"]

    def set_text(self, ref: NodeRef, text: str) -> None:
        self._require_open()
        record = self._fetch_for_write(ref)
        if record["kind"] != "text":
            raise InvalidOperationError(f"node {ref} is not a text node")
        record["text"] = text

    def get_bitmap(self, ref: NodeRef) -> Bitmap:
        self._require_open()
        record = self._fetch(ref)
        if record["kind"] != "form":
            raise InvalidOperationError(f"node {ref} is not a form node")
        return Bitmap.from_bytes(record["width"], record["height"], record["bits"])

    def set_bitmap(self, ref: NodeRef, bitmap: Bitmap) -> None:
        self._require_open()
        record = self._fetch_for_write(ref)
        if record["kind"] != "form":
            raise InvalidOperationError(f"node {ref} is not a form node")
        record["width"] = bitmap.width
        record["height"] = bitmap.height
        record["bits"] = bitmap.to_bytes()

    # -- result lists ----------------------------------------------------------------

    def store_node_list(self, name: str, refs: Sequence[NodeRef]) -> None:
        self._require_open()
        self._local_lists[name] = [int(r) for r in refs]

    def load_node_list(self, name: str) -> List[NodeRef]:
        self._require_open()
        if name in self._local_lists:
            return list(self._local_lists[name])
        return self._rpc(self.server.load_list, name)

    # -- introspection ------------------------------------------------------------------

    def node_count(self, structure_id: int = 1) -> int:
        self._require_open()
        committed = self.server.count(structure_id)
        extra = sum(
            1
            for uid, record in self._local.items()
            if record["struct"] == structure_id and uid not in self.server
        )
        return committed + extra

    @property
    def backend_name(self) -> str:
        return "clientserver"
