"""Observability: counters and spans across every layer of the stack.

The paper's protocol reports wall-clock milliseconds per node; this
package answers *why* those numbers are what they are.  It has three
parts and no dependencies beyond the standard library:

* :mod:`repro.obs.counters` — a hierarchical (dot-named) counter
  registry with snapshot/delta/reset, e.g. ``engine.buffer.hit``,
  ``backend.rpc.round_trips``, ``netsim.latency.injected_ms``;
* :mod:`repro.obs.spans` — ``span(name)`` context-manager tracing with
  nesting, recorded into a fixed-capacity ring buffer, plus
  :class:`TraceContext` for cross-RPC remote-parent links;
* :mod:`repro.obs.histograms` — log-bucketed (power-of-two) latency
  histograms with p50/p90/p99/max, e.g. ``engine.wal.fsync``,
  ``backend.rpc.call``;
* :mod:`repro.obs.timeseries` — gauge registry (callback + settable)
  and the virtual-time :class:`FlightRecorder` that turns counters,
  gauges and histograms into a bounded time series with deterministic
  JSONL export, e.g. ``engine.wal.backlog``,
  ``netsim.transport.busy_frac``;
* :mod:`repro.obs.traceexport` — Chrome trace-event JSON export of the
  span ring (opens in Perfetto / ``chrome://tracing``);
* :mod:`repro.obs.dashboard` — self-contained HTML rendering of
  BENCH documents + timeline JSONL (``repro dash``);
* :mod:`repro.obs.instrumentation` — the :class:`Instrumentation`
  handle components receive at construction, the :data:`NO_OP`
  disabled singleton, and the process-global default
  (:func:`enable` / :func:`disable` / :func:`get_instrumentation`).

The counter name taxonomy lives in ``docs/observability.md``; the
headline counters every report prints are in :data:`HEADLINE_COUNTERS`.
"""

from repro.obs.counters import Counters, CounterSnapshot
from repro.obs.histograms import HistogramRegistry, LatencyHistogram
from repro.obs.instrumentation import (
    NO_OP,
    Instrumentation,
    NoOpInstrumentation,
    disable,
    enable,
    get_instrumentation,
    resolve,
    set_instrumentation,
)
from repro.obs.spans import SpanRecord, SpanRecorder, TraceContext
from repro.obs.timeseries import (
    GAUGE_NAME_PATTERN,
    FlightRecorder,
    GaugeRegistry,
)

#: Counters every per-operation report table prints even when zero,
#: so cross-backend tables always align (a zero is information too:
#: "the memory backend made no RPC round trips" is the point).
HEADLINE_COUNTERS = (
    "engine.buffer.hit",
    "engine.buffer.miss",
    "backend.rpc.round_trips",
)

__all__ = [
    "Counters",
    "CounterSnapshot",
    "FlightRecorder",
    "GaugeRegistry",
    "GAUGE_NAME_PATTERN",
    "HistogramRegistry",
    "Instrumentation",
    "LatencyHistogram",
    "NoOpInstrumentation",
    "NO_OP",
    "SpanRecord",
    "SpanRecorder",
    "TraceContext",
    "HEADLINE_COUNTERS",
    "enable",
    "disable",
    "get_instrumentation",
    "set_instrumentation",
    "resolve",
]
