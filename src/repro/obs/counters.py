"""Hierarchical counters: the numeric half of the instrumentation layer.

Counter names are dot-separated paths (``engine.buffer.hit``,
``backend.rpc.round_trips``, ``netsim.latency.injected_ms``).  The dots
are more than decoration: :meth:`Counters.total` rolls a whole subtree
up (``total("engine.buffer")`` is hits + misses + evictions + ...), and
the report tables group rows by prefix.

The cold/warm protocol never wants absolute values — it wants *what a
run did*.  That is what :class:`CounterSnapshot` is for::

    before = counters.snapshot()
    ...  # 50 cold repetitions
    delta = counters.snapshot().delta(before)   # {"engine.buffer.miss": 312, ...}

Values are plain numbers (ints for event counts, floats for accumulated
quantities such as simulated milliseconds); increments may be negative
only through :meth:`Counters.add`, which the engine never uses but the
tests exercise.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Optional, Tuple

Number = float  # ints coerce losslessly for the magnitudes involved


class CounterSnapshot(Mapping[str, Number]):
    """An immutable point-in-time copy of a counter registry.

    Behaves as a read-only mapping from counter name to value; missing
    names read as 0 through :meth:`get` so delta code never branches.
    """

    __slots__ = ("_values",)

    def __init__(self, values: Optional[Mapping[str, Number]] = None) -> None:
        self._values: Dict[str, Number] = dict(values or {})

    # -- mapping protocol --------------------------------------------------

    def __getitem__(self, name: str) -> Number:
        return self._values[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def get(self, name: str, default: Number = 0) -> Number:
        """The value of ``name``, defaulting to 0 (not None)."""
        return self._values.get(name, default)

    # -- arithmetic --------------------------------------------------------

    def delta(self, earlier: "CounterSnapshot") -> Dict[str, Number]:
        """Per-counter change since ``earlier``; zero deltas are dropped.

        Counters absent from ``earlier`` count from 0, so a counter
        born between the two snapshots still shows its full value.
        """
        out: Dict[str, Number] = {}
        for name, value in self._values.items():
            change = value - earlier.get(name, 0)
            if change:
                out[name] = change
        for name, value in earlier.items():
            if name not in self._values and value:
                out[name] = -value
        return out

    def total(self, prefix: str) -> Number:
        """Sum of every counter at or under a dotted prefix."""
        return _total(self._values, prefix)

    def as_dict(self) -> Dict[str, Number]:
        """A plain-dict copy (JSON-serializable)."""
        return dict(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CounterSnapshot({self._values!r})"


def _total(values: Mapping[str, Number], prefix: str) -> Number:
    if not prefix:
        return sum(values.values())
    dotted = prefix + "."
    return sum(
        value
        for name, value in values.items()
        if name == prefix or name.startswith(dotted)
    )


class Counters:
    """A mutable registry of named counters.

    The hot-path method is :meth:`inc`; it is one dict ``get`` plus one
    store, no locking (the engine is single-writer per store handle; the
    multi-user layers each carry their own instrumentation object).
    """

    __slots__ = ("_values",)

    def __init__(self) -> None:
        self._values: Dict[str, Number] = {}

    # -- mutation ----------------------------------------------------------

    def inc(self, name: str, amount: Number = 1) -> None:
        """Increase ``name`` by ``amount`` (creating it at 0)."""
        values = self._values
        values[name] = values.get(name, 0) + amount

    def add(self, name: str, amount: Number) -> None:
        """Alias of :meth:`inc` for quantity-style counters (bytes, ms)."""
        values = self._values
        values[name] = values.get(name, 0) + amount

    def reset(self) -> None:
        """Drop every counter (the next read starts from zero)."""
        self._values.clear()

    # -- reading -----------------------------------------------------------

    def get(self, name: str, default: Number = 0) -> Number:
        """Current value of one counter."""
        return self._values.get(name, default)

    def total(self, prefix: str) -> Number:
        """Sum of every counter at or under a dotted prefix."""
        return _total(self._values, prefix)

    def snapshot(self) -> CounterSnapshot:
        """An immutable copy of the current values."""
        return CounterSnapshot(self._values)

    def names(self) -> Tuple[str, ...]:
        """All counter names, sorted (stable for reports)."""
        return tuple(sorted(self._values))

    def as_dict(self) -> Dict[str, Number]:
        """A plain-dict copy of the current values."""
        return dict(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counters({self._values!r})"
