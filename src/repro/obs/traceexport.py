"""Chrome trace-event JSON export of the instrumentation state.

One call turns an :class:`~repro.obs.Instrumentation` handle into a
JSON document any run of Perfetto (https://ui.perfetto.dev) or
``chrome://tracing`` opens directly:

* every retained span becomes a complete ("X") duration event;
* spans named ``server.*`` (or carrying a remote-trace link) land on a
  separate "object server" process track, mirroring the simulated
  workstation/server architecture;
* a server span whose ``remote_parent`` names a retained client span
  gets a **flow arrow** ("s"/"f" events) from the client RPC span that
  caused it — batched ``fetch_many``, every retry attempt, and the 2PC
  phase spans (prepare fan-out, decision delivery) included;
* client/shard lanes are ordered **naturally** (``shard2`` before
  ``shard10``) via explicit ``thread_sort_index`` metadata, and a
  ``lane_metadata`` mapping can stamp extra per-lane facts (placement
  policy, shard count) into the lane's thread metadata;
* counter tracks ("C" events): with a ``recorder``
  (:class:`~repro.obs.timeseries.FlightRecorder`), every flight-recorder
  sample becomes one counter-track point per counter *rate* and per
  gauge — evolution over (virtual) time instead of a single total.
  Without one, final counter values are emitted as a single sample at
  the trace end.  Either way one global instant ("i") event per counter
  carries the final total, and histogram summaries ride in
  ``otherData`` so the numbers travel with the picture.

A caveat on the time axis: span timestamps are wall-clock (the span
recorder's ``perf_counter`` readings) while flight-recorder samples are
stamped in the clock the recorder was built with — *virtual* seconds
for the discrete-event harnesses.  The counter tracks are therefore an
aligned-at-zero overlay, not a sample-accurate alignment with the span
lanes; they show *shape* (queue build-up, abort bursts), the spans show
*structure*.

The exporter never mutates the handle; exporting mid-run is safe (you
see the flight recorder's current contents).

Usage::

    from repro.obs import enable
    from repro.obs.traceexport import write_chrome_trace

    instr = enable(span_capacity=65536)
    ...  # run something
    write_chrome_trace(instr, "out.json")

or from the CLI: ``repro bench --trace out.json`` / ``repro trace``.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.obs.instrumentation import Instrumentation

#: Synthetic process ids for the two sides of the simulated network.
CLIENT_PID = 1
SERVER_PID = 2

#: Span-name prefix that places a span on the server track.
_SERVER_PREFIX = "server."

#: Digit-run splitter feeding :func:`_natural_key`.
_DIGIT_RUNS = re.compile(r"(\d+)")


def _natural_key(tag: str) -> Tuple[Union[str, int], ...]:
    """Sort key treating digit runs numerically: shard2 < shard10.

    Plain lexicographic ordering puts ``shard10`` between ``shard1``
    and ``shard2``; splitting on digit runs and comparing those runs as
    integers restores the order a human (and every lane legend) expects.
    ``re.split`` with a captured group strictly alternates text and
    digit runs (text at even indices, digits at odd), so two keys never
    compare str against int at the same position.
    """
    return tuple(
        int(part) if index % 2 else part
        for index, part in enumerate(_DIGIT_RUNS.split(tag))
    )


def _category(name: str) -> str:
    """The trace category: the first dotted segment of the span name."""
    return name.split(".", 1)[0] if "." in name else name


def _is_server_span(record) -> bool:
    return record.name.startswith(_SERVER_PREFIX) or (
        record.remote_trace is not None
    )


def build_trace(
    instr: Instrumentation,
    process_name: str = "hypermodel workstation",
    server_name: str = "object server (netsim)",
    lane_metadata: Optional[Dict[str, Dict[str, Any]]] = None,
    recorder: Optional[Any] = None,
) -> Dict[str, Any]:
    """Build the Chrome trace-event document for one handle."""
    records = instr.spans.records()
    events: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": CLIENT_PID,
            "tid": 0,
            "args": {"name": process_name},
        },
        {
            "ph": "M",
            "name": "process_name",
            "pid": SERVER_PID,
            "tid": 0,
            "args": {"name": server_name},
        },
    ]
    base = min((r.start for r in records), default=0.0)
    end = max((r.end for r in records), default=0.0)

    def _us(t: float) -> float:
        return round((t - base) * 1e6, 3)

    by_sequence = {r.sequence: r for r in records}

    # Per-client thread lanes: untagged spans stay on tid 1 (the
    # anonymous single-client lane); each distinct client tag gets its
    # own stable tid (2, 3, ...) on *both* process tracks.  Tags are
    # assigned in *natural* order over the whole record set — not first
    # appearance — so ``client·shard10`` sorts after ``client·shard2``
    # both in tid order and via the explicit thread_sort_index
    # metadata (viewers honour the latter even where tids collide).
    client_tids: Dict[str, int] = {
        client: index + 2
        for index, client in enumerate(
            sorted(
                {r.client for r in records if r.client is not None},
                key=_natural_key,
            )
        )
    }
    named_lanes = set()

    def _tid(record) -> int:
        if record.client is None:
            return 1
        return client_tids[record.client]

    def _lane_extras(client: str) -> Dict[str, Any]:
        """Caller-supplied metadata for this lane's thread_name args.

        A key matches a lane when it equals the client tag or names the
        tag's shard suffix (``shard3`` matches ``w1·shard3``) — the
        router hands over per-``shard<n>`` facts without knowing which
        client tags fan into each shard.
        """
        if not lane_metadata:
            return {}
        for key, extras in lane_metadata.items():
            if client == key or client.endswith("·" + key):
                return dict(extras)
        return {}

    def _name_lane(pid: int, tid: int, client: str) -> None:
        if (pid, tid) in named_lanes:
            return
        named_lanes.add((pid, tid))
        side = "rpc" if pid == CLIENT_PID else "serving"
        lane_args: Dict[str, Any] = {"name": f"client {client} ({side})"}
        lane_args.update(_lane_extras(client))
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": tid,
                "args": lane_args,
            }
        )
        events.append(
            {
                "ph": "M",
                "name": "thread_sort_index",
                "pid": pid,
                "tid": tid,
                "args": {"sort_index": tid},
            }
        )

    for record in records:
        pid = SERVER_PID if _is_server_span(record) else CLIENT_PID
        tid = _tid(record)
        if record.client is not None:
            _name_lane(pid, tid, record.client)
        args: Dict[str, Any] = {
            "sequence": record.sequence,
            "depth": record.depth,
        }
        if record.parent is not None:
            args["parent"] = record.parent
        if record.remote_parent is not None:
            args["remote_parent"] = record.remote_parent
            args["remote_trace"] = record.remote_trace
        if record.client is not None:
            args["client"] = record.client
        events.append(
            {
                "ph": "X",
                "name": record.name,
                "cat": _category(record.name),
                "pid": pid,
                "tid": tid,
                "ts": _us(record.start),
                "dur": round(record.duration_seconds * 1e6, 3),
                "args": args,
            }
        )
        # Flow arrow: client RPC span -> the server work it caused.
        if record.remote_parent is not None:
            cause = by_sequence.get(record.remote_parent)
            if cause is not None and not _is_server_span(cause):
                flow_id = f"rpc-{record.remote_trace}-{record.sequence}"
                events.append(
                    {
                        "ph": "s",
                        "id": flow_id,
                        "name": "rpc",
                        "cat": "rpc",
                        "pid": CLIENT_PID,
                        "tid": _tid(cause),
                        "ts": _us(cause.start),
                    }
                )
                events.append(
                    {
                        "ph": "f",
                        "bp": "e",
                        "id": flow_id,
                        "name": "rpc",
                        "cat": "rpc",
                        "pid": SERVER_PID,
                        "tid": tid,
                        "ts": _us(record.start),
                    }
                )

    # Counter tracks.  With a flight recorder: one counter-track point
    # per sample per counter *rate* (and per gauge), so the track shows
    # evolution — queue depth climbing, abort rate spiking — instead of
    # a single terminal value.  Sample timestamps are in the recorder's
    # own clock (virtual seconds for the discrete-event harnesses),
    # re-based at zero; see the module docstring's alignment caveat.
    counter_values = instr.counters.as_dict()
    ts_end = _us(end) if records else 0.0
    samples = list(recorder.samples()) if recorder is not None else []
    if samples:
        ts_end = max(
            ts_end, round(samples[-1]["t"] * 1e6, 3)
        )
        for sample in samples:
            ts = round(sample["t"] * 1e6, 3)
            for name in sorted(sample["rates"]):
                events.append(
                    {
                        "ph": "C",
                        "name": f"{name} (rate/s)",
                        "cat": _category(name),
                        "pid": CLIENT_PID,
                        "tid": 1,
                        "ts": ts,
                        "args": {"rate": sample["rates"][name]},
                    }
                )
            for name in sorted(sample["gauges"]):
                events.append(
                    {
                        "ph": "C",
                        "name": name,
                        "cat": _category(name),
                        "pid": CLIENT_PID,
                        "tid": 1,
                        "ts": ts,
                        "args": {"value": sample["gauges"][name]},
                    }
                )
    for name in sorted(counter_values):
        value = counter_values[name]
        if not samples:
            # No recorder: fall back to one terminal counter sample.
            events.append(
                {
                    "ph": "C",
                    "name": name,
                    "cat": _category(name),
                    "pid": CLIENT_PID,
                    "tid": 1,
                    "ts": ts_end,
                    "args": {"value": value},
                }
            )
        events.append(
            {
                "ph": "i",
                "s": "g",
                "name": f"{name} = {value:g}",
                "cat": _category(name),
                "pid": CLIENT_PID,
                "tid": 1,
                "ts": ts_end,
            }
        )

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "trace_id": instr.trace_id,
            "span_count": len(records),
            "counters": counter_values,
            "histograms": instr.histograms.summaries(),
            "timeline_samples": len(samples),
            "counter_track_clock": (
                samples[0]["clock"] if samples else "wall"
            ),
        },
    }


def write_chrome_trace(
    instr: Instrumentation,
    path: str,
    process_name: str = "hypermodel workstation",
    server_name: str = "object server (netsim)",
    lane_metadata: Optional[Dict[str, Dict[str, Any]]] = None,
    recorder: Optional[Any] = None,
) -> Dict[str, Any]:
    """Build the trace document and write it to ``path`` as JSON."""
    document = build_trace(
        instr,
        process_name=process_name,
        server_name=server_name,
        lane_metadata=lane_metadata,
        recorder=recorder,
    )
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1)
        handle.write("\n")
    return document


def flow_links(document: Dict[str, Any]) -> List[Dict[str, Any]]:
    """The flow-start events of a built document (test/introspection aid)."""
    return [e for e in document["traceEvents"] if e.get("ph") == "s"]
