"""Chrome trace-event JSON export of the instrumentation state.

One call turns an :class:`~repro.obs.Instrumentation` handle into a
JSON document any run of Perfetto (https://ui.perfetto.dev) or
``chrome://tracing`` opens directly:

* every retained span becomes a complete ("X") duration event;
* spans named ``server.*`` (or carrying a remote-trace link) land on a
  separate "object server" process track, mirroring the simulated
  workstation/server architecture;
* a server span whose ``remote_parent`` names a retained client span
  gets a **flow arrow** ("s"/"f" events) from the client RPC span that
  caused it — batched ``fetch_many`` and every retry attempt included;
* final counter values are emitted as counter-track ("C") samples plus
  one global instant ("i") event each, and histogram summaries ride in
  ``otherData`` so the numbers travel with the picture.

The exporter never mutates the handle; exporting mid-run is safe (you
see the flight recorder's current contents).

Usage::

    from repro.obs import enable
    from repro.obs.traceexport import write_chrome_trace

    instr = enable(span_capacity=65536)
    ...  # run something
    write_chrome_trace(instr, "out.json")

or from the CLI: ``repro bench --trace out.json`` / ``repro trace``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.obs.instrumentation import Instrumentation

#: Synthetic process ids for the two sides of the simulated network.
CLIENT_PID = 1
SERVER_PID = 2

#: Span-name prefix that places a span on the server track.
_SERVER_PREFIX = "server."


def _category(name: str) -> str:
    """The trace category: the first dotted segment of the span name."""
    return name.split(".", 1)[0] if "." in name else name


def _is_server_span(record) -> bool:
    return record.name.startswith(_SERVER_PREFIX) or (
        record.remote_trace is not None
    )


def build_trace(
    instr: Instrumentation,
    process_name: str = "hypermodel workstation",
    server_name: str = "object server (netsim)",
) -> Dict[str, Any]:
    """Build the Chrome trace-event document for one handle."""
    records = instr.spans.records()
    events: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": CLIENT_PID,
            "tid": 0,
            "args": {"name": process_name},
        },
        {
            "ph": "M",
            "name": "process_name",
            "pid": SERVER_PID,
            "tid": 0,
            "args": {"name": server_name},
        },
    ]
    base = min((r.start for r in records), default=0.0)
    end = max((r.end for r in records), default=0.0)

    def _us(t: float) -> float:
        return round((t - base) * 1e6, 3)

    by_sequence = {r.sequence: r for r in records}

    # Per-client thread lanes: untagged spans stay on tid 1 (the
    # anonymous single-client lane); each distinct client tag gets its
    # own stable tid (2, 3, ... in order of first appearance — records
    # are sequence-ordered, so the assignment is deterministic) on
    # *both* process tracks, with a thread_name metadata event each.
    client_tids: Dict[str, int] = {}
    named_lanes = set()

    def _tid(record) -> int:
        if record.client is None:
            return 1
        return client_tids.setdefault(record.client, len(client_tids) + 2)

    def _name_lane(pid: int, tid: int, client: str) -> None:
        if (pid, tid) in named_lanes:
            return
        named_lanes.add((pid, tid))
        side = "rpc" if pid == CLIENT_PID else "serving"
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": tid,
                "args": {"name": f"client {client} ({side})"},
            }
        )

    for record in records:
        pid = SERVER_PID if _is_server_span(record) else CLIENT_PID
        tid = _tid(record)
        if record.client is not None:
            _name_lane(pid, tid, record.client)
        args: Dict[str, Any] = {
            "sequence": record.sequence,
            "depth": record.depth,
        }
        if record.parent is not None:
            args["parent"] = record.parent
        if record.remote_parent is not None:
            args["remote_parent"] = record.remote_parent
            args["remote_trace"] = record.remote_trace
        if record.client is not None:
            args["client"] = record.client
        events.append(
            {
                "ph": "X",
                "name": record.name,
                "cat": _category(record.name),
                "pid": pid,
                "tid": tid,
                "ts": _us(record.start),
                "dur": round(record.duration_seconds * 1e6, 3),
                "args": args,
            }
        )
        # Flow arrow: client RPC span -> the server work it caused.
        if record.remote_parent is not None:
            cause = by_sequence.get(record.remote_parent)
            if cause is not None and not _is_server_span(cause):
                flow_id = f"rpc-{record.remote_trace}-{record.sequence}"
                events.append(
                    {
                        "ph": "s",
                        "id": flow_id,
                        "name": "rpc",
                        "cat": "rpc",
                        "pid": CLIENT_PID,
                        "tid": _tid(cause),
                        "ts": _us(cause.start),
                    }
                )
                events.append(
                    {
                        "ph": "f",
                        "bp": "e",
                        "id": flow_id,
                        "name": "rpc",
                        "cat": "rpc",
                        "pid": SERVER_PID,
                        "tid": tid,
                        "ts": _us(record.start),
                    }
                )

    # Counter totals: one counter-track sample at the trace end plus a
    # global instant event per counter (Perfetto shows both).
    counter_values = instr.counters.as_dict()
    ts_end = _us(end) if records else 0.0
    for name in sorted(counter_values):
        value = counter_values[name]
        events.append(
            {
                "ph": "C",
                "name": name,
                "cat": _category(name),
                "pid": CLIENT_PID,
                "tid": 1,
                "ts": ts_end,
                "args": {"value": value},
            }
        )
        events.append(
            {
                "ph": "i",
                "s": "g",
                "name": f"{name} = {value:g}",
                "cat": _category(name),
                "pid": CLIENT_PID,
                "tid": 1,
                "ts": ts_end,
            }
        )

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "trace_id": instr.trace_id,
            "span_count": len(records),
            "counters": counter_values,
            "histograms": instr.histograms.summaries(),
        },
    }


def write_chrome_trace(
    instr: Instrumentation,
    path: str,
    process_name: str = "hypermodel workstation",
    server_name: str = "object server (netsim)",
) -> Dict[str, Any]:
    """Build the trace document and write it to ``path`` as JSON."""
    document = build_trace(
        instr, process_name=process_name, server_name=server_name
    )
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1)
        handle.write("\n")
    return document


def flow_links(document: Dict[str, Any]) -> List[Dict[str, Any]]:
    """The flow-start events of a built document (test/introspection aid)."""
    return [e for e in document["traceEvents"] if e.get("ph") == "s"]
