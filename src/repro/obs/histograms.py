"""Log-bucketed latency histograms: the distributional half of timing.

The paper's protocol reports means; Darmont's OODB-benchmark survey
(PAPERS.md) points out that mean-only reporting hides exactly the
behaviour a cold/warm cache protocol is about — the *tail*.  This
module adds HDR-style histograms with power-of-two buckets:

* recording is O(1) and allocation-free on the hot path (one
  ``math.frexp``, one dict upsert);
* memory is bounded by the *dynamic range* of the data, not its
  volume — a nanosecond-to-minute spread is ~50 buckets;
* percentiles (p50/p90/p99/max) are estimated by linear interpolation
  inside the containing bucket, so the relative error is bounded by
  the bucket width (a factor of two, halved by interpolation).

Values are unit-agnostic floats; the repo's convention is
**milliseconds** for every seam histogram (``engine.wal.fsync``,
``engine.buffer.miss``, ``backend.rpc.call``,
``harness.iteration.cold`` / ``.warm``).  The taxonomy lives in
``docs/observability.md``.

Usage through the instrumentation handle::

    instr.observe("backend.rpc.call", elapsed_ms)
    instr.histograms.get("backend.rpc.call").percentile(0.99)
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, Optional, Sequence, Tuple

#: The quantiles every summary reports (name -> q).
SUMMARY_QUANTILES: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.50),
    ("p90", 0.90),
    ("p99", 0.99),
)


class LatencyHistogram:
    """A histogram with power-of-two (base-2 exponential) buckets.

    Bucket ``e`` holds values in ``[2**(e-1), 2**e)`` — exactly the
    exponent ``math.frexp`` returns.  Zero and negative values land in
    a dedicated underflow bucket (they happen when a timed region is
    faster than the clock resolution).
    """

    __slots__ = ("_buckets", "count", "total", "minimum", "maximum", "zeros")

    def __init__(self) -> None:
        self._buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.zeros = 0  # underflow: values <= 0

    # -- recording ---------------------------------------------------------

    def record(self, value: float) -> None:
        """Add one observation (O(1), no allocation beyond the bucket)."""
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if value <= 0.0:
            self.zeros += 1
            return
        exponent = math.frexp(value)[1]
        buckets = self._buckets
        buckets[exponent] = buckets.get(exponent, 0) + 1

    def record_many(self, values: Sequence[float]) -> None:
        """Add a batch of observations."""
        for value in values:
            self.record(value)

    @classmethod
    def from_samples(cls, values: Sequence[float]) -> "LatencyHistogram":
        """Build a histogram from a sample sequence."""
        hist = cls()
        hist.record_many(values)
        return hist

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram into this one."""
        self.count += other.count
        self.total += other.total
        self.zeros += other.zeros
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        for exponent, n in other._buckets.items():
            self._buckets[exponent] = self._buckets.get(exponent, 0) + n

    # -- reading -----------------------------------------------------------

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the ``q`` quantile (0 <= q <= 1).

        Uses nearest-rank bucket selection with linear interpolation
        inside the bucket; the result is clamped to the observed
        min/max so p100 is exact and p0 never undershoots.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * (self.count - 1)  # 0-based fractional rank
        cumulative = 0
        if rank < self.zeros:
            return min(self.minimum, 0.0)
        cumulative += self.zeros
        for exponent in sorted(self._buckets):
            n = self._buckets[exponent]
            if rank < cumulative + n:
                low = math.ldexp(1.0, exponent - 1)
                high = math.ldexp(1.0, exponent)
                fraction = (rank - cumulative + 0.5) / n
                estimate = low + fraction * (high - low)
                return max(self.minimum, min(self.maximum, estimate))
            cumulative += n
        return self.maximum

    def buckets(self) -> Iterator[Tuple[float, float, int]]:
        """Yield ``(low, high, count)`` per non-empty bucket, ascending."""
        if self.zeros:
            yield (0.0, 0.0, self.zeros)
        for exponent in sorted(self._buckets):
            yield (
                math.ldexp(1.0, exponent - 1),
                math.ldexp(1.0, exponent),
                self._buckets[exponent],
            )

    def summary(self) -> Dict[str, float]:
        """The flat percentile summary every report and BENCH JSON uses."""
        if self.count == 0:
            return {"count": 0}
        out: Dict[str, float] = {
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
        }
        for name, q in SUMMARY_QUANTILES:
            out[name] = self.percentile(q)
        return out

    # -- persistence -------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Full serializable form (summary + raw buckets)."""
        doc: Dict[str, object] = dict(self.summary())
        doc["sum"] = self.total
        doc["zeros"] = self.zeros
        doc["buckets"] = {str(e): n for e, n in sorted(self._buckets.items())}
        return doc

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "LatencyHistogram":
        """Rebuild from :meth:`to_dict` output."""
        hist = cls()
        hist.count = int(raw.get("count", 0))
        hist.total = float(raw.get("sum", 0.0))
        hist.zeros = int(raw.get("zeros", 0))
        if hist.count:
            hist.minimum = float(raw.get("min", 0.0))
            hist.maximum = float(raw.get("max", 0.0))
        hist._buckets = {
            int(e): int(n) for e, n in dict(raw.get("buckets", {})).items()
        }
        return hist

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.count:
            return "<LatencyHistogram empty>"
        return (
            f"<LatencyHistogram n={self.count} p50={self.percentile(0.5):.4g}"
            f" p99={self.percentile(0.99):.4g} max={self.maximum:.4g}>"
        )


class HistogramRegistry:
    """Named histograms, dot-named like the counters.

    The hot-path method is :meth:`observe`: one dict ``get`` plus an
    O(1) :meth:`LatencyHistogram.record`.  Like :class:`Counters`, the
    registry is unlocked — each instrumented component tree owns its
    handle.
    """

    __slots__ = ("_histograms",)

    def __init__(self) -> None:
        self._histograms: Dict[str, LatencyHistogram] = {}

    # -- mutation ----------------------------------------------------------

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into the histogram called ``name``."""
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = LatencyHistogram()
        hist.record(value)

    def reset(self) -> None:
        """Drop every histogram (the next observe starts fresh)."""
        self._histograms.clear()

    # -- reading -----------------------------------------------------------

    def get(self, name: str) -> Optional[LatencyHistogram]:
        """The histogram called ``name``, or None if never observed."""
        return self._histograms.get(name)

    def names(self) -> Tuple[str, ...]:
        """All histogram names, sorted (stable for reports)."""
        return tuple(sorted(self._histograms))

    def summaries(self) -> Dict[str, Dict[str, float]]:
        """``{name: summary}`` for every histogram (JSON-serializable)."""
        return {
            name: self._histograms[name].summary() for name in self.names()
        }

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        """``{name: full to_dict form}`` for every histogram."""
        return {
            name: self._histograms[name].to_dict() for name in self.names()
        }

    def items(self) -> Iterator[Tuple[str, LatencyHistogram]]:
        """(name, histogram) pairs in sorted-name order."""
        for name in self.names():
            yield name, self._histograms[name]

    def __len__(self) -> int:
        return len(self._histograms)

    def __contains__(self, name: str) -> bool:
        return name in self._histograms

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HistogramRegistry({self.names()!r})"
