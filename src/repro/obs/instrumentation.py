"""The instrumentation handle: counters + spans behind one object.

Every instrumentable component (buffer pool, WAL, B+tree, the backends,
the simulated network) is handed an :class:`Instrumentation` at
construction and calls exactly two kinds of method on it:

* ``instr.count(name, n)`` — bump a counter;
* ``with instr.span(name):`` — time a region.

When measurement is off the component holds :data:`NO_OP` instead — a
singleton whose ``count`` is an empty method and whose ``span`` returns
a shared, stateless null context manager.  The disabled cost is one
attribute lookup and one no-op call; the paper-protocol timings stay
honest (the acceptance bar is < 5% on the tightest benchmark loop, and
the engine's per-page work dwarfs that).

A process-global default exists so code far from a constructor can still
reach the active handle::

    from repro import obs

    instr = obs.enable()           # install a live handle globally
    ...                            # backends built now pick it up
    print(instr.counters.as_dict())
    obs.disable()                  # back to the no-op singleton

Constructors take ``instrumentation=None`` to mean "whatever is globally
active right now"; passing an explicit object isolates a component (the
benchmark runner does this so concurrent grids never share counters).
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from repro.obs.counters import Counters, CounterSnapshot, Number
from repro.obs.histograms import HistogramRegistry
from repro.obs.spans import SpanRecorder, TraceContext
from repro.obs.timeseries import GaugeRegistry

#: Distinct trace ids per process; every live handle draws one, so a
#: TraceContext names its originating handle unambiguously.
_TRACE_IDS = itertools.count(1)


class _NullSpan:
    """A reusable, stateless context manager that does nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Instrumentation:
    """A live measurement handle: counters + spans + latency histograms."""

    __slots__ = (
        "counters",
        "spans",
        "histograms",
        "gauges",
        "recorder",
        "trace_id",
    )

    #: Live handles record; the no-op singleton overrides this to False.
    enabled = True

    def __init__(self, span_capacity: int = 1024) -> None:
        self.counters = Counters()
        self.spans = SpanRecorder(span_capacity)
        self.histograms = HistogramRegistry()
        self.gauges = GaugeRegistry()
        #: Optional attached flight recorder (see :meth:`attach_recorder`).
        self.recorder = None
        self.trace_id = next(_TRACE_IDS)

    # -- the three hot entry points ----------------------------------------

    def count(self, name: str, amount: Number = 1) -> None:
        """Bump a counter by ``amount``."""
        self.counters.inc(name, amount)

    def span(
        self,
        name: str,
        remote_parent: Optional[int] = None,
        remote_trace: Optional[int] = None,
        client: Optional[str] = None,
    ):
        """Open a timed span; use as a context manager.

        ``remote_parent``/``remote_trace`` link the span to a caller
        on the other side of an RPC boundary (see
        :class:`~repro.obs.spans.TraceContext`); ``client`` tags the
        span with the issuing client's identity in multi-client runs.
        """
        return self.spans.span(
            name,
            remote_parent=remote_parent,
            remote_trace=remote_trace,
            client=client,
        )

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the latency histogram ``name``.

        Convention: values are **milliseconds** (the seam histograms —
        ``engine.wal.fsync``, ``engine.buffer.miss``,
        ``backend.rpc.call`` — all record ms).
        """
        self.histograms.observe(name, value)

    def gauge(self, name: str, fn) -> None:
        """Register a callback gauge (evaluated only at sample time).

        Components register gauges at construction — cheap because the
        callback never runs on a hot path; the flight recorder calls
        it when (and only when) it takes a sample.  The name taxonomy
        (and the regex CI lints gauge names with) is documented in
        ``docs/observability.md``.
        """
        self.gauges.register(name, fn)

    def set_gauge(self, name: str, value: float) -> None:
        """Set a settable gauge (one dict store — hot-path safe)."""
        self.gauges.set(name, value)

    # -- trace propagation -------------------------------------------------

    def current_context(self) -> Optional[TraceContext]:
        """The (trace id, innermost open span) pair an RPC should carry.

        None when no span is open — there is nothing to link to.
        """
        span_id = self.spans.current_span_id()
        if span_id is None:
            return None
        return TraceContext(trace_id=self.trace_id, span_id=span_id)

    # -- snapshots and lifecycle ------------------------------------------

    def snapshot(self) -> CounterSnapshot:
        """An immutable copy of the current counter values."""
        return self.counters.snapshot()

    def delta_since(self, earlier: CounterSnapshot) -> Dict[str, Number]:
        """Nonzero counter changes since an earlier snapshot."""
        return self.counters.snapshot().delta(earlier)

    def attach_recorder(self, recorder) -> None:
        """Attach a flight recorder so :meth:`reset` clears its ring.

        The recorder samples *this* handle; attaching it here makes
        the cold/warm isolation contract atomic — one ``reset()``
        clears counters, histograms, completed spans, settable gauges
        **and** the recorder's sample ring together.
        """
        self.recorder = recorder

    def reset(self) -> None:
        """Atomically clear counters, histograms, gauges, and the rings.

        **Contract** (the harness pins this between the cold and warm
        passes of the section 5.3 protocol):

        * counters drop to zero, histograms drop to empty, and every
          *completed* span is discarded, in one call with no recording
          interleaved (handles are single-threaded by design — each
          component tree owns its own handle);
        * span **sequence numbering is not reset** — it stays monotonic
          across the reset, so spans recorded afterwards can never
          reference (or be confused with) pre-reset sequence numbers;
        * spans still *open* across the reset survive and complete
          normally; their records land in the post-reset ring;
        * settable gauge values are cleared but **registered gauge
          callbacks survive** (the components that registered them
          persist across the cold/warm boundary);
        * an attached flight recorder's sample ring is cleared and its
          rate baselines rebased, so the first post-reset sample never
          reports negative deltas against pre-reset counters.
        """
        self.counters.reset()
        self.histograms.reset()
        self.spans.clear()
        self.gauges.reset()
        if self.recorder is not None:
            self.recorder.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Instrumentation counters={len(self.counters)} "
            f"spans={len(self.spans)} histograms={len(self.histograms)}>"
        )


class NoOpInstrumentation(Instrumentation):
    """The disabled handle: records nothing, costs (almost) nothing.

    It still *owns* (empty, shared) ``counters``/``spans`` objects so
    code that snapshots unconditionally keeps working; every snapshot
    is empty and every delta is ``{}``.
    """

    __slots__ = ()

    enabled = False

    def __init__(self) -> None:
        super().__init__(span_capacity=1)

    def count(self, name: str, amount: Number = 1) -> None:
        pass

    def span(
        self,
        name: str,
        remote_parent: Optional[int] = None,
        remote_trace: Optional[int] = None,
        client: Optional[str] = None,
    ) -> _NullSpan:
        return _NULL_SPAN

    def observe(self, name: str, value: float) -> None:
        pass

    def gauge(self, name: str, fn) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def current_context(self) -> None:
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<NoOpInstrumentation>"


#: The process-wide disabled singleton.  Components default to this.
NO_OP = NoOpInstrumentation()

_global: Instrumentation = NO_OP


def get_instrumentation() -> Instrumentation:
    """The currently active process-global handle (NO_OP by default)."""
    return _global


def set_instrumentation(instr: Optional[Instrumentation]) -> Instrumentation:
    """Install a handle as the process-global default.

    ``None`` restores the no-op singleton.  Returns the *previous*
    handle so callers can restore it (the tests do).
    """
    global _global
    previous = _global
    _global = instr if instr is not None else NO_OP
    return previous


def enable(span_capacity: int = 1024) -> Instrumentation:
    """Install (and return) a fresh live handle as the global default."""
    instr = Instrumentation(span_capacity=span_capacity)
    set_instrumentation(instr)
    return instr


def disable() -> None:
    """Restore the no-op singleton as the global default."""
    set_instrumentation(NO_OP)


def resolve(instr: Optional[Instrumentation]) -> Instrumentation:
    """The handle a constructor should keep: explicit, or the global."""
    return instr if instr is not None else _global
