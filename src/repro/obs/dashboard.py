"""``repro dash``: the self-contained HTML game-day dashboard.

Renders any combination of benchmark documents (``BENCH_*.json``), a
flight-recorder timeline (JSONL, see
:class:`~repro.obs.timeseries.FlightRecorder`) and an optional Chrome
trace export into **one** HTML file with zero network dependencies:
every chart is inline SVG, every style is an inline ``<style>`` block,
and there is no JavaScript at all — the hover layer is the browser's
native ``<title>`` tooltip on enlarged transparent hit targets, and
every chart ships a ``<details>`` table-view twin so no value is
reachable only by hover.  The file opens from ``file://``, from a CI
artifact browser, or from an air-gapped game-day laptop.

Chart styling follows a small fixed spec: 2px lines with round caps,
columns ≤ 24px with a rounded data-end and a 2px surface gap, hairline
solid gridlines, labels in text tokens (never the series color).  The
categorical palette is a validated 3-slot set (adjacent and all-pairs
CVD-safe in both light and dark mode); charts never use more than
three series, and single-series charts carry no legend — the title
names the series.
"""

from __future__ import annotations

import html
import json
import math
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: Number of categorical slots.  Three slots pass the all-pairs CVD
#: checks in both modes (validated); charts here never use more.
_SERIES_SLOTS = 3

_CSS = """
:root {
  color-scheme: light dark;
  /* Validated categorical slots + chart chrome (light mode). */
  --series-1: #2a78d6;
  --series-2: #eb6834;
  --series-3: #1baf7a;
  --chart-surface: #fcfcfb;
  --grid: #e1e0d9;
  --axis: #c3c2b7;
}
@media (prefers-color-scheme: dark) {
  :root {
    /* Dark steps of the same hues, validated against #1a1a19. */
    --series-1: #3987e5;
    --series-2: #d95926;
    --series-3: #199e70;
    --chart-surface: #1a1a19;
    --grid: #2c2c2a;
    --axis: #383835;
  }
}
body {
  margin: 0; padding: 24px 32px 48px;
  background: #f9f9f7; color: #0b0b0b;
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}
.card {
  background: #fcfcfb; border: 1px solid rgba(11,11,11,0.10);
  border-radius: 8px; padding: 16px 20px; margin: 16px 0;
}
h1 { font-size: 22px; font-weight: 600; margin: 0 0 4px; }
h2 { font-size: 16px; font-weight: 600; margin: 0 0 8px; }
h3 { font-size: 13px; font-weight: 600; margin: 12px 0 4px; }
.sub { color: #52514e; margin: 0 0 12px; }
.muted { color: #898781; font-size: 12px; }
.provenance { color: #52514e; font-size: 12px; }
.provenance code { font-size: 11px; }
.kpis { display: flex; flex-wrap: wrap; gap: 16px; margin: 16px 0; }
.tile {
  background: #fcfcfb; border: 1px solid rgba(11,11,11,0.10);
  border-radius: 8px; padding: 12px 18px; min-width: 130px;
}
.tile .label { color: #52514e; font-size: 12px; }
.tile .value { font-size: 30px; font-weight: 600; }
.grid { display: flex; flex-wrap: wrap; gap: 16px; }
.grid .card { margin: 0; }
svg text { font: 11px system-ui, -apple-system, "Segoe UI", sans-serif; }
table { border-collapse: collapse; font-size: 12px; margin: 6px 0; }
th, td {
  text-align: right; padding: 3px 10px;
  border-bottom: 1px solid #e1e0d9;
  font-variant-numeric: tabular-nums;
}
th { color: #52514e; font-weight: 600; }
th:first-child, td:first-child { text-align: left; }
details summary { cursor: pointer; color: #52514e; font-size: 12px; }
.legend { display: flex; gap: 16px; font-size: 12px; color: #52514e;
          margin: 2px 0 6px; }
.legend .key { display: inline-block; width: 14px; height: 3px;
               border-radius: 2px; vertical-align: middle;
               margin-right: 5px; }
@media (prefers-color-scheme: dark) {
  body { background: #0d0d0d; color: #ffffff; }
  .card, .tile { background: #1a1a19;
                 border-color: rgba(255,255,255,0.10); }
  .sub, .tile .label, .provenance, details summary,
  .legend { color: #c3c2b7; }
  th { color: #c3c2b7; }
  th, td { border-bottom-color: #2c2c2a; }
}
"""

#: Muted ink (axis labels) — same hex in both modes.
_INK_MUTED = "#898781"

#: Timeline metrics worth a chart, in display order.  ``("gauges",
#: name)`` reads the gauge; ``("rates", name)`` the counter rate.
#: Only metrics that actually appear in the samples are rendered.
_TIMELINE_CANDIDATES: Tuple[Tuple[str, str, str], ...] = (
    ("gauges", "netsim.transport.queue_depth", "transport queue depth"),
    ("gauges", "netsim.transport.busy_frac", "transport busy fraction"),
    ("gauges", "backend.occ.inflight", "OCC transactions in flight"),
    ("gauges", "backend.occ.aborted", "OCC aborts (cumulative)"),
    ("rates", "backend.mp.txn.committed", "commit rate (txn/s)"),
    ("rates", "backend.mp.txn.aborted", "abort rate (txn/s)"),
    ("rates", "backend.mp.txn.retries", "retry rate (txn/s)"),
    ("rates", "backend.rpc.round_trips", "RPC round trips (/s)"),
    ("rates", "backend.2pc.commits", "2PC commits (/s)"),
    ("gauges", "engine.wal.backlog", "WAL backlog (pending commits)"),
    ("gauges", "engine.buffer.occupancy", "buffer pool occupancy"),
    ("gauges", "netsim.transport.backlog_s", "transport backlog (s)"),
)

#: Windowed-histogram chart: p50/p90/p99 over time, three series.
_WINDOW_CANDIDATES = ("backend.mp.queue_delay", "backend.rpc.call")


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _fmt(value: float) -> str:
    """Compact figure formatting for labels and tables."""
    if value != value or value in (float("inf"), float("-inf")):
        return str(value)
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    if abs(value) >= 10:
        return f"{value:.1f}".rstrip("0").rstrip(".")
    return f"{value:.3g}"


def _series_color(index: int) -> str:
    """CSS for slot ``index`` — a custom property that swaps with the
    color scheme (must be used from ``style=``, not a presentation
    attribute: SVG presentation attributes do not resolve ``var()``).
    """
    return f"var(--series-{index % _SERIES_SLOTS + 1})"


def _ticks(low: float, high: float, count: int = 4) -> List[float]:
    """A few clean tick values covering [low, high]."""
    if high <= low:
        high = low + 1.0
    span = high - low
    raw = span / max(count, 1)
    magnitude = 10 ** math.floor(math.log10(raw))
    for mult in (1, 2, 2.5, 5, 10):
        step = magnitude * mult
        if span / step <= count:
            break
    first = math.ceil(low / step) * step
    out = []
    value = first
    while value <= high + step * 1e-9:
        out.append(round(value, 10))
        value += step
    return out


def _table(
    headers: Sequence[str], rows: Iterable[Sequence[Any]]
) -> str:
    head = "".join(f"<th>{_esc(h)}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{_esc(c)}</td>" for c in row) + "</tr>"
        for row in rows
    )
    return f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"


def _details_table(
    summary: str, headers: Sequence[str], rows: Iterable[Sequence[Any]]
) -> str:
    return (
        f"<details><summary>{_esc(summary)}</summary>"
        f"{_table(headers, rows)}</details>"
    )


# ----------------------------------------------------------------------
# SVG charts
# ----------------------------------------------------------------------

_W, _H = 420, 150
_PAD_L, _PAD_R, _PAD_T, _PAD_B = 46, 10, 14, 22


def _frame(
    y_ticks: List[float],
    y_of,
    x_ticks: List[Tuple[float, str]],
    x_of,
) -> List[str]:
    """Hairline gridlines + axis labels (recessive chrome)."""
    parts = []
    for tick in y_ticks:
        y = y_of(tick)
        parts.append(
            f'<line x1="{_PAD_L}" y1="{y:.1f}" x2="{_W - _PAD_R}"'
            f' y2="{y:.1f}" style="stroke:var(--grid)" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{_PAD_L - 5}" y="{y + 3.5:.1f}" text-anchor="end"'
            f' fill="{_INK_MUTED}">{_esc(_fmt(tick))}</text>'
        )
    base_y = _H - _PAD_B
    parts.append(
        f'<line x1="{_PAD_L}" y1="{base_y}" x2="{_W - _PAD_R}"'
        f' y2="{base_y}" style="stroke:var(--axis)" stroke-width="1"/>'
    )
    for value, label in x_ticks:
        x = x_of(value)
        parts.append(
            f'<text x="{x:.1f}" y="{_H - 6}" text-anchor="middle"'
            f' fill="{_INK_MUTED}">{_esc(label)}</text>'
        )
    return parts


def _line_chart(
    title: str,
    series: Sequence[Tuple[str, List[Tuple[float, float]]]],
    unit: str = "",
    bands: Optional[List[Tuple[float, str]]] = None,
) -> str:
    """One SVG line chart (≤3 series) + legend + table-view twin.

    ``series`` is ``[(name, [(x, y), ...]), ...]``; ``bands`` marks
    segment starts (vertical hairline + muted label), used for the
    timeline's grid-cell boundaries.
    """
    series = [s for s in series if s[1]][:_SERIES_SLOTS]
    if not series:
        return ""
    xs = [x for _, pts in series for x, _ in pts]
    ys = [y for _, pts in series for _, y in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(0.0, min(ys)), max(ys)
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0

    def x_of(x: float) -> float:
        return _PAD_L + (x - x_lo) / (x_hi - x_lo) * (
            _W - _PAD_L - _PAD_R
        )

    def y_of(y: float) -> float:
        return _H - _PAD_B - (y - y_lo) / (y_hi - y_lo) * (
            _H - _PAD_T - _PAD_B
        )

    x_tick_vals = _ticks(x_lo, x_hi, 5)
    parts = [
        f'<svg viewBox="0 0 {_W} {_H}" width="{_W}" height="{_H}"'
        f' role="img" aria-label="{_esc(title)}">'
    ]
    parts += _frame(
        _ticks(y_lo, y_hi, 3),
        y_of,
        [(v, _fmt(v)) for v in x_tick_vals],
        x_of,
    )
    for x, label in bands or []:
        if x <= x_lo or x >= x_hi:
            continue
        bx = x_of(x)
        parts.append(
            f'<line x1="{bx:.1f}" y1="{_PAD_T}" x2="{bx:.1f}"'
            f' y2="{_H - _PAD_B}" style="stroke:var(--grid)"'
            f' stroke-width="1"/>'
        )
    for index, (name, pts) in enumerate(series):
        color = _series_color(index)
        coords = " ".join(
            f"{x_of(x):.1f},{y_of(y):.1f}" for x, y in pts
        )
        parts.append(
            f'<polyline points="{coords}" fill="none"'
            f' style="stroke:{color}" stroke-width="2"'
            f' stroke-linejoin="round" stroke-linecap="round"/>'
        )
        # End marker: >=8px dot with a 2px surface ring.
        ex, ey = pts[-1]
        parts.append(
            f'<circle cx="{x_of(ex):.1f}" cy="{y_of(ey):.1f}" r="4"'
            f' style="fill:{color};stroke:var(--chart-surface)"'
            f' stroke-width="2"/>'
        )
        # Hover layer: transparent >=12px hit circles carrying the
        # browser-native tooltip (no JS, works from file://).
        for x, y in pts:
            label = f"{name}: {_fmt(y)}{unit} at {_fmt(x)}s"
            parts.append(
                f'<circle cx="{x_of(x):.1f}" cy="{y_of(y):.1f}" r="12"'
                f' fill="transparent"><title>{_esc(label)}</title>'
                f"</circle>"
            )
    parts.append("</svg>")
    legend = ""
    if len(series) > 1:
        keys = "".join(
            f'<span><span class="key" style="background:'
            f'{_series_color(i)}"></span>{_esc(name)}</span>'
            for i, (name, _) in enumerate(series)
        )
        legend = f'<div class="legend">{keys}</div>'
    headers = ["t (s)"] + [name for name, _ in series]
    by_x: Dict[float, List[Optional[float]]] = {}
    for index, (_, pts) in enumerate(series):
        for x, y in pts:
            by_x.setdefault(x, [None] * len(series))[index] = y
    rows = [
        [_fmt(x)]
        + ["" if v is None else _fmt(v) for v in by_x[x]]
        for x in sorted(by_x)
    ]
    return (
        f'<div class="card"><h2>{_esc(title)}</h2>{legend}'
        + "".join(parts)
        + _details_table("table view", headers, rows)
        + "</div>"
    )


def _column_chart(
    title: str,
    categories: Sequence[str],
    series: Sequence[Tuple[str, Sequence[float]]],
    unit: str = "",
) -> str:
    """Grouped columns (≤3 series): thin rounded-cap bars, 2px gaps."""
    series = list(series)[:_SERIES_SLOTS]
    if not series or not categories:
        return ""
    y_hi = max(
        (v for _, values in series for v in values), default=1.0
    )
    if y_hi <= 0:
        y_hi = 1.0

    def y_of(y: float) -> float:
        return _H - _PAD_B - y / y_hi * (_H - _PAD_T - _PAD_B)

    plot_w = _W - _PAD_L - _PAD_R
    slot = plot_w / len(categories)
    bar = min(24.0, (slot - 8) / len(series) - 2)
    bar = max(bar, 3.0)
    group_w = bar * len(series) + 2 * (len(series) - 1)
    parts = [
        f'<svg viewBox="0 0 {_W} {_H}" width="{_W}" height="{_H}"'
        f' role="img" aria-label="{_esc(title)}">'
    ]
    parts += _frame(_ticks(0.0, y_hi, 3), y_of, [], lambda x: x)
    base_y = _H - _PAD_B
    for ci, category in enumerate(categories):
        cx = _PAD_L + slot * ci + slot / 2
        for si, (name, values) in enumerate(series):
            value = values[ci]
            x = cx - group_w / 2 + si * (bar + 2)
            top = y_of(value)
            height = max(base_y - top, 0.0)
            radius = min(4.0, height, bar / 2)
            color = _series_color(si)
            # Rounded data-end, square at the baseline.
            parts.append(
                f'<path d="M{x:.1f},{base_y:.1f} V{top + radius:.1f}'
                f" Q{x:.1f},{top:.1f} {x + radius:.1f},{top:.1f}"
                f" H{x + bar - radius:.1f}"
                f" Q{x + bar:.1f},{top:.1f}"
                f" {x + bar:.1f},{top + radius:.1f}"
                f' V{base_y:.1f} Z" style="fill:{color}">'
                f"<title>{_esc(f'{name} · {category}: {_fmt(value)}{unit}')}"
                f"</title></path>"
            )
        parts.append(
            f'<text x="{cx:.1f}" y="{_H - 6}" text-anchor="middle"'
            f' fill="{_INK_MUTED}">{_esc(category)}</text>'
        )
    parts.append("</svg>")
    legend = ""
    if len(series) > 1:
        keys = "".join(
            f'<span><span class="key" style="background:'
            f'{_series_color(i)}"></span>{_esc(name)}</span>'
            for i, (name, _) in enumerate(series)
        )
        legend = f'<div class="legend">{keys}</div>'
    rows = [
        [category] + [_fmt(values[ci]) for _, values in series]
        for ci, category in enumerate(categories)
    ]
    return (
        f'<div class="card"><h2>{_esc(title)}</h2>{legend}'
        + "".join(parts)
        + _details_table(
            "table view", [""] + [n for n, _ in series], rows
        )
        + "</div>"
    )


# ----------------------------------------------------------------------
# Timeline section
# ----------------------------------------------------------------------


def _continuous_axis(
    samples: List[Dict[str, Any]],
) -> Tuple[List[float], List[Tuple[float, str]]]:
    """Cumulative x positions + label-band starts.

    Each grid cell's virtual clock restarts near zero, so raw ``t``
    values are non-monotonic across a whole bench run; offsetting each
    restart by the previous segment's end yields one continuous axis.
    """
    xs: List[float] = []
    bands: List[Tuple[float, str]] = []
    offset = 0.0
    prev_raw: Optional[float] = None
    prev_label: Optional[str] = None
    for sample in samples:
        t = float(sample.get("t", 0.0))
        if prev_raw is not None and t < prev_raw:
            offset = xs[-1]
        x = offset + t
        label = sample.get("label")
        if label is not None and label != prev_label:
            bands.append((x, str(label)))
            prev_label = str(label)
        xs.append(x)
        prev_raw = t
    return xs, bands


def _timeline_section(samples: List[Dict[str, Any]]) -> str:
    if not samples:
        return ""
    xs, bands = _continuous_axis(samples)
    charts: List[str] = []
    for group, name, title in _TIMELINE_CANDIDATES:
        pts = [
            (x, float(sample[group][name]))
            for x, sample in zip(xs, samples)
            if name in sample.get(group, {})
        ]
        if len(pts) < 2:
            continue
        charts.append(_line_chart(title, [(name, pts)], bands=bands))
    # Per-shard in-doubt gauges fold into one chart (<=3 shards drawn).
    in_doubt = sorted(
        {
            key
            for sample in samples
            for key in sample.get("gauges", {})
            if key.startswith("backend.2pc.") and key.endswith(".in_doubt")
        }
    )[:_SERIES_SLOTS]
    if in_doubt:
        series = []
        for key in in_doubt:
            pts = [
                (x, float(sample["gauges"][key]))
                for x, sample in zip(xs, samples)
                if key in sample.get("gauges", {})
            ]
            if pts:
                series.append((key.split(".")[-2], pts))
        if series:
            charts.append(
                _line_chart("2PC in-doubt per shard", series, bands=bands)
            )
    for hist_name in _WINDOW_CANDIDATES:
        series = []
        for quantile in ("p50", "p90", "p99"):
            pts = [
                (x, float(sample["windows"][hist_name][quantile]))
                for x, sample in zip(xs, samples)
                if hist_name in sample.get("windows", {})
            ]
            if len(pts) >= 2:
                series.append((quantile, pts))
        if series:
            charts.append(
                _line_chart(
                    f"{hist_name} window (ms)", series, bands=bands
                )
            )
    if not charts:
        return ""
    clock = samples[0].get("clock", "virtual")
    segments = _table(
        ["segment", "from (s)", "samples"],
        [
            (label, _fmt(start), sum(1 for s in samples if s.get("label") == label))
            for start, label in bands
        ],
    ) if bands else ""
    return (
        "<section><h2>Timeline</h2>"
        f'<p class="sub">{len(samples)} flight-recorder samples,'
        f" {_esc(clock)} clock; vertical hairlines mark segment"
        " starts.</p>"
        f'<div class="grid">{"".join(charts)}</div>'
        f"{segments}</section>"
    )


# ----------------------------------------------------------------------
# Benchmark sections
# ----------------------------------------------------------------------


def _leaf_rows(
    node: Any, path: Tuple[str, ...] = ()
) -> List[Tuple[str, Dict[str, Any]]]:
    """Every dict carrying ``p50_ms`` under ``cells``, with its path."""
    rows: List[Tuple[str, Dict[str, Any]]] = []
    if isinstance(node, dict):
        if "p50_ms" in node:
            rows.append((" / ".join(path), node))
        else:
            for key in sorted(node):
                rows.extend(_leaf_rows(node[key], path + (str(key),)))
    return rows


def _percentile_card(doc: Dict[str, Any]) -> str:
    leaves = _leaf_rows(doc.get("cells", {}))
    if not leaves:
        return ""
    rows = [
        (
            path,
            _fmt(float(leaf.get("p50_ms", 0.0))),
            _fmt(float(leaf.get("p90_ms", 0.0))),
            _fmt(float(leaf.get("p99_ms", 0.0))),
            _fmt(float(leaf.get("max_ms", 0.0))),
            leaf.get("mode", ""),
        )
        for path, leaf in leaves
    ]
    return (
        "<h3>Latency percentiles (virtual ms)</h3>"
        + _table(
            ["cell", "p50", "p90", "p99", "max", "mode"], rows
        )
    )


def _multiuser_charts(doc: Dict[str, Any]) -> str:
    cells = doc.get("cells", {})
    client_keys = sorted(
        cells, key=lambda k: int(str(k).split("-", 1)[1])
    )
    if not client_keys:
        return ""
    rate_keys = sorted(
        {rk for ck in client_keys for rk in cells[ck]},
        key=lambda k: float(str(k).split("-", 1)[1]),
    )[:_SERIES_SLOTS]
    categories = [str(k).split("-", 1)[1] for k in client_keys]
    throughput = [
        (
            rk.replace("conflict-", "conflict "),
            [
                float(cells[ck].get(rk, {}).get("throughput_per_s", 0.0))
                for ck in client_keys
            ],
        )
        for rk in rate_keys
    ]
    aborts = [
        (
            rk.replace("conflict-", "conflict "),
            [
                100.0 * float(cells[ck].get(rk, {}).get("abort_rate", 0.0))
                for ck in client_keys
            ],
        )
        for rk in rate_keys
    ]
    return _column_chart(
        "Throughput by client count (txn/s)", categories, throughput
    ) + _column_chart(
        "Abort rate by client count (%)", categories, aborts, unit="%"
    )


def _sharded_charts(doc: Dict[str, Any]) -> str:
    cells = doc.get("cells", {})
    keys = sorted(cells)
    if not keys:
        return ""
    out = ""
    for phase in ("closure", "update"):
        categories = []
        values = []
        for key in keys:
            leaf = cells[key].get(phase)
            if isinstance(leaf, dict) and "p50_ms" in leaf:
                categories.append(str(key))
                values.append(float(leaf["p50_ms"]))
        if categories:
            out += _column_chart(
                f"{phase} p50 by cell (virtual ms)",
                categories,
                [(phase, values)],
            )
    return out


def _replica_charts(doc: Dict[str, Any]) -> str:
    """Read throughput by replica count, one series per write×lag combo."""
    cells = doc.get("cells", {})
    grid = {
        key: cell
        for key, cell in cells.items()
        if str(key).startswith("replicas") and isinstance(cell, dict)
    }
    if not grid:
        return ""
    counts = sorted(
        {int(str(k).split("-", 1)[0][len("replicas"):]) for k in grid}
    )
    combos = sorted({str(k).split("-", 1)[1] for k in grid})[:_SERIES_SLOTS]
    series = []
    for combo in combos:
        values = []
        for count in counts:
            leaf = grid.get(f"replicas{count}-{combo}", {}).get("reads", {})
            values.append(float(leaf.get("throughput_per_s", 0.0)))
        series.append((combo, values))
    out = _column_chart(
        "Read throughput by replica count (closures/s, virtual)",
        [str(c) for c in counts],
        series,
    )
    scaling = doc.get("scaling") or {}
    if scaling:
        out += _table(
            ["write×lag combo", f"{counts[0]}→{counts[-1]} scaling"],
            [
                (combo, f"{float(scaling[combo]):.2f}x")
                for combo in sorted(scaling)
            ],
        )
    return out


def _bench_section(name: str, doc: Dict[str, Any]) -> str:
    benchmark = str(doc.get("benchmark", "benchmark"))
    prov = doc.get("provenance", {})
    prov_bits = []
    if isinstance(prov, dict):
        for key in sorted(prov):
            value = prov[key]
            if isinstance(value, (str, int, float)):
                prov_bits.append(f"{key}={value}")
    header = (
        f"<section><h2>{_esc(benchmark)} — {_esc(name)}</h2>"
        f'<p class="provenance">{_esc("; ".join(prov_bits))}</p>'
    )
    charts = ""
    if benchmark == "multiuser":
        charts = f'<div class="grid">{_multiuser_charts(doc)}</div>'
        wal = doc.get("wal") or {}
        per = wal.get("per_commit", {})
        grp = wal.get("group_commit", {})
        if per and grp:
            charts += _table(
                ["wal mode", "fsyncs/commit", "wal syncs", "tput/s"],
                [
                    (
                        mode,
                        _fmt(float(leaf.get("fsyncs_per_commit", 0.0))),
                        leaf.get("wal_syncs", 0),
                        _fmt(float(leaf.get("throughput_per_s", 0.0))),
                    )
                    for mode, leaf in (
                        ("per-commit", per),
                        ("group-commit", grp),
                    )
                ],
            )
    elif benchmark == "sharded":
        charts = f'<div class="grid">{_sharded_charts(doc)}</div>'
    elif benchmark == "replica":
        charts = f'<div class="grid">{_replica_charts(doc)}</div>'
    return header + charts + _percentile_card(doc) + "</section>"


# ----------------------------------------------------------------------
# Trace section
# ----------------------------------------------------------------------


def _trace_section(doc: Dict[str, Any]) -> str:
    events = doc.get("traceEvents", [])
    other = doc.get("otherData", {})
    lanes: Dict[Tuple[int, int], str] = {}
    span_counts: Dict[Tuple[int, int], int] = {}
    for event in events:
        key = (event.get("pid", 0), event.get("tid", 0))
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            lanes[key] = str(event.get("args", {}).get("name", ""))
        elif event.get("ph") == "X":
            span_counts[key] = span_counts.get(key, 0) + 1
    lane_rows = [
        (
            lanes.get(key, f"pid {key[0]} tid {key[1]}"),
            key[0],
            key[1],
            count,
        )
        for key, count in sorted(span_counts.items())
    ]
    counters = other.get("counters", {})
    counter_rows = [
        (name, _fmt(float(counters[name]))) for name in sorted(counters)
    ]
    return (
        "<section><h2>Trace</h2>"
        f'<p class="sub">trace {_esc(other.get("trace_id", "?"))} — '
        f'{_esc(other.get("span_count", len(events)))} spans'
        "</p>"
        + _table(["lane", "pid", "tid", "spans"], lane_rows)
        + _details_table(
            f"counter totals ({len(counter_rows)})",
            ["counter", "value"],
            counter_rows,
        )
        + "</section>"
    )


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------


def render_dashboard(
    benches: Sequence[Tuple[str, Dict[str, Any]]] = (),
    timeline: Optional[List[Dict[str, Any]]] = None,
    trace: Optional[Dict[str, Any]] = None,
    title: str = "HyperModel game-day dashboard",
) -> str:
    """Render everything into one self-contained HTML string."""
    sources = [name for name, _ in benches]
    if timeline:
        sources.append(f"timeline ({len(timeline)} samples)")
    if trace:
        sources.append("chrome trace")
    tiles = []
    for _, doc in benches:
        if doc.get("benchmark") == "multiuser":
            leaves = [leaf for _, leaf in _leaf_rows(doc.get("cells", {}))]
            committed = sum(int(l.get("committed", 0)) for l in leaves)
            aborted = sum(int(l.get("aborted", 0)) for l in leaves)
            peak = max(
                (float(l.get("throughput_per_s", 0.0)) for l in leaves),
                default=0.0,
            )
            tiles += [
                ("committed txns", _fmt(committed)),
                ("optimistic aborts", _fmt(aborted)),
                ("peak throughput /s", _fmt(peak)),
            ]
        elif doc.get("benchmark") == "sharded":
            leaves = [leaf for _, leaf in _leaf_rows(doc.get("cells", {}))]
            two_pc = sum(
                int(l.get("two_phase_commits", 0)) for l in leaves
            )
            tiles.append(("2PC commits", _fmt(two_pc)))
        elif doc.get("benchmark") == "replica":
            scaling = doc.get("scaling") or {}
            best = max(
                (float(v) for v in scaling.values()), default=0.0
            )
            leaves = [leaf for _, leaf in _leaf_rows(doc.get("cells", {}))]
            replica_reads = sum(
                int(l.get("replica_reads", 0)) for l in leaves
            )
            tiles += [
                ("replica read scaling", f"{best:.2f}x"),
                ("replica-served reads", _fmt(replica_reads)),
            ]
    kpis = "".join(
        f'<div class="tile"><div class="label">{_esc(label)}</div>'
        f'<div class="value">{_esc(value)}</div></div>'
        for label, value in tiles[:5]
    )
    body = [
        f"<h1>{_esc(title)}</h1>",
        f'<p class="provenance">sources: {_esc(", ".join(sources) or "none")}'
        "</p>",
    ]
    if kpis:
        body.append(f'<div class="kpis">{kpis}</div>')
    if timeline:
        body.append(_timeline_section(timeline))
    for name, doc in benches:
        body.append(_bench_section(name, doc))
    if trace:
        body.append(_trace_section(trace))
    return (
        "<!DOCTYPE html>\n<html lang=\"en\"><head>"
        '<meta charset="utf-8"/>'
        '<meta name="viewport" content="width=device-width,'
        ' initial-scale=1"/>'
        f"<title>{_esc(title)}</title>"
        f"<style>{_CSS}</style></head><body>"
        + "".join(body)
        + "</body></html>\n"
    )


def write_dashboard(
    out_path: str,
    bench_paths: Sequence[str] = (),
    timeline_path: Optional[str] = None,
    trace_path: Optional[str] = None,
    title: str = "HyperModel game-day dashboard",
) -> str:
    """Load the inputs from disk, render, and write ``out_path``."""
    from repro.obs.timeseries import read_jsonl

    benches: List[Tuple[str, Dict[str, Any]]] = []
    for path in bench_paths:
        with open(path, "r", encoding="utf-8") as handle:
            benches.append((path, json.load(handle)))
    timeline = read_jsonl(timeline_path) if timeline_path else None
    trace = None
    if trace_path:
        with open(trace_path, "r", encoding="utf-8") as handle:
            trace = json.load(handle)
    document = render_dashboard(
        benches, timeline=timeline, trace=trace, title=title
    )
    with open(out_path, "w", encoding="utf-8") as handle:
        handle.write(document)
    return out_path
