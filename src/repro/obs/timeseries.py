"""Gauges and the virtual-time flight recorder: telemetry over time.

The counters, histograms and spans answer *what a run did in total*;
Darmont's critique of object-database benchmarks (PAPERS.md) is that
totals hide exactly the phenomena a multi-client simulation exists to
show — cache warm-up, contention collapse, abort storms — which are
*time-evolving*.  This module adds the two missing pieces, stdlib-only
like the rest of the package:

* :class:`GaugeRegistry` — named instantaneous values.  A gauge is
  either a **callback** (``instr.gauge("engine.wal.backlog", fn)`` —
  evaluated lazily at sample time, so registering one costs nothing on
  any hot path) or **settable** (``instr.set_gauge(name, value)`` —
  one dict store, for values only the workload knows, such as the
  number of in-flight optimistic transactions).  Like counters, the
  disabled :data:`~repro.obs.instrumentation.NO_OP` handle turns both
  into empty methods.

* :class:`FlightRecorder` — a bounded ring of telemetry samples.  Each
  :meth:`FlightRecorder.sample` call snapshots the handle's counters
  (emitting **rates** against the previous sample), evaluates every
  gauge, and computes **windowed** histogram percentiles (the p50/p99
  of the observations that arrived *since the last sample*, by bucket
  subtraction).  The discrete-event scheduler samples it on a virtual
  cadence and the wall-clock harness samples it once per repetition.

Every number in a virtual-time sample is a pure function of the seed,
so the JSONL export is **byte-identical across runs** — pinned by
``tests/test_timeseries.py`` and relied on by the ``repro dash``
renderer.  The gauge name taxonomy (and the regex CI lints it with)
lives in ``docs/observability.md``.
"""

from __future__ import annotations

import json
import math
from typing import Callable, Dict, List, Optional, TextIO, Tuple

from repro.obs.counters import CounterSnapshot
from repro.obs.histograms import SUMMARY_QUANTILES

#: The regex every gauge name must match (CI lints call sites against
#: it; see docs/observability.md).  Dotted lowercase segments, digits
#: and underscores allowed after the first character of a segment.
GAUGE_NAME_PATTERN = r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$"

#: Histograms fed (at least partly) from the real wall clock.  A
#: ``"virtual"``-clock recorder skips their windows: their bucket
#: counts differ run to run, which would break the byte-for-byte JSONL
#: determinism CI and ``repro dash`` rely on.  A ``"wall"`` recorder
#: windows everything.  Name either an exact histogram name or a
#: prefix (trailing dot) covering a family.
WALL_CLOCK_HISTOGRAMS = (
    "backend.rpc.call",
    "engine.buffer.miss",
    "engine.wal.fsync",
    "harness.iteration.",
)


def _wall_measured(name: str) -> bool:
    return any(
        name == entry or name.startswith(entry)
        for entry in WALL_CLOCK_HISTOGRAMS
    )


class GaugeRegistry:
    """Named instantaneous values: callbacks plus settable gauges.

    Registration replaces: a second ``register``/``set`` under the same
    name simply takes over (a fresh cell of a benchmark grid re-creates
    its components; the newest owner of a name wins).  ``collect`` is
    the only evaluation point — callbacks never run on a hot path.
    """

    __slots__ = ("_callbacks", "_values")

    def __init__(self) -> None:
        self._callbacks: Dict[str, Callable[[], float]] = {}
        self._values: Dict[str, float] = {}

    # -- mutation ----------------------------------------------------------

    def register(self, name: str, fn: Callable[[], float]) -> None:
        """Register (or replace) a callback gauge."""
        self._callbacks[name] = fn

    def unregister(self, name: str) -> None:
        """Drop a gauge (callback or settable); absent names are fine."""
        self._callbacks.pop(name, None)
        self._values.pop(name, None)

    def set(self, name: str, value: float) -> None:
        """Set a settable gauge (one dict store — hot-path safe)."""
        self._values[name] = value

    def reset(self) -> None:
        """Clear settable values; **registered callbacks survive**.

        This is the gauge half of the ``Instrumentation.reset``
        contract: between the cold and warm passes the components (and
        the callbacks they registered) persist, but any value the
        previous pass *set* must not leak into the next one.
        """
        self._values.clear()

    # -- reading -----------------------------------------------------------

    def collect(self) -> Dict[str, float]:
        """Evaluate every gauge; returns ``{name: value}`` (sorted keys).

        A callback that raises is skipped for this collection (its
        component may be mid-teardown); settable values shadow a
        callback of the same name.
        """
        out: Dict[str, float] = {}
        for name, fn in self._callbacks.items():
            try:
                out[name] = float(fn())
            except Exception:
                continue
        for name, value in self._values.items():
            out[name] = float(value)
        return {name: out[name] for name in sorted(out)}

    def names(self) -> Tuple[str, ...]:
        """All registered gauge names, sorted."""
        return tuple(sorted(set(self._callbacks) | set(self._values)))

    def __len__(self) -> int:
        return len(set(self._callbacks) | set(self._values))

    def __contains__(self, name: str) -> bool:
        return name in self._callbacks or name in self._values

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GaugeRegistry({self.names()!r})"


def _window_percentiles(
    buckets: Dict[int, int],
    zeros: int,
    count: int,
) -> Dict[str, float]:
    """Percentiles of one histogram *window* (bucket-count deltas).

    The window has no exact min/max (those are cumulative), so the
    interpolated estimate is clamped to the containing bucket's bounds
    instead — same bounded relative error, purely a function of the
    bucket counts, hence deterministic.
    """
    out: Dict[str, float] = {"count": float(count)}
    for label, q in SUMMARY_QUANTILES:
        rank = q * (count - 1)
        cumulative = 0
        if rank < zeros:
            out[label] = 0.0
            continue
        cumulative += zeros
        value = 0.0
        for exponent in sorted(buckets):
            n = buckets[exponent]
            if rank < cumulative + n:
                low = math.ldexp(1.0, exponent - 1)
                high = math.ldexp(1.0, exponent)
                value = low + ((rank - cumulative + 0.5) / n) * (high - low)
                break
            cumulative += n
        else:
            if buckets:
                value = math.ldexp(1.0, max(buckets))
        out[label] = value
    return out


class FlightRecorder:
    """A bounded ring of telemetry samples over one handle.

    Args:
        instrumentation: the handle to sample (rebindable per grid
            cell with :meth:`rebind`).
        capacity: retained samples; the oldest fall off (classic
            flight-recorder semantics, like the span ring).
        clock: ``"virtual"`` or ``"wall"`` — recorded per sample so a
            reader knows whether ``t`` is deterministic.
    """

    def __init__(
        self,
        instrumentation,
        capacity: int = 4096,
        clock: str = "virtual",
    ) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = capacity
        self.clock = clock
        self._samples: List[Dict[str, object]] = []
        self._instr = instrumentation
        self._rebase()

    # -- lifecycle ---------------------------------------------------------

    def _rebase(self) -> None:
        """Forget the previous sample's baselines (fresh deltas next)."""
        self._last_t: Optional[float] = None
        self._last_counters: CounterSnapshot = CounterSnapshot()
        self._last_hists: Dict[str, Tuple[Dict[int, int], int, int]] = {}

    def rebind(self, instrumentation) -> None:
        """Point the recorder at another handle (new grid cell).

        Retained samples stay; baselines restart so the first sample
        against the new handle reports its full counter values.
        """
        self._instr = instrumentation
        self._rebase()

    def clear(self) -> None:
        """Drop every sample and baseline (the reset-contract half)."""
        self._samples.clear()
        self._rebase()

    # -- recording ---------------------------------------------------------

    def sample(
        self, t: float, label: Optional[str] = None
    ) -> Dict[str, object]:
        """Record one sample at time ``t`` (seconds).

        The sample carries counter **rates** per second since the
        previous sample (plain deltas when the window is zero-width or
        this is the first sample), every gauge's current value, and
        windowed histogram percentiles for histograms that received
        observations inside the window.
        """
        instr = self._instr
        snapshot = instr.counters.snapshot()
        deltas = snapshot.delta(self._last_counters)
        dt = t - self._last_t if self._last_t is not None else 0.0
        if dt > 0:
            rates = {
                name: round(delta / dt, 6) for name, delta in deltas.items()
            }
        else:
            rates = {name: round(delta, 6) for name, delta in deltas.items()}
        gauges = {
            name: round(value, 6)
            for name, value in instr.gauges.collect().items()
        }
        windows: Dict[str, Dict[str, float]] = {}
        seen: Dict[str, Tuple[Dict[int, int], int, int]] = {}
        for name, hist in instr.histograms.items():
            if self.clock == "virtual" and _wall_measured(name):
                continue
            buckets = dict(hist._buckets)
            seen[name] = (buckets, hist.zeros, hist.count)
            prev_buckets, prev_zeros, prev_count = self._last_hists.get(
                name, ({}, 0, 0)
            )
            count = hist.count - prev_count
            if count <= 0:
                continue
            delta_buckets = {
                e: n - prev_buckets.get(e, 0)
                for e, n in buckets.items()
                if n - prev_buckets.get(e, 0) > 0
            }
            windows[name] = {
                key: round(value, 6)
                for key, value in _window_percentiles(
                    delta_buckets, hist.zeros - prev_zeros, count
                ).items()
            }
        entry: Dict[str, object] = {
            "t": round(t, 9),
            "clock": self.clock,
            "rates": rates,
            "gauges": gauges,
            "windows": windows,
        }
        if label is not None:
            entry["label"] = label
        self._samples.append(entry)
        if len(self._samples) > self.capacity:
            del self._samples[: len(self._samples) - self.capacity]
        self._last_t = t
        self._last_counters = snapshot
        self._last_hists = seen
        return entry

    # -- reading and export ------------------------------------------------

    def samples(self) -> List[Dict[str, object]]:
        """Retained samples, oldest first (the ring's current contents)."""
        return list(self._samples)

    def __len__(self) -> int:
        return len(self._samples)

    def dump_jsonl(self, stream: TextIO) -> int:
        """Write one compact JSON object per line; returns line count.

        Keys are sorted and floats pre-rounded at sample time, so two
        identical runs produce **byte-identical** output.
        """
        for entry in self._samples:
            stream.write(
                json.dumps(entry, sort_keys=True, separators=(",", ":"))
            )
            stream.write("\n")
        return len(self._samples)

    def write_jsonl(self, path: str) -> int:
        """Write the ring to ``path`` as JSONL; returns the line count."""
        with open(path, "w", encoding="utf-8") as handle:
            return self.dump_jsonl(handle)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FlightRecorder {len(self._samples)}/{self.capacity}"
            f" samples, {self.clock} clock>"
        )


def read_jsonl(path: str) -> List[Dict[str, object]]:
    """Load a timeline JSONL file back into a sample list."""
    samples: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                samples.append(json.loads(line))
    return samples
