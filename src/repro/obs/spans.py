"""Span tracing: the temporal half of the instrumentation layer.

A *span* is one named, timed region of execution.  Spans nest — opening
a span inside another records the parent — and completed spans land in
a fixed-capacity ring buffer, so tracing a million-operation benchmark
run costs bounded memory and the buffer always holds the most recent
activity (the part a post-mortem cares about).

Usage::

    with instr.span("commit"):
        with instr.span("wal.sync"):
            ...

    for record in instr.spans.records():
        print("  " * record.depth, record.name, record.duration_ms)

Timing uses ``time.perf_counter``; a span's ``duration_ms`` therefore
measures wall clock, not simulated network time — the counters carry
the virtual-clock side (``netsim.latency.injected_ms``).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Iterator, List, Optional


@dataclasses.dataclass(frozen=True)
class SpanRecord:
    """One completed span."""

    #: Dotted span name (taxonomy mirrors the counter names).
    name: str
    #: ``perf_counter`` value at entry.
    start: float
    #: ``perf_counter`` value at exit.
    end: float
    #: Nesting depth at entry (0 = top level).
    depth: int
    #: Sequence number of the enclosing span, or None at top level.
    parent: Optional[int]
    #: Monotonic sequence number (orders records across ring wraps).
    sequence: int

    @property
    def duration_seconds(self) -> float:
        """Elapsed wall time inside the span."""
        return self.end - self.start

    @property
    def duration_ms(self) -> float:
        """Elapsed wall time in milliseconds."""
        return (self.end - self.start) * 1000.0


class _ActiveSpan:
    """Context manager for one open span (internal)."""

    __slots__ = ("_recorder", "_name", "_start", "_parent", "_sequence")

    def __init__(self, recorder: "SpanRecorder", name: str) -> None:
        self._recorder = recorder
        self._name = name

    def __enter__(self) -> "_ActiveSpan":
        recorder = self._recorder
        self._parent = recorder._stack[-1] if recorder._stack else None
        self._sequence = recorder._next_sequence
        recorder._next_sequence += 1
        recorder._stack.append(self._sequence)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = time.perf_counter()
        recorder = self._recorder
        depth = len(recorder._stack) - 1
        recorder._stack.pop()
        recorder._record(
            SpanRecord(
                name=self._name,
                start=self._start,
                end=end,
                depth=depth,
                parent=self._parent,
                sequence=self._sequence,
            )
        )
        return False


class SpanRecorder:
    """A ring buffer of completed spans plus the open-span stack.

    ``capacity`` bounds retained *completed* spans; once full, the
    oldest record is overwritten (classic flight-recorder semantics).
    Records are emitted at span *exit*, so nested spans appear after
    their children but carry ``depth``/``parent`` for reconstruction;
    :meth:`records` returns them re-sorted by entry order.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("span ring capacity must be >= 1")
        self.capacity = capacity
        self._ring: List[Optional[SpanRecord]] = [None] * capacity
        self._cursor = 0
        self._count = 0
        self._stack: List[int] = []
        self._next_sequence = 0

    # -- recording ---------------------------------------------------------

    def span(self, name: str) -> _ActiveSpan:
        """Open a span; use as a context manager."""
        return _ActiveSpan(self, name)

    def _record(self, record: SpanRecord) -> None:
        self._ring[self._cursor] = record
        self._cursor = (self._cursor + 1) % self.capacity
        if self._count < self.capacity:
            self._count += 1

    # -- reading -----------------------------------------------------------

    def records(self) -> List[SpanRecord]:
        """Retained spans, oldest first, ordered by entry sequence."""
        if self._count < self.capacity:
            kept = [r for r in self._ring[: self._count] if r is not None]
        else:
            kept = [r for r in self._ring if r is not None]
        return sorted(kept, key=lambda r: r.sequence)

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[SpanRecord]:
        return iter(self.records())

    @property
    def open_depth(self) -> int:
        """How many spans are currently open (0 when quiescent)."""
        return len(self._stack)

    def clear(self) -> None:
        """Drop all completed spans (open spans are unaffected)."""
        self._ring = [None] * self.capacity
        self._cursor = 0
        self._count = 0
