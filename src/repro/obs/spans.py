"""Span tracing: the temporal half of the instrumentation layer.

A *span* is one named, timed region of execution.  Spans nest — opening
a span inside another records the parent — and completed spans land in
a fixed-capacity ring buffer, so tracing a million-operation benchmark
run costs bounded memory and the buffer always holds the most recent
activity (the part a post-mortem cares about).

Usage::

    with instr.span("commit"):
        with instr.span("wal.sync"):
            ...

    for record in instr.spans.records():
        print("  " * record.depth, record.name, record.duration_ms)

Timing uses ``time.perf_counter``; a span's ``duration_ms`` therefore
measures wall clock, not simulated network time — the counters carry
the virtual-clock side (``netsim.latency.injected_ms``).

Cross-component causality rides on :class:`TraceContext`: an RPC
client opens a span, puts ``(trace_id, span sequence)`` in the request
envelope, and the server records its own span with
``remote_parent``/``remote_trace`` set — a *remote-parent link* the
Chrome-trace exporter turns into flow arrows (see
:mod:`repro.obs.traceexport`).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Iterator, List, Optional


@dataclasses.dataclass(frozen=True)
class TraceContext:
    """The trace identity one RPC request carries across the wire.

    ``trace_id`` names the recording :class:`Instrumentation` handle
    (all spans of one handle share it); ``span_id`` is the *sequence*
    of the client span that caused the request.
    """

    trace_id: int
    span_id: int
    #: Stable identity of the issuing client (``w00``, ``w01``, ... in
    #: multi-client simulations); None for anonymous single clients.
    client_id: Optional[str] = None


@dataclasses.dataclass(frozen=True)
class SpanRecord:
    """One completed span."""

    #: Dotted span name (taxonomy mirrors the counter names).
    name: str
    #: ``perf_counter`` value at entry.
    start: float
    #: ``perf_counter`` value at exit.
    end: float
    #: Nesting depth at entry (0 = top level).
    depth: int
    #: Sequence number of the enclosing span, or None at top level.
    parent: Optional[int]
    #: Monotonic sequence number (orders records across ring wraps).
    sequence: int
    #: Sequence of the *remote* span that caused this one (a client
    #: RPC span), or None for purely local spans.
    remote_parent: Optional[int] = None
    #: Trace id of the remote caller's instrumentation handle.
    remote_trace: Optional[int] = None
    #: Client identity tag (multi-client runs): client-side RPC spans
    #: carry their own client's id, server-side spans carry the id of
    #: the client whose request they serve.  The Chrome trace exporter
    #: fans tagged spans out onto per-client threads so concurrent
    #: clients stop interleaving into one anonymous stream.
    client: Optional[str] = None

    @property
    def duration_seconds(self) -> float:
        """Elapsed wall time inside the span."""
        return self.end - self.start

    @property
    def duration_ms(self) -> float:
        """Elapsed wall time in milliseconds."""
        return (self.end - self.start) * 1000.0


class _ActiveSpan:
    """Context manager for one open span (internal)."""

    __slots__ = (
        "_recorder",
        "_name",
        "_start",
        "_parent",
        "_sequence",
        "_remote_parent",
        "_remote_trace",
        "_client",
    )

    def __init__(
        self,
        recorder: "SpanRecorder",
        name: str,
        remote_parent: Optional[int] = None,
        remote_trace: Optional[int] = None,
        client: Optional[str] = None,
    ) -> None:
        self._recorder = recorder
        self._name = name
        self._remote_parent = remote_parent
        self._remote_trace = remote_trace
        self._client = client

    @property
    def sequence(self) -> int:
        """The span's sequence number (valid once entered)."""
        return self._sequence

    def __enter__(self) -> "_ActiveSpan":
        recorder = self._recorder
        self._parent = recorder._stack[-1] if recorder._stack else None
        self._sequence = recorder._next_sequence
        recorder._next_sequence += 1
        recorder._stack.append(self._sequence)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = time.perf_counter()
        recorder = self._recorder
        depth = len(recorder._stack) - 1
        recorder._stack.pop()
        recorder._record(
            SpanRecord(
                name=self._name,
                start=self._start,
                end=end,
                depth=depth,
                parent=self._parent,
                sequence=self._sequence,
                remote_parent=self._remote_parent,
                remote_trace=self._remote_trace,
                client=self._client,
            )
        )
        return False


class SpanRecorder:
    """A ring buffer of completed spans plus the open-span stack.

    ``capacity`` bounds retained *completed* spans; once full, the
    oldest record is overwritten (classic flight-recorder semantics).
    Records are emitted at span *exit*, so nested spans appear after
    their children but carry ``depth``/``parent`` for reconstruction;
    :meth:`records` returns them re-sorted by entry order.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("span ring capacity must be >= 1")
        self.capacity = capacity
        self._ring: List[Optional[SpanRecord]] = [None] * capacity
        self._cursor = 0
        self._count = 0
        self._stack: List[int] = []
        self._next_sequence = 0

    # -- recording ---------------------------------------------------------

    def span(
        self,
        name: str,
        remote_parent: Optional[int] = None,
        remote_trace: Optional[int] = None,
        client: Optional[str] = None,
    ) -> _ActiveSpan:
        """Open a span; use as a context manager.

        ``remote_parent``/``remote_trace`` record a cross-component
        causal link (see :class:`TraceContext`): the span was caused by
        span ``remote_parent`` of the handle ``remote_trace`` — usually
        a client RPC span on the other side of the simulated network.
        ``client`` tags the span with the issuing client's identity so
        concurrent clients stay attributable in the exported trace.
        """
        return _ActiveSpan(
            self,
            name,
            remote_parent=remote_parent,
            remote_trace=remote_trace,
            client=client,
        )

    def current_span_id(self) -> Optional[int]:
        """Sequence of the innermost open span, or None when quiescent."""
        return self._stack[-1] if self._stack else None

    def _record(self, record: SpanRecord) -> None:
        self._ring[self._cursor] = record
        self._cursor = (self._cursor + 1) % self.capacity
        if self._count < self.capacity:
            self._count += 1

    # -- reading -----------------------------------------------------------

    def records(self) -> List[SpanRecord]:
        """Retained spans, oldest first, ordered by entry sequence.

        Dangling parents are healed: once the ring wraps (or is
        cleared mid-trace), a record's ``parent`` may name a sequence
        that was evicted.  Such records are returned with
        ``parent=None`` — top level — instead of silently mis-nesting
        under whatever span later reuses the slot.  A parent that is
        *still open* (its record not yet emitted) is kept: it will be
        resolvable once the enclosing span exits.
        """
        if self._count < self.capacity:
            kept = [r for r in self._ring[: self._count] if r is not None]
        else:
            kept = [r for r in self._ring if r is not None]
        kept.sort(key=lambda r: r.sequence)
        known = {r.sequence for r in kept}
        known.update(self._stack)  # parents still open are not dangling
        return [
            dataclasses.replace(r, parent=None)
            if r.parent is not None and r.parent not in known
            else r
            for r in kept
        ]

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[SpanRecord]:
        return iter(self.records())

    @property
    def open_depth(self) -> int:
        """How many spans are currently open (0 when quiescent)."""
        return len(self._stack)

    def clear(self) -> None:
        """Drop all completed spans (open spans are unaffected).

        Sequence numbering is **not** reset: it stays monotonic across
        clears (and ring wraps), so a span recorded after a clear can
        never be confused with — or accidentally reference — a span
        recorded before it.  The harness relies on this between the
        cold and warm passes (see ``Instrumentation.reset``).
        """
        self._ring = [None] * self.capacity
        self._cursor = 0
        self._count = 0
