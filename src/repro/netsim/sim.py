"""The discrete-event multi-client simulation core.

The single-user backend charges every request to one shared
:class:`~repro.netsim.latency.SimulatedClock` — correct when exactly
one client exists, meaningless when N workstations share one server:
requests would stack onto a single timeline with no queueing and no
contention.  This module supplies the missing pieces:

* **Transports** — the server charges time through a swappable
  *transport* instead of touching its clock directly.
  :class:`DirectTransport` reproduces the single-client behaviour
  exactly (one shared clock, cost = latency model).
  :class:`ContendedTransport` models the full workstation/server
  round trip: the request leaves the active workstation's clock, waits
  in FIFO order for the server to go idle (``queueing delay``), holds
  the server busy for a service time plus the payload transfer, and
  returns — the workstation's clock lands at departure time, and the
  server's busy horizon moves forward so the *next* request queues
  behind this one.

* :class:`DiscreteEventScheduler` — a classic event loop over
  ``(virtual time, sequence)`` keys: N workstations each run a task
  list; after each task a workstation re-enters the queue at
  ``now + think_time``.  Ties break on the monotonically increasing
  sequence number, so the interleaving is a pure function of the
  workload and the seed — two runs are byte-identical, abort decisions
  and fault draws included.

* :class:`ZipfSampler` — seeded, inverse-CDF Zipf sampling for the
  skewed access patterns the multi-user benchmark drives (theta = 0
  degenerates to uniform).

The model is a **closed queueing network**: each workstation cycles
through think time Z and server demand D, so aggregate throughput
follows ``min(N / (Z + D), 1 / D)`` — rising with client count, then
saturating at the server's service rate.  That saturation curve is the
benchmark's headline figure (see ``docs/multiuser.md``).
"""

from __future__ import annotations

import bisect
import heapq
import random
from typing import Callable, List, Optional, Sequence, Tuple

from repro.netsim.latency import LatencyModel, SimulatedClock
from repro.obs import Instrumentation, resolve


class DirectTransport:
    """The single-client charge model: one shared clock, no queueing.

    This is exactly the behaviour :class:`~repro.netsim.server.ObjectServer`
    had before the transport seam existed; the server builds one by
    default, so single-client code paths are unchanged.
    """

    def __init__(self, clock: SimulatedClock, latency: LatencyModel) -> None:
        self.clock = clock
        self.latency = latency

    def charge_request(
        self, payload_bytes: int, extra_service_seconds: float = 0.0
    ) -> float:
        """Charge one request; returns the seconds charged."""
        cost = self.latency.request_cost(payload_bytes) + extra_service_seconds
        self.clock.advance(cost)
        return cost

    def charge_wasted(self, seconds: float) -> float:
        """Charge wasted wire time (a dropped or timed-out request)."""
        self.clock.advance(seconds)
        return seconds


class ContendedTransport:
    """Per-workstation clocks + a FIFO server busy timeline.

    One request from the *active* workstation (set by the scheduler
    before each task runs) is charged as::

        arrival  = station.clock.now + rtt / 2          # request flies
        start    = max(arrival, server_free_at)          # FIFO queueing
        service  = service_time + transfer + extra       # server busy
        depart   = start + service + rtt / 2             # reply flies

    The workstation's clock advances to ``depart``; ``server_free_at``
    advances to ``start + service`` so the next request — from any
    workstation — queues behind this one.  Queueing delay and server
    busy time are accumulated and counted under ``backend.mp.*``.

    When no workstation is active (administrative use outside the
    scheduler) the charge falls back to the fallback clock, i.e. the
    uncontended single-client model.
    """

    def __init__(
        self,
        latency: LatencyModel,
        service_time_seconds: float = 0.0,
        instrumentation: Optional[Instrumentation] = None,
        fallback_clock: Optional[SimulatedClock] = None,
        lane: Optional[str] = None,
    ) -> None:
        self.latency = latency
        self.service_time_seconds = service_time_seconds
        self.server_free_at = 0.0
        self.station: Optional["Workstation"] = None
        self.queue_seconds = 0.0
        self.busy_seconds = 0.0
        self.requests = 0
        self._instr = resolve(instrumentation)
        self._fallback_clock = fallback_clock or SimulatedClock()
        #: Optional lane name (e.g. ``"shard0"``): namespaces this
        #: transport's counters as ``backend.mp.<lane>.*`` *in
        #: addition to* the aggregate ``backend.mp.*`` series, so a
        #: sharded deployment's per-shard queueing is visible without
        #: changing the unsharded series.
        self.lane = lane
        #: Latest scheduler-coordinate virtual time this transport has
        #: seen — the scheduler keeps it current (and sets it to the
        #: sample time before a flight-recorder sample), so the gauges
        #: below read a coherent "now" without touching any clock.
        self.virtual_now = 0.0
        base = (
            "netsim.transport"
            if lane is None
            else f"netsim.transport.{lane}"
        )
        instr = self._instr
        instr.gauge(f"{base}.backlog_s", self._backlog_seconds)
        instr.gauge(f"{base}.queue_depth", self._queue_depth)
        instr.gauge(f"{base}.busy_frac", self._busy_fraction)

    # -- gauges (evaluated only at flight-recorder sample time) --------

    def _backlog_seconds(self) -> float:
        """Seconds of queued work ahead of the server's busy horizon."""
        return max(0.0, self.server_free_at - self.virtual_now)

    def _queue_depth(self) -> float:
        """Backlog expressed in service-time units (~queued requests)."""
        backlog = max(0.0, self.server_free_at - self.virtual_now)
        if self.service_time_seconds > 0:
            return backlog / self.service_time_seconds
        return 1.0 if backlog > 0 else 0.0

    def _busy_fraction(self) -> float:
        """Cumulative server utilization (busy seconds over elapsed)."""
        if self.virtual_now <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / self.virtual_now)

    def charge_request(
        self, payload_bytes: int, extra_service_seconds: float = 0.0
    ) -> float:
        transfer = (
            self.latency.request_cost(payload_bytes)
            - self.latency.round_trip_seconds
        )
        service = self.service_time_seconds + transfer + extra_service_seconds
        if self.station is None:
            cost = self.latency.round_trip_seconds + service
            self._fallback_clock.advance(cost)
            return cost
        clock = self.station.clock
        half_trip = self.latency.round_trip_seconds / 2.0
        arrival = clock.now + half_trip
        start = max(arrival, self.server_free_at)
        queued = start - arrival
        self.server_free_at = start + service
        depart = start + service + half_trip
        cost = depart - clock.now
        clock.advance_to(depart)
        if depart > self.virtual_now:
            self.virtual_now = depart
        self.requests += 1
        self.queue_seconds += queued
        self.busy_seconds += service
        instr = self._instr
        instr.count("backend.mp.requests")
        instr.count("backend.mp.queue_ms", queued * 1000.0)
        instr.count("backend.mp.busy_ms", service * 1000.0)
        instr.observe("backend.mp.queue_delay", queued * 1000.0)
        if self.lane is not None:
            prefix = f"backend.mp.{self.lane}"
            instr.count(f"{prefix}.requests")
            instr.count(f"{prefix}.queue_ms", queued * 1000.0)
            instr.count(f"{prefix}.busy_ms", service * 1000.0)
        return cost

    def charge_wasted(self, seconds: float) -> float:
        clock = (
            self.station.clock if self.station is not None
            else self._fallback_clock
        )
        clock.advance(seconds)
        return seconds


def shard_lanes(
    latency: LatencyModel,
    shards: int,
    service_time_seconds: float = 0.0,
    instrumentation: Optional[Instrumentation] = None,
    fallback_clock: Optional[SimulatedClock] = None,
) -> List[ContendedTransport]:
    """One contended transport per shard server.

    Each shard gets its *own* FIFO busy timeline (``server_free_at``),
    so requests to different shards do not queue behind each other —
    the whole point of partitioning write throughput — while requests
    to the same shard still serialize.  Lanes are named ``shard<i>``
    for the per-shard ``backend.mp.shard<i>.*`` counter namespaces.
    """
    return [
        ContendedTransport(
            latency,
            service_time_seconds=service_time_seconds,
            instrumentation=instrumentation,
            fallback_clock=fallback_clock,
            lane=f"shard{i}",
        )
        for i in range(shards)
    ]


def replica_lanes(
    latency: LatencyModel,
    replicas: int,
    service_time_seconds: float = 0.0,
    instrumentation: Optional[Instrumentation] = None,
    fallback_clock: Optional[SimulatedClock] = None,
) -> List[ContendedTransport]:
    """One contended transport per replication-group server.

    Lane 0 (``primary``) carries every write plus read-your-writes
    fallbacks; lanes 1..N (``replica<i>``) each carry one replica's
    routed reads — independent FIFO timelines, so reads spread across
    replicas stop queueing behind each other, which is the entire
    read-scaling claim the replica benchmark measures.  Counter
    namespaces follow the lane names (``backend.mp.primary.*``,
    ``backend.mp.replica<i>.*``).
    """
    names = ["primary"] + [f"replica{i}" for i in range(replicas)]
    return [
        ContendedTransport(
            latency,
            service_time_seconds=service_time_seconds,
            instrumentation=instrumentation,
            fallback_clock=fallback_clock,
            lane=name,
        )
        for name in names
    ]


class LaneGroup:
    """A bundle of per-server lanes that quacks like one transport.

    :class:`DiscreteEventScheduler` manages exactly one ``transport``
    — it assigns ``station``/``virtual_now`` around each task.  A lane
    group fans those writes out to every member lane, so a replication
    group (or any multi-lane deployment) can ride the scheduler
    unchanged: pass the group as the transport and give the *server*'s
    ``use_transport`` the ``.lanes`` list.
    """

    def __init__(self, lanes: List[ContendedTransport]) -> None:
        if not lanes:
            raise ValueError("LaneGroup needs at least one lane")
        self.lanes = list(lanes)

    @property
    def station(self):
        return self.lanes[0].station

    @station.setter
    def station(self, value) -> None:
        for lane in self.lanes:
            lane.station = value

    @property
    def virtual_now(self) -> float:
        return max(lane.virtual_now for lane in self.lanes)

    @virtual_now.setter
    def virtual_now(self, value: float) -> None:
        for lane in self.lanes:
            lane.virtual_now = value


class ZipfSampler:
    """Seeded Zipf(theta) sampling over ranks ``0 .. n-1``.

    Rank ``r`` is drawn with probability proportional to
    ``1 / (r + 1) ** theta``; ``theta=0`` is uniform.  Sampling is
    inverse-CDF over precomputed cumulative weights plus one
    ``rng.random()`` draw, so a seeded :class:`random.Random` makes the
    draw sequence fully deterministic.
    """

    def __init__(self, n: int, theta: float = 0.8) -> None:
        if n < 1:
            raise ValueError("ZipfSampler needs at least one item")
        if theta < 0:
            raise ValueError("zipf theta cannot be negative")
        self.n = n
        self.theta = theta
        total = 0.0
        cumulative: List[float] = []
        for rank in range(n):
            total += 1.0 / ((rank + 1) ** theta)
            cumulative.append(total)
        self._cumulative = cumulative
        self._total = total

    def sample(self, rng: random.Random) -> int:
        """Draw one rank in ``0 .. n-1``."""
        point = rng.random() * self._total
        return min(
            bisect.bisect_left(self._cumulative, point), self.n - 1
        )


class Workstation:
    """One simulated workstation: a client handle plus its own clock.

    The clock is the *client's* ``simulated_clock`` — retry backoff,
    latency histograms and the contended transport all charge the same
    per-station timeline, so a workstation's virtual time reads as one
    coherent story.
    """

    def __init__(self, index: int, client, rng: random.Random) -> None:
        self.index = index
        self.client = client
        self.clock: SimulatedClock = client.simulated_clock
        self.rng = rng

    @property
    def client_id(self) -> Optional[str]:
        """The client's span tag (``w00``, ``w01``, ...)."""
        return getattr(self.client, "client_id", None)


#: One unit of schedulable work: a zero-argument callable run at its
#: workstation's virtual "now".  A task may *return* another task (a
#: continuation): the scheduler queues it as that station's next event,
#: ahead of the remaining list.  Multi-event work — a transaction whose
#: read phase and commit are separate events, or an abort/retry loop —
#: is expressed this way, which is what lets other stations' commits
#: interleave between a read and the commit that validates it.
Task = Callable[[], object]


class DiscreteEventScheduler:
    """Run N workstations' task lists against one shared server.

    Events are ``(time, sequence)`` pairs on a heap; the earliest fires
    first and ties break on sequence (insertion order), never on
    uncomparable payloads — determinism by construction.  Each task
    runs synchronously at its workstation's current virtual time; RPC
    contention *within* the task is the transport's business
    (:class:`ContendedTransport` interleaves the server's busy timeline
    across stations even though tasks themselves do not preempt each
    other).

    The shared server's own clock is advanced alongside the event time
    (relative to its value when the run starts), so code that reads
    ``server.clock`` keeps seeing monotonic progress.
    """

    def __init__(
        self,
        server,
        transport: ContendedTransport,
        think_time_seconds: float = 0.0,
        recorder=None,
        sample_cadence_seconds: float = 0.0,
        sample_label: Optional[str] = None,
    ) -> None:
        self.server = server
        self.transport = transport
        self.think_time_seconds = think_time_seconds
        #: Optional :class:`~repro.obs.FlightRecorder` sampled every
        #: ``sample_cadence_seconds`` of *virtual* time.  Samples fire
        #: at exact cadence multiples before the event that crosses
        #: them runs, so the sample sequence — times and values — is a
        #: pure function of the workload and the seed (byte-identical
        #: timelines across runs).
        self.recorder = recorder
        self.sample_cadence_seconds = sample_cadence_seconds
        self.sample_label = sample_label

    def run(
        self, jobs: Sequence[Tuple[Workstation, Sequence[Task]]]
    ) -> float:
        """Execute every station's task list; returns the makespan.

        The makespan is the largest per-station virtual completion
        time, i.e. the simulated duration of the whole parallel run.
        """
        origin = self.server.clock.now
        heap: List[Tuple[float, int, int]] = []
        queues: List[List[Task]] = []
        stations: List[Workstation] = []
        sequence = 0
        for station, tasks in jobs:
            stations.append(station)
            queues.append(list(tasks))
            if queues[-1]:
                heapq.heappush(
                    heap, (station.clock.now, sequence, len(stations) - 1)
                )
                sequence += 1
        makespan = 0.0
        next_sample: Optional[float] = None
        if self.recorder is not None and self.sample_cadence_seconds > 0:
            next_sample = self.sample_cadence_seconds
        with self.server.use_transport(self.transport):
            while heap:
                when, _tie, slot = heapq.heappop(heap)
                if next_sample is not None:
                    while next_sample <= when:
                        self.transport.virtual_now = next_sample
                        self.recorder.sample(
                            next_sample, label=self.sample_label
                        )
                        next_sample += self.sample_cadence_seconds
                station = stations[slot]
                if when > self.transport.virtual_now:
                    self.transport.virtual_now = when
                station.clock.advance_to(when)
                self.server.clock.advance_to(origin + when)
                task = queues[slot].pop(0)
                self.transport.station = station
                try:
                    continuation = task()
                finally:
                    self.transport.station = None
                if callable(continuation):
                    queues[slot].insert(0, continuation)
                makespan = max(makespan, station.clock.now)
                if queues[slot]:
                    heapq.heappush(
                        heap,
                        (
                            station.clock.now + self.think_time_seconds,
                            sequence,
                            slot,
                        ),
                    )
                    sequence += 1
        self.server.clock.advance_to(origin + makespan)
        if next_sample is not None:
            # One closing sample at the makespan so the timeline's last
            # window covers the tail of the run.
            self.transport.virtual_now = max(
                self.transport.virtual_now, makespan
            )
            self.recorder.sample(makespan, label=self.sample_label)
        return makespan
