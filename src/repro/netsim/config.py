"""Typed configuration for the simulated network and the event scheduler.

The client/server backend historically grew one keyword argument per
knob (``latency=``, ``fault_model=``, ``cache_capacity=``,
``pushdown=``, ``readahead_depth=``, ``rpc_retries=``,
``rpc_backoff_seconds=``) and every call site — registry defaults,
benchmarks, tests — repeated the sprawl.  This module replaces that
surface with two frozen dataclasses:

* :class:`NetworkConfig` — everything that shapes **one client's**
  view of the wire: the latency/fault models, the workstation cache
  size, the retry policy, push-down/readahead, and the concurrency
  mode (plain last-writer-wins stores vs optimistic validation at
  commit).
* :class:`SimConfig` — everything that shapes a **multi-client
  simulation**: the seed, think time, server service time, the virtual
  fsync cost charged at WAL durability points, the Zipf skew of the
  access pattern, and the retry pause after an optimistic abort.

Both are immutable (safe to share as registry ``default_options``) and
validate in ``__post_init__`` with the same
:class:`~repro.errors.ConfigurationError` the old keyword checks
raised.  The old keywords still work for one release behind a
``DeprecationWarning`` (see
:class:`~repro.backends.clientserver.ClientServerDatabase`).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.errors import ConfigurationError
from repro.netsim.faults import FaultModel
from repro.netsim.latency import LatencyModel

#: Concurrency modes a client understands.
CONCURRENCY_MODES = ("none", "optimistic")

#: OID→shard placement policies the sharding layer understands.
PLACEMENT_POLICIES = ("hash", "affine")

#: Read-routing policies the replication layer understands.
REPLICA_POLICIES = ("round_robin", "least_queue")


@dataclasses.dataclass(frozen=True)
class ReplicationConfig:
    """How reads scale out across WAL-shipping replica servers.

    Writes always go to the primary; the read verb surface
    (``fetch``/``fetch_many``/``traverse``/``readahead``) is routed to
    replicas by a :class:`~repro.replication.router.ReplicaRouter`.
    Read-your-writes is enforced per workstation with session LSN
    tokens: a read is only routed to a replica whose applied LSN has
    reached the client's last-commit LSN, else it falls back to the
    primary (see ``docs/replication.md``).

    Attributes:
        replicas: number of replica servers behind the primary (>= 1).
        policy: ``"round_robin"`` — rotate eligible replicas per client
            — or ``"least_queue"`` — pick the eligible replica whose
            transport lane has the smallest backlog (the
            ``backend.mp.*`` busy timeline).
        apply_lag_seconds: virtual delay between a commit being shipped
            and a replica applying it — the deterministic staleness
            bound (0 = replicas are always fresh).
    """

    replicas: int = 2
    policy: str = "round_robin"
    apply_lag_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ConfigurationError(
                f"replicas must be >= 1, got {self.replicas}"
            )
        if self.policy not in REPLICA_POLICIES:
            raise ConfigurationError(
                f"policy must be one of {REPLICA_POLICIES},"
                f" got {self.policy!r}"
            )
        if self.apply_lag_seconds < 0:
            raise ConfigurationError(
                "apply_lag_seconds cannot be negative,"
                f" got {self.apply_lag_seconds}"
            )

    def replace(self, **changes) -> "ReplicationConfig":
        """A copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)


@dataclasses.dataclass(frozen=True)
class ShardConfig:
    """How the object store is partitioned across shard servers.

    ``shards=1`` (the default) means *no* sharding at all: the client
    talks to a single :class:`~repro.netsim.server.ObjectServer`
    through exactly the code path it always used, bit-identical to the
    unsharded backend.  With ``shards > 1`` the client routes every
    request through a :class:`~repro.sharding.router.ShardRouter`.

    Attributes:
        shards: number of shard servers (>= 1).
        placement: ``"hash"`` — consistent hashing over OIDs (uniform,
            structure-blind) — or ``"affine"`` — subtree-affine
            placement that co-locates whole 1-N closure subtrees on
            one shard (clustering as a placement policy, the paper's
            own axis; see :mod:`repro.sharding.placement`).
        virtual_nodes: ring points per shard for the ``hash`` policy
            (more points = smoother balance, slower ring build).
        fanout: tree fan-out assumed by the ``affine`` policy (the
            HyperModel generator's 5).
        first_uid: uniqueId of the structure's root for the ``affine``
            policy (the generator's ``first_uid``).
        affinity_level: tree level whose subtrees the ``affine``
            policy keeps together — level 1 (default) spreads the
            root's ``fanout`` child subtrees round-robin over shards.
    """

    shards: int = 1
    placement: str = "hash"
    virtual_nodes: int = 64
    fanout: int = 5
    first_uid: int = 1
    affinity_level: int = 1

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ConfigurationError(
                f"shards must be >= 1, got {self.shards}"
            )
        if self.placement not in PLACEMENT_POLICIES:
            raise ConfigurationError(
                f"placement must be one of {PLACEMENT_POLICIES},"
                f" got {self.placement!r}"
            )
        if self.virtual_nodes < 1:
            raise ConfigurationError(
                f"virtual_nodes must be >= 1, got {self.virtual_nodes}"
            )
        if self.fanout < 2:
            raise ConfigurationError(
                f"fanout must be >= 2, got {self.fanout}"
            )
        if self.affinity_level < 0:
            raise ConfigurationError(
                "affinity_level cannot be negative,"
                f" got {self.affinity_level}"
            )

    def replace(self, **changes) -> "ShardConfig":
        """A copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)


@dataclasses.dataclass(frozen=True)
class NetworkConfig:
    """One client's network, cache, retry and concurrency settings.

    Attributes:
        latency: the wire cost model (``None`` = the server's default,
            ~1 ms round trips at ~1 MB/s).
        fault_model: seeded RPC drop/timeout injection; only applied
            when the client *creates* its server (a shared server keeps
            whatever model it was built with).
        cache_capacity: workstation cache size in objects.
        rpc_retries: retries before
            :class:`~repro.errors.RpcExhaustedError`.
        rpc_backoff_seconds: base of the exponential retry backoff
            charged to the simulated clock.
        pushdown: run closure traversals at the server and read ahead
            structurally on cache misses (the ``clientserver-bfs``
            ablation sets this False).
        readahead_depth: structural readahead depth on a cache miss
            (0 disables; only meaningful with ``pushdown=True``).
        concurrency: ``"none"`` — commits upload dirty records with
            last-writer-wins stores (the single-user default) —
            or ``"optimistic"`` — commits ship the write set *and* the
            read-set versions in one ``commit_batch`` RPC the server
            validates, raising
            :class:`~repro.errors.CommitConflictError` on stale reads.
        sharding: partition the store across N shard servers behind a
            :class:`~repro.sharding.router.ShardRouter` (``None`` or
            ``shards=1`` keeps the classic single-server stack,
            bit-identical).
        replication: scale reads across WAL-shipping replicas behind a
            :class:`~repro.replication.router.ReplicaRouter` (``None``
            keeps the classic single-server stack; mutually exclusive
            with ``sharding`` of more than one shard).
    """

    latency: Optional[LatencyModel] = None
    fault_model: Optional[FaultModel] = None
    cache_capacity: int = 4096
    rpc_retries: int = 4
    rpc_backoff_seconds: float = 0.002
    pushdown: bool = True
    readahead_depth: int = 1
    concurrency: str = "none"
    sharding: Optional[ShardConfig] = None
    replication: Optional[ReplicationConfig] = None

    def __post_init__(self) -> None:
        if self.cache_capacity < 1:
            raise ConfigurationError(
                f"cache_capacity must be >= 1, got {self.cache_capacity}"
            )
        if self.rpc_retries < 0:
            raise ConfigurationError(
                f"rpc_retries cannot be negative, got {self.rpc_retries}"
            )
        if self.rpc_backoff_seconds < 0:
            raise ConfigurationError(
                "rpc_backoff_seconds cannot be negative,"
                f" got {self.rpc_backoff_seconds}"
            )
        if self.readahead_depth < 0:
            raise ConfigurationError(
                "readahead_depth cannot be negative,"
                f" got {self.readahead_depth}"
            )
        if self.concurrency not in CONCURRENCY_MODES:
            raise ConfigurationError(
                f"concurrency must be one of {CONCURRENCY_MODES},"
                f" got {self.concurrency!r}"
            )
        if (
            self.replication is not None
            and self.sharding is not None
            and self.sharding.shards > 1
        ):
            raise ConfigurationError(
                "replication and sharding cannot be combined:"
                " replicate the shards or shard the replicas, not both"
            )

    def replace(self, **changes) -> "NetworkConfig":
        """A copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)


@dataclasses.dataclass(frozen=True)
class SimConfig:
    """Shape of one discrete-event multi-client simulation.

    Attributes:
        seed: master seed; every per-client PRNG derives from it, so
            one integer pins the whole run (event order, Zipf draws,
            abort decisions).
        think_time_seconds: virtual pause between a workstation's
            consecutive tasks — the closed-queueing-network "Z" that
            makes throughput rise with client count until the server
            saturates.
        service_time_seconds: fixed server CPU cost per request,
            charged on the server's busy timeline (requests queue
            behind it; the contended half of the charge model).
        fsync_seconds: virtual cost of one WAL durability point,
            charged as extra service on the commit that takes it —
            this is what makes group commit measurable: deferred
            commits skip the charge.
        zipf_theta: skew of the Zipf access pattern (0 = uniform;
            ~0.8 = classic hot-spot skew).
        retry_backoff_seconds: virtual pause a client waits after an
            optimistic abort before retrying the transaction.
    """

    seed: int = 1989
    think_time_seconds: float = 0.005
    service_time_seconds: float = 0.0002
    fsync_seconds: float = 0.002
    zipf_theta: float = 0.8
    retry_backoff_seconds: float = 0.002

    def __post_init__(self) -> None:
        for name in (
            "think_time_seconds",
            "service_time_seconds",
            "fsync_seconds",
            "retry_backoff_seconds",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(
                    f"{name} cannot be negative, got {getattr(self, name)}"
                )
        if self.zipf_theta < 0:
            raise ConfigurationError(
                f"zipf_theta cannot be negative, got {self.zipf_theta}"
            )

    def replace(self, **changes) -> "SimConfig":
        """A copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)
