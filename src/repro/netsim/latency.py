"""Virtual time and the network cost model.

Timing the client/server backend with wall clocks would make results
depend on ``time.sleep`` granularity and scheduler noise, so network
costs are charged to a :class:`SimulatedClock` instead.  The harness
reads the clock before and after a timed region and adds the delta to
the wall-clock elapsed time — deterministic, reproducible, and still
expressed in seconds.

The default :class:`LatencyModel` approximates the paper's era:
~1 ms request round-trip on a local area network and ~1 MB/s effective
transfer, against which the R7 requirement (100-10 000 objects/second)
can be checked directly.
"""

from __future__ import annotations

import dataclasses


class SimulatedClock:
    """A monotonically advancing virtual clock (seconds)."""

    def __init__(self) -> None:
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance(self, seconds: float) -> None:
        """Advance the clock; negative advances are rejected."""
        if seconds < 0:
            raise ValueError("cannot advance a clock backwards")
        self._now += seconds

    def advance_to(self, timestamp: float) -> None:
        """Advance the clock to an absolute time; never moves backwards.

        The discrete-event scheduler uses this to synchronize a clock
        with an event timestamp: an already-later clock is left alone
        (an event from the past cannot rewind time).
        """
        if timestamp > self._now:
            self._now = timestamp

    def reset(self) -> None:
        """Reset virtual time to zero."""
        self._now = 0.0


@dataclasses.dataclass(frozen=True)
class LatencyModel:
    """Cost model for one workstation-to-server interaction.

    Attributes:
        round_trip_seconds: fixed cost of any request/response pair.
        bandwidth_bytes_per_second: payload transfer rate.
    """

    round_trip_seconds: float = 0.001
    bandwidth_bytes_per_second: float = 1_000_000.0

    def request_cost(self, payload_bytes: int = 0) -> float:
        """Seconds charged for a request carrying ``payload_bytes``."""
        if payload_bytes < 0:
            raise ValueError("payload size cannot be negative")
        return self.round_trip_seconds + payload_bytes / self.bandwidth_bytes_per_second


#: A model of an ideal network: useful to isolate cache effects.
ZERO_COST = LatencyModel(round_trip_seconds=0.0, bandwidth_bytes_per_second=float("inf"))
