"""The server side of the simulated workstation/server architecture.

:class:`ObjectServer` stores node records (plain dictionaries) and
answers the request types the client/server backend needs: object
fetch/store, key-existence probes, index range queries, structure scans
and named-list storage.  Every request charges the shared
:class:`~repro.netsim.latency.SimulatedClock` according to the
:class:`~repro.netsim.latency.LatencyModel` — a fixed round trip plus
payload-proportional transfer, with payload sizes measured by actually
serializing the records.

The server object *survives* the client database's close/open cycle,
exactly like the server machine in the paper's architecture: closing
the workstation application empties the workstation cache but not the
server, which is what makes the next run cold.
"""

from __future__ import annotations

import contextlib
import dataclasses
from typing import Any, Dict, List, Optional

from repro.engine import serializer
from repro.netsim.faults import FaultModel
from repro.netsim.latency import LatencyModel, SimulatedClock
from repro.obs import Instrumentation, TraceContext, resolve
from repro.errors import NodeNotFoundError

#: Approximate bytes of a uid in a response payload.
_UID_BYTES = 8
#: Approximate bytes of a request header beyond the round trip.
_PROBE_BYTES = 16


@dataclasses.dataclass
class ServerStats:
    """Request counters, by request type."""

    fetches: int = 0
    batch_fetches: int = 0
    batched_objects: int = 0
    stores: int = 0
    probes: int = 0
    queries: int = 0
    scans: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.fetches = self.stores = self.probes = 0
        self.batch_fetches = self.batched_objects = 0
        self.queries = self.scans = 0
        self.bytes_sent = self.bytes_received = 0


class ObjectServer:
    """A remote node store charging simulated network time.

    ``fault_model`` (see :mod:`repro.netsim.faults`) injects seeded
    drop/timeout faults at the channel: a faulted request raises
    :class:`~repro.errors.RpcDroppedError` or
    :class:`~repro.errors.RpcTimeoutError` *after* charging the clock
    for the wasted wire time, and the request never touches server
    state.  The client retries with bounded backoff.
    """

    def __init__(
        self,
        clock: Optional[SimulatedClock] = None,
        latency: Optional[LatencyModel] = None,
        instrumentation: Optional[Instrumentation] = None,
        fault_model: Optional[FaultModel] = None,
    ) -> None:
        self.clock = clock or SimulatedClock()
        self.latency = latency or LatencyModel()
        self.stats = ServerStats()
        self.fault_model = fault_model
        self.instrumentation = resolve(instrumentation)
        self._instr = self.instrumentation
        self._records: Dict[int, Dict[str, Any]] = {}
        self._lists: Dict[str, List[int]] = {}
        self._subscribers: List[object] = []
        #: Trace context of the in-flight request (the RPC envelope).
        self._pending_trace: Optional[TraceContext] = None

    # ------------------------------------------------------------------
    # Trace propagation (the request envelope)
    # ------------------------------------------------------------------

    def accept_trace_context(self, context: Optional[TraceContext]) -> None:
        """Attach the caller's trace context to the *next* request.

        The client's RPC wrapper calls this just before each attempt —
        it models the trace headers a real RPC envelope carries.  The
        context is consumed (and cleared) by the request it precedes;
        requests arriving without one record plain server spans.
        """
        self._pending_trace = context

    @contextlib.contextmanager
    def _serve(self, request: str):
        """Record one server-side request span with its remote parent.

        The span covers fault injection too, so a dropped or timed-out
        attempt still appears as server-side work linked to the client
        attempt that caused it (that is how retries become visible in
        the exported trace).
        """
        context = self._pending_trace
        self._pending_trace = None
        with self._instr.span(
            "server." + request,
            remote_parent=None if context is None else context.span_id,
            remote_trace=None if context is None else context.trace_id,
        ):
            self._maybe_fault(request)
            yield

    # ------------------------------------------------------------------
    # Cache-coherence subscriptions (R6 coordination)
    # ------------------------------------------------------------------

    def subscribe(self, cache) -> None:
        """Register a workstation cache for invalidation callbacks.

        When any client stores a record, every *other* subscribed cache
        drops its copy — the minimal coherence protocol that lets a
        second user see a first user's published update without
        restarting (R6's "coordination and collaboration between
        users").  Invalidation messages ride on the store's round trip
        (no extra clock charge; real systems piggyback them too).
        """
        if cache not in self._subscribers:
            self._subscribers.append(cache)

    def unsubscribe(self, cache) -> None:
        """Remove a cache from the invalidation list."""
        if cache in self._subscribers:
            self._subscribers.remove(cache)

    def _invalidate_subscribers(self, uid: int, except_cache=None) -> None:
        for cache in self._subscribers:
            if cache is not except_cache:
                cache.invalidate(uid)

    # ------------------------------------------------------------------
    # Cost accounting
    # ------------------------------------------------------------------

    def _charge(self, payload_bytes: int) -> None:
        cost = self.latency.request_cost(payload_bytes)
        self.clock.advance(cost)
        self._instr.count("backend.rpc.round_trips")
        self._instr.count("netsim.latency.injected_ms", cost * 1000.0)

    def _maybe_fault(self, request: str) -> None:
        """Consult the fault model before serving a request.

        A *drop* costs one wasted round trip (the request travelled and
        died); a *timeout* costs the model's full timeout window.  The
        fault is raised before any server state changes, so a retried
        ``store`` is idempotent from the server's point of view.
        """
        if self.fault_model is None:
            return
        kind = self.fault_model.next_fault()
        if kind is None:
            return
        self._instr.count("backend.rpc.faults")
        self._instr.count(f"backend.rpc.faults.{kind}")
        if kind == "timeout":
            wasted = self.fault_model.timeout_seconds
        else:
            wasted = self.latency.request_cost(0)
        self.clock.advance(wasted)
        self._instr.count("netsim.latency.injected_ms", wasted * 1000.0)
        self.fault_model.raise_fault(kind, request)

    @staticmethod
    def record_size(record: Dict[str, Any]) -> int:
        """Wire size of a record (its serialized length)."""
        return len(serializer.encode(record))

    @staticmethod
    def _isolate(record: Dict[str, Any]) -> Dict[str, Any]:
        """Copy a record so client and server never share nested lists."""
        return {
            key: [
                list(item) if isinstance(item, list) else item
                for item in value
            ]
            if isinstance(value, list)
            else value
            for key, value in record.items()
        }

    # ------------------------------------------------------------------
    # Object requests
    # ------------------------------------------------------------------

    def fetch(self, uid: int) -> Dict[str, Any]:
        """Fetch one record; charged round trip + record transfer.

        Raises:
            NodeNotFoundError: for an unknown uid (still charged a
                round trip — the request happened).
        """
        with self._serve("fetch"):
            self.stats.fetches += 1
            record = self._records.get(uid)
            if record is None:
                self._charge(_PROBE_BYTES)
                raise NodeNotFoundError(uid)
            size = self.record_size(record)
            self.stats.bytes_sent += size
            self._instr.count("backend.rpc.bytes_sent", size)
            self._charge(size)
            return self._isolate(record)

    def fetch_many(self, uids: List[int]) -> Dict[int, Dict[str, Any]]:
        """Fetch a batch of records in **one** round trip.

        This is the batch RPC verb the frontier traversals ride on: the
        fixed round-trip cost is paid once, the transfer cost stays
        proportional to the payload (the summed record sizes), so a
        closure frontier of N nodes costs ``round_trip + N·transfer``
        instead of ``N·(round_trip + transfer)``.

        Duplicates in ``uids`` are served once.  Raises
        :class:`NodeNotFoundError` for the first unknown uid (the whole
        request is still charged one round trip — it happened), matching
        the per-item :meth:`fetch` error contract.
        """
        with self._serve("fetch_many"):
            self.stats.batch_fetches += 1
            unique: List[int] = []
            seen = set()
            for uid in uids:
                if uid not in seen:
                    seen.add(uid)
                    unique.append(uid)
            missing = next(
                (uid for uid in unique if uid not in self._records), None
            )
            if missing is not None:
                self._charge(_PROBE_BYTES)
                raise NodeNotFoundError(missing)
            payload = _PROBE_BYTES
            out: Dict[int, Dict[str, Any]] = {}
            for uid in unique:
                record = self._records[uid]
                payload += self.record_size(record)
                out[uid] = self._isolate(record)
            self.stats.batched_objects += len(unique)
            self.stats.bytes_sent += payload
            self._instr.count("backend.rpc.bytes_sent", payload)
            self._instr.count("backend.rpc.batched_objects", len(unique))
            self._charge(payload)
            return out

    def store(
        self, uid: int, record: Dict[str, Any], from_cache=None
    ) -> None:
        """Upload one record (insert or replace); charged for upload.

        ``from_cache`` identifies the uploading client's cache so it is
        excluded from the coherence invalidation broadcast.
        """
        with self._serve("store"):
            self.stats.stores += 1
            size = self.record_size(record)
            self.stats.bytes_received += size
            self._instr.count("backend.rpc.bytes_received", size)
            self._charge(size)
            self._records[uid] = self._isolate(record)
            self._invalidate_subscribers(uid, except_cache=from_cache)

    def exists(self, uid: int) -> bool:
        """Key-existence probe (the server-side name-lookup index hit)."""
        with self._serve("exists"):
            self.stats.probes += 1
            self._charge(_PROBE_BYTES)
            return uid in self._records

    # ------------------------------------------------------------------
    # Server-evaluated queries
    # ------------------------------------------------------------------

    def range_query(self, attribute: str, low: int, high: int) -> List[int]:
        """Uids whose ``attribute`` lies in [low, high] (server-side).

        Charged one round trip plus uid-list transfer: the query runs
        at the server, only references come back — the design point
        R7 makes about letting the database do work remotely.
        """
        with self._serve("range_query"):
            self.stats.queries += 1
            result = [
                uid
                for uid, record in self._records.items()
                if low <= record[attribute] <= high
            ]
            size = _PROBE_BYTES + _UID_BYTES * len(result)
            self.stats.bytes_sent += size
            self._instr.count("backend.rpc.bytes_sent", size)
            self._charge(size)
            return result

    def scan_structure(self, structure_id: int) -> List[int]:
        """All uids of one structure, in uid order (server-side scan)."""
        with self._serve("scan_structure"):
            self.stats.scans += 1
            result = sorted(
                uid
                for uid, record in self._records.items()
                if record["struct"] == structure_id
            )
            size = _PROBE_BYTES + _UID_BYTES * len(result)
            self.stats.bytes_sent += size
            self._instr.count("backend.rpc.bytes_sent", size)
            self._charge(size)
            return result

    def referrers_of(self, uid: int) -> List[int]:
        """Server-side inverse-reference query (op 08's index)."""
        with self._serve("referrers_of"):
            self.stats.queries += 1
            result = [
                src
                for src, record in self._records.items()
                if any(dst == uid for dst, _f, _t in record["refTo"])
            ]
            self._charge(_PROBE_BYTES + _UID_BYTES * len(result))
            return result

    # ------------------------------------------------------------------
    # Named lists
    # ------------------------------------------------------------------

    def store_list(self, name: str, uids: List[int]) -> None:
        """Persist a named node list server-side."""
        with self._serve("store_list"):
            self.stats.stores += 1
            self._charge(_PROBE_BYTES + _UID_BYTES * len(uids))
            self._lists[name] = list(uids)

    def load_list(self, name: str) -> List[int]:
        """Load a named node list.

        Raises:
            NodeNotFoundError: for an unknown list name.
        """
        with self._serve("load_list"):
            self.stats.fetches += 1
            uids = self._lists.get(name)
            if uids is None:
                self._charge(_PROBE_BYTES)
                raise NodeNotFoundError(name)
            self._charge(_PROBE_BYTES + _UID_BYTES * len(uids))
            return list(uids)

    # ------------------------------------------------------------------
    # Introspection (not charged: administrative)
    # ------------------------------------------------------------------

    def count(self, structure_id: int) -> int:
        """Number of records in one structure (uncharged admin call)."""
        return sum(
            1 for r in self._records.values() if r["struct"] == structure_id
        )

    def __contains__(self, uid: int) -> bool:
        return uid in self._records
