"""The server side of the simulated workstation/server architecture.

:class:`ObjectServer` stores node records (plain dictionaries) and
answers the request types the client/server backend needs: object
fetch/store, key-existence probes, index range queries, structure scans
and named-list storage.  Every request charges the shared
:class:`~repro.netsim.latency.SimulatedClock` according to the
:class:`~repro.netsim.latency.LatencyModel` — a fixed round trip plus
payload-proportional transfer, with payload sizes measured by actually
serializing the records.

The server object *survives* the client database's close/open cycle,
exactly like the server machine in the paper's architecture: closing
the workstation application empties the workstation cache but not the
server, which is what makes the next run cold.
"""

from __future__ import annotations

import contextlib
import dataclasses
from typing import Any, Dict, List, Optional, Tuple

from repro.engine import serializer
from repro.engine.wal import PUT, WriteAheadLog, put_record
from repro.netsim.faults import FaultModel
from repro.netsim.latency import LatencyModel, SimulatedClock
from repro.netsim.sim import DirectTransport
from repro.obs import Instrumentation, TraceContext, resolve
from repro.errors import (
    CommitConflictError,
    InvalidOperationError,
    NodeNotFoundError,
)

#: Approximate bytes of a uid in a response payload.
_UID_BYTES = 8
#: Approximate bytes of a request/reply envelope beyond the round trip.
_PROBE_BYTES = 16

#: Relations the push-down verbs understand, with the record keys that
#: hold their forward and reverse adjacency.
_RELATIONS = ("children", "parts", "refTo")


def stale_reads(reads, version_of):
    """First-committer-wins validation kernel (deferred import).

    Shared with the engine-level optimistic coordinator; imported
    lazily because ``repro.concurrency`` transitively imports the
    client/server backend, which imports this module.
    """
    from repro.concurrency.optimistic import stale_reads as _kernel

    return _kernel(reads, version_of)


@dataclasses.dataclass
class ServerStats:
    """Request counters, by request type."""

    fetches: int = 0
    batch_fetches: int = 0
    batched_objects: int = 0
    traversals: int = 0
    readaheads: int = 0
    pushdown_objects: int = 0
    stores: int = 0
    probes: int = 0
    queries: int = 0
    scans: int = 0
    commits: int = 0
    commit_conflicts: int = 0
    prepares: int = 0
    decisions: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.fetches = self.stores = self.probes = 0
        self.batch_fetches = self.batched_objects = 0
        self.traversals = self.readaheads = self.pushdown_objects = 0
        self.queries = self.scans = 0
        self.commits = self.commit_conflicts = 0
        self.prepares = self.decisions = 0
        self.bytes_sent = self.bytes_received = 0


class ObjectServer:
    """A remote node store charging simulated network time.

    ``fault_model`` (see :mod:`repro.netsim.faults`) injects seeded
    drop/timeout faults at the channel: a faulted request raises
    :class:`~repro.errors.RpcDroppedError` or
    :class:`~repro.errors.RpcTimeoutError` *after* charging the clock
    for the wasted wire time, and the request never touches server
    state.  The client retries with bounded backoff.
    """

    def __init__(
        self,
        clock: Optional[SimulatedClock] = None,
        latency: Optional[LatencyModel] = None,
        instrumentation: Optional[Instrumentation] = None,
        fault_model: Optional[FaultModel] = None,
        wal: Optional[WriteAheadLog] = None,
        fsync_seconds: float = 0.0,
        shard_id: Optional[int] = None,
        lane_tag: Optional[str] = None,
    ) -> None:
        self.clock = clock or SimulatedClock()
        self.latency = latency or LatencyModel()
        self.stats = ServerStats()
        #: Position of this server in a sharded deployment, or ``None``
        #: for the classic single-server stack.  A set shard id adds
        #: ``backend.shard.<n>.rpc.*`` counters and folds a
        #: ``shard<n>`` tag into the trace lane; the ``None`` path is
        #: byte-identical to the pre-sharding server.
        self.shard_id = shard_id
        #: Free-form trace lane tag (``"replica0"``, ``"primary"`` …)
        #: for servers that are neither shards nor the classic single
        #: server; ``shard_id`` wins when both are set.  ``None`` keeps
        #: the pre-replication spans byte-identical.
        self.lane_tag = lane_tag
        self.fault_model = fault_model
        self.instrumentation = resolve(instrumentation)
        self._instr = self.instrumentation
        #: Optional durable commit log; ``commit_batch`` appends each
        #: transaction's PUT records and charges ``fsync_seconds`` of
        #: extra service time on the commits that take a real
        #: durability point (group commit defers most of them).
        self.wal = wal
        self.fsync_seconds = fsync_seconds
        #: The charge seam: every request's time lands here.  The
        #: default reproduces the single-client model exactly; the
        #: discrete-event scheduler swaps in a contended transport
        #: (see :mod:`repro.netsim.sim`) for multi-client runs.
        self.transport = DirectTransport(self.clock, self.latency)
        self._records: Dict[int, Dict[str, Any]] = {}
        self._lists: Dict[str, List[int]] = {}
        #: Version per uid, bumped on every store/commit; the optimistic
        #: commit protocol validates read sets against it.
        self._versions: Dict[int, int] = {}
        self._commit_seq = 0
        #: Versions of the records the *last* record-carrying reply
        #: shipped — an in-process side channel standing in for the
        #: version stamps a real wire format would embed per record
        #: (kept out of the payload so reply sizes are unchanged).
        self.last_reply_versions: Dict[int, int] = {}
        self._subscribers: List[object] = []
        #: Trace context of the in-flight request (the RPC envelope).
        self._pending_trace: Optional[TraceContext] = None
        #: Two-phase-commit participant state: write sets parked by
        #: ``prepare_batch`` awaiting the coordinator's decision,
        #: keyed by global txid.
        self._prepared: Dict[int, Dict[str, Any]] = {}
        #: Pins held by prepared transactions: uid → owning txid.  A
        #: pinned uid blocks conflicting commits/prepares until the
        #: owner is decided (prepared state must stay validatable).
        self._pins: Dict[int, int] = {}
        #: The subset of pinned uids the owning txn will *write*.
        self._pin_writes: set = set()
        #: Decision memo so a retried ``commit_prepared`` /
        #: ``abort_prepared`` is idempotent: txid → applied versions
        #: (commit) or ``None`` (abort).
        self._decided: Dict[int, Optional[Dict[int, int]]] = {}

    @contextlib.contextmanager
    def use_transport(self, transport):
        """Temporarily swap the charge transport (the scheduler's seam)."""
        previous = self.transport
        self.transport = transport
        try:
            yield transport
        finally:
            self.transport = previous

    # ------------------------------------------------------------------
    # Trace propagation (the request envelope)
    # ------------------------------------------------------------------

    def accept_trace_context(self, context: Optional[TraceContext]) -> None:
        """Attach the caller's trace context to the *next* request.

        The client's RPC wrapper calls this just before each attempt —
        it models the trace headers a real RPC envelope carries.  The
        context is consumed (and cleared) by the request it precedes;
        requests arriving without one record plain server spans.
        """
        self._pending_trace = context

    @contextlib.contextmanager
    def _serve(self, request: str):
        """Record one server-side request span with its remote parent.

        The span covers fault injection too, so a dropped or timed-out
        attempt still appears as server-side work linked to the client
        attempt that caused it (that is how retries become visible in
        the exported trace).
        """
        context = self._pending_trace
        self._pending_trace = None
        client = None if context is None else context.client_id
        if self.shard_id is not None or self.lane_tag is not None:
            # Tagged lane: scatter-gather (or replica) fan-out shows up
            # as one trace lane per (client, server) pair in Perfetto.
            tag = (
                f"shard{self.shard_id}"
                if self.shard_id is not None
                else self.lane_tag
            )
            client = tag if client is None else f"{client}·{tag}"
        with self._instr.span(
            "server." + request,
            remote_parent=None if context is None else context.span_id,
            remote_trace=None if context is None else context.trace_id,
            client=client,
        ):
            # Version stamps never survive into the next request: each
            # reply's stamps belong to exactly one caller.
            self.last_reply_versions = {}
            self._maybe_fault(request)
            yield

    # ------------------------------------------------------------------
    # Cache-coherence subscriptions (R6 coordination)
    # ------------------------------------------------------------------

    def subscribe(self, cache) -> None:
        """Register a workstation cache for invalidation callbacks.

        When any client stores a record, every *other* subscribed cache
        drops its copy — the minimal coherence protocol that lets a
        second user see a first user's published update without
        restarting (R6's "coordination and collaboration between
        users").  Invalidation messages ride on the store's round trip
        (no extra clock charge; real systems piggyback them too).
        """
        if cache not in self._subscribers:
            self._subscribers.append(cache)

    def unsubscribe(self, cache) -> None:
        """Remove a cache from the invalidation list."""
        if cache in self._subscribers:
            self._subscribers.remove(cache)

    def _invalidate_subscribers(self, uid: int, except_cache=None) -> None:
        for cache in self._subscribers:
            if cache is not except_cache:
                cache.invalidate(uid)

    # ------------------------------------------------------------------
    # Cost accounting
    #
    # Every request charges exactly one round trip plus its payload.
    # Reply payloads follow **one documented model** shared by every
    # record-carrying verb (``fetch``, ``fetch_many``, ``traverse``,
    # ``readahead``):
    #
    #     payload = envelope (_PROBE_BYTES) + Σ record_size(record)
    #
    # so a batch reply and a push-down reply carrying the *same* record
    # set charge the *same* simulated time (pinned by a regression test
    # in ``tests/test_pushdown.py``).  Reference-only replies charge
    # ``envelope + _UID_BYTES per uid`` instead.  Payload sizes land in
    # the ``backend.rpc.payload_bytes`` histogram (bytes, not ms) so
    # the wire-size distribution is inspectable next to the latency
    # distributions.
    # ------------------------------------------------------------------

    def _charge(
        self,
        payload_bytes: int,
        verb: Optional[str] = None,
        extra_service_seconds: float = 0.0,
    ) -> None:
        cost = self.transport.charge_request(
            payload_bytes, extra_service_seconds=extra_service_seconds
        )
        self._instr.count("backend.rpc.round_trips")
        self._instr.count("netsim.latency.injected_ms", cost * 1000.0)
        self._instr.observe("backend.rpc.payload_bytes", float(payload_bytes))
        if verb is not None:
            self._instr.observe(
                f"backend.rpc.payload_bytes.{verb}", float(payload_bytes)
            )
        if self.shard_id is not None:
            prefix = f"backend.shard.{self.shard_id}.rpc"
            self._instr.count(f"{prefix}.round_trips")
            self._instr.count(f"{prefix}.payload_bytes", float(payload_bytes))
            if verb is not None:
                self._instr.count(f"{prefix}.{verb}")

    def _reply_payload(self, records) -> int:
        """Wire size of one record-carrying reply: envelope + records."""
        return _PROBE_BYTES + sum(self.record_size(r) for r in records)

    def _stamp_reply_versions(self, uids) -> None:
        """Record the versions the reply's records were shipped at."""
        self.last_reply_versions = {
            uid: self._versions.get(uid, 0) for uid in uids
        }

    def take_reply_versions(self) -> Dict[int, int]:
        """Consume the version stamps of the last record-carrying reply.

        The optimistic client calls this after each successful RPC to
        learn which version of each record it now holds; consuming
        clears the channel so stale stamps never leak into the next
        request's bookkeeping.
        """
        versions = self.last_reply_versions
        self.last_reply_versions = {}
        return versions

    def _maybe_fault(self, request: str) -> None:
        """Consult the fault model before serving a request.

        A *drop* costs one wasted round trip (the request travelled and
        died); a *timeout* costs the model's full timeout window.  The
        fault is raised before any server state changes, so a retried
        ``store`` is idempotent from the server's point of view.
        """
        if self.fault_model is None:
            return
        kind = self.fault_model.next_fault()
        if kind is None:
            return
        self._instr.count("backend.rpc.faults")
        self._instr.count(f"backend.rpc.faults.{kind}")
        if kind == "timeout":
            wasted = self.fault_model.timeout_seconds
        else:
            wasted = self.latency.request_cost(0)
        self.transport.charge_wasted(wasted)
        self._instr.count("netsim.latency.injected_ms", wasted * 1000.0)
        self.fault_model.raise_fault(kind, request)

    @staticmethod
    def record_size(record: Dict[str, Any]) -> int:
        """Wire size of a record (its serialized length)."""
        return len(serializer.encode(record))

    @staticmethod
    def _isolate(record: Dict[str, Any]) -> Dict[str, Any]:
        """Copy a record so client and server never share nested lists."""
        return {
            key: [
                list(item) if isinstance(item, list) else item
                for item in value
            ]
            if isinstance(value, list)
            else value
            for key, value in record.items()
        }

    # ------------------------------------------------------------------
    # Object requests
    # ------------------------------------------------------------------

    def fetch(self, uid: int) -> Dict[str, Any]:
        """Fetch one record; charged round trip + record transfer.

        Raises:
            NodeNotFoundError: for an unknown uid (still charged a
                round trip — the request happened).
        """
        with self._serve("fetch"):
            self.stats.fetches += 1
            record = self._records.get(uid)
            if record is None:
                self._charge(_PROBE_BYTES, "fetch")
                raise NodeNotFoundError(uid)
            payload = self._reply_payload([record])
            self.stats.bytes_sent += payload
            self._instr.count("backend.rpc.bytes_sent", payload)
            self._charge(payload, "fetch")
            self._stamp_reply_versions((uid,))
            return self._isolate(record)

    def fetch_many(self, uids: List[int]) -> Dict[int, Dict[str, Any]]:
        """Fetch a batch of records in **one** round trip.

        This is the batch RPC verb the frontier traversals ride on: the
        fixed round-trip cost is paid once, the transfer cost stays
        proportional to the payload (the summed record sizes), so a
        closure frontier of N nodes costs ``round_trip + N·transfer``
        instead of ``N·(round_trip + transfer)``.

        Duplicates in ``uids`` are served once.  Raises
        :class:`NodeNotFoundError` for the first unknown uid (the whole
        request is still charged one round trip — it happened), matching
        the per-item :meth:`fetch` error contract.
        """
        with self._serve("fetch_many"):
            self.stats.batch_fetches += 1
            unique: List[int] = []
            seen = set()
            for uid in uids:
                if uid not in seen:
                    seen.add(uid)
                    unique.append(uid)
            missing = next(
                (uid for uid in unique if uid not in self._records), None
            )
            if missing is not None:
                self._charge(_PROBE_BYTES, "fetch_many")
                raise NodeNotFoundError(missing)
            payload = self._reply_payload(
                self._records[uid] for uid in unique
            )
            out: Dict[int, Dict[str, Any]] = {
                uid: self._isolate(self._records[uid]) for uid in unique
            }
            self.stats.batched_objects += len(unique)
            self.stats.bytes_sent += payload
            self._instr.count("backend.rpc.bytes_sent", payload)
            self._instr.count("backend.rpc.batched_objects", len(unique))
            self._charge(payload, "fetch_many")
            self._stamp_reply_versions(unique)
            return out

    # ------------------------------------------------------------------
    # Closure push-down (query shipping instead of data shipping)
    # ------------------------------------------------------------------

    def _neighbors(
        self, record: Dict[str, Any], relation: str, direction: str
    ) -> List[int]:
        """Adjacent uids of one record along ``relation``/``direction``."""
        if direction == "forward":
            if relation == "refTo":
                return [dst for dst, _f, _t in record["refTo"]]
            return list(record[relation])
        if relation == "children":
            parent = record["parent"]
            return [parent] if parent else []
        if relation == "parts":
            return list(record["partOf"])
        return list(record["refFrom"])

    def traverse(
        self,
        root: int,
        relation: str,
        direction: str = "forward",
        depth: Optional[int] = None,
        with_records: bool = True,
        limit: Optional[int] = None,
    ) -> Dict[int, Dict[str, Any]]:
        """Run a closure BFS **at the server**; one size-charged reply.

        This is the query-shipping verb: instead of the client walking
        the structure level by level (one ``fetch_many`` round trip per
        level), the whole traversal executes server-side and every
        *distinct* visited record comes back in a single reply.  A
        closure then costs ``round_trip + Σ transfer`` — the same
        payload a frontier BFS ships in total, minus all but one of its
        fixed round trips (and their envelopes).

        Args:
            root: start node; raises :class:`NodeNotFoundError` if
                unknown (the request is still charged — it happened).
            relation: ``"children"``, ``"parts"`` or ``"refTo"``.
            direction: ``"forward"`` follows the relation,
                ``"reverse"`` its inverse (parent / partOf / refFrom).
            depth: maximum BFS depth (``None`` = unbounded; the
                attributed-association closures pass their run-time
                depth, 25 by default).
            with_records: ship the visited records (the push-down fast
                path) or just their uids (a reference-only closure,
                charged like a range query).
            limit: stop collecting after this many nodes — the client
                passes its workstation-cache capacity so a reply never
                ships records the cache could not hold; the BFS prefix
                it does ship is still coherent (early levels complete),
                and the client's frontier BFS fetches the remainder.

        Returns:
            ``{uid: record}`` in BFS visit order (insertion order of
            the dict) when ``with_records``; ``{uid: None}`` in visit
            order otherwise.  Dangling edge targets (uids the server
            does not hold) are skipped silently — the client-side
            replay resolves them through its own read path.
        """
        with self._serve("traverse"):
            self.stats.traversals += 1
            if relation not in _RELATIONS:
                raise InvalidOperationError(
                    f"traverse does not understand relation {relation!r}"
                )
            if direction not in ("forward", "reverse"):
                raise InvalidOperationError(
                    f"traverse direction must be forward or reverse,"
                    f" got {direction!r}"
                )
            if root not in self._records:
                self._charge(_PROBE_BYTES, "traverse")
                raise NodeNotFoundError(root)
            order: List[int] = [root]
            seen = {root}
            frontier: List[int] = [root]
            level = 0
            full = limit is not None and len(order) >= limit
            while frontier and not full and (depth is None or level < depth):
                next_frontier: List[int] = []
                for uid in frontier:
                    for adj in self._neighbors(
                        self._records[uid], relation, direction
                    ):
                        if adj in seen or adj not in self._records:
                            continue
                        seen.add(adj)
                        order.append(adj)
                        next_frontier.append(adj)
                        if limit is not None and len(order) >= limit:
                            full = True
                            break
                    if full:
                        break
                frontier = next_frontier
                level += 1
            if not with_records:
                payload = _PROBE_BYTES + _UID_BYTES * len(order)
                self.stats.bytes_sent += payload
                self._instr.count("backend.rpc.bytes_sent", payload)
                self._charge(payload, "traverse")
                return {uid: None for uid in order}
            payload = self._reply_payload(
                self._records[uid] for uid in order
            )
            out = {uid: self._isolate(self._records[uid]) for uid in order}
            self.stats.pushdown_objects += len(order)
            self.stats.bytes_sent += payload
            self._instr.count("backend.rpc.bytes_sent", payload)
            self._instr.count("backend.rpc.batched_objects", len(order))
            self._charge(payload, "traverse")
            self._stamp_reply_versions(order)
            return out

    def readahead(
        self, uids: List[int], depth: int = 1, limit: Optional[int] = None
    ) -> Dict[int, Dict[str, Any]]:
        """Speculative structural readahead around a set of seed uids.

        Expands each seed's structural neighbourhood — children *and*
        parts, breadth-first to ``depth`` levels — and returns every
        distinct record found, in one size-charged reply.  The verb is
        **speculative by contract**: unknown seeds and dangling edges
        are skipped silently (an empty reply is a valid answer), so the
        client can ask optimistically on a cold first touch without a
        second error round trip.  Raising is the caller's business if
        a seed it *required* is absent from the reply.
        """
        with self._serve("readahead"):
            self.stats.readaheads += 1
            if depth < 0:
                raise InvalidOperationError(
                    f"readahead depth cannot be negative, got {depth}"
                )
            order: List[int] = []
            seen = set()
            frontier: List[int] = []
            for uid in uids:
                if uid in seen or uid not in self._records:
                    continue
                seen.add(uid)
                order.append(uid)
                frontier.append(uid)
            level = 0
            full = limit is not None and len(order) >= limit
            while frontier and not full and level < depth:
                next_frontier: List[int] = []
                for uid in frontier:
                    record = self._records[uid]
                    for adj in list(record["children"]) + list(
                        record["parts"]
                    ):
                        if adj in seen or adj not in self._records:
                            continue
                        seen.add(adj)
                        order.append(adj)
                        next_frontier.append(adj)
                        if limit is not None and len(order) >= limit:
                            full = True
                            break
                    if full:
                        break
                frontier = next_frontier
                level += 1
            payload = self._reply_payload(
                self._records[uid] for uid in order
            )
            out = {uid: self._isolate(self._records[uid]) for uid in order}
            self.stats.pushdown_objects += len(order)
            self.stats.bytes_sent += payload
            self._instr.count("backend.rpc.bytes_sent", payload)
            self._instr.count("backend.rpc.batched_objects", len(order))
            self._charge(payload, "readahead")
            self._stamp_reply_versions(order)
            return out

    def store(
        self, uid: int, record: Dict[str, Any], from_cache=None
    ) -> None:
        """Upload one record (insert or replace); charged for upload.

        ``from_cache`` identifies the uploading client's cache so it is
        excluded from the coherence invalidation broadcast.
        """
        with self._serve("store"):
            self.stats.stores += 1
            size = self.record_size(record)
            self.stats.bytes_received += size
            self._instr.count("backend.rpc.bytes_received", size)
            self._charge(size)
            self._commit_seq += 1
            self._records[uid] = self._isolate(record)
            self._versions[uid] = self._commit_seq
            self._invalidate_subscribers(uid, except_cache=from_cache)

    def commit_batch(
        self,
        writes: Dict[int, Dict[str, Any]],
        reads: Dict[int, int],
        lists: Optional[Dict[str, List[int]]] = None,
        from_cache=None,
    ) -> Dict[int, int]:
        """Optimistically validate and apply one transaction atomically.

        The optimistic client ships its whole write set plus the
        versions of every record it read this transaction in **one**
        request (charged for the uploaded records plus a uid+version
        pair per read).  Validation is first-committer-wins: if any
        read version no longer matches the server's current version —
        another client committed that record meanwhile — nothing is
        applied and :class:`~repro.errors.CommitConflictError` reports
        the stale uids so the client can invalidate and retry.

        A valid transaction is applied atomically under one new commit
        sequence number: all writes land, versions bump, the optional
        WAL logs the write set (charging ``fsync_seconds`` of extra
        service only when the log takes a real durability point —
        group commit defers most of them), and every *other*
        subscribed cache is invalidated for each written uid.

        Returns ``{uid: new version}`` for the write set.
        """
        with self._serve("commit"):
            lists = lists or {}
            upload = (
                _PROBE_BYTES
                + sum(self.record_size(r) for r in writes.values())
                + (_UID_BYTES + _UID_BYTES) * len(reads)
                + sum(
                    _UID_BYTES * len(uids) for uids in lists.values()
                )
            )
            self.stats.bytes_received += upload
            self._instr.count("backend.rpc.bytes_received", upload)
            conflicts = stale_reads(
                reads, lambda uid: self._versions.get(uid, 0)
            )
            conflicts += self._pin_conflicts(writes, reads, txid=None)
            if conflicts:
                self.stats.commit_conflicts += 1
                self._instr.count("backend.mp.commit.conflicts")
                self._charge(upload, "commit")
                raise CommitConflictError(sorted(set(conflicts)))
            synced = False
            if self.wal is not None and writes:
                txid = self._commit_seq + 1
                synced = self.wal.log_commit(
                    txid,
                    [
                        put_record(txid, uid, {"record": record})
                        for uid, record in sorted(writes.items())
                    ],
                )
            self._commit_seq += 1
            applied: Dict[int, int] = {}
            for uid, record in writes.items():
                self._records[uid] = self._isolate(record)
                self._versions[uid] = self._commit_seq
                applied[uid] = self._commit_seq
            for name, uids in lists.items():
                self._lists[name] = list(uids)
            self.stats.commits += 1
            self._instr.count("backend.mp.commits")
            self._charge(
                upload,
                "commit",
                extra_service_seconds=self.fsync_seconds if synced else 0.0,
            )
            for uid in writes:
                self._invalidate_subscribers(uid, except_cache=from_cache)
            return applied

    # ------------------------------------------------------------------
    # Sharded scatter-gather (border-OID hand-off)
    # ------------------------------------------------------------------

    def _scatter_bfs(self, seeds, neighbors, limit):
        """Multi-seed budgeted BFS over the records this shard holds.

        ``seeds`` is ``[(uid, budget)]`` where ``budget`` is how many
        levels the walk may still descend *from that node* (``None`` =
        unbounded).  Edges to uids this shard does not hold become
        **border** entries ``(uid, budget - 1)`` instead of visits —
        the router re-dispatches them to their owning shards.  A uid
        reachable along several paths keeps the largest remaining
        budget and is re-expanded when a later path improves it, so
        the union of all shard-local walks equals the single-server
        BFS closure.
        """
        inf = float("inf")
        order: List[int] = []
        best: Dict[int, float] = {}
        borders: Dict[int, float] = {}
        frontier: List[Tuple[int, float]] = []
        full = False
        for uid, budget in seeds:
            b = inf if budget is None else float(budget)
            if uid not in self._records:
                continue
            if uid in best:
                if b > best[uid]:
                    best[uid] = b
                    if b > 0:
                        frontier.append((uid, b))
                continue
            if limit is not None and len(order) >= limit:
                full = True
                break
            best[uid] = b
            order.append(uid)
            if b > 0:
                frontier.append((uid, b))
        while frontier and not full:
            next_frontier: List[Tuple[int, float]] = []
            for uid, b in frontier:
                nb = b - 1
                for adj in neighbors(self._records[uid]):
                    if adj in self._records:
                        if adj not in best:
                            if limit is not None and len(order) >= limit:
                                full = True
                                break
                            best[adj] = nb
                            order.append(adj)
                            if nb > 0:
                                next_frontier.append((adj, nb))
                        elif nb > best[adj]:
                            best[adj] = nb
                            if nb > 0:
                                next_frontier.append((adj, nb))
                    else:
                        prev = borders.get(adj)
                        if prev is None or nb > prev:
                            borders[adj] = nb
                if full:
                    break
            frontier = next_frontier
        border_list = [
            (uid, None if b == inf else int(b))
            for uid, b in borders.items()
        ]
        return order, border_list, full

    def traverse_shard(
        self,
        seeds: List[Tuple[int, Optional[int]]],
        relation: str,
        direction: str = "forward",
        with_records: bool = True,
        limit: Optional[int] = None,
    ):
        """One shard-local round of a scatter-gather closure BFS.

        The router seeds each round with the border uids the previous
        round surfaced (grouped by placement), so a whole cross-shard
        closure costs one ``traverse_shard`` call per shard per
        *depth-crossing round* — O(shards × crossings), never
        O(nodes).  Unknown seeds are skipped silently (the speculative
        contract of :meth:`readahead`): a seed uid owned by this shard
        per the placement map but absent from its records is simply a
        dangling edge.  The reply charges the visited records (or a
        uid each when ``with_records`` is false) **plus one uid per
        border** — the hand-off references are real payload.

        Returns ``({uid: record-or-None}, [(border uid, remaining
        budget)])``, both in discovery order.
        """
        with self._serve("traverse_shard"):
            self.stats.traversals += 1
            if relation not in _RELATIONS:
                raise InvalidOperationError(
                    f"traverse does not understand relation {relation!r}"
                )
            if direction not in ("forward", "reverse"):
                raise InvalidOperationError(
                    f"traverse direction must be forward or reverse,"
                    f" got {direction!r}"
                )
            order, borders, _full = self._scatter_bfs(
                seeds,
                lambda record: self._neighbors(record, relation, direction),
                limit,
            )
            border_bytes = _UID_BYTES * len(borders)
            if not with_records:
                payload = (
                    _PROBE_BYTES + _UID_BYTES * len(order) + border_bytes
                )
                self.stats.bytes_sent += payload
                self._instr.count("backend.rpc.bytes_sent", payload)
                self._charge(payload, "traverse_shard")
                return {uid: None for uid in order}, borders
            payload = (
                self._reply_payload(self._records[uid] for uid in order)
                + border_bytes
            )
            out = {uid: self._isolate(self._records[uid]) for uid in order}
            self.stats.pushdown_objects += len(order)
            self.stats.bytes_sent += payload
            self._instr.count("backend.rpc.bytes_sent", payload)
            self._instr.count("backend.rpc.batched_objects", len(order))
            self._charge(payload, "traverse_shard")
            self._stamp_reply_versions(order)
            return out, borders

    def readahead_shard(
        self,
        seeds: List[Tuple[int, Optional[int]]],
        limit: Optional[int] = None,
    ):
        """Shard-local structural readahead with border hand-off.

        The sharded counterpart of :meth:`readahead`: expands each
        seed's children+parts neighbourhood to its per-seed depth
        budget over the records this shard holds, and reports
        cross-shard edges as borders for the router to re-dispatch.
        Speculative by contract — unknown seeds are skipped silently.
        """
        with self._serve("readahead_shard"):
            self.stats.readaheads += 1
            for _uid, budget in seeds:
                if budget is not None and budget < 0:
                    raise InvalidOperationError(
                        f"readahead depth cannot be negative, got {budget}"
                    )
            order, borders, _full = self._scatter_bfs(
                seeds,
                lambda record: list(record["children"])
                + list(record["parts"]),
                limit,
            )
            payload = (
                self._reply_payload(self._records[uid] for uid in order)
                + _UID_BYTES * len(borders)
            )
            out = {uid: self._isolate(self._records[uid]) for uid in order}
            self.stats.pushdown_objects += len(order)
            self.stats.bytes_sent += payload
            self._instr.count("backend.rpc.bytes_sent", payload)
            self._instr.count("backend.rpc.batched_objects", len(order))
            self._charge(payload, "readahead_shard")
            self._stamp_reply_versions(order)
            return out, borders

    # ------------------------------------------------------------------
    # Two-phase commit (participant side; the ShardRouter coordinates)
    # ------------------------------------------------------------------

    def _pin_conflicts(
        self,
        writes: Dict[int, Any],
        reads: Dict[int, int],
        txid: Optional[int],
    ) -> List[int]:
        """Uids this request may not touch while a peer is in doubt.

        A write collides with *any* pin (the pinned value must stay
        exactly as validated until its owner is decided); a read
        validation collides only with a *write* pin (its version
        changes if the owner commits, and which way is unknowable
        until the decision).  ``txid`` exempts a transaction's own
        pins so a retried prepare stays idempotent.
        """
        blocked = [
            uid
            for uid in writes
            if uid in self._pins and self._pins[uid] != txid
        ]
        blocked += [
            uid
            for uid in reads
            if uid in self._pin_writes and self._pins[uid] != txid
        ]
        return blocked

    def prepare_batch(
        self,
        txid: int,
        writes: Dict[int, Dict[str, Any]],
        reads: Dict[int, int],
        lists: Optional[Dict[str, List[int]]] = None,
        from_cache=None,
    ) -> bool:
        """Phase one: validate and park this shard's transaction slice.

        Validation is exactly ``commit_batch``'s first-committer-wins
        check (stale read versions raise
        :class:`~repro.errors.CommitConflictError`), plus pin checks
        against other in-doubt transactions.  A valid slice is logged
        to the WAL as BEGIN + PUTs + PREPARE (force-synced — the
        prepare promise must survive a crash), parked in memory, and
        its read∪write set pinned until the coordinator's decision
        arrives.  Nothing is applied and no cache is invalidated yet.
        """
        with self._serve("prepare"):
            lists = lists or {}
            upload = (
                _PROBE_BYTES
                + _UID_BYTES  # the global txid rides in the envelope
                + sum(self.record_size(r) for r in writes.values())
                + (_UID_BYTES + _UID_BYTES) * len(reads)
                + sum(_UID_BYTES * len(uids) for uids in lists.values())
            )
            self.stats.bytes_received += upload
            self._instr.count("backend.rpc.bytes_received", upload)
            if txid in self._decided:
                self._charge(upload, "prepare")
                raise InvalidOperationError(
                    f"transaction {txid} was already decided"
                )
            if txid in self._prepared:
                # Retried prepare (the first reply was lost): the slice
                # is already parked and pinned — just re-acknowledge.
                self._charge(upload, "prepare")
                return True
            conflicts = stale_reads(
                reads, lambda uid: self._versions.get(uid, 0)
            )
            conflicts += self._pin_conflicts(writes, reads, txid)
            if conflicts:
                self.stats.commit_conflicts += 1
                self._instr.count("backend.mp.commit.conflicts")
                self._charge(upload, "prepare")
                raise CommitConflictError(sorted(set(conflicts)))
            synced = False
            if self.wal is not None:
                synced = self.wal.log_prepare(
                    txid,
                    [
                        put_record(txid, uid, {"record": record})
                        for uid, record in sorted(writes.items())
                    ],
                )
            self._prepared[txid] = {
                "writes": {
                    uid: self._isolate(record)
                    for uid, record in writes.items()
                },
                "lists": {
                    name: list(uids) for name, uids in lists.items()
                },
                "from_cache": from_cache,
            }
            for uid in writes:
                self._pins[uid] = txid
                self._pin_writes.add(uid)
            for uid in reads:
                self._pins.setdefault(uid, txid)
            self.stats.prepares += 1
            self._instr.count("backend.mp.prepares")
            self._charge(
                upload,
                "prepare",
                extra_service_seconds=self.fsync_seconds if synced else 0.0,
            )
            return True

    def commit_prepared(self, txid: int) -> Dict[int, int]:
        """Phase two, commit: apply a parked slice atomically.

        Idempotent — a retried decision (the first ack was lost)
        replays the memoized result without re-applying.  The decision
        is force-logged to the WAL before the writes land, then the
        slice applies under one new commit sequence number and every
        other subscribed cache is invalidated per written uid, exactly
        like ``commit_batch``'s apply half.
        """
        with self._serve("decide"):
            upload = _PROBE_BYTES + _UID_BYTES
            self.stats.bytes_received += upload
            self._instr.count("backend.rpc.bytes_received", upload)
            if txid in self._decided:
                self._charge(upload, "decide")
                memo = self._decided[txid]
                if memo is None:
                    raise InvalidOperationError(
                        f"transaction {txid} was already aborted"
                    )
                return dict(memo)
            entry = self._prepared.pop(txid, None)
            if entry is None:
                self._charge(upload, "decide")
                raise InvalidOperationError(
                    f"transaction {txid} is not prepared on this shard"
                )
            synced = False
            if self.wal is not None:
                synced = self.wal.log_decision(txid, committed=True)
            self._commit_seq += 1
            applied: Dict[int, int] = {}
            for uid, record in entry["writes"].items():
                self._records[uid] = record
                self._versions[uid] = self._commit_seq
                applied[uid] = self._commit_seq
            for name, uids in entry["lists"].items():
                self._lists[name] = list(uids)
            self._release_pins(txid)
            self._decided[txid] = dict(applied)
            self.stats.commits += 1
            self.stats.decisions += 1
            self._instr.count("backend.mp.commits")
            self._charge(
                upload,
                "decide",
                extra_service_seconds=self.fsync_seconds if synced else 0.0,
            )
            for uid in entry["writes"]:
                self._invalidate_subscribers(
                    uid, except_cache=entry["from_cache"]
                )
            return applied

    def abort_prepared(self, txid: int) -> None:
        """Phase two, abort: discard a parked slice (presumed abort).

        Idempotent and tolerant of transactions that never prepared
        here — the coordinator aborts every would-be participant when
        any one of them votes no, including shards whose prepare never
        arrived.  The ABORT decision is logged without forcing (losing
        it is harmless: recovery presumes abort).
        """
        with self._serve("decide"):
            upload = _PROBE_BYTES + _UID_BYTES
            self.stats.bytes_received += upload
            self._instr.count("backend.rpc.bytes_received", upload)
            if txid in self._decided:
                self._charge(upload, "decide")
                return
            entry = self._prepared.pop(txid, None)
            if self.wal is not None and entry is not None:
                self.wal.log_decision(txid, committed=False)
            self._release_pins(txid)
            self._decided[txid] = None
            self.stats.decisions += 1
            self._instr.count("backend.mp.2pc.aborts")
            self._charge(upload, "decide")

    def _release_pins(self, txid: int) -> None:
        for uid in [
            uid for uid, owner in self._pins.items() if owner == txid
        ]:
            del self._pins[uid]
            self._pin_writes.discard(uid)

    def in_doubt(self) -> List[int]:
        """Txids prepared but undecided (uncharged admin call)."""
        return sorted(self._prepared)

    def recover_from_wal(
        self, base_records: Optional[Dict[int, Dict[str, Any]]] = None
    ) -> List[int]:
        """Rebuild server state after a simulated crash (uncharged).

        Loads the pre-crash snapshot (what the benchmark preloaded),
        replays every *committed* transaction from the WAL in commit
        order, and re-parks transactions whose log ends at PREPARE as
        in-doubt — pins held, writes unapplied — for the coordinator's
        :meth:`~repro.sharding.router.ShardRouter.resolve_in_doubt`
        to decide.  Absent a commit decision, they stay parked and
        recovery presumes abort.

        Returns the re-parked in-doubt txids in prepare order.
        """
        if self.wal is None:
            raise InvalidOperationError(
                "recover_from_wal requires a write-ahead log"
            )
        self.load_records(base_records or {})
        committed, parked = self.wal.recover()
        for _txid, operations in committed:
            self._commit_seq += 1
            for op in operations:
                if op.kind == PUT and op.state is not None:
                    self._records[op.oid] = self._isolate(
                        op.state["record"]
                    )
                    self._versions[op.oid] = self._commit_seq
        recovered: List[int] = []
        for txid, operations in parked:
            writes = {
                op.oid: self._isolate(op.state["record"])
                for op in operations
                if op.kind == PUT and op.state is not None
            }
            self._prepared[txid] = {
                "writes": writes,
                "lists": {},
                "from_cache": None,
            }
            for uid in writes:
                self._pins[uid] = txid
                self._pin_writes.add(uid)
            recovered.append(txid)
        if recovered:
            self._instr.count("netsim.recovery.in_doubt", len(recovered))
        return recovered

    def apply_wal_operations(self, operations: List[Any]) -> None:
        """Apply one shipped transaction's records (uncharged admin).

        The replication layer tails the primary's WAL and replays each
        committed transaction's PUT records here.  Versions mirror the
        *origin* txid — not this server's own commit sequence — so an
        optimistic read set built from replica replies validates at the
        primary exactly as if the records had been fetched there: a
        record the replica holds stale carries its stale version and
        conflicts honestly.  The local commit sequence is pulled up to
        the applied txid so post-promotion commits keep ascending.
        """
        for op in operations:
            if op.kind == PUT and op.state is not None:
                self._records[op.oid] = self._isolate(op.state["record"])
                self._versions[op.oid] = op.txid
                if op.txid > self._commit_seq:
                    self._commit_seq = op.txid
                self._invalidate_subscribers(op.oid)

    def exists(self, uid: int) -> bool:
        """Key-existence probe (the server-side name-lookup index hit)."""
        with self._serve("exists"):
            self.stats.probes += 1
            self._charge(_PROBE_BYTES)
            return uid in self._records

    # ------------------------------------------------------------------
    # Server-evaluated queries
    # ------------------------------------------------------------------

    def range_query(self, attribute: str, low: int, high: int) -> List[int]:
        """Uids whose ``attribute`` lies in [low, high] (server-side).

        Charged one round trip plus uid-list transfer: the query runs
        at the server, only references come back — the design point
        R7 makes about letting the database do work remotely.
        """
        with self._serve("range_query"):
            self.stats.queries += 1
            result = [
                uid
                for uid, record in self._records.items()
                if low <= record[attribute] <= high
            ]
            size = _PROBE_BYTES + _UID_BYTES * len(result)
            self.stats.bytes_sent += size
            self._instr.count("backend.rpc.bytes_sent", size)
            self._charge(size)
            return result

    def scan_structure(self, structure_id: int) -> List[int]:
        """All uids of one structure, in uid order (server-side scan)."""
        with self._serve("scan_structure"):
            self.stats.scans += 1
            result = sorted(
                uid
                for uid, record in self._records.items()
                if record["struct"] == structure_id
            )
            size = _PROBE_BYTES + _UID_BYTES * len(result)
            self.stats.bytes_sent += size
            self._instr.count("backend.rpc.bytes_sent", size)
            self._charge(size)
            return result

    def referrers_of(self, uid: int) -> List[int]:
        """Server-side inverse-reference query (op 08's index)."""
        with self._serve("referrers_of"):
            self.stats.queries += 1
            result = [
                src
                for src, record in self._records.items()
                if any(dst == uid for dst, _f, _t in record["refTo"])
            ]
            self._charge(_PROBE_BYTES + _UID_BYTES * len(result))
            return result

    # ------------------------------------------------------------------
    # Named lists
    # ------------------------------------------------------------------

    def store_list(self, name: str, uids: List[int]) -> None:
        """Persist a named node list server-side."""
        with self._serve("store_list"):
            self.stats.stores += 1
            self._charge(_PROBE_BYTES + _UID_BYTES * len(uids))
            self._lists[name] = list(uids)

    def load_list(self, name: str) -> List[int]:
        """Load a named node list.

        Raises:
            NodeNotFoundError: for an unknown list name.
        """
        with self._serve("load_list"):
            self.stats.fetches += 1
            uids = self._lists.get(name)
            if uids is None:
                self._charge(_PROBE_BYTES)
                raise NodeNotFoundError(name)
            self._charge(_PROBE_BYTES + _UID_BYTES * len(uids))
            return list(uids)

    # ------------------------------------------------------------------
    # Introspection (not charged: administrative)
    # ------------------------------------------------------------------

    def count(self, structure_id: int) -> int:
        """Number of records in one structure (uncharged admin call)."""
        return sum(
            1 for r in self._records.values() if r["struct"] == structure_id
        )

    def export_records(self) -> Dict[int, Dict[str, Any]]:
        """A deep-enough copy of every record (uncharged admin call).

        The multi-user benchmark generates the structure once and
        preloads a fresh server per grid cell from this snapshot.
        """
        return {
            uid: self._isolate(record)
            for uid, record in self._records.items()
        }

    def load_records(self, records: Dict[int, Dict[str, Any]]) -> None:
        """Replace server state from a snapshot (uncharged admin call).

        Versions reset to zero and the commit sequence restarts, so
        every preloaded cell of a benchmark grid starts from the same
        deterministic state.
        """
        self._records = {
            uid: self._isolate(record) for uid, record in records.items()
        }
        self._lists = {}
        self._versions = {}
        self._commit_seq = 0
        self.last_reply_versions = {}
        self._prepared = {}
        self._pins = {}
        self._pin_writes = set()
        self._decided = {}

    def __contains__(self, uid: int) -> bool:
        return uid in self._records
