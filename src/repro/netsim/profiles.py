"""Named network profiles and the R7 objects-per-second arithmetic.

Requirement R7 quantifies interactive performance: "a typical
application will need access to something between 100 - 10,000 objects
per second, where each object is on average 100 bytes in size", and
concludes parts of the database may have to be cached at the
workstation.  This module makes that arithmetic executable: given a
latency profile, how many ~100-byte objects per second can a
workstation fault from the server, and does that meet the requirement —
or is the workstation cache mandatory?
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from repro.netsim.latency import LatencyModel

#: R7's stated need, objects per second.
R7_MINIMUM_OBJECTS_PER_SECOND = 100
R7_MAXIMUM_OBJECTS_PER_SECOND = 10_000

#: R7's average object size in bytes.
R7_OBJECT_BYTES = 100

#: The paper's era: 10 Mbit/s Ethernet, millisecond-class round trips.
LAN_1990 = LatencyModel(
    round_trip_seconds=0.002, bandwidth_bytes_per_second=1_250_000
)

#: A contemporary switched LAN (tens of microseconds round trip).
LAN_MODERN = LatencyModel(
    round_trip_seconds=0.00005, bandwidth_bytes_per_second=125_000_000
)

#: A wide-area link: the architecture the paper warns about.
WAN = LatencyModel(
    round_trip_seconds=0.050, bandwidth_bytes_per_second=12_500_000
)

#: All named profiles, for sweeps.
PROFILES: Dict[str, LatencyModel] = {
    "lan-1990": LAN_1990,
    "lan-modern": LAN_MODERN,
    "wan": WAN,
}


def objects_per_second(
    model: LatencyModel, object_bytes: int = R7_OBJECT_BYTES
) -> float:
    """Uncached object-fault throughput under a latency profile.

    One object per request (the navigational worst case the HyperModel
    operations produce).
    """
    cost = model.request_cost(object_bytes)
    return float("inf") if cost == 0 else 1.0 / cost


@dataclasses.dataclass(frozen=True)
class R7Assessment:
    """Whether a profile meets R7's interactive-performance band."""

    profile_name: str
    uncached_objects_per_second: float
    meets_minimum: bool
    meets_maximum: bool

    @property
    def cache_required(self) -> bool:
        """True when only workstation caching can reach R7's band."""
        return not self.meets_maximum


def assess_r7(name: str, model: LatencyModel) -> R7Assessment:
    """Evaluate one profile against the R7 100-10,000 objects/s band."""
    throughput = objects_per_second(model)
    return R7Assessment(
        profile_name=name,
        uncached_objects_per_second=throughput,
        meets_minimum=throughput >= R7_MINIMUM_OBJECTS_PER_SECOND,
        meets_maximum=throughput >= R7_MAXIMUM_OBJECTS_PER_SECOND,
    )


def r7_table() -> str:
    """The R7 assessment for every named profile, as a text table."""
    lines = [
        f"{'profile':<12} {'objects/s (uncached)':>22} "
        f"{'>=100/s':>8} {'>=10k/s':>8} {'cache?':>7}"
    ]
    for name, model in PROFILES.items():
        assessment = assess_r7(name, model)
        lines.append(
            f"{name:<12} {assessment.uncached_objects_per_second:>22,.0f} "
            f"{'yes' if assessment.meets_minimum else 'NO':>8} "
            f"{'yes' if assessment.meets_maximum else 'NO':>8} "
            f"{'needed' if assessment.cache_required else 'no':>7}"
        )
    return "\n".join(lines)
