"""The workstation-side object cache (the paper's check-out store).

Requirement R7 notes that interactive performance "could mean that
parts of the database have to be cached/checked-out to main memory in
the workstations".  :class:`WorkstationCache` is that store: an LRU
cache of node records keyed by node id, with hit/miss counters the
cold/warm benchmark reads.
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.obs import Instrumentation, resolve

#: Sentinel distinguishing "absent" from a cached None value.
_ABSENT = object()


@dataclasses.dataclass
class CacheStats:
    """Hit/miss/eviction counters of one workstation cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups served locally."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = self.misses = self.evictions = self.invalidations = 0


class WorkstationCache:
    """A bounded LRU cache of server objects.

    ``capacity`` is in objects.  The benchmark databases hold up to
    ~20 k nodes, so the default (4 096) forces realistic eviction on
    the larger levels while letting a level-3 closure working set stay
    resident — the behaviour the cold/warm split is designed to show.
    """

    def __init__(
        self,
        capacity: int = 4096,
        instrumentation: Optional[Instrumentation] = None,
        name: Optional[str] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "collections.OrderedDict[Any, Any]" = collections.OrderedDict()
        self.stats = CacheStats()
        self._instr = resolve(instrumentation)
        #: Gauge namespace: ``netsim.cache.<name>.*`` for named caches
        #: (multi-client runs pass the owning client's id so each
        #: workstation's occupancy stays attributable), plain
        #: ``netsim.cache.*`` for the anonymous single-client case.
        base = "netsim.cache" if name is None else f"netsim.cache.{name}"
        self._gauge_names = (f"{base}.occupancy", f"{base}.hit_ratio")
        self._instr.gauge(self._gauge_names[0], self._occupancy)
        self._instr.gauge(self._gauge_names[1], lambda: self.stats.hit_ratio)

    def _occupancy(self) -> float:
        """Resident objects as a fraction of capacity (0..1)."""
        return len(self._entries) / self.capacity

    def unregister_gauges(self) -> None:
        """Drop this cache's gauges (the owning client is closing)."""
        for gauge_name in self._gauge_names:
            self._instr.gauges.unregister(gauge_name)

    def get(self, key: Any) -> Optional[Any]:
        """Look up a cached object, refreshing its recency."""
        if key in self._entries:
            self.stats.hits += 1
            self._instr.count("netsim.cache.hit")
            self._entries.move_to_end(key)
            return self._entries[key]
        self.stats.misses += 1
        self._instr.count("netsim.cache.miss")
        return None

    def get_many(
        self, keys: Sequence[Any]
    ) -> Tuple[Dict[Any, Any], List[Any]]:
        """Look up a batch of keys: ``(found, missing)``.

        ``found`` maps each resident key to its object (recency
        refreshed); ``missing`` lists the keys to fetch, deduplicated
        but in first-seen order — a *partial* hit ships only the
        missing refs over the network.  Counters are exact but bumped
        in aggregate: one hit per resident distinct key, one miss per
        missing distinct key (duplicates within a batch are one lookup,
        as they would be against a request-coalescing cache).  The
        whole frontier costs a single dict lookup per key plus one
        batched LRU promotion pass at the end — not a
        ``move_to_end``/counter call per reference.
        """
        entries = self._entries
        found: Dict[Any, Any] = {}
        missing: List[Any] = []
        seen_missing = set()
        for key in keys:
            if key in found or key in seen_missing:
                continue
            value = entries.get(key, _ABSENT)
            if value is not _ABSENT:
                found[key] = value
            else:
                seen_missing.add(key)
                missing.append(key)
        # One promotion pass for the frontier: every hit becomes
        # most-recently-used, in the frontier's own order.
        for key in found:
            entries.move_to_end(key)
        if found:
            self.stats.hits += len(found)
            self._instr.count("netsim.cache.hit", len(found))
        if missing:
            self.stats.misses += len(missing)
            self._instr.count("netsim.cache.miss", len(missing))
        return found, missing

    def put(self, key: Any, value: Any) -> None:
        """Insert or refresh an object, evicting LRU entries if full."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
            self._instr.count("netsim.cache.eviction")

    def put_many(self, items: Sequence[Tuple[Any, Any]]) -> int:
        """Bulk insert/refresh, then **one** eviction pass; returns it.

        Entries are admitted (or recency-refreshed) in iteration order —
        for a server reply this is the reply's own order, so the most
        recently *listed* record is also the most recently *used* one.
        Unlike a loop of :meth:`put` calls, eviction runs once at the
        end: a bulk admission larger than the whole cache evicts the
        admission's own oldest prefix in a single pass instead of
        churning per key.  The number of evicted entries is returned
        (and counted under ``netsim.cache.eviction``).
        """
        for key, value in items:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
        evicted = 0
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            evicted += 1
        if evicted:
            self.stats.evictions += evicted
            self._instr.count("netsim.cache.eviction", evicted)
        return evicted

    def invalidate(self, key: Any) -> None:
        """Drop one entry (server-side update of a checked-out object)."""
        if self._entries.pop(key, None) is not None:
            self.stats.invalidations += 1
            self._instr.count("netsim.cache.invalidation")

    def clear(self) -> None:
        """Empty the cache (the section 5.3(e) cold reset)."""
        self._entries.clear()

    def __contains__(self, key: Any) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> Iterator[Any]:
        """Iterate cached keys in LRU order (oldest first)."""
        return iter(list(self._entries))
