"""Seeded fault injection for the simulated network channel.

The storage engine's :mod:`repro.engine.vfs` makes disk failure
testable; this module is the same philosophy applied to the simulated
workstation/server wire.  A :class:`FaultModel` makes a deterministic
per-request decision — deliver, drop, or time out — driven by a seeded
PRNG, so a given ``(seed, request sequence)`` replays identically.

Faults still cost simulated time: a *drop* wastes the request's round
trip (the packet travelled and died), a *timeout* charges the client's
full timeout window.  The client/server backend wraps every server
interaction in a bounded retry-with-backoff loop (counted under
``backend.rpc.retries``), so the benchmark can quantify what an 0.1 %
loss rate does to a closure traversal instead of guessing.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Optional

from repro.errors import RpcDroppedError, RpcTimeoutError

__all__ = ["FaultModel", "NO_FAULTS"]


@dataclasses.dataclass
class FaultModel:
    """A deterministic per-request fault decision source.

    Attributes:
        seed: drives the PRNG; same seed, same fault sequence.
        drop_rate: probability a request is dropped on the wire.
        timeout_rate: probability a request times out instead.
        timeout_seconds: simulated time a timed-out request costs the
            client before it notices.

    The two rates are evaluated independently per request (drop first),
    so ``drop_rate=0.01, timeout_rate=0.01`` yields roughly 2 % faulty
    requests.  A model with both rates zero never faults and costs one
    PRNG draw per request.
    """

    seed: int = 0
    drop_rate: float = 0.0
    timeout_rate: float = 0.0
    timeout_seconds: float = 0.1

    def __post_init__(self) -> None:
        for name in ("drop_rate", "timeout_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.timeout_seconds < 0:
            raise ValueError("timeout_seconds cannot be negative")
        self._rng = random.Random(self.seed)
        #: Requests faulted so far, by kind (introspection for reports).
        self.drops = 0
        self.timeouts = 0

    # ------------------------------------------------------------------

    def next_fault(self) -> Optional[str]:
        """The fault decision for the next request.

        Returns ``"drop"``, ``"timeout"`` or ``None`` (deliver).  One
        PRNG draw per possible fault kind keeps the sequence stable
        when one rate is zero.
        """
        if self.drop_rate and self._rng.random() < self.drop_rate:
            self.drops += 1
            return "drop"
        if self.timeout_rate and self._rng.random() < self.timeout_rate:
            self.timeouts += 1
            return "timeout"
        return None

    def raise_fault(self, kind: str, request: str) -> None:
        """Raise the exception matching a :meth:`next_fault` decision."""
        if kind == "drop":
            raise RpcDroppedError(f"simulated drop of {request} request")
        if kind == "timeout":
            raise RpcTimeoutError(
                f"simulated timeout ({self.timeout_seconds * 1000:.0f} ms) "
                f"of {request} request"
            )
        raise ValueError(f"unknown fault kind {kind!r}")

    def reset(self) -> None:
        """Re-seed the PRNG and zero the fault counts (replay support)."""
        self._rng = random.Random(self.seed)
        self.drops = self.timeouts = 0


#: A model that never faults (the default wire behaviour).
NO_FAULTS = FaultModel()
