"""Workstation/server architecture simulation (requirements R6/R7).

The paper's protocol is designed around a workstation fetching objects
from a server: the *cold* run pays network fetches, the *warm* run hits
the workstation's object cache.  This package reproduces that
architecture deterministically:

* :class:`~repro.netsim.latency.SimulatedClock` — a virtual time
  source the harness adds to wall-clock measurements;
* :class:`~repro.netsim.latency.LatencyModel` — per-round-trip latency
  plus bandwidth-proportional transfer cost;
* :class:`~repro.netsim.server.ObjectServer` — the server-side node
  store, charging the clock for every request (and validating
  optimistic commits against per-record versions);
* :class:`~repro.netsim.cache.WorkstationCache` — the client-side LRU
  object cache with check-out/check-in accounting;
* :class:`~repro.netsim.faults.FaultModel` — seeded per-request
  drop/timeout fault injection on the simulated wire, retried with
  bounded backoff by the client/server backend;
* :class:`~repro.netsim.config.NetworkConfig` /
  :class:`~repro.netsim.config.SimConfig` — the typed configuration
  pair that replaced the backend's keyword sprawl;
* :mod:`repro.netsim.sim` — the discrete-event scheduler, the
  contended transport and the Zipf sampler behind the multi-client
  simulation (see ``docs/multiuser.md``).
"""

from repro.netsim.latency import LatencyModel, SimulatedClock
from repro.netsim.cache import WorkstationCache
from repro.netsim.config import NetworkConfig, SimConfig
from repro.netsim.faults import FaultModel
from repro.netsim.server import ObjectServer
from repro.netsim.sim import (
    ContendedTransport,
    DirectTransport,
    DiscreteEventScheduler,
    Workstation,
    ZipfSampler,
)

__all__ = [
    "LatencyModel",
    "SimulatedClock",
    "WorkstationCache",
    "FaultModel",
    "ObjectServer",
    "NetworkConfig",
    "SimConfig",
    "ContendedTransport",
    "DirectTransport",
    "DiscreteEventScheduler",
    "Workstation",
    "ZipfSampler",
]
