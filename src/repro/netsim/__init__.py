"""Workstation/server architecture simulation (requirements R6/R7).

The paper's protocol is designed around a workstation fetching objects
from a server: the *cold* run pays network fetches, the *warm* run hits
the workstation's object cache.  This package reproduces that
architecture deterministically:

* :class:`~repro.netsim.latency.SimulatedClock` — a virtual time
  source the harness adds to wall-clock measurements;
* :class:`~repro.netsim.latency.LatencyModel` — per-round-trip latency
  plus bandwidth-proportional transfer cost;
* :class:`~repro.netsim.server.ObjectServer` — the server-side node
  store, charging the clock for every request;
* :class:`~repro.netsim.cache.WorkstationCache` — the client-side LRU
  object cache with check-out/check-in accounting;
* :class:`~repro.netsim.faults.FaultModel` — seeded per-request
  drop/timeout fault injection on the simulated wire, retried with
  bounded backoff by the client/server backend.
"""

from repro.netsim.latency import LatencyModel, SimulatedClock
from repro.netsim.cache import WorkstationCache
from repro.netsim.faults import FaultModel
from repro.netsim.server import ObjectServer

__all__ = [
    "LatencyModel",
    "SimulatedClock",
    "WorkstationCache",
    "FaultModel",
    "ObjectServer",
]
