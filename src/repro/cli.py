"""The ``hypermodel`` command-line interface.

Subcommands:

* ``info``       — print the sizing table for levels 4-6 (section 5.2);
* ``generate``   — build a test database into a backend file;
* ``verify``     — structurally verify a freshly generated database;
* ``run``        — run the benchmark grid and print the report tables;
* ``bench``      — like ``run``, plus latency-percentile tables,
  ``--counters`` for per-operation instrumentation counter tables and
  ``--trace`` for a Chrome/Perfetto trace of the run's tail (see
  ``docs/observability.md``);
* ``bench-closure`` — measure the batched closure traversals (ops
  10-12) across backends and write ``BENCH_closure.json`` (see
  ``docs/performance.md``);
* ``bench-multiuser`` — run the discrete-event multi-client grid
  (clients × conflict rate, optimistic concurrency, group-commit WAL)
  and write ``BENCH_multiuser.json`` (see ``docs/multiuser.md``);
* ``bench-sharded`` — run the shard-count × placement-policy grid
  (scatter-gather closures, two-phase cross-shard commits) and write
  ``BENCH_sharded.json`` (see ``docs/sharding.md``); ``--deep-level``
  adds the whole-structure scale cell;
* ``bench-replica`` — run the replica-count × write-rate × staleness
  grid (WAL-shipping replicas, session-token read routing) and write
  ``BENCH_replica.json`` (see ``docs/replication.md``);
* ``bench-diff`` — compare two ``BENCH_*.json`` documents with
  percentile-aware thresholds; exits non-zero on regression (the CI
  bench gate);
* ``trace``      — run one operation cold under full instrumentation
  and export a Chrome trace-event JSON for Perfetto;
* ``dash``       — render ``BENCH_*.json`` documents, a flight-recorder
  timeline JSONL and an optional Chrome trace into one self-contained
  HTML dashboard (see ``docs/observability.md``);
* ``query``      — evaluate an ad-hoc query against a generated database;
* ``rubenstein`` — run the /RUBE87/ baseline benchmark;
* ``maintain``   — R10 maintenance on an oodb file: vacuum / backup / gc;
* ``r7``         — print the R7 objects-per-second assessment table.

Every subcommand is driven by the same library code the tests and the
pytest benchmarks use; the CLI only parses arguments and prints.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.config import HyperModelConfig


def _add_common_db_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        default="memory",
        help="backend registry name (default: memory)",
    )
    parser.add_argument(
        "--path", default=None, help="database file for file-backed backends"
    )
    parser.add_argument(
        "--level", type=int, default=4, help="leaf level (paper: 4, 5 or 6)"
    )
    parser.add_argument(
        "--seed", type=int, default=19880301, help="generation seed"
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hypermodel",
        description="The HyperModel benchmark (EDBT 1990), reproduced in Python.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="print the section 5.2 sizing table")

    generate = sub.add_parser("generate", help="build a test database")
    _add_common_db_args(generate)

    verify = sub.add_parser("verify", help="generate and verify a database")
    _add_common_db_args(verify)

    def _add_grid_args(
        grid: argparse.ArgumentParser, default_backends: str
    ) -> None:
        grid.add_argument(
            "--backends",
            default=default_backends,
            help="comma-separated backend names",
        )
        grid.add_argument(
            "--levels", default="4", help="comma-separated leaf levels"
        )
        grid.add_argument(
            "--ops",
            default=None,
            help="comma-separated operation ids (default: all)",
        )
        grid.add_argument(
            "--repetitions",
            type=int,
            default=50,
            help="runs per cold/warm pass",
        )
        grid.add_argument("--seed", type=int, default=19880301)
        grid.add_argument(
            "--save", default=None, help="write results JSON to this path"
        )

    run = sub.add_parser("run", help="run the benchmark grid")
    _add_grid_args(run, "memory,sqlite,oodb,clientserver")

    bench = sub.add_parser(
        "bench", help="run the benchmark grid with instrumentation"
    )
    _add_grid_args(bench, "memory,clientserver")
    bench.add_argument(
        "--counters",
        action="store_true",
        help="instrument the backends and print per-operation counter tables",
    )
    bench.add_argument(
        "--trace",
        default=None,
        metavar="OUT.json",
        help="export a Chrome trace-event JSON of the run's tail "
        "(load in Perfetto / chrome://tracing)",
    )

    diff = sub.add_parser(
        "bench-diff",
        help="compare two BENCH_*.json documents; exit 1 on regression",
    )
    diff.add_argument("baseline", help="baseline BENCH_*.json")
    diff.add_argument("candidate", help="candidate BENCH_*.json")
    diff.add_argument(
        "--all",
        action="store_true",
        help="print every compared cell, not just regressions",
    )
    diff.add_argument(
        "--refresh-improvement",
        action="store_true",
        help=(
            "ratchet mode: rewrite the baseline file with every cell"
            " the candidate beat by more than the p50 threshold"
            " (tightening its ms/node budget); exits 0 whether or not"
            " anything moved"
        ),
    )

    trace = sub.add_parser(
        "trace",
        help="run one operation cold under instrumentation, export a "
        "Chrome trace",
    )
    _add_common_db_args(trace)
    trace.add_argument(
        "--op", default="10", help="operation id to trace (default: 10)"
    )
    trace.add_argument(
        "--out",
        default="trace.json",
        help="Chrome trace-event JSON path (default: trace.json)",
    )

    closure = sub.add_parser(
        "bench-closure",
        help="measure batched closure traversals, write BENCH_closure.json",
    )
    closure.add_argument(
        "--backends",
        default=",".join(
            ("memory", "sqlite", "oodb", "clientserver")
        ),
        help="comma-separated backend names",
    )
    closure.add_argument(
        "--level", type=int, default=4, help="leaf level (paper: 4, 5 or 6)"
    )
    closure.add_argument(
        "--repetitions", type=int, default=5, help="runs per operation"
    )
    closure.add_argument("--seed", type=int, default=19880301)
    closure.add_argument(
        "--out",
        default="BENCH_closure.json",
        help="output JSON path (default: BENCH_closure.json)",
    )
    closure.add_argument(
        "--compare-pushdown",
        action="store_true",
        help=(
            "also run the clientserver-bfs ablation so the document"
            " compares closure push-down against frontier BFS"
        ),
    )
    closure.add_argument(
        "--levels",
        default=None,
        metavar="L1,L2",
        help=(
            "extra tree levels to run alongside --level; their cells"
            " land under <backend>-L<level> keys (e.g. --levels 6 adds"
            " the 19531-node big-database column)"
        ),
    )
    closure.add_argument(
        "--profile",
        action="store_true",
        help=(
            "cProfile each operation's cold pass and write the top-25"
            " cumulative reports to <out>.profile.txt"
        ),
    )
    closure.add_argument(
        "--timeline",
        default=None,
        metavar="JSONL",
        help="write a flight-recorder timeline (wall clock, one sample"
        " per repetition) to this JSONL path",
    )

    multiuser = sub.add_parser(
        "bench-multiuser",
        help="run the multi-client optimistic grid, write"
        " BENCH_multiuser.json",
    )
    multiuser.add_argument(
        "--clients",
        default="1,2,4,8",
        help="comma-separated client counts (default: 1,2,4,8)",
    )
    multiuser.add_argument(
        "--conflict",
        default="0.0,0.2",
        help="comma-separated conflict rates in [0,1] (default: 0.0,0.2)",
    )
    multiuser.add_argument(
        "--level", type=int, default=3, help="leaf level (default: 3)"
    )
    multiuser.add_argument(
        "--transactions",
        type=int,
        default=8,
        help="transactions per client (default: 8)",
    )
    multiuser.add_argument(
        "--reads-per-txn",
        type=int,
        default=4,
        help="Zipf-skewed reads per transaction (default: 4)",
    )
    multiuser.add_argument(
        "--hot-set",
        type=int,
        default=8,
        help="size of the shared hot write set (default: 8)",
    )
    multiuser.add_argument("--seed", type=int, default=1989)
    multiuser.add_argument(
        "--group-commit-size",
        type=int,
        default=8,
        help="WAL commits per fsync in group-commit mode (default: 8)",
    )
    multiuser.add_argument(
        "--out",
        default="BENCH_multiuser.json",
        help="output JSON path (default: BENCH_multiuser.json)",
    )
    multiuser.add_argument(
        "--trace",
        default=None,
        metavar="TRACE_JSON",
        help="export a Chrome trace-event JSON of the run's tail, one"
        " lane per client (see docs/observability.md)",
    )
    multiuser.add_argument(
        "--timeline",
        default=None,
        metavar="JSONL",
        help="write a flight-recorder timeline (virtual clock,"
        " deterministic, byte-identical across runs) to this JSONL path",
    )
    multiuser.add_argument(
        "--timeline-cadence",
        type=float,
        default=0.02,
        metavar="SECONDS",
        help="virtual-time sampling cadence for --timeline"
        " (default: 0.02)",
    )

    sharded = sub.add_parser(
        "bench-sharded",
        help="run the shard-count × placement grid, write"
        " BENCH_sharded.json",
    )
    sharded.add_argument(
        "--shards",
        default="1,2,4",
        help="comma-separated shard counts (default: 1,2,4)",
    )
    sharded.add_argument(
        "--placements",
        default="hash,affine",
        help="comma-separated placement policies (default: hash,affine)",
    )
    sharded.add_argument(
        "--level", type=int, default=4, help="leaf level (default: 4)"
    )
    sharded.add_argument(
        "--closures",
        type=int,
        default=12,
        help="cold closure traversals per cell (default: 12)",
    )
    sharded.add_argument(
        "--updates",
        type=int,
        default=24,
        help="optimistic update transactions per cell (default: 24)",
    )
    sharded.add_argument("--seed", type=int, default=1989)
    sharded.add_argument(
        "--out",
        default="BENCH_sharded.json",
        help="output JSON path (default: BENCH_sharded.json)",
    )
    sharded.add_argument(
        "--timeline",
        default=None,
        metavar="JSONL",
        help="write a flight-recorder timeline (virtual clock, one"
        " sample per closure/update) to this JSONL path",
    )
    sharded.add_argument(
        "--deep-level",
        type=int,
        default=None,
        metavar="LEVEL",
        help="add one whole-structure closure cell per placement at"
        " this level (7 = 97 656 nodes) over the largest shard count;"
        " informational until the baseline carries a budget",
    )
    sharded.add_argument(
        "--deep-closures",
        type=int,
        default=2,
        help="closures in the deep scale cell (default: 2)",
    )

    replica = sub.add_parser(
        "bench-replica",
        help="run the replica-count × write-rate × staleness grid,"
        " write BENCH_replica.json",
    )
    replica.add_argument(
        "--replicas",
        default="1,2,4",
        help="comma-separated replica counts (default: 1,2,4)",
    )
    replica.add_argument(
        "--write-rates",
        default="0,40",
        help="comma-separated writer rates in writes/s of virtual"
        " time; 0 = read-only (default: 0,40)",
    )
    replica.add_argument(
        "--lags",
        default="0,0.02",
        help="comma-separated replica apply lags in seconds"
        " (default: 0,0.02)",
    )
    replica.add_argument(
        "--level", type=int, default=4, help="leaf level (default: 4)"
    )
    replica.add_argument(
        "--reads-per-reader",
        type=int,
        default=8,
        help="closure reads per reader station (default: 8)",
    )
    replica.add_argument(
        "--routing-closures",
        type=int,
        default=6,
        help="closures in the replica-warm vs primary-warm cell"
        " (default: 6)",
    )
    replica.add_argument("--seed", type=int, default=1989)
    replica.add_argument(
        "--out",
        default="BENCH_replica.json",
        help="output JSON path (default: BENCH_replica.json)",
    )
    replica.add_argument(
        "--timeline",
        default=None,
        metavar="JSONL",
        help="write a flight-recorder timeline (virtual clock,"
        " deterministic) to this JSONL path",
    )

    dash = sub.add_parser(
        "dash",
        help="render BENCH documents + timeline JSONL + Chrome trace"
        " into one self-contained HTML dashboard",
    )
    dash.add_argument(
        "--bench",
        action="append",
        default=[],
        metavar="BENCH_JSON",
        help="benchmark document to include (repeatable)",
    )
    dash.add_argument(
        "--timeline",
        default=None,
        metavar="JSONL",
        help="flight-recorder timeline to chart",
    )
    dash.add_argument(
        "--trace",
        default=None,
        metavar="TRACE_JSON",
        help="Chrome trace-event JSON to summarise",
    )
    dash.add_argument(
        "--title",
        default="HyperModel game-day dashboard",
        help="dashboard page title",
    )
    dash.add_argument(
        "--out",
        default="dashboard.html",
        help="output HTML path (default: dashboard.html)",
    )

    crash = sub.add_parser(
        "crashtest",
        help="crash the engine at every I/O op, verify recovery, "
        "write BENCH_crash.json",
    )
    crash.add_argument(
        "--transactions",
        type=int,
        default=16,
        help="committed transactions in the scripted workload",
    )
    crash.add_argument(
        "--ops-per-txn",
        type=int,
        default=6,
        help="object operations per transaction",
    )
    crash.add_argument(
        "--payload-bytes",
        type=int,
        default=512,
        help="object body size (bigger = more I/O ops per commit)",
    )
    crash.add_argument("--seed", type=int, default=7)
    crash.add_argument(
        "--stride",
        type=int,
        default=1,
        help="test every Nth crash point (1 = exhaustive)",
    )
    crash.add_argument(
        "--out",
        default="BENCH_crash.json",
        help="output JSON path (default: BENCH_crash.json)",
    )
    crash.add_argument(
        "--two-phase",
        action="store_true",
        help="also run the two-phase-commit crash matrix"
        " (coordinator/participant crashes, torn prepares) and fold"
        " its violations into the exit code",
    )
    crash.add_argument(
        "--two-phase-shards",
        type=int,
        default=3,
        help="shard servers in the 2PC matrix (default: 3)",
    )
    crash.add_argument(
        "--two-phase-placement",
        default="hash",
        choices=["hash", "affine"],
        help="placement policy in the 2PC matrix (default: hash)",
    )
    crash.add_argument(
        "--two-phase-transactions",
        type=int,
        default=4,
        help="cross-shard transactions crashed per scenario"
        " (default: 4)",
    )
    crash.add_argument(
        "--two-phase-out",
        default="BENCH_crash2pc.json",
        help="2PC matrix output path (default: BENCH_crash2pc.json)",
    )
    crash.add_argument(
        "--failover",
        action="store_true",
        help="also run the promote-on-primary-crash failover drill"
        " (crash the replication primary at every commit-path I/O op,"
        " elect a replica, verify durability/atomicity/re-route) and"
        " fold its violations into the exit code",
    )
    crash.add_argument(
        "--failover-replicas",
        type=int,
        default=2,
        help="replicas behind the crashed primary (default: 2)",
    )
    crash.add_argument(
        "--failover-transactions",
        type=int,
        default=5,
        help="acked transactions scripted before the crash window"
        " closes (default: 5)",
    )
    crash.add_argument(
        "--failover-out",
        default="BENCH_failover.json",
        help="failover drill output path (default: BENCH_failover.json)",
    )
    crash.add_argument(
        "--failover-trace",
        default=None,
        metavar="TRACE_JSON",
        help="export a Chrome trace of one instrumented failover cell"
        " (the replication.failover span is the failover gap)",
    )

    query = sub.add_parser("query", help="run an ad-hoc query (R12)")
    _add_common_db_args(query)
    query.add_argument("text", help='e.g. "find nodes where hundred between 1 and 10"')

    rube = sub.add_parser("rubenstein", help="run the RUBE87 baseline")
    rube.add_argument("--backend", default="sqlite", choices=["memory", "sqlite"])
    rube.add_argument("--persons", type=int, default=1000)
    rube.add_argument("--documents", type=int, default=1000)
    rube.add_argument("--repetitions", type=int, default=50)

    maintain = sub.add_parser(
        "maintain", help="vacuum / backup / gc an oodb database file"
    )
    maintain.add_argument("action", choices=["vacuum", "backup", "gc"])
    maintain.add_argument("path", help="the .hmdb database file")
    maintain.add_argument(
        "--target", default=None, help="backup destination (backup only)"
    )
    maintain.add_argument(
        "--roots",
        default=None,
        help="comma-separated root uniqueIds (gc only; default: node 1)",
    )

    sub.add_parser("r7", help="print the R7 latency-profile assessment")

    return parser


def _cmd_info() -> int:
    print("HyperModel test-database sizes (fan-out 5; section 5.2)")
    print(f"{'level':>6} {'nodes':>8} {'text':>7} {'form':>6} {'~bytes':>12}")
    for level in (4, 5, 6):
        cfg = HyperModelConfig(levels=level)
        print(
            f"{level:>6} {cfg.total_nodes:>8} {cfg.text_node_count:>7} "
            f"{cfg.form_node_count:>6} {cfg.estimated_size_bytes():>12,}"
        )
    return 0


def _make_db(args: argparse.Namespace):
    from repro.backends import create_backend

    return create_backend(args.backend, args.path)


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.core.generator import DatabaseGenerator

    db = _make_db(args)
    db.open()
    config = HyperModelConfig(levels=args.level, seed=args.seed)
    gen = DatabaseGenerator(config).generate(db)
    db.commit()
    print(
        f"generated {gen.total_nodes} nodes "
        f"({len(gen.text_uids)} text, {len(gen.form_uids)} form) "
        f"into {db.backend_name}"
    )
    for phase, ms in {
        **{f"node-{k}": v for k, v in gen.stats.per_node_ms().items()},
        **{f"rel-{k}": v for k, v in gen.stats.per_relationship_ms().items()},
    }.items():
        print(f"  {phase:<14} {ms:8.4f} ms/item")
    db.close()
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.core.generator import DatabaseGenerator
    from repro.core.verification import verify_database

    db = _make_db(args)
    db.open()
    config = HyperModelConfig(levels=args.level, seed=args.seed)
    gen = DatabaseGenerator(config).generate(db)
    db.commit()
    report = verify_database(db, gen)
    db.close()
    if report.ok:
        print(f"OK: {report.checks_run} checks passed")
        return 0
    for problem in report.problems:
        print(f"FAIL: {problem}")
    return 1


def _cmd_run(args: argparse.Namespace, bench: bool = False) -> int:
    from repro.harness import BenchmarkRunner, RunnerConfig
    from repro.harness.report import full_report
    from repro.obs import Instrumentation

    counters = bench and args.counters
    trace_out = getattr(args, "trace", None) if bench else None
    instrumentation = None
    if counters or trace_out:
        # A big span ring when tracing: keep the whole tail of the run.
        instrumentation = Instrumentation(
            span_capacity=65536 if trace_out else 1024
        )
    config = RunnerConfig(
        backends=args.backends.split(","),
        levels=[int(level) for level in args.levels.split(",")],
        op_ids=args.ops.split(",") if args.ops else None,
        repetitions=args.repetitions,
        seed=args.seed,
        instrumentation=instrumentation,
    )
    with BenchmarkRunner(config) as runner:
        results, _creation = runner.run()
        print(
            full_report(
                results,
                title="HyperModel benchmark results",
                include_counters=counters,
                include_percentiles=bench,
            )
        )
        if args.save:
            results.save(args.save)
            print(f"results written to {args.save}")
        if trace_out:
            from repro.obs.traceexport import write_chrome_trace

            document = write_chrome_trace(
                runner.instrumentation, trace_out
            )
            print(
                f"trace written to {trace_out} "
                f"({len(document['traceEvents'])} events; load in Perfetto)"
            )
    return 0


def _cmd_bench_diff(args: argparse.Namespace) -> int:
    from repro.harness.benchdiff import (
        diff_files,
        format_diff,
        load_document,
        refresh_improvements,
        write_document,
    )

    rows, exit_code = diff_files(args.baseline, args.candidate)
    print(format_diff(rows, only_regressions=not args.all))
    if args.refresh_improvement:
        updated, replaced = refresh_improvements(
            load_document(args.baseline), load_document(args.candidate)
        )
        if replaced:
            write_document(args.baseline, updated)
            print(
                f"ratchet: refreshed {len(replaced)} cell"
                f"{'' if len(replaced) == 1 else 's'} in {args.baseline}: "
                + ", ".join(replaced)
            )
        else:
            print("ratchet: no cell beat the baseline decisively; "
                  "baseline unchanged")
        return 0
    return exit_code


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.core.generator import DatabaseGenerator
    from repro.core.operations import CATALOG, Operations
    from repro.backends import create_backend
    from repro.obs import Instrumentation
    from repro.obs.traceexport import write_chrome_trace

    instr = Instrumentation(span_capacity=65536)
    db = create_backend(args.backend, args.path, instrumentation=instr)
    db.open()
    config = HyperModelConfig(levels=args.level, seed=args.seed)
    gen = DatabaseGenerator(config).generate(db)
    db.commit()
    # Cold run: close/reopen so the trace shows faulting and round trips.
    db.close()
    db.open()
    instr.reset()
    spec = CATALOG.get(args.op)
    ops = Operations(db, config)
    root = db.lookup(gen.root_uid)
    with instr.span(f"trace.op{spec.op_id}"):
        spec.run(ops, (root,))
    if spec.mutates:
        db.commit()
    db.close()
    # Sharded backends annotate their shard lanes with the placement
    # policy so the exporter can stamp lane metadata.
    lane_metadata = None
    server = getattr(db, "server", None)
    if server is not None and hasattr(server, "trace_lane_metadata"):
        lane_metadata = server.trace_lane_metadata()
    document = write_chrome_trace(instr, args.out, lane_metadata=lane_metadata)
    print(
        f"op {spec.op_id} ({spec.name}) on {args.backend}: "
        f"{document['otherData']['span_count']} spans, "
        f"{len(document['traceEvents'])} trace events"
    )
    print(f"trace written to {args.out} (load in Perfetto / chrome://tracing)")
    return 0


def _cmd_bench_closure(args: argparse.Namespace) -> int:
    from repro.harness.batchbench import format_summary, write_closure_bench

    extra_levels = (
        [int(lvl) for lvl in args.levels.split(",")] if args.levels else ()
    )
    document = write_closure_bench(
        args.out,
        backends=args.backends.split(","),
        level=args.level,
        repetitions=args.repetitions,
        seed=args.seed,
        compare_pushdown=args.compare_pushdown,
        extra_levels=extra_levels,
        profile=args.profile,
        timeline=args.timeline,
    )
    print(format_summary(document))
    print(f"results written to {args.out}")
    if document.get("profile_report"):
        print(f"cold-pass profiles written to {args.out}.profile.txt")
    if args.timeline:
        print(f"timeline written to {args.timeline} (wall clock)")
    return 0


def _cmd_bench_multiuser(args: argparse.Namespace) -> int:
    from repro.harness.multiuserbench import (
        format_summary,
        write_multiuser_bench,
    )

    instr = None
    if args.trace:
        from repro.obs import Instrumentation

        instr = Instrumentation(span_capacity=65536)
    document = write_multiuser_bench(
        args.out,
        clients=[int(n) for n in args.clients.split(",")],
        conflict_rates=[float(r) for r in args.conflict.split(",")],
        level=args.level,
        transactions_per_client=args.transactions,
        reads_per_txn=args.reads_per_txn,
        hot_set_size=args.hot_set,
        seed=args.seed,
        group_commit_size=args.group_commit_size,
        instrumentation=instr,
        timeline=args.timeline,
        timeline_cadence_seconds=args.timeline_cadence,
    )
    print(format_summary(document))
    print(f"results written to {args.out}")
    if args.timeline:
        print(
            f"timeline written to {args.timeline}"
            " (virtual clock, deterministic)"
        )
    if instr is not None:
        from repro.obs.traceexport import write_chrome_trace

        trace_doc = write_chrome_trace(instr, args.trace)
        print(
            f"trace written to {args.trace} "
            f"({trace_doc['otherData']['span_count']} spans,"
            " one lane per client)"
        )
    return 0


def _cmd_bench_sharded(args: argparse.Namespace) -> int:
    from repro.harness.shardbench import format_summary, write_sharded_bench

    document = write_sharded_bench(
        args.out,
        shard_counts=[int(n) for n in args.shards.split(",")],
        placements=[p.strip() for p in args.placements.split(",")],
        level=args.level,
        closures=args.closures,
        updates=args.updates,
        seed=args.seed,
        timeline=args.timeline,
        deep_level=args.deep_level,
        deep_closures=args.deep_closures,
    )
    print(format_summary(document))
    print(f"results written to {args.out}")
    if args.timeline:
        print(
            f"timeline written to {args.timeline}"
            " (virtual clock, deterministic)"
        )
    return 0


def _cmd_bench_replica(args: argparse.Namespace) -> int:
    from repro.harness.replicabench import (
        format_summary,
        write_replica_bench,
    )

    document = write_replica_bench(
        args.out,
        replica_counts=[int(n) for n in args.replicas.split(",")],
        write_rates=[float(r) for r in args.write_rates.split(",")],
        lags=[float(s) for s in args.lags.split(",")],
        level=args.level,
        reads_per_reader=args.reads_per_reader,
        routing_closures=args.routing_closures,
        seed=args.seed,
        timeline=args.timeline,
    )
    print(format_summary(document))
    print(f"results written to {args.out}")
    if args.timeline:
        print(
            f"timeline written to {args.timeline}"
            " (virtual clock, deterministic)"
        )
    return 0


def _cmd_dash(args: argparse.Namespace) -> int:
    from repro.obs.dashboard import write_dashboard

    if not args.bench and not args.timeline and not args.trace:
        print("dash: nothing to render (pass --bench/--timeline/--trace)")
        return 2
    write_dashboard(
        args.out,
        bench_paths=args.bench,
        timeline_path=args.timeline,
        trace_path=args.trace,
        title=args.title,
    )
    print(f"dashboard written to {args.out} (self-contained HTML)")
    return 0


def _cmd_crashtest(args: argparse.Namespace) -> int:
    from repro.harness.crashtest import (
        CrashWorkload,
        format_summary,
        write_crash_bench,
    )

    workload = CrashWorkload(
        transactions=args.transactions,
        ops_per_txn=args.ops_per_txn,
        payload_bytes=args.payload_bytes,
        seed=args.seed,
    )
    document = write_crash_bench(
        args.out, workload=workload, stride=args.stride
    )
    print(format_summary(document))
    print(f"results written to {args.out}")
    violations = document["violation_count"]
    if args.two_phase:
        from repro.harness import shardcrash

        two_phase = shardcrash.write_two_phase_crash_bench(
            args.two_phase_out,
            workload=shardcrash.TwoPhaseWorkload(
                shards=args.two_phase_shards,
                placement=args.two_phase_placement,
                transactions=args.two_phase_transactions,
                seed=args.seed,
            ),
        )
        print(shardcrash.format_summary(two_phase))
        print(f"results written to {args.two_phase_out}")
        violations += two_phase["violation_count"]
    if args.failover:
        from repro.harness import replicacrash

        failover = replicacrash.write_failover_bench(
            args.failover_out,
            workload=replicacrash.FailoverWorkload(
                replicas=args.failover_replicas,
                transactions=args.failover_transactions,
                seed=args.seed,
            ),
            trace_path=args.failover_trace,
        )
        print(replicacrash.format_summary(failover))
        print(f"results written to {args.failover_out}")
        if args.failover_trace:
            print(
                f"trace written to {args.failover_trace}"
                " (replication.failover = the failover gap)"
            )
        violations += failover["violation_count"]
    return 1 if violations else 0


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.core.generator import DatabaseGenerator
    from repro.query import execute

    db = _make_db(args)
    db.open()
    config = HyperModelConfig(levels=args.level, seed=args.seed)
    DatabaseGenerator(config).generate(db)
    db.commit()
    result = execute(db, args.text)
    print(f"plan: {result.plan}")
    print(f"matched {len(result)} nodes ({result.nodes_examined} examined)")
    uids = sorted(db.get_attribute(ref, "uniqueId") for ref in result)
    preview = ", ".join(str(uid) for uid in uids[:20])
    if len(uids) > 20:
        preview += ", ..."
    print(f"uniqueIds: {preview}")
    db.close()
    return 0


def _cmd_rubenstein(args: argparse.Namespace) -> int:
    from repro.rubenstein import (
        MemorySimpleDatabase,
        SimpleGenerator,
        SimpleOperations,
        SqliteSimpleDatabase,
    )

    db = (
        MemorySimpleDatabase()
        if args.backend == "memory"
        else SqliteSimpleDatabase(":memory:")
    )
    db.open()
    info = SimpleGenerator(args.persons, args.documents).generate(db)
    ops = SimpleOperations(db, info)
    results = ops.run_all(repetitions=args.repetitions)
    print(
        f"RUBE87 baseline on {db.backend_name}: "
        f"{info.persons} persons, {info.documents} documents"
    )
    for name, stats in results.items():
        print(f"  {name:<16} {stats.mean:9.4f} ms/op  (median {stats.median:.4f})")
    db.close()
    return 0


def _cmd_maintain(args: argparse.Namespace) -> int:
    from repro.backends.oodb import OodbDatabase

    db = OodbDatabase(args.path)
    db.open()
    try:
        if args.action == "vacuum":
            stats = db.store.vacuum()
            print(
                f"vacuumed: {stats.size_before:,} -> {stats.size_after:,} "
                f"bytes ({stats.reclaimed:,} reclaimed)"
            )
        elif args.action == "backup":
            if not args.target:
                print("backup requires --target")
                return 1
            db.backup(args.target)
            print(f"snapshot written to {args.target}")
        else:  # gc
            root_uids = (
                [int(u) for u in args.roots.split(",")]
                if args.roots
                else [1]
            )
            roots = [db.lookup(uid) for uid in root_uids]
            stats = db.collect_garbage(roots)
            print(
                f"gc: {stats.collected} collected, {stats.live} live "
                f"(from {stats.roots} roots)"
            )
    finally:
        db.close()
    return 0


def _cmd_r7() -> int:
    from repro.netsim.profiles import r7_table

    print("R7: uncached object faulting vs the 100-10,000 objects/s band")
    print(r7_table())
    print("('cache? needed' = only workstation caching reaches the band)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "info": lambda: _cmd_info(),
        "generate": lambda: _cmd_generate(args),
        "verify": lambda: _cmd_verify(args),
        "run": lambda: _cmd_run(args),
        "bench": lambda: _cmd_run(args, bench=True),
        "bench-closure": lambda: _cmd_bench_closure(args),
        "bench-multiuser": lambda: _cmd_bench_multiuser(args),
        "bench-sharded": lambda: _cmd_bench_sharded(args),
        "bench-replica": lambda: _cmd_bench_replica(args),
        "bench-diff": lambda: _cmd_bench_diff(args),
        "dash": lambda: _cmd_dash(args),
        "trace": lambda: _cmd_trace(args),
        "crashtest": lambda: _cmd_crashtest(args),
        "query": lambda: _cmd_query(args),
        "rubenstein": lambda: _cmd_rubenstein(args),
        "maintain": lambda: _cmd_maintain(args),
        "r7": lambda: _cmd_r7(),
    }
    return handlers[args.command]()


if __name__ == "__main__":
    sys.exit(main())
